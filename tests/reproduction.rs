//! Reproduction shape tests: the paper's qualitative findings must
//! hold on the full evaluation dataset.
//!
//! These run the complete paper campaign (16 workloads × thread sweeps
//! × 5 DVFS states × 13 counter groups), so they are release-profile
//! friendly but still run in debug within a few minutes. They assert
//! *shapes* — who wins, what blows up, orderings — not absolute
//! numbers.

use pmc_bench::{paper_dataset, paper_machine, PAPER_SEED, SELECTION_FREQ_MHZ};
use pmc_events::{Category, PapiEvent};
use pmc_model::analysis::counter_power_correlations;
use pmc_model::scenarios::run_paper_scenarios;
use pmc_model::selection::{probe_additional_event, select_events};
use pmc_model::validation::{cross_validate_model, oof_predictions, per_workload_mape};
use std::sync::OnceLock;

struct Fixture {
    data: pmc_model::dataset::Dataset,
    selection: pmc_model::dataset::Dataset,
    events: Vec<PapiEvent>,
    report: pmc_model::selection::SelectionReport,
}

fn fixture() -> &'static Fixture {
    static FIXTURE: OnceLock<Fixture> = OnceLock::new();
    FIXTURE.get_or_init(|| {
        let machine = paper_machine(PAPER_SEED);
        let data = paper_dataset(&machine);
        let selection = data.at_frequency(SELECTION_FREQ_MHZ);
        let report = select_events(&selection, PapiEvent::ALL, 6).unwrap();
        let events = report.selected_events();
        Fixture {
            data,
            selection,
            events,
            report,
        }
    })
}

/// Table I: a prefetch/memory counter is selected first with moderate
/// R², six counters reach ≥0.97, and the R² curve is monotone.
#[test]
fn table1_selection_shape() {
    let f = fixture();
    assert_eq!(f.report.steps.len(), 6);
    let first = &f.report.steps[0];
    assert_eq!(
        first.event,
        PapiEvent::PRF_DM,
        "first counter is the prefetch-miss proxy"
    );
    assert!(
        (0.70..=0.90).contains(&first.r_squared),
        "first-counter R² {}",
        first.r_squared
    );
    let last = f.report.steps.last().unwrap();
    assert!(last.r_squared > 0.97, "six-counter R² {}", last.r_squared);
    for w in f.report.r_squared_curve().windows(2) {
        assert!(w[1] >= w[0] - 1e-12);
    }
    // Adjusted R² tracks R² closely (the paper's "predictors add
    // relevant information" observation).
    for s in &f.report.steps {
        assert!(s.r_squared - s.adj_r_squared < 0.01);
    }
    // A cycle counter is selected second.
    assert_eq!(f.report.steps[1].event.category(), Category::Cycle);
}

/// Table I: the mean VIF of the six selected counters stays below the
/// instability threshold.
#[test]
fn table1_vif_is_stable() {
    let f = fixture();
    for s in &f.report.steps[1..] {
        let v = s.mean_vif.unwrap();
        assert!(v < 10.0, "{} mean VIF {v}", s.event);
        assert!(v >= 1.0 - 1e-9);
    }
}

/// §IV-A: probing the snoop counter as a 7th event barely improves R²
/// while pushing the mean VIF past 10 — the paper's stability trap.
#[test]
fn seventh_counter_vif_blowup() {
    let f = fixture();
    let six_vif = f.report.steps.last().unwrap().mean_vif.unwrap();
    let six_r2 = f.report.steps.last().unwrap().r_squared;
    let snp = probe_additional_event(&f.selection, &f.events, PapiEvent::CA_SNP).unwrap();
    assert!(snp.r_squared >= six_r2 - 1e-12);
    assert!(snp.r_squared - six_r2 < 0.02, "CA_SNP adds little R²");
    let snp_vif = snp.mean_vif.unwrap();
    assert!(
        snp_vif > 10.0 && snp_vif > 1.5 * six_vif,
        "CA_SNP must blow up the mean VIF: {six_vif} → {snp_vif}"
    );
}

/// Table II: 10-fold CV reaches high R² with a single-digit mean MAPE.
#[test]
fn table2_cross_validation_quality() {
    let f = fixture();
    let (summary, outcomes) = cross_validate_model(&f.data, &f.events, 10, PAPER_SEED).unwrap();
    assert_eq!(outcomes.len(), 10);
    assert!(summary.r_squared.min > 0.97, "{:?}", summary.r_squared);
    assert!(
        (3.0..=12.0).contains(&summary.mape.mean),
        "CV MAPE {:?}",
        summary.mape
    );
    assert!(summary.adj_r_squared.mean <= summary.r_squared.mean);
}

/// Fig. 3: per-workload MAPE varies widely; the worst workload is a
/// SPEC benchmark (the paper's ilbdc story) and is several times worse
/// than the best.
#[test]
fn fig3_per_workload_error_spread() {
    let f = fixture();
    let pred = oof_predictions(&f.data, &f.events, 10, PAPER_SEED).unwrap();
    let mut errors = per_workload_mape(&f.data, &pred).unwrap();
    assert_eq!(errors.len(), 16);
    errors.sort_by(|a, b| a.mape.partial_cmp(&b.mape).unwrap());
    let best = errors.first().unwrap();
    let worst = errors.last().unwrap();
    assert!(
        worst.mape > 3.0 * best.mape,
        "spread {} vs {}",
        best.mape,
        worst.mape
    );
    assert_eq!(
        worst.suite, "SPEC OMP2012",
        "worst workload is an application benchmark"
    );
}

/// Fig. 4: the scenario ordering holds — synthetic-only training is
/// the worst, synthetic-only CV the best, full CV in between.
#[test]
fn fig4_scenario_ordering() {
    let f = fixture();
    let results = run_paper_scenarios(&f.data, &f.events, PAPER_SEED).unwrap();
    let mape: Vec<f64> = results.iter().map(|r| r.mape).collect();
    // [random-4, synthetic→SPEC, CV-all, CV-synthetic]
    assert!(mape[1] > mape[2], "scenario 2 must beat CV-all: {mape:?}");
    assert!(
        mape[1] > 1.5 * mape[2],
        "scenario 2 ≥ 1.5× CV-all: {mape:?}"
    );
    assert!(mape[3] < mape[2], "synthetic CV is the easiest: {mape:?}");
    assert!(
        mape[0] > mape[2],
        "unseen workloads are harder than CV: {mape:?}"
    );
}

/// Fig. 5a: when trained on synthetic kernels only, md and nab are
/// consistently overestimated (positive bias), as the paper observes.
#[test]
fn fig5a_md_nab_overestimated() {
    let f = fixture();
    let results = run_paper_scenarios(&f.data, &f.events, PAPER_SEED).unwrap();
    let sc2 = &results[1];
    for target in ["md", "nab"] {
        let biases: Vec<f64> = sc2
            .points
            .iter()
            .filter(|p| p.workload == target)
            .map(|p| p.predicted - p.actual)
            .collect();
        assert!(!biases.is_empty());
        let positive = biases.iter().filter(|b| **b > 0.0).count();
        assert!(
            positive as f64 >= 0.8 * biases.len() as f64,
            "{target} must be consistently overestimated ({positive}/{})",
            biases.len()
        );
    }
}

/// Table III / Fig. 6: the first selected counter correlates strongly
/// with power, while later selections have markedly weaker marginal
/// correlation — they carry orthogonal information.
#[test]
fn table3_selected_counter_correlations() {
    let f = fixture();
    let all = counter_power_correlations(&f.selection).unwrap();
    let pcc = |e: PapiEvent| all[e.index()].pcc.unwrap_or(0.0);
    let first = pcc(f.events[0]).abs();
    assert!(first > 0.8, "first counter PCC {first}");
    let weakest = f.events[1..]
        .iter()
        .map(|&e| pcc(e).abs())
        .fold(f64::INFINITY, f64::min);
    assert!(
        weakest < 0.6,
        "later selections include weakly-correlated counters (min {weakest})"
    );
}

/// Table IV: selecting on synthetic workloads only yields a different
/// counter set whose mean VIF explodes within six steps.
#[test]
fn table4_synthetic_only_selection_unstable() {
    let f = fixture();
    let synth = f.selection.suite("roco2");
    let report = select_events(&synth, PapiEvent::ALL, 6).unwrap();
    let synth_events = report.selected_events();
    assert_ne!(
        synth_events, f.events,
        "different training data, different counters"
    );
    let max_vif = report
        .steps
        .iter()
        .filter_map(|s| s.mean_vif)
        .fold(0.0f64, f64::max);
    assert!(
        max_vif > 10.0,
        "synthetic-only VIF must blow up, got {max_vif}"
    );
}
