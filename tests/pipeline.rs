//! Cross-crate integration tests: the full acquisition → trace →
//! profile → dataset → model pipeline.

use pmc_cpusim::{Machine, MachineConfig, PhaseContext};
use pmc_events::scheduler::CounterScheduler;
use pmc_events::PapiEvent;
use pmc_model::acquisition::{Campaign, ExperimentPlan};
use pmc_model::dataset::Dataset;
use pmc_model::model::PowerModel;
use pmc_model::selection::select_events;
use pmc_trace::io::{read_trace, trace_to_string};
use pmc_trace::plugin::{PapiPlugin, PowerPlugin, VoltagePlugin};
use pmc_trace::record::TraceMeta;
use pmc_trace::{extract_profiles, merge_runs, Tracer};
use pmc_workloads::{roco2, WorkloadSet};

fn small_machine() -> Machine {
    Machine::new(MachineConfig::haswell_ep(6))
}

fn small_plan() -> ExperimentPlan {
    let set = WorkloadSet::from_workloads(
        roco2::kernels()
            .into_iter()
            .filter(|w| matches!(w.name, "sqrt" | "memory" | "compute"))
            .collect(),
    );
    ExperimentPlan::quick_plan(set, vec![1200, 2400])
}

#[test]
fn full_pipeline_produces_usable_model() {
    let machine = small_machine();
    let profiles = Campaign::new(&machine, small_plan()).run().unwrap();
    // 3 kernels × 5 thread counts × 2 freqs = 30 merged profiles.
    assert_eq!(profiles.len(), 30);
    let data = Dataset::from_profiles(&profiles, machine.config().total_cores()).unwrap();
    assert_eq!(data.len(), 30);

    // Selection finds a memory counter first on this memory-spread set.
    let report = select_events(&data.at_frequency(2400), PapiEvent::ALL, 3).unwrap();
    assert_eq!(report.steps.len(), 3);
    assert!(report.steps[0].r_squared > 0.5);

    // Equation 1 fits well and predicts in-distribution.
    let model = PowerModel::fit(&data, &report.selected_events()).unwrap();
    assert!(model.fit_r_squared > 0.95, "R² {}", model.fit_r_squared);
    let mape = pmc_stats::mape(&data.power(), &model.predict(&data)).unwrap();
    assert!(mape < 10.0, "in-sample MAPE {mape}");
}

#[test]
fn trace_files_roundtrip_through_serialization() {
    let machine = small_machine();
    let group = CounterScheduler::haswell_default()
        .schedule(&[PapiEvent::PRF_DM, PapiEvent::STL_ICY])
        .unwrap()
        .remove(0);
    let tracer = Tracer::new()
        .with_plugin(Box::new(PowerPlugin::default()))
        .with_plugin(Box::new(VoltagePlugin::default()))
        .with_plugin(Box::new(PapiPlugin::new(group)));

    let kernel = &roco2::kernels()[3]; // sqrt
    let phase = &kernel.phases(24)[0];
    let obs = machine.observe(
        &phase.activity,
        &PhaseContext {
            workload_id: kernel.id,
            phase_id: 0,
            run_id: 0,
            threads: 24,
            freq_mhz: 2400,
            duration_s: phase.duration_s,
        },
    );
    let meta = TraceMeta {
        workload_id: kernel.id,
        workload: kernel.name.into(),
        suite: "roco2".into(),
        threads: 24,
        freq_mhz: 2400,
        run_id: 0,
    };
    let mut rng = pmc_cpusim::rng::SplitMix64::new(9);
    let trace = tracer.record_run(meta, &[("main".into(), obs)], &mut rng);

    // Write → read → same profiles.
    let text = trace_to_string(&trace).unwrap();
    let back = read_trace(text.as_bytes()).unwrap();
    assert_eq!(trace, back);
    let p1 = extract_profiles(&trace).unwrap();
    let p2 = extract_profiles(&back).unwrap();
    assert_eq!(p1, p2);
}

#[test]
fn merged_profiles_recover_observation_averages() {
    // Run one experiment manually through all 13 groups and check the
    // merged power equals the mean of the per-run sensor readings.
    let machine = small_machine();
    let kernel = roco2::kernels().remove(5); // memory
    let groups = CounterScheduler::haswell_default()
        .schedule(PapiEvent::ALL)
        .unwrap();
    let phase = &kernel.phases(12)[0];

    let mut all_profiles = Vec::new();
    let mut power_sum = 0.0;
    for (run_id, group) in groups.iter().enumerate() {
        let obs = machine.observe(
            &phase.activity,
            &PhaseContext {
                workload_id: kernel.id,
                phase_id: 0,
                run_id: run_id as u32,
                threads: 12,
                freq_mhz: 2000,
                duration_s: phase.duration_s,
            },
        );
        power_sum += obs.power_measured;
        let tracer = Tracer::new()
            .with_plugin(Box::new(PowerPlugin::default()))
            .with_plugin(Box::new(VoltagePlugin::default()))
            .with_plugin(Box::new(PapiPlugin::new(group.clone())));
        let meta = TraceMeta {
            workload_id: kernel.id,
            workload: kernel.name.into(),
            suite: "roco2".into(),
            threads: 12,
            freq_mhz: 2000,
            run_id: run_id as u32,
        };
        let mut rng = pmc_cpusim::rng::SplitMix64::derive(7, &[run_id as u64]);
        let trace = tracer.record_run(meta, &[("main".into(), obs)], &mut rng);
        all_profiles.extend(extract_profiles(&trace).unwrap());
    }
    let merged = merge_runs(&all_profiles).unwrap();
    assert_eq!(merged.len(), 1);
    let m = &merged[0];
    assert!(m.has_full_coverage());
    assert_eq!(m.runs, 13);
    let mean_power = power_sum / 13.0;
    assert!(
        (m.power_avg - mean_power).abs() < 1e-6,
        "merged {} vs mean {}",
        m.power_avg,
        mean_power
    );
}

#[test]
fn campaign_is_deterministic_under_parallelism() {
    let machine = small_machine();
    let mut serial = small_plan();
    serial.campaign_threads = 1;
    let mut parallel = small_plan();
    parallel.campaign_threads = 8;
    let a = Campaign::new(&machine, serial).run().unwrap();
    let b = Campaign::new(&machine, parallel).run().unwrap();
    assert_eq!(a, b);
}

#[test]
fn model_roundtrips_as_deployable_json() {
    let machine = small_machine();
    let profiles = Campaign::new(&machine, small_plan()).run().unwrap();
    let data = Dataset::from_profiles(&profiles, machine.config().total_cores()).unwrap();
    let events = vec![PapiEvent::PRF_DM, PapiEvent::TOT_CYC];
    let model = PowerModel::fit(&data, &events).unwrap();
    let restored = PowerModel::from_json(&model.to_json().unwrap()).unwrap();
    for row in data.rows() {
        assert!((model.predict_row(row) - restored.predict_row(row)).abs() < 1e-9);
    }
}

#[test]
fn online_prediction_matches_batch_prediction() {
    let machine = small_machine();
    let profiles = Campaign::new(&machine, small_plan()).run().unwrap();
    let data = Dataset::from_profiles(&profiles, machine.config().total_cores()).unwrap();
    let events = vec![PapiEvent::PRF_DM, PapiEvent::REF_CYC, PapiEvent::STL_ICY];
    let model = PowerModel::fit(&data, &events).unwrap();
    for row in data.rows().iter().take(5) {
        let rates: Vec<f64> = model.events.iter().map(|&e| row.rate(e)).collect();
        let online = model
            .predict_raw(&rates, row.voltage, row.freq_mhz)
            .unwrap();
        assert!((online - model.predict_row(row)).abs() < 1e-9);
    }
}
