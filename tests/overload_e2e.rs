//! Overload and lifecycle end-to-end tests for the readiness-based
//! `pmc-serve` core: a connection burst 3× over the admission budget
//! must produce only valid responses or typed `overloaded`/`draining`
//! frames (no hangs, no silent drops), a graceful drain must finish
//! in-flight work and flush the registry within the drain deadline,
//! and a slow-loris peer must be reaped without degrading a concurrent
//! well-behaved client.

use pmc_serve::protocol::{read_frame, unwrap_response, write_frame, Request};
use pmc_serve::registry::ModelRegistry;
use pmc_serve::server::{PowerServer, ServerConfig};
use pmc_serve::{PowerClient, ServeError};
use std::io::Write;
use std::net::TcpStream;
use std::sync::Arc;
use std::time::{Duration, Instant};

fn temp_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("pmc-overload-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// What one client in the burst experienced.
#[derive(Debug, PartialEq)]
enum Outcome {
    Ok,
    Overloaded,
    Draining,
    /// The cardinal sin: connection closed with no frame at all.
    SilentDrop,
}

#[test]
fn burst_over_budget_yields_typed_rejections_never_silence() {
    const BUDGET: usize = 8;
    const CLIENTS: usize = 3 * BUDGET;
    let cfg = ServerConfig {
        workers: 2,
        max_connections: BUDGET,
        max_inflight: 4,
        queue_depth: 4,
        ..ServerConfig::default()
    };
    let server = PowerServer::start(cfg, Arc::new(ModelRegistry::default())).unwrap();
    let addr = server.addr();

    let handles: Vec<_> = (0..CLIENTS)
        .map(|_| {
            std::thread::spawn(move || {
                let mut c = match TcpStream::connect(addr) {
                    Ok(c) => c,
                    Err(_) => return Outcome::SilentDrop,
                };
                // A short ping keeps workers busy enough that both
                // admission layers (connections and in-flight) engage.
                if write_frame(&mut c, &Request::Ping { delay_ms: 40 }.to_json_value()).is_err() {
                    // The server may already have rejected and closed;
                    // the frame it wrote first is still readable.
                }
                match read_frame(&mut c) {
                    Ok(Some(frame)) => match unwrap_response(frame) {
                        Ok(_) => Outcome::Ok,
                        Err(ServeError::Overloaded { retry_after_ms }) => {
                            assert!(retry_after_ms > 0, "overload must carry a backoff hint");
                            Outcome::Overloaded
                        }
                        Err(ServeError::Draining) => Outcome::Draining,
                        Err(other) => panic!("unexpected typed error: {other}"),
                    },
                    _ => Outcome::SilentDrop,
                }
            })
        })
        .collect();

    let mut ok = 0usize;
    let mut overloaded = 0usize;
    let mut draining = 0usize;
    for h in handles {
        match h.join().expect("client thread panicked (server hang?)") {
            Outcome::Ok => ok += 1,
            Outcome::Overloaded => overloaded += 1,
            Outcome::Draining => draining += 1,
            Outcome::SilentDrop => panic!("a client was dropped without any response frame"),
        }
    }
    assert_eq!(ok + overloaded + draining, CLIENTS);
    assert!(ok >= 1, "at least some clients must be served");
    assert!(
        overloaded >= 1,
        "3x over budget must produce typed overload rejections \
         (ok={ok} overloaded={overloaded} draining={draining})"
    );

    let stats = server.stats();
    let shed_conns = stats
        .connections_shed
        .load(std::sync::atomic::Ordering::Relaxed);
    let rejected = stats
        .requests_rejected_overload
        .load(std::sync::atomic::Ordering::Relaxed);
    let shed_reqs = stats
        .requests_shed
        .load(std::sync::atomic::Ordering::Relaxed);
    assert_eq!(shed_conns + rejected + shed_reqs, overloaded as u64);
    drop(server); // graceful shutdown must not panic with clients gone
}

#[test]
fn graceful_drain_finishes_inflight_and_flushes_registry() {
    let dir = temp_dir("drain");
    let (registry, _) = ModelRegistry::with_persistence(
        pmc_events::scheduler::CounterScheduler::haswell_default(),
        dir.to_str().unwrap(),
    )
    .unwrap();
    let drain_deadline = Duration::from_secs(5);
    let cfg = ServerConfig {
        workers: 2,
        drain_deadline,
        ..ServerConfig::default()
    };
    let mut server = PowerServer::start(cfg, Arc::new(registry)).unwrap();

    // Load and activate a model, then put a slow request in flight.
    let model = {
        // A tiny servable model: fit on a synthetic linear dataset.
        let events = vec![
            pmc_events::PapiEvent::PRF_DM,
            pmc_events::PapiEvent::TOT_CYC,
        ];
        let rows: Vec<_> = (0..24)
            .map(|i| pmc_model::dataset::SampleRow {
                workload_id: i as u32,
                workload: format!("w{i}"),
                suite: "syn".into(),
                phase: "main".into(),
                threads: 24,
                freq_mhz: [1200, 1600, 2000, 2400][i % 4],
                duration_s: 1.0,
                voltage: 0.8 + 0.05 * (i % 4) as f64,
                power: 70.0 + 3.0 * (i as f64),
                rates: (0..pmc_events::PapiEvent::COUNT)
                    .map(|j| ((i * 13 + j * 7) % 41) as f64 / 4100.0)
                    .collect(),
            })
            .collect();
        let data = pmc_model::dataset::Dataset::from_rows(rows);
        pmc_model::model::PowerModel::fit(&data, &events).unwrap()
    };
    let mut c = PowerClient::connect(server.addr()).unwrap();
    assert_eq!(c.load_model("drainy", &model, true).unwrap(), 1);

    let mut slow = TcpStream::connect(server.addr()).unwrap();
    write_frame(&mut slow, &Request::Ping { delay_ms: 150 }.to_json_value()).unwrap();
    std::thread::sleep(Duration::from_millis(40)); // ensure in flight

    let t0 = Instant::now();
    server.shutdown(); // blocks through the drain
    let wall = t0.elapsed();
    assert!(
        wall < drain_deadline,
        "drain took {wall:?}, deadline {drain_deadline:?}"
    );

    // The in-flight ping finished, then the draining notice arrived.
    let pong = unwrap_response(read_frame(&mut slow).unwrap().unwrap()).unwrap();
    assert!(pong.field("pong").unwrap().as_bool().unwrap());
    assert!(matches!(
        unwrap_response(read_frame(&mut slow).unwrap().unwrap()),
        Err(ServeError::Draining)
    ));

    // Drain stats were recorded…
    assert!(
        server
            .stats()
            .drain_duration_ms
            .load(std::sync::atomic::Ordering::Relaxed)
            >= 20
    );
    // …and the registry flush left a recoverable state on disk.
    let (recovered, report) = ModelRegistry::with_persistence(
        pmc_events::scheduler::CounterScheduler::haswell_default(),
        dir.to_str().unwrap(),
    )
    .unwrap();
    assert_eq!(report.active_restored, Some(("drainy".to_string(), 1)));
    assert!(recovered.active().is_some());
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn slow_loris_is_reaped_without_degrading_neighbors() {
    let cfg = ServerConfig {
        // One worker: under the old thread-per-connection design the
        // loris would pin it and starve the well-behaved client.
        workers: 1,
        read_timeout: Some(Duration::from_millis(100)),
        idle_timeout: Some(Duration::from_secs(30)),
        ..ServerConfig::default()
    };
    let mut server = PowerServer::start(cfg, Arc::new(ModelRegistry::default())).unwrap();
    let addr = server.addr();
    let stats = server.stats();

    // The loris: announce a 64-byte frame, then drip one payload byte
    // per tick — the frame never completes within the read deadline.
    let loris = std::thread::spawn(move || {
        let mut s = TcpStream::connect(addr).unwrap();
        let _ = s.write_all(&64u32.to_be_bytes());
        for _ in 0..20 {
            if s.write_all(b" ").is_err() {
                break; // reaped — expected
            }
            std::thread::sleep(Duration::from_millis(30));
        }
    });

    // Meanwhile a well-behaved client must see normal latency.
    let mut good = PowerClient::connect(addr).unwrap();
    let mut worst = Duration::ZERO;
    for _ in 0..10 {
        let t0 = Instant::now();
        good.ping(0).unwrap();
        worst = worst.max(t0.elapsed());
        std::thread::sleep(Duration::from_millis(20));
    }
    assert!(
        worst < Duration::from_millis(500),
        "well-behaved client degraded to {worst:?} beside a slow loris"
    );

    loris.join().unwrap();
    assert!(
        stats
            .connections_reaped
            .load(std::sync::atomic::Ordering::Relaxed)
            >= 1,
        "the loris must be reaped on the partial-frame deadline"
    );
    server.shutdown();
}
