//! Online-learning end-to-end against a live `pmc-serve` server: the
//! `train` op's full guarded-refresh loop over real TCP.
//!
//! Three contracts, each its own test:
//!
//! 1. **Drift → shadow win → auto-activation.** A workload drift the
//!    active model cannot explain makes the shadow refit win the
//!    rolling-MAPE race; the server activates it through the versioned
//!    registry and serving MAPE improves by an order of magnitude.
//! 2. **Poisoning → quarantine, never a worse model.** A seeded label
//!    poisoner corrupts a fraction of the stream; every label-class
//!    attack is quarantined with a typed reason, clean samples pass,
//!    and no activation ever happens off the poisoned fit.
//! 3. **Bad activation → automatic rollback.** A deliberately wrong
//!    model is manually activated; within the guard window the server
//!    rolls back to the pinned previous version and latches the typed
//!    `shadow_regressed` readiness reason.
//!
//! Seeded via `TRAIN_SEED` (default 1; CI runs 1/7/42), which shifts
//! the deterministic sample stream and the poisoner's RNG.

use pmc_events::PapiEvent;
use pmc_faults::{LabelPoisoner, PoisonKind, PoisonRates};
use pmc_json::Json;
use pmc_model::dataset::{Dataset, SampleRow};
use pmc_model::model::PowerModel;
use pmc_serve::registry::ModelRegistry;
use pmc_serve::server::{PowerServer, ServerConfig};
use pmc_serve::trainer::TrainerConfig;
use pmc_serve::{CounterSample, EngineConfig, PowerClient};
use std::sync::Arc;

/// Matches the fixture dataset's thread count, so wire deltas divide
/// back into exactly the rates the model was fitted on.
const CORES: u32 = 24;

fn train_seed() -> u64 {
    std::env::var("TRAIN_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(1)
}

/// Deterministic synthetic campaign: power exactly linear in three
/// event rates (the serve crate's fixture law), so fits are well-posed
/// and MAPE reflects only what the tests inject.
fn tiny_dataset(n: usize) -> Dataset {
    let mut rows = Vec::with_capacity(n);
    for i in 0..n {
        let freq_mhz = [1200u32, 1600, 2000, 2400, 2600][i % 5];
        let f = freq_mhz as f64 / 1000.0;
        let v = 0.492857 + 0.214286 * f;
        let mut rates: Vec<f64> = (0..PapiEvent::COUNT)
            .map(|j| ((31 * i + 17 * j + i * i * (j + 3)) % 97) as f64 / 9700.0)
            .collect();
        rates[PapiEvent::PRF_DM.index()] = 0.001 + 0.00002 * (i as f64);
        rates[PapiEvent::TOT_CYC.index()] = 0.2 + 0.01 * ((i * 7 % 13) as f64);
        rates[PapiEvent::TLB_IM.index()] = 0.0005 + 0.00001 * ((i * 5 % 11) as f64);
        let v2f = v * v * f;
        let power = 5000.0 * rates[PapiEvent::PRF_DM.index()] * v2f
            + 120.0 * rates[PapiEvent::TOT_CYC.index()] * v2f
            + 900.0 * rates[PapiEvent::TLB_IM.index()] * v2f
            + 20.0 * v2f
            + 40.0 * v
            + 70.0;
        rows.push(SampleRow {
            workload_id: (i % 8) as u32,
            workload: format!("w{}", i % 8),
            suite: "roco2".into(),
            phase: "main".into(),
            threads: 24,
            freq_mhz,
            duration_s: 1.0,
            voltage: v,
            power,
            rates,
        });
    }
    Dataset::from_rows(rows)
}

fn tiny_model() -> PowerModel {
    PowerModel::fit(
        &tiny_dataset(40),
        &[PapiEvent::PRF_DM, PapiEvent::TOT_CYC, PapiEvent::TLB_IM],
    )
    .expect("well-posed synthetic fit")
}

/// One labeled sample following the fixture law, with `drift_w` watts
/// the fitted model does not know about added to the label.
fn labeled(i: usize, drift_w: f64) -> (CounterSample, f64) {
    let freq_mhz = [1200u32, 1600, 2000, 2400, 2600][i % 5];
    let f = freq_mhz as f64 / 1000.0;
    let v = 0.492857 + 0.214286 * f;
    let r_prf = 0.001 + 0.00002 * (i as f64);
    let r_cyc = 0.2 + 0.01 * ((i * 7 % 13) as f64);
    let r_tlb = 0.0005 + 0.00001 * ((i * 5 % 11) as f64);
    let v2f = v * v * f;
    let power = 5000.0 * r_prf * v2f
        + 120.0 * r_cyc * v2f
        + 900.0 * r_tlb * v2f
        + 20.0 * v2f
        + 40.0 * v
        + 70.0
        + drift_w;
    let avail = CORES as f64 * freq_mhz as f64 * 1e6;
    let sample = CounterSample {
        time_ns: (i as u64 + 1) * 250_000_000,
        duration_s: 1.0,
        freq_mhz,
        voltage: v,
        deltas: vec![r_prf * avail, r_cyc * avail, r_tlb * avail],
        missing: Vec::new(),
    };
    (sample, power)
}

/// A live server with the fixture model active as version 1 and the
/// given online-learning thresholds.
fn serve_with(trainer: TrainerConfig) -> (PowerServer, PowerClient) {
    let config = ServerConfig {
        addr: "127.0.0.1:0".into(),
        workers: 2,
        queue_depth: 8,
        engine: EngineConfig {
            window: 8,
            total_cores: CORES,
            staleness_ns: 5_000_000_000,
        },
        trainer,
        ..ServerConfig::default()
    };
    let server = PowerServer::start(config, Arc::new(ModelRegistry::default())).unwrap();
    let mut client = PowerClient::connect(server.addr()).unwrap();
    assert_eq!(client.load_model("hsw", &tiny_model(), true).unwrap(), 1);
    (server, client)
}

/// Scrapes one `pmc_serve_<name> <value>` sample from the metrics body.
fn scrape(body: &str, name: &str) -> f64 {
    let prefix = format!("pmc_serve_{name} ");
    body.lines()
        .find_map(|line| line.strip_prefix(&prefix))
        .and_then(|rest| rest.trim().parse().ok())
        .unwrap_or_else(|| panic!("metric pmc_serve_{name} not exposed"))
}

fn fast_trainer() -> TrainerConfig {
    TrainerConfig {
        score_window: 16,
        min_score_samples: 8,
        min_train_samples: 12,
        guard_window: 4,
        ..TrainerConfig::default()
    }
}

#[test]
fn drifted_workload_shadow_wins_and_activation_improves_mape() {
    let (mut server, mut c) = serve_with(fast_trainer());
    let offset = (train_seed() as usize % 17) * 3;
    let drift = 18.0;

    let mut mape_before_activation = None;
    let mut activation_version = None;
    let mut last_mape = None;
    for i in 0..80 {
        let (sample, power) = labeled(offset + i, drift);
        let r = c.train(&sample, power).unwrap();
        assert!(
            r.field("accepted").unwrap().as_bool().unwrap(),
            "clean drifted sample {i} rejected: {r}"
        );
        assert!(!r.field("rolled_back").unwrap().as_bool().unwrap());
        if let Json::Null = r.field("activated").unwrap() {
        } else if activation_version.is_none() {
            activation_version = Some(r.field("activated").unwrap().u32_field("version").unwrap());
            // The window retired at activation; the MAPE the old model
            // was holding is the last one reported before this call.
        }
        if activation_version.is_none() {
            mape_before_activation = r.f64_field("active_mape").ok();
        }
        last_mape = r.f64_field("active_mape").ok();
    }

    assert_eq!(
        activation_version,
        Some(2),
        "shadow never won against an {drift} W drift"
    );
    let before = mape_before_activation.expect("scored window before activation");
    let after = last_mape.expect("scored window after activation");
    assert!(
        after < before / 10.0,
        "activation did not improve serving MAPE: {before}% -> {after}%"
    );

    let body = c.metrics().unwrap();
    assert_eq!(scrape(&body, "auto_activations"), 1.0);
    assert_eq!(scrape(&body, "auto_rollbacks"), 0.0);
    assert_eq!(scrape(&body, "shadow_regressed"), 0.0);
    // The shadow gauge tracks the *current* race; after activation it
    // restarts, but it must be exposed and finite.
    assert!(scrape(&body, "shadow_mape").is_finite());
    // The guarded refresh never cost readiness.
    assert!(c
        .readyz()
        .unwrap()
        .field("ready")
        .unwrap()
        .as_bool()
        .unwrap());
    server.shutdown();
}

#[test]
fn poisoned_stream_is_quarantined_and_never_activates_a_worse_model() {
    let (mut server, mut c) = serve_with(fast_trainer());
    let seed = train_seed();
    let poisoner = LabelPoisoner::new(seed, PoisonRates::uniform(0.25));
    // Label-class attacks the gate must catch on *every* sample; a
    // leverage attack needs a warm fit, so early ones may slip into
    // the (never-winning) candidate instead.
    let always_caught = [
        PoisonKind::NanLabel,
        PoisonKind::SpikeLabel,
        PoisonKind::NegativeLabel,
        PoisonKind::VoltageDrift,
    ];

    let mut poisoned = 0u64;
    let mut quarantined = 0u64;
    for i in 0..80 {
        let (mut sample, mut power) = labeled(i, 0.0);
        let mut voltage = sample.voltage;
        let fired = poisoner.corrupt_labeled(
            &mut sample.deltas,
            &mut voltage,
            &mut power,
            &[seed, i as u64],
        );
        sample.voltage = voltage;
        let r = c.train(&sample, power).unwrap();
        let accepted = r.field("accepted").unwrap().as_bool().unwrap();
        if fired.is_empty() {
            assert!(accepted, "clean sample {i} rejected: {r}");
        } else {
            poisoned += 1;
            if fired.iter().any(|k| always_caught.contains(k)) {
                assert!(
                    !accepted,
                    "label-poisoned sample {i} ({fired:?}) fed the fit: {r}"
                );
            }
        }
        if !accepted {
            quarantined += 1;
        }
        // A poisoned stream must never promote a model: the shadow
        // can only lose against the already-correct active fit.
        assert!(matches!(r.field("activated").unwrap(), Json::Null));
        assert!(!r.field("rolled_back").unwrap().as_bool().unwrap());
    }
    assert!(
        poisoned >= 10,
        "seed {seed} fired only {poisoned} poisonings — rate too low to test anything"
    );
    assert!(quarantined >= poisoned / 2);

    let body = c.metrics().unwrap();
    assert_eq!(
        scrape(&body, "train_samples_quarantined"),
        quarantined as f64
    );
    assert_eq!(scrape(&body, "auto_activations"), 0.0);
    assert_eq!(scrape(&body, "auto_rollbacks"), 0.0);
    // Serving never degraded: the active model still explains clean
    // labels to machine precision.
    let (sample, power) = labeled(200, 0.0);
    let r = c.train(&sample, power).unwrap();
    let mape = r.f64_field("active_mape").unwrap();
    assert!(
        mape < 0.5,
        "poisoning leaked into serving: rolling MAPE {mape}%"
    );
    assert!(c
        .readyz()
        .unwrap()
        .field("ready")
        .unwrap()
        .as_bool()
        .unwrap());
    server.shutdown();
}

#[test]
fn forced_bad_activation_rolls_back_within_guard_window() {
    // No candidate interference: this test is about the guard alone.
    let trainer = TrainerConfig {
        score_window: 12,
        min_score_samples: 6,
        min_train_samples: 10_000,
        guard_window: 4,
        ..TrainerConfig::default()
    };
    let guard_window = trainer.guard_window;
    let (mut server, mut c) = serve_with(trainer);
    let offset = (train_seed() as usize % 17) * 3;

    // Establish the baseline the bad activation will be judged by.
    for i in 0..8 {
        let (sample, power) = labeled(offset + i, 0.0);
        let r = c.train(&sample, power).unwrap();
        assert!(r.field("accepted").unwrap().as_bool().unwrap());
    }

    // An operator ships a model whose intercept is 60 W off.
    let mut bad = tiny_model();
    bad.delta += 60.0;
    assert_eq!(c.load_model("hsw", &bad, true).unwrap(), 2);

    let mut rolled_back_at = None;
    for i in 8..8 + guard_window + 2 {
        let (sample, power) = labeled(offset + i, 0.0);
        let r = c.train(&sample, power).unwrap();
        if r.field("rolled_back").unwrap().as_bool().unwrap() {
            rolled_back_at = Some(i - 8);
            break;
        }
    }
    let scored = rolled_back_at.expect("guard never rolled back a 60 W regression") + 1;
    assert!(
        scored <= guard_window,
        "rollback took {scored} labels, guard window is {guard_window}"
    );

    let body = c.metrics().unwrap();
    assert_eq!(scrape(&body, "auto_rollbacks"), 1.0);
    assert_eq!(scrape(&body, "auto_activations"), 0.0);
    // The regression latches the typed readiness reason until a later
    // activation proves healthy.
    assert_eq!(scrape(&body, "shadow_regressed"), 1.0);
    let r = c.readyz().unwrap();
    assert!(!r.field("ready").unwrap().as_bool().unwrap());
    let reasons: Vec<&str> = r
        .arr_field("reasons")
        .unwrap()
        .iter()
        .map(|v| v.as_str().unwrap())
        .collect();
    assert!(
        reasons.contains(&"shadow_regressed"),
        "readyz reasons: {reasons:?}"
    );

    // Serving is back on the good version: fresh labels score it at
    // machine precision again.
    let (sample, power) = labeled(offset + 40, 0.0);
    let r = c.train(&sample, power).unwrap();
    assert!(r.field("accepted").unwrap().as_bool().unwrap());
    assert!(r.f64_field("active_mape").unwrap() < 0.1);
    server.shutdown();
}
