//! Robustness and failure-injection tests: the pipeline must degrade
//! loudly, not silently, and its qualitative conclusions must not
//! depend on one lucky seed.

use pmc_cpusim::{Activity, Machine, MachineConfig, PhaseContext};
use pmc_events::scheduler::CounterScheduler;
use pmc_events::PapiEvent;
use pmc_model::acquisition::{Campaign, ExperimentPlan};
use pmc_model::dataset::{Dataset, SampleRow};
use pmc_model::model::PowerModel;
use pmc_model::selection::select_events;
use pmc_model::validation::cross_validate_model;
use pmc_trace::record::{TraceMeta, TraceRecord};
use pmc_trace::{extract_profiles, merge_runs, PhaseProfile};
use pmc_workloads::{roco2, WorkloadSet};

fn quick_data(seed: u64) -> (Machine, Dataset) {
    let machine = Machine::new(MachineConfig::haswell_ep(seed));
    let set = WorkloadSet::from_workloads(
        roco2::kernels()
            .into_iter()
            .filter(|w| matches!(w.name, "sqrt" | "memory" | "compute",))
            .collect(),
    );
    let plan = ExperimentPlan::quick_plan(set, vec![1200, 2400]);
    let profiles = Campaign::new(&machine, plan).run().unwrap();
    let cores = machine.config().total_cores();
    (machine, Dataset::from_profiles(&profiles, cores).unwrap())
}

/// The headline conclusions hold across seeds: the first selected
/// counter is a memory-traffic proxy and the Equation 1 fit is strong.
#[test]
fn seed_robustness_of_conclusions() {
    for seed in [1u64, 6, 23, 99] {
        let (_machine, data) = quick_data(seed);
        let report = select_events(&data.at_frequency(2400), PapiEvent::ALL, 3).unwrap();
        let first = report.steps[0].event;
        let memoryish = matches!(
            first.category(),
            pmc_events::Category::Prefetch | pmc_events::Category::Cache
        );
        assert!(
            memoryish,
            "seed {seed}: first counter {first} not memory-class"
        );

        let model = PowerModel::fit(&data, &report.selected_events()).unwrap();
        assert!(
            model.fit_r_squared > 0.9,
            "seed {seed}: R² {}",
            model.fit_r_squared
        );
    }
}

/// Collinear regressor sets are rejected with an error, not NaNs.
#[test]
fn collinear_counter_set_rejected() {
    let (_machine, data) = quick_data(6);
    // L1_TCM = L1_DCM + L1_ICM exactly (up to noise); with L1_LDM and
    // L1_STM (whose sum is L1_DCM) the design is nearly singular. Use
    // an exactly-duplicated event to force the failure.
    let events = vec![PapiEvent::PRF_DM, PapiEvent::PRF_DM];
    let result = PowerModel::fit(&data, &events);
    assert!(result.is_err(), "duplicate regressors must not fit");
}

/// A constant (dead) counter cannot be selected and does not poison
/// the run.
#[test]
fn dead_counter_is_skippable() {
    let (_machine, data) = quick_data(6);
    // Zero out one counter column to simulate a dead PMU event.
    let rows: Vec<SampleRow> = data
        .rows()
        .iter()
        .cloned()
        .map(|mut r| {
            r.rates[PapiEvent::CA_SNP.index()] = 0.0;
            r
        })
        .collect();
    let poisoned = Dataset::from_rows(rows);
    let report = select_events(&poisoned.at_frequency(2400), PapiEvent::ALL, 3).unwrap();
    assert!(!report.selected_events().contains(&PapiEvent::CA_SNP));
}

/// Too-small folds are rejected; CV on a small but valid dataset runs.
#[test]
fn cross_validation_bounds() {
    let (_machine, data) = quick_data(6);
    assert!(cross_validate_model(&data, &[PapiEvent::PRF_DM], 1, 0).is_err());
    assert!(cross_validate_model(&data, &[PapiEvent::PRF_DM], data.len() + 1, 0).is_err());
    let (summary, _) =
        cross_validate_model(&data, &[PapiEvent::PRF_DM, PapiEvent::TOT_CYC], 5, 0).unwrap();
    assert!(summary.mape.mean.is_finite());
}

/// Dropped sensor data (missing power samples) fails merging loudly.
#[test]
fn sensor_dropout_detected() {
    let machine = Machine::new(MachineConfig::haswell_ep(6));
    let kernel = roco2::kernels().remove(3);
    let phase = &kernel.phases(24)[0];
    let obs = machine.observe(
        &phase.activity,
        &PhaseContext {
            workload_id: kernel.id,
            phase_id: 0,
            run_id: 0,
            threads: 24,
            freq_mhz: 2400,
            duration_s: phase.duration_s,
        },
    );
    // Trace recorded WITHOUT the power plugin: profile has no power.
    let group = CounterScheduler::haswell_default()
        .schedule(&[PapiEvent::PRF_DM])
        .unwrap()
        .remove(0);
    let tracer =
        pmc_trace::Tracer::new().with_plugin(Box::new(pmc_trace::plugin::PapiPlugin::new(group)));
    let meta = TraceMeta {
        workload_id: kernel.id,
        workload: kernel.name.into(),
        suite: "roco2".into(),
        threads: 24,
        freq_mhz: 2400,
        run_id: 0,
    };
    let mut rng = pmc_cpusim::rng::SplitMix64::new(3);
    let trace = tracer.record_run(meta, &[("main".into(), obs)], &mut rng);
    let profiles = extract_profiles(&trace).unwrap();
    assert!(profiles[0].power_avg.is_none());
    assert!(
        merge_runs(&profiles).is_err(),
        "missing power must fail the merge"
    );
}

/// Missing counter coverage fails dataset assembly with the counter
/// names in the error.
#[test]
fn partial_coverage_detected() {
    let machine = Machine::new(MachineConfig::haswell_ep(6));
    let mut plan = ExperimentPlan::quick_plan(
        WorkloadSet::from_workloads(vec![roco2::kernels().remove(3)]),
        vec![2400],
    );
    // Only record two events: coverage is far from complete.
    plan.events = vec![PapiEvent::PRF_DM, PapiEvent::TLB_IM];
    let profiles = Campaign::new(&machine, plan).run().unwrap();
    let err = Dataset::from_profiles(&profiles, machine.config().total_cores()).unwrap_err();
    let msg = err.to_string();
    assert!(msg.contains("lacks counters"), "{msg}");
    assert!(msg.contains("BR_MSP"), "{msg}");
}

/// Corrupt traces (broken nesting) are rejected by post-processing.
#[test]
fn corrupt_trace_rejected() {
    let machine = Machine::new(MachineConfig::haswell_ep(6));
    let group = CounterScheduler::haswell_default()
        .schedule(&[PapiEvent::PRF_DM])
        .unwrap()
        .remove(0);
    let tracer =
        pmc_trace::Tracer::new().with_plugin(Box::new(pmc_trace::plugin::PapiPlugin::new(group)));
    let obs = machine.observe(
        &Activity::default(),
        &PhaseContext {
            workload_id: 1,
            phase_id: 0,
            run_id: 0,
            threads: 24,
            freq_mhz: 2400,
            duration_s: 1.0,
        },
    );
    let meta = TraceMeta {
        workload_id: 1,
        workload: "x".into(),
        suite: "roco2".into(),
        threads: 24,
        freq_mhz: 2400,
        run_id: 0,
    };
    let mut rng = pmc_cpusim::rng::SplitMix64::new(4);
    let mut trace = tracer.record_run(meta, &[("main".into(), obs)], &mut rng);
    // Drop the Leave record: broken nesting.
    trace
        .records
        .retain(|r| !matches!(r, TraceRecord::Leave { .. }));
    assert!(extract_profiles(&trace).is_err());
}

/// Merging profiles from *different* machines (seeds) still averages
/// arithmetically — merge does not silently deduplicate.
#[test]
fn merge_is_arithmetic_not_dedup() {
    let mk = |seed: u64, power: f64| PhaseProfile {
        workload_id: 1,
        workload: "w".into(),
        suite: "roco2".into(),
        threads: 24,
        freq_mhz: 2400,
        run_id: seed as u32,
        phase: "main".into(),
        start_ns: 0,
        end_ns: 1_000_000_000,
        power_avg: Some(power),
        voltage_avg: Some(1.0),
        counters: [("PAPI_TOT_CYC".to_string(), 1e9)].into_iter().collect(),
    };
    let merged = merge_runs(&[mk(0, 100.0), mk(1, 300.0)]).unwrap();
    assert_eq!(merged.len(), 1);
    assert!((merged[0].power_avg - 200.0).abs() < 1e-12);
}
