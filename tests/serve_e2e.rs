//! End-to-end serving test: train a model offline on the simulated
//! machine, load it into a live `pmc-serve` server on an ephemeral
//! port, stream >100 live phases over the wire, and check every online
//! estimate against the offline `predict_row` reference to 1e-9 W.
//! Also exercises the failure paths a real deployment hits: a
//! malformed frame and a mid-stream client disconnect.

use pmc_bench::{paper_machine, quick_dataset};
use pmc_cpusim::PhaseContext;
use pmc_events::PapiEvent;
use pmc_model::dataset::SampleRow;
use pmc_model::model::PowerModel;
use pmc_serve::protocol::{read_frame, unwrap_response};
use pmc_serve::registry::ModelRegistry;
use pmc_serve::server::{PowerServer, ServerConfig};
use pmc_serve::{CounterSample, EngineConfig, PowerClient};
use std::io::Write;
use std::net::TcpStream;
use std::sync::Arc;

/// Six paper-style events that fit one Haswell counter group: two
/// fixed riders plus four programmable counters.
fn servable_events() -> Vec<PapiEvent> {
    vec![
        PapiEvent::PRF_DM,
        PapiEvent::REF_CYC,
        PapiEvent::TOT_CYC,
        PapiEvent::STL_ICY,
        PapiEvent::TLB_IM,
        PapiEvent::FUL_CCY,
    ]
}

#[test]
fn train_serve_and_stream_live_phases() {
    // --- Offline: calibrate on the simulated machine ----------------
    let machine = paper_machine(6);
    let total_cores = machine.config().total_cores();
    let data = quick_dataset(&machine);
    let events = servable_events();
    let model = PowerModel::fit(&data, &events).expect("fit");

    // --- Serve on an ephemeral port ---------------------------------
    let config = ServerConfig {
        addr: "127.0.0.1:0".into(),
        workers: 2,
        queue_depth: 8,
        engine: EngineConfig {
            window: 8,
            total_cores,
            staleness_ns: 5_000_000_000,
        },
        ..ServerConfig::default()
    };
    let mut server = PowerServer::start(config, Arc::new(ModelRegistry::default())).unwrap();
    let mut client = PowerClient::connect(server.addr()).unwrap();
    assert_eq!(client.load_model("hsw-ep", &model, true).unwrap(), 1);

    // --- Stream live phases and check against the offline model -----
    let mut kernels = pmc_workloads::roco2::kernels();
    kernels.extend(pmc_workloads::roco2::extended_kernels());
    let freqs = [1200u32, 1600, 2000, 2400];
    let mut streamed = 0usize;
    let mut last_t = 0u64;
    for i in 0..120usize {
        let w = &kernels[i % kernels.len()];
        let phase = &w.phases(24)[0];
        let freq_mhz = freqs[i % freqs.len()];
        let obs = machine.observe(
            &phase.activity,
            &PhaseContext {
                workload_id: w.id,
                phase_id: 0,
                run_id: 5000 + i as u32, // live runs, noise unseen in training
                threads: 24,
                freq_mhz,
                duration_s: 0.25,
            },
        );
        last_t = (i as u64 + 1) * 250_000_000;
        let sample = CounterSample {
            time_ns: last_t,
            duration_s: obs.duration_s,
            freq_mhz,
            voltage: obs.voltage,
            deltas: events.iter().map(|e| obs.counters[e.index()]).collect(),
            missing: vec![],
        };
        let est = client.ingest(&sample).expect("ingest");

        // Offline reference: the same deltas through Dataset-style
        // normalization and PowerModel::predict_row.
        let avail = total_cores as f64 * freq_mhz as f64 * 1e6 * obs.duration_s;
        let rates: Vec<f64> = obs.counters.iter().map(|c| c / avail).collect();
        let row = SampleRow {
            workload_id: w.id,
            workload: w.name.to_string(),
            suite: "roco2".into(),
            phase: "live".into(),
            threads: 24,
            freq_mhz,
            duration_s: obs.duration_s,
            voltage: obs.voltage,
            power: obs.power_measured,
            rates,
        };
        let offline = model.predict_row(&row);
        assert!(
            (est.power_w - offline).abs() < 1e-9,
            "phase {i}: online {} vs offline {offline}",
            est.power_w
        );
        assert_eq!(est.version, 1);
        streamed += 1;
    }
    assert!(streamed >= 100, "streamed only {streamed} phases");

    // --- Estimate op, staleness, envelope ---------------------------
    let est = client.estimate(last_t).unwrap().expect("estimate");
    assert!(!est.stale);
    assert_eq!(est.samples_in_window, 8);
    let est = client.estimate(last_t + 10_000_000_000).unwrap().unwrap();
    assert!(
        est.stale,
        "estimate 10 s after the last sample must be stale"
    );

    // An operating point far outside the 1200–2400 MHz training span
    // must be flagged as extrapolation.
    let wild = CounterSample {
        time_ns: last_t + 1,
        duration_s: 0.25,
        freq_mhz: 2400,
        voltage: 2.0,
        deltas: vec![1e6; events.len()],
        missing: vec![],
    };
    assert!(client.ingest(&wild).unwrap().out_of_envelope);

    // --- Malformed frame: answered with an error, server survives ---
    {
        let mut raw = TcpStream::connect(server.addr()).unwrap();
        let garbage = b"\x01\x02this is not json";
        raw.write_all(&(garbage.len() as u32).to_be_bytes())
            .unwrap();
        raw.write_all(garbage).unwrap();
        let resp = read_frame(&mut raw).unwrap().expect("error frame");
        assert!(unwrap_response(resp).is_err());
    }

    // --- Mid-stream disconnect: server keeps serving others ---------
    {
        let mut doomed = PowerClient::connect(server.addr()).unwrap();
        let sample = CounterSample {
            time_ns: 1,
            duration_s: 0.25,
            freq_mhz: 2400,
            voltage: 1.0,
            deltas: vec![1e6; events.len()],
            missing: vec![],
        };
        doomed.ingest(&sample).unwrap();
        // Dropped here with a window still open on the server.
    }
    let stats = client.stats().unwrap();
    let server_stats = stats.field("server").unwrap();
    assert!(server_stats.u64_field("samples_ingested").unwrap() >= 120);
    assert!(server_stats.u64_field("frames_errored").unwrap() >= 1);

    server.shutdown();
}
