//! Chaos end-to-end: train on the simulated machine, serve the model
//! for real over TCP, and stream live phases whose observations pass
//! through a seeded fault injector exercising every observation-level
//! fault class. The service must never panic, must keep every estimate
//! finite, must label each degraded estimate with machine-readable
//! reasons, and — once the fault storm stops — must recover to within
//! 2 percentage points of the fault-free MAPE baseline.
//!
//! Seeded via `CHAOS_SEED` (default 6) so CI can run a fixed seed
//! matrix without code changes.

use pmc_cpusim::{Machine, MachineConfig, PhaseContext, PhaseObserver};
use pmc_events::PapiEvent;
use pmc_faults::{FaultRates, FaultyMachine};
use pmc_model::acquisition::{Campaign, ExperimentPlan};
use pmc_model::dataset::Dataset;
use pmc_model::model::PowerModel;
use pmc_serve::registry::ModelRegistry;
use pmc_serve::server::{PowerServer, ServerConfig};
use pmc_serve::{CounterSample, EngineConfig, PowerClient, RetryPolicy};
use pmc_workloads::Workload;
use std::sync::Arc;

const FAULT_RATE: f64 = 0.10;
const PHASES: usize = 120;

fn chaos_seed() -> u64 {
    std::env::var("CHAOS_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(6)
}

/// The six paper-style events that fit one Haswell counter group.
fn servable_events() -> Vec<PapiEvent> {
    vec![
        PapiEvent::PRF_DM,
        PapiEvent::REF_CYC,
        PapiEvent::TOT_CYC,
        PapiEvent::STL_ICY,
        PapiEvent::TLB_IM,
        PapiEvent::FUL_CCY,
    ]
}

fn all_kernels() -> Vec<Workload> {
    let mut kernels = pmc_workloads::roco2::kernels();
    kernels.extend(pmc_workloads::roco2::extended_kernels());
    kernels
}

/// Trains a servable model covering every kernel and streamed
/// frequency, so estimation error reflects faults, not extrapolation.
fn train(machine: &Machine) -> PowerModel {
    let set = pmc_workloads::WorkloadSet::from_workloads(all_kernels());
    let plan = ExperimentPlan::quick_plan(set, vec![1200, 1600, 2000, 2400]);
    let profiles = Campaign::new(machine, plan).run().expect("campaign");
    let data = Dataset::from_profiles(&profiles, machine.config().total_cores()).expect("dataset");
    PowerModel::fit(&data, &servable_events()).expect("fit")
}

/// The wire form of one (possibly corrupted) observation: non-finite
/// deltas are declared out-of-band in `missing` (NaN cannot cross a
/// JSON wire), a non-finite voltage readout degrades to 0.0.
fn to_sample(
    obs: &pmc_cpusim::PhaseObservation,
    events: &[PapiEvent],
    time_ns: u64,
    freq_mhz: u32,
) -> CounterSample {
    let mut deltas: Vec<f64> = events.iter().map(|e| obs.counters[e.index()]).collect();
    let mut missing = Vec::new();
    for (j, d) in deltas.iter_mut().enumerate() {
        if !d.is_finite() {
            *d = 0.0;
            missing.push(j);
        }
    }
    CounterSample {
        time_ns,
        duration_s: obs.duration_s,
        freq_mhz,
        voltage: if obs.voltage.is_finite() {
            obs.voltage
        } else {
            0.0
        },
        deltas,
        missing,
    }
}

fn phase_context(w: &Workload, run_id: u32, freq_mhz: u32) -> PhaseContext {
    PhaseContext {
        workload_id: w.id,
        phase_id: 0,
        run_id,
        threads: 24,
        freq_mhz,
        duration_s: 0.25,
    }
}

#[test]
fn service_survives_fault_storm_and_recovers() {
    let seed = chaos_seed();
    let machine = Machine::new(MachineConfig::haswell_ep(seed));
    let total_cores = machine.config().total_cores();
    let model = train(&machine);
    let events = servable_events();

    let config = ServerConfig {
        addr: "127.0.0.1:0".into(),
        engine: EngineConfig {
            window: 8,
            total_cores,
            staleness_ns: 5_000_000_000,
        },
        ..ServerConfig::default()
    };
    let mut server = PowerServer::start(config, Arc::new(ModelRegistry::default())).unwrap();

    let faulty = FaultyMachine::new(
        machine.clone(),
        seed ^ 0xfa17,
        FaultRates::uniform(FAULT_RATE),
    );
    let kernels = all_kernels();
    let freqs = [1200u32, 1600, 2000, 2400];
    let known_prefixes = [
        "stale_counter:",
        "no_history:",
        "saturated_counter:",
        "stale_voltage",
        "stale_model:",
    ];

    // --- Fault-free baseline on its own connection -------------------
    let mut baseline_client = PowerClient::connect(server.addr()).unwrap();
    assert_eq!(
        baseline_client.load_model("chaos", &model, true).unwrap(),
        1
    );
    let mut baseline_ape = Vec::new();
    for i in 0..PHASES {
        let w = &kernels[i % kernels.len()];
        let ctx = phase_context(w, 7000 + i as u32, freqs[i % freqs.len()]);
        let obs = machine.observe(&w.phases(24)[0].activity, &ctx);
        let sample = to_sample(&obs, &events, (i as u64 + 1) * 250_000_000, ctx.freq_mhz);
        let est = baseline_client.ingest(&sample).expect("baseline ingest");
        assert!(est.power_w.is_finite());
        assert!(
            !est.degraded,
            "clean stream degraded: {:?}",
            est.degraded_reasons
        );
        baseline_ape.push((est.power_w - obs.power_measured).abs() / obs.power_measured);
    }

    // --- The storm: same phases, corrupted observations --------------
    let mut client = PowerClient::connect(server.addr())
        .unwrap()
        .with_retry(RetryPolicy::default());
    let mut degraded = 0usize;
    let mut tail_ape = Vec::new();
    for i in 0..2 * PHASES {
        let storming = i < PHASES;
        let w = &kernels[i % kernels.len()];
        let ctx = phase_context(w, 7000 + (i % PHASES) as u32, freqs[i % freqs.len()]);
        let activity = &w.phases(24)[0].activity;
        let clean = machine.observe(activity, &ctx);
        let obs = if storming {
            PhaseObserver::observe(&faulty, activity, &ctx)
        } else {
            clean.clone()
        };
        let sample = to_sample(&obs, &events, (i as u64 + 1) * 250_000_000, ctx.freq_mhz);
        let est = client.ingest(&sample).expect("storm ingest");

        // Liveness and finiteness under every fault class.
        assert!(
            est.power_w.is_finite(),
            "non-finite estimate at phase {i}: {est:?}"
        );
        // Degraded estimates must say why, in machine-readable tokens.
        if est.degraded {
            degraded += 1;
            assert!(
                !est.degraded_reasons.is_empty(),
                "degraded without reasons at phase {i}"
            );
            for reason in &est.degraded_reasons {
                assert!(
                    known_prefixes.iter().any(|p| reason.starts_with(p)),
                    "unrecognized degradation reason {reason:?} at phase {i}"
                );
            }
        } else {
            assert!(
                est.degraded_reasons.is_empty(),
                "reasons without degraded flag at phase {i}"
            );
        }
        if !storming {
            tail_ape.push((est.power_w - clean.power_measured).abs() / clean.power_measured);
        }
    }

    // The storm actually happened and was visible to the engine.
    assert!(faulty.injector().log().total() > 0);
    assert!(
        degraded > 0,
        "a 10% fault storm over {PHASES} phases produced no degraded estimates"
    );

    // --- Recovery: post-fault accuracy within 2 pp of baseline -------
    let mape = |v: &[f64]| 100.0 * v.iter().sum::<f64>() / v.len() as f64;
    let (base, tail) = (mape(&baseline_ape), mape(&tail_ape));
    assert!(
        (tail - base).abs() <= 2.0,
        "post-fault MAPE {tail:.2}% strayed more than 2 pp from fault-free baseline {base:.2}%"
    );

    // The server kept precise books on the degradation it served.
    let stats = client.stats().unwrap();
    let served = stats
        .field("server")
        .unwrap()
        .u64_field("degraded_estimates")
        .unwrap();
    assert!(
        served >= degraded as u64,
        "server counted {served} degraded estimates, client saw {degraded}"
    );

    server.shutdown();
}
