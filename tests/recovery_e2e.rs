//! Crash containment and durable hot restart, end to end.
//!
//! Drives the supervised worker pool, the health surface, and engine
//! checkpoint/replay through the public API with deterministic fault
//! injection ([`pmc_faults::ServeFaults`]):
//!
//! - an injected worker panic answers exactly one client with a typed
//!   `internal_error` frame while its siblings complete, and the
//!   supervisor respawns the slot;
//! - a deterministic crasher trips flap detection, and `readyz`
//!   (answered inline by the core, so it works with zero live
//!   workers) reports the retired slot;
//! - a stalled job is flagged by the stuck-worker watchdog while
//!   liveness probes keep answering;
//! - `resume TOKEN` binds a durable identity that survives
//!   reconnects, and a drain-time checkpoint carries it across a full
//!   server restart with estimates matching an uninterrupted run;
//! - a torn checkpoint write is quarantined on the next boot and the
//!   server cold-starts instead of refusing to serve.
//!
//! Seeded via `RECOVERY_SEED` (default 1) so CI can sweep a matrix:
//! the seed moves which job the panic lands on, the resume tokens,
//! and where the interrupted run splits its stream.

use pmc_events::PapiEvent;
use pmc_faults::ServeFaults;
use pmc_model::dataset::{Dataset, SampleRow};
use pmc_model::model::PowerModel;
use pmc_serve::registry::ModelRegistry;
use pmc_serve::server::{PowerServer, ServerConfig};
use pmc_serve::{CounterSample, EngineConfig, ModelArtifact, PowerClient, ServeError};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn recovery_seed() -> u64 {
    std::env::var("RECOVERY_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(1)
}

/// A deterministic synthetic dataset whose power is exactly linear in
/// three event rates — well-posed fits, machine-epsilon reproducible.
fn tiny_dataset(n: usize) -> Dataset {
    let mut rows = Vec::with_capacity(n);
    for i in 0..n {
        let freq_mhz = [1200u32, 1600, 2000, 2400, 2600][i % 5];
        let f = freq_mhz as f64 / 1000.0;
        let v = 0.492857 + 0.214286 * f;
        let mut rates: Vec<f64> = (0..PapiEvent::COUNT)
            .map(|j| ((31 * i + 17 * j + i * i * (j + 3)) % 97) as f64 / 9700.0)
            .collect();
        rates[PapiEvent::PRF_DM.index()] = 0.001 + 0.00002 * (i as f64);
        rates[PapiEvent::TOT_CYC.index()] = 0.2 + 0.01 * ((i * 7 % 13) as f64);
        rates[PapiEvent::TLB_IM.index()] = 0.0005 + 0.00001 * ((i * 5 % 11) as f64);
        let v2f = v * v * f;
        let power = 5000.0 * rates[PapiEvent::PRF_DM.index()] * v2f
            + 120.0 * rates[PapiEvent::TOT_CYC.index()] * v2f
            + 900.0 * rates[PapiEvent::TLB_IM.index()] * v2f
            + 20.0 * v2f
            + 40.0 * v
            + 70.0;
        rows.push(SampleRow {
            workload_id: (i % 8) as u32,
            workload: format!("w{}", i % 8),
            suite: "roco2".into(),
            phase: "main".into(),
            threads: 24,
            freq_mhz,
            duration_s: 1.0,
            voltage: v,
            power,
            rates,
        });
    }
    Dataset::from_rows(rows)
}

fn tiny_events() -> Vec<PapiEvent> {
    vec![PapiEvent::PRF_DM, PapiEvent::TOT_CYC, PapiEvent::TLB_IM]
}

fn tiny_model() -> PowerModel {
    PowerModel::fit(&tiny_dataset(40), &tiny_events()).expect("well-posed synthetic fit")
}

/// Builds the `i`-th live counter sample from a training row, with a
/// strictly increasing timestamp.
fn sample_for(model: &PowerModel, data: &Dataset, i: usize) -> CounterSample {
    let row = &data.rows()[i % data.rows().len()];
    let avail = 24.0 * row.freq_mhz as f64 * 1e6 * row.duration_s;
    CounterSample {
        time_ns: (i as u64 + 1) * 250_000_000,
        duration_s: row.duration_s,
        freq_mhz: row.freq_mhz,
        voltage: row.voltage,
        deltas: model.events.iter().map(|e| row.rate(*e) * avail).collect(),
        missing: vec![],
    }
}

fn base_config() -> ServerConfig {
    ServerConfig {
        addr: "127.0.0.1:0".into(),
        engine: EngineConfig {
            window: 8,
            total_cores: 24,
            staleness_ns: 5_000_000_000,
        },
        ..ServerConfig::default()
    }
}

/// Polls a counter until it reaches `want` or the deadline passes.
fn wait_for(counter: &AtomicU64, want: u64, timeout: Duration) -> bool {
    let start = Instant::now();
    while start.elapsed() < timeout {
        if counter.load(Ordering::Relaxed) >= want {
            return true;
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    counter.load(Ordering::Relaxed) >= want
}

#[test]
fn worker_panic_answers_one_typed_error_and_pool_respawns() {
    let seed = recovery_seed();
    // The seed moves the landmine: any of the first three jobs.
    let victim_job = 1 + (seed % 3);
    let faults = Arc::new(ServeFaults::new().panic_on_job(victim_job));
    let config = ServerConfig {
        workers: 2,
        respawn_backoff: Duration::from_millis(1),
        faults: Some(Arc::clone(&faults)),
        ..base_config()
    };
    let mut server = PowerServer::start(config, Arc::new(ModelRegistry::default())).unwrap();
    let mut clients: Vec<PowerClient> = (0..3)
        .map(|_| PowerClient::connect(server.addr()).unwrap())
        .collect();

    // Requests are issued one at a time, so job sequence numbers are
    // deterministic: exactly the victim job's client sees the typed
    // internal error, with its connection still open.
    let mut internal = 0usize;
    let mut served = 0usize;
    for c in clients.iter_mut() {
        match c.ping(0) {
            Ok(_) => served += 1,
            Err(ServeError::Internal { reason }) => {
                assert!(reason.contains("panic"), "reason: {reason}");
                internal += 1;
            }
            Err(other) => panic!("expected pong or internal_error, got {other}"),
        }
    }
    assert_eq!(internal, 1, "exactly one client sees the panic");
    assert_eq!(served, 2, "siblings complete normally");
    assert_eq!(faults.panics_fired(), 1);
    assert_eq!(server.stats().worker_panics.load(Ordering::Relaxed), 1);

    // The supervisor respawns the slot and the pool keeps serving —
    // every connection (including the victim's) still round-trips.
    assert!(
        wait_for(&server.stats().worker_respawns, 1, Duration::from_secs(5)),
        "supervisor never respawned the panicked worker"
    );
    let before = server.stats().frames_received.load(Ordering::Relaxed);
    for c in clients.iter_mut() {
        c.ping(0).unwrap();
    }
    assert!(server.stats().frames_received.load(Ordering::Relaxed) >= before + 3);
    assert_eq!(
        server.stats().supervisor_flapping.load(Ordering::Relaxed),
        0
    );
    server.shutdown();
}

#[test]
fn deterministic_crasher_trips_flap_detection_and_readyz_reports_it() {
    let faults = Arc::new(ServeFaults::new().panic_from_job(1));
    let config = ServerConfig {
        workers: 1,
        flap_cap: 2,
        respawn_backoff: Duration::from_millis(1),
        faults: Some(Arc::clone(&faults)),
        ..base_config()
    };
    let mut server = PowerServer::start(config, Arc::new(ModelRegistry::default())).unwrap();
    let mut c = PowerClient::connect(server.addr()).unwrap();

    // Every worker-path request kills its worker; the first flap_cap
    // deaths are answered (the dying worker answers in-protocol before
    // retiring), then the slot is permanently retired.
    for attempt in 0..2 {
        match c.ping(0) {
            Err(ServeError::Internal { .. }) => {}
            other => panic!("attempt {attempt}: expected internal_error, got {other:?}"),
        }
    }
    assert!(
        wait_for(
            &server.stats().supervisor_flapping,
            1,
            Duration::from_secs(5)
        ),
        "flap detection never tripped"
    );

    // Liveness and readiness stay answerable with ZERO live workers:
    // both are served inline by the core thread.
    let h = c.healthz().unwrap();
    assert!(h.field("alive").unwrap().as_bool().unwrap());
    let r = c.readyz().unwrap();
    assert!(!r.field("ready").unwrap().as_bool().unwrap());
    let reasons = format!("{r}");
    assert!(reasons.contains("flapping"), "readyz: {r}");
    assert_eq!(server.stats().worker_panics.load(Ordering::Relaxed), 2);
    server.shutdown();
}

#[test]
fn stuck_worker_watchdog_flags_wedged_jobs_while_probes_answer() {
    let faults = Arc::new(ServeFaults::new().stall_on_job(1, Duration::from_millis(800)));
    let config = ServerConfig {
        workers: 1,
        stuck_job_bound: Duration::from_millis(50),
        faults: Some(Arc::clone(&faults)),
        ..base_config()
    };
    let mut server = PowerServer::start(config, Arc::new(ModelRegistry::default())).unwrap();

    // Wedge the only worker from a sacrificial connection…
    let addr = server.addr();
    let wedged = std::thread::spawn(move || {
        let mut c = PowerClient::connect(addr).unwrap();
        c.ping(0).unwrap()
    });

    // …and watch the health surface from another. The watchdog must
    // flag the stuck slot while healthz keeps answering promptly.
    let mut probe = PowerClient::connect(server.addr()).unwrap();
    assert!(
        wait_for(&server.stats().workers_stuck, 1, Duration::from_secs(5)),
        "watchdog never flagged the wedged worker"
    );
    let t0 = Instant::now();
    let h = probe.healthz().unwrap();
    assert!(
        t0.elapsed() < Duration::from_millis(500),
        "liveness probe lagged"
    );
    assert!(h.field("alive").unwrap().as_bool().unwrap());
    let r = probe.readyz().unwrap();
    assert!(!r.field("ready").unwrap().as_bool().unwrap());
    assert!(r.u64_field("stuck_workers").unwrap() >= 1, "readyz: {r}");

    // The stall ends, the job completes, and the gauge clears.
    wedged.join().unwrap();
    assert!(
        {
            let start = Instant::now();
            loop {
                if server.stats().workers_stuck.load(Ordering::Relaxed) == 0 {
                    break true;
                }
                if start.elapsed() > Duration::from_secs(5) {
                    break false;
                }
                std::thread::sleep(Duration::from_millis(5));
            }
        },
        "stuck gauge never cleared after the stall ended"
    );
    assert_eq!(faults.stalls_fired(), 1);
    server.shutdown();
}

#[test]
fn resume_binds_a_durable_identity_across_reconnects() {
    let seed = recovery_seed();
    let token = format!("sensor-{seed}");
    let model = tiny_model();
    let data = tiny_dataset(24);
    let registry = Arc::new(ModelRegistry::default());
    registry
        .load_and_activate(ModelArtifact::new("hsw", tiny_model()))
        .unwrap();
    let mut server = PowerServer::start(base_config(), registry).unwrap();

    let mut c1 = PowerClient::connect(server.addr()).unwrap();
    assert!(!c1.resume(&token).unwrap(), "no prior state for the token");
    let mut last = None;
    for i in 0..6 {
        last = Some(c1.ingest(&sample_for(&model, &data, i)).unwrap());
    }
    let last = last.unwrap();
    drop(c1);

    // A fresh connection has no state of its own, but resuming the
    // token finds the window warm — bitwise the same latest estimate.
    let mut c2 = PowerClient::connect(server.addr()).unwrap();
    assert!(c2.estimate(last.time_ns).unwrap().is_none());
    assert!(c2.resume(&token).unwrap(), "token state must survive");
    let warm = c2.estimate(last.time_ns).unwrap().expect("warm window");
    assert_eq!(warm.power_w.to_bits(), last.power_w.to_bits());
    assert_eq!(warm.samples_in_window, last.samples_in_window);
    assert!(server.stats().resumed_clients.load(Ordering::Relaxed) >= 2);
    server.shutdown();
}

#[test]
fn drain_checkpoint_restores_warm_windows_matching_uninterrupted_run() {
    let seed = recovery_seed();
    let token = format!("rack-{seed}");
    let split = 8 + (seed % 5) as usize; // where the "crash" lands
    let total = 20usize;
    let model = tiny_model();
    let data = tiny_dataset(24);
    let dir = std::env::temp_dir().join(format!("pmc-recovery-{}-{seed}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let ck = dir.join("engine.ckpt");

    let registry_for = || {
        let r = Arc::new(ModelRegistry::default());
        r.load_and_activate(ModelArtifact::new("hsw", tiny_model()))
            .unwrap();
        r
    };
    let ck_config = || ServerConfig {
        checkpoint_path: Some(ck.clone()),
        checkpoint_interval: Duration::ZERO, // drain/explicit only
        ..base_config()
    };

    // Uninterrupted reference: one server sees the whole stream.
    let mut reference = None;
    {
        let mut server = PowerServer::start(base_config(), registry_for()).unwrap();
        let mut c = PowerClient::connect(server.addr()).unwrap();
        c.resume(&token).unwrap();
        for i in 0..total {
            reference = Some(c.ingest(&sample_for(&model, &data, i)).unwrap());
        }
        server.shutdown();
    }
    let reference = reference.unwrap();

    // Interrupted run: stream the head, drain (which checkpoints),
    // restart against the same file, resume, stream the tail.
    {
        let mut server = PowerServer::start(ck_config(), registry_for()).unwrap();
        assert!(server.checkpoint_restore().is_none(), "no file yet");
        let mut c = PowerClient::connect(server.addr()).unwrap();
        c.resume(&token).unwrap();
        for i in 0..split {
            c.ingest(&sample_for(&model, &data, i)).unwrap();
        }
        server.shutdown();
        assert!(
            server.stats().checkpoints_written.load(Ordering::Relaxed) >= 1,
            "drain must write a final checkpoint"
        );
    }
    let mut resumed = None;
    {
        let mut server = PowerServer::start(ck_config(), registry_for()).unwrap();
        match server.checkpoint_restore() {
            Some(pmc_serve::CheckpointRestore::Restored { clients, .. }) => {
                assert_eq!(*clients, 1, "one durable window checkpointed")
            }
            other => panic!("expected a restored checkpoint, got {other:?}"),
        }
        let mut c = PowerClient::connect(server.addr()).unwrap();
        assert!(c.resume(&token).unwrap(), "restored window must be warm");
        for i in split..total {
            resumed = Some(c.ingest(&sample_for(&model, &data, i)).unwrap());
        }
        server.shutdown();
    }
    let resumed = resumed.unwrap();

    // The sliding window converged over the shared tail: the restart
    // must be invisible — bitwise, which is far inside the 2-point
    // MAPE budget the acceptance bar asks for.
    let mape_pp = 100.0 * (resumed.power_w - reference.power_w).abs() / reference.power_w;
    assert!(mape_pp <= 2.0, "restart drifted {mape_pp:.4} pp");
    assert_eq!(resumed.power_w.to_bits(), reference.power_w.to_bits());
    assert_eq!(resumed.samples_in_window, reference.samples_in_window);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn torn_checkpoint_write_is_quarantined_and_server_cold_starts() {
    let token = "torn-client";
    let model = tiny_model();
    let data = tiny_dataset(24);
    let dir = std::env::temp_dir().join(format!("pmc-torn-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let ck = dir.join("engine.ckpt");

    // First life: a clean explicit checkpoint, then a drain-time write
    // torn mid-file (attempt 2) — as a crash between write and rename
    // would leave it.
    let faults = Arc::new(ServeFaults::new().tear_checkpoint(2));
    {
        let registry = Arc::new(ModelRegistry::default());
        registry
            .load_and_activate(ModelArtifact::new("hsw", tiny_model()))
            .unwrap();
        let config = ServerConfig {
            checkpoint_path: Some(ck.clone()),
            checkpoint_interval: Duration::ZERO,
            faults: Some(Arc::clone(&faults)),
            ..base_config()
        };
        let mut server = PowerServer::start(config, registry).unwrap();
        let mut c = PowerClient::connect(server.addr()).unwrap();
        c.resume(token).unwrap();
        for i in 0..4 {
            c.ingest(&sample_for(&model, &data, i)).unwrap();
        }
        assert_eq!(c.checkpoint_now().unwrap(), 1);
        server.shutdown(); // the torn write fires here
        assert_eq!(faults.tears_fired(), 1);
        assert_eq!(
            server
                .stats()
                .checkpoint_write_failures
                .load(Ordering::Relaxed),
            1
        );
    }

    // Second life: the torn file is detected, quarantined to
    // `<path>.corrupt`, and the server boots cold — it serves, it
    // just has no warm window for the token.
    {
        let registry = Arc::new(ModelRegistry::default());
        registry
            .load_and_activate(ModelArtifact::new("hsw", tiny_model()))
            .unwrap();
        let config = ServerConfig {
            checkpoint_path: Some(ck.clone()),
            checkpoint_interval: Duration::ZERO,
            ..base_config()
        };
        let mut server = PowerServer::start(config, registry).unwrap();
        match server.checkpoint_restore() {
            Some(pmc_serve::CheckpointRestore::Quarantined {
                reason,
                quarantined_to,
            }) => {
                assert!(reason.contains("CRC"), "reason: {reason}");
                let moved = quarantined_to.as_ref().expect("rename should succeed");
                assert!(moved.exists(), "quarantined file missing: {moved:?}");
            }
            other => panic!("expected quarantine, got {other:?}"),
        }
        assert!(!ck.exists(), "torn file must be moved aside");
        assert_eq!(
            server
                .stats()
                .checkpoints_quarantined
                .load(Ordering::Relaxed),
            1
        );
        let mut c = PowerClient::connect(server.addr()).unwrap();
        assert!(!c.resume(token).unwrap(), "cold start: nothing restored");
        c.ingest(&sample_for(&model, &data, 0)).unwrap();
        server.shutdown();
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn health_surface_distinguishes_liveness_from_readiness() {
    let mut server = PowerServer::start(base_config(), Arc::new(ModelRegistry::default())).unwrap();
    let mut c = PowerClient::connect(server.addr()).unwrap();

    // Alive from the first instant; not ready until a model serves.
    assert!(c
        .healthz()
        .unwrap()
        .field("alive")
        .unwrap()
        .as_bool()
        .unwrap());
    let r = c.readyz().unwrap();
    assert!(!r.field("ready").unwrap().as_bool().unwrap());
    assert!(format!("{r}").contains("no active model"), "readyz: {r}");

    c.load_model("hsw", &tiny_model(), true).unwrap();
    let r = c.readyz().unwrap();
    assert!(r.field("ready").unwrap().as_bool().unwrap());
    assert_eq!(
        r.field("active_model").unwrap().str_field("name").unwrap(),
        "hsw"
    );

    // The Prometheus scrape exposes the crash-containment counters.
    let scrape = c.metrics().unwrap();
    for needle in [
        "# TYPE pmc_serve_worker_panics counter",
        "# TYPE pmc_serve_checkpoints_written counter",
        "# TYPE pmc_serve_workers_stuck gauge",
        "pmc_serve_frames_received",
        "pmc_serve_batch_fill_bucket{le=\"+Inf\"}",
    ] {
        assert!(
            scrape.contains(needle),
            "metrics missing {needle}:\n{scrape}"
        );
    }
    server.shutdown();
}
