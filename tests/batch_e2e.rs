//! End-to-end tests for the coalescing batch scheduler in `pmc-serve`:
//! a burst of concurrent ingests must be answered through *fewer*
//! batched dispatches than requests, pipelined requests on one
//! connection must come back in request order, requests that outlive
//! the queue deadline must be shed with a typed `overloaded` frame
//! before they ever join a batch, and one bad row in a coalesced batch
//! must degrade only its own request.

use pmc_serve::protocol::{read_frame, unwrap_response, write_frame, Request};
use pmc_serve::registry::ModelRegistry;
use pmc_serve::server::{PowerServer, ServerConfig};
use pmc_serve::{CounterSample, Estimate, PowerClient, ServeError};
use std::net::TcpStream;
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::Duration;

/// A tiny servable model fit on a synthetic linear dataset, same
/// recipe as the overload e2e suite.
fn tiny_model() -> pmc_model::model::PowerModel {
    let events = vec![
        pmc_events::PapiEvent::PRF_DM,
        pmc_events::PapiEvent::TOT_CYC,
    ];
    let rows: Vec<_> = (0..24)
        .map(|i| pmc_model::dataset::SampleRow {
            workload_id: i as u32,
            workload: format!("w{i}"),
            suite: "syn".into(),
            phase: "main".into(),
            threads: 24,
            freq_mhz: [1200, 1600, 2000, 2400][i % 4],
            duration_s: 1.0,
            voltage: 0.8 + 0.05 * (i % 4) as f64,
            power: 70.0 + 3.0 * (i as f64),
            rates: (0..pmc_events::PapiEvent::COUNT)
                .map(|j| ((i * 13 + j * 7) % 41) as f64 / 4100.0)
                .collect(),
        })
        .collect();
    let data = pmc_model::dataset::Dataset::from_rows(rows);
    pmc_model::model::PowerModel::fit(&data, &events).unwrap()
}

/// A well-formed two-event sample; `k` varies the counter deltas so
/// successive samples are distinguishable.
fn sample(time_ns: u64, k: u64) -> CounterSample {
    let freq_mhz = 2000u32;
    let duration_s = 0.25;
    let avail = 24.0 * freq_mhz as f64 * 1e6 * duration_s;
    CounterSample {
        time_ns,
        duration_s,
        freq_mhz,
        voltage: 0.85,
        deltas: vec![
            (0.001 + 0.0001 * (k % 7) as f64) * avail,
            (0.4 + 0.01 * (k % 5) as f64) * avail,
        ],
        missing: vec![],
    }
}

#[test]
fn burst_of_ingests_coalesces_into_fewer_dispatches() {
    const CLIENTS: usize = 64;
    let cfg = ServerConfig {
        // One worker so the ping below holds the whole pool while the
        // burst queues up behind it.
        workers: 1,
        queue_depth: CLIENTS + 2,
        max_inflight: CLIENTS + 2,
        max_connections: CLIENTS + 8,
        queue_deadline: Some(Duration::from_secs(10)),
        batch_max: 32,
        ..ServerConfig::default()
    };
    let mut server = PowerServer::start(cfg, Arc::new(ModelRegistry::default())).unwrap();
    let addr = server.addr();
    let mut admin = PowerClient::connect(addr).unwrap();
    admin.load_model("hsw", &tiny_model(), true).unwrap();

    // Occupy the only worker, then land the burst in its queue.
    let mut holder = TcpStream::connect(addr).unwrap();
    write_frame(
        &mut holder,
        &Request::Ping { delay_ms: 200 }.to_json_value(),
    )
    .unwrap();
    std::thread::sleep(Duration::from_millis(50)); // ping is in flight

    let handles: Vec<_> = (0..CLIENTS)
        .map(|i| {
            std::thread::spawn(move || {
                let mut c = PowerClient::connect(addr).unwrap();
                c.ingest(&sample(1_000_000 * (i as u64 + 1), i as u64))
            })
        })
        .collect();
    for h in handles {
        let est = h.join().expect("ingest client panicked").unwrap();
        assert!(est.power_w.is_finite());
    }
    let _ = read_frame(&mut holder); // collect the pong

    let stats = server.stats();
    let dispatched = stats.batches_dispatched.load(Ordering::Relaxed);
    let batched = stats.batched_requests.load(Ordering::Relaxed);
    assert_eq!(batched, CLIENTS as u64, "every ingest rides the batch path");
    assert!(
        dispatched < batched,
        "64 queued ingests must coalesce ({dispatched} dispatches for {batched} requests)"
    );
    assert_eq!(stats.requests_shed.load(Ordering::Relaxed), 0);
    server.shutdown();
}

#[test]
fn pipelined_requests_on_one_connection_answer_in_order() {
    const DEPTH: u64 = 12;
    let cfg = ServerConfig {
        workers: 2,
        batch_max: 8,
        batch_linger: Duration::from_micros(300),
        ..ServerConfig::default()
    };
    let mut server = PowerServer::start(cfg, Arc::new(ModelRegistry::default())).unwrap();
    let mut admin = PowerClient::connect(server.addr()).unwrap();
    admin.load_model("hsw", &tiny_model(), true).unwrap();

    // Write all frames before reading anything back: the echoed
    // `time_ns` values prove responses arrive in request order even
    // when the server coalesces.
    let mut c = TcpStream::connect(server.addr()).unwrap();
    for i in 1..=DEPTH {
        write_frame(&mut c, &Request::Ingest(sample(i, i)).to_json_value()).unwrap();
    }
    for i in 1..=DEPTH {
        let frame = read_frame(&mut c).unwrap().expect("server closed early");
        let est = Estimate::from_json_value(&unwrap_response(frame).unwrap()).unwrap();
        assert_eq!(est.time_ns, i, "response {i} out of order");
        assert_eq!(est.samples_in_window as u64, i.min(8));
    }
    server.shutdown();
}

#[test]
fn stale_requests_are_shed_with_typed_overload_not_batched() {
    let cfg = ServerConfig {
        workers: 1,
        queue_depth: 16,
        max_inflight: 16,
        queue_deadline: Some(Duration::from_millis(30)),
        batch_max: 32,
        ..ServerConfig::default()
    };
    let mut server = PowerServer::start(cfg, Arc::new(ModelRegistry::default())).unwrap();
    let addr = server.addr();
    let mut admin = PowerClient::connect(addr).unwrap();
    admin.load_model("hsw", &tiny_model(), true).unwrap();

    // Hold the lone worker well past the queue deadline while ingests
    // pile up behind it.
    let mut holder = TcpStream::connect(addr).unwrap();
    write_frame(
        &mut holder,
        &Request::Ping { delay_ms: 150 }.to_json_value(),
    )
    .unwrap();
    std::thread::sleep(Duration::from_millis(40));

    let handles: Vec<_> = (0..6u64)
        .map(|i| {
            std::thread::spawn(move || {
                let mut c = PowerClient::connect(addr).unwrap();
                c.ingest(&sample(i + 1, i))
            })
        })
        .collect();
    let mut shed = 0usize;
    for h in handles {
        match h.join().expect("client panicked") {
            Ok(est) => assert!(est.power_w.is_finite()),
            Err(ServeError::Overloaded { retry_after_ms }) => {
                assert!(retry_after_ms > 0, "shed must carry a backoff hint");
                shed += 1;
            }
            Err(other) => panic!("expected typed overload, got {other}"),
        }
    }
    let _ = read_frame(&mut holder);

    let stats = server.stats();
    assert!(shed >= 1, "deadline-expired requests must be shed");
    assert_eq!(stats.requests_shed.load(Ordering::Relaxed), shed as u64);
    // Shed requests never entered a batch: the batch path saw exactly
    // the requests that were answered with an estimate.
    assert_eq!(
        stats.batched_requests.load(Ordering::Relaxed),
        6 - shed as u64
    );
    server.shutdown();
}

#[test]
fn one_bad_row_in_a_coalesced_batch_degrades_only_itself() {
    const NEIGHBORS: usize = 4;
    let cfg = ServerConfig {
        workers: 1,
        queue_depth: 16,
        max_inflight: 16,
        batch_max: 16,
        ..ServerConfig::default()
    };
    let mut server = PowerServer::start(cfg, Arc::new(ModelRegistry::default())).unwrap();
    let addr = server.addr();
    let mut admin = PowerClient::connect(addr).unwrap();
    admin.load_model("hsw", &tiny_model(), true).unwrap();

    // Queue the whole group behind a held worker so they coalesce into
    // one batch: NEIGHBORS clean rows plus one with an unreadable
    // counter (declared missing, no history to substitute from).
    let mut holder = TcpStream::connect(addr).unwrap();
    write_frame(
        &mut holder,
        &Request::Ping { delay_ms: 120 }.to_json_value(),
    )
    .unwrap();
    std::thread::sleep(Duration::from_millis(30));

    let bad = std::thread::spawn(move || {
        let mut c = PowerClient::connect(addr).unwrap();
        let mut s = sample(99, 0);
        s.missing = vec![0];
        c.ingest(&s)
    });
    let neighbors: Vec<_> = (0..NEIGHBORS as u64)
        .map(|i| {
            std::thread::spawn(move || {
                let mut c = PowerClient::connect(addr).unwrap();
                c.ingest(&sample(i + 1, i))
            })
        })
        .collect();

    let bad_est = bad.join().unwrap().expect("bad row still gets an estimate");
    assert!(bad_est.degraded, "unreadable counter must flag degradation");
    assert!(
        bad_est
            .degraded_reasons
            .iter()
            .any(|r| r.starts_with("no_history:")),
        "degradation reason must be machine-readable, got {:?}",
        bad_est.degraded_reasons
    );
    for h in neighbors {
        let est = h.join().unwrap().unwrap();
        assert!(!est.degraded, "a neighbor inherited the bad row's fault");
        assert!(est.degraded_reasons.is_empty());
    }
    let _ = read_frame(&mut holder);

    let stats = server.stats();
    assert_eq!(stats.degraded_estimates.load(Ordering::Relaxed), 1);
    assert_eq!(
        stats.batched_requests.load(Ordering::Relaxed),
        NEIGHBORS as u64 + 1
    );
    server.shutdown();
}
