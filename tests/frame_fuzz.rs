//! Malformed-frame hardening: a hostile or broken peer must never
//! crash a worker or desynchronize the server.
//!
//! Talks to a live [`pmc_serve::PowerServer`] over raw TCP, below the
//! client library, so it can send what no well-behaved client would:
//! zero-length payloads, length prefixes past the frame cap, payloads
//! that are not UTF-8, JSON nested past the parser's depth bound, a
//! valid frame dribbled in at every possible byte boundary, and a
//! seeded corpus of random garbage. Every case must be answered with a
//! typed error frame (or a clean close for desynchronizing prefixes),
//! the connection must stay usable whenever the stream is still in
//! sync, and `worker_panics` must stay zero throughout.
//!
//! Seeded via `FUZZ_SEED` (default 1) so CI can sweep a matrix.
//!
//! The binary half: hostile `PMCB1` payloads (truncations, wrong
//! tags, non-finite bit patterns, lying container counts, trailing
//! bytes, mid-frame splits) must produce typed errors without
//! desynchronizing the stream, `hello` negotiation must enforce its
//! edge rules, and a JSON client and a binary client relayed through
//! `pmc-router` must see byte-identical responses to direct
//! connections.

use pmc_serve::protocol::{decode_binary_payload, encode_frame_as, Encoding, Request};
use pmc_serve::registry::ModelRegistry;
use pmc_serve::server::{PowerServer, ServerConfig};
use std::io::{ErrorKind, Read, Write};
use std::net::TcpStream;
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::Duration;

fn fuzz_seed() -> u64 {
    std::env::var("FUZZ_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(1)
}

/// splitmix64 — tiny, seedable, and good enough to fuzz with.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

fn start_server() -> PowerServer {
    PowerServer::start(ServerConfig::default(), Arc::new(ModelRegistry::default())).unwrap()
}

fn connect(server: &PowerServer) -> TcpStream {
    let s = TcpStream::connect(server.addr()).unwrap();
    // A wedge is a test failure, not a hang.
    s.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    s
}

/// Encodes one wire frame: 4-byte big-endian length prefix + payload.
fn frame(payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(4 + payload.len());
    out.extend_from_slice(&(payload.len() as u32).to_be_bytes());
    out.extend_from_slice(payload);
    out
}

/// Reads one response frame; `None` on clean EOF.
fn read_frame(stream: &mut TcpStream) -> Option<Vec<u8>> {
    let mut prefix = [0u8; 4];
    let mut got = 0;
    while got < 4 {
        match stream.read(&mut prefix[got..]) {
            Ok(0) if got == 0 => return None,
            Ok(0) => panic!("EOF inside a length prefix"),
            Ok(n) => got += n,
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(e) => panic!("read failed: {e}"),
        }
    }
    let len = u32::from_be_bytes(prefix) as usize;
    let mut payload = vec![0u8; len];
    stream.read_exact(&mut payload).unwrap();
    Some(payload)
}

/// Reads one frame and asserts it is a typed error-status response.
fn expect_error_frame(stream: &mut TcpStream) -> String {
    let payload = read_frame(stream).expect("server must answer, not hang up");
    let text = String::from_utf8(payload).expect("server frames are UTF-8");
    assert!(
        text.contains("\"status\":\"error\"") || text.contains("\"status\": \"error\""),
        "expected a typed error frame, got: {text}"
    );
    text
}

/// Round-trips a ping on an already-open raw connection.
fn ping_works(stream: &mut TcpStream) {
    stream
        .write_all(&frame(br#"{"op":"ping","delay_ms":0}"#))
        .unwrap();
    let payload = read_frame(stream).expect("ping must be answered");
    let text = String::from_utf8(payload).unwrap();
    assert!(text.contains("\"slept_ms\""), "bad pong: {text}");
}

#[test]
fn zero_length_payload_gets_typed_error_and_conn_survives() {
    let mut server = start_server();
    let mut s = connect(&server);
    s.write_all(&frame(b"")).unwrap();
    expect_error_frame(&mut s);
    ping_works(&mut s);
    assert_eq!(server.stats().worker_panics.load(Ordering::Relaxed), 0);
    server.shutdown();
}

#[test]
fn oversized_length_prefix_is_answered_then_closed() {
    let mut server = start_server();
    let mut s = connect(&server);
    // One byte past the cap: the prefix itself is hostile — nothing
    // after it can be trusted, so the server answers and hangs up.
    let over = (pmc_serve::protocol::MAX_FRAME_BYTES + 1).to_be_bytes();
    s.write_all(&over).unwrap();
    let text = expect_error_frame(&mut s);
    assert!(text.contains("cap"), "error should name the cap: {text}");
    assert!(
        read_frame(&mut s).is_none(),
        "a desynchronized connection must be closed"
    );
    // The listener itself is unharmed.
    let mut s2 = connect(&server);
    ping_works(&mut s2);
    assert_eq!(server.stats().worker_panics.load(Ordering::Relaxed), 0);
    server.shutdown();
}

#[test]
fn non_utf8_and_truncated_utf8_payloads_get_typed_errors() {
    let mut server = start_server();
    let mut s = connect(&server);
    // A multi-byte sequence chopped mid-rune (€ is E2 82 AC).
    for payload in [&[0xffu8, 0xfe, 0xfd][..], &[b'{', b'"', 0xe2, 0x82][..]] {
        s.write_all(&frame(payload)).unwrap();
        let text = expect_error_frame(&mut s);
        assert!(text.contains("UTF-8"), "error should say why: {text}");
    }
    ping_works(&mut s);
    assert_eq!(server.stats().worker_panics.load(Ordering::Relaxed), 0);
    server.shutdown();
}

#[test]
fn nested_garbage_json_is_rejected_without_blowing_the_stack() {
    let mut server = start_server();
    let mut s = connect(&server);
    // 1000 unclosed arrays — far past the parser's depth bound. A
    // naive recursive parser would overflow the worker's stack here.
    let mut bomb = vec![b'['; 1000];
    s.write_all(&frame(&bomb)).unwrap();
    expect_error_frame(&mut s);
    // The closed variant too: well-formed, equally deep.
    bomb.extend(vec![b']'; 1000]);
    s.write_all(&frame(&bomb)).unwrap();
    expect_error_frame(&mut s);
    // Valid JSON that is not a valid request is still a typed error.
    s.write_all(&frame(br#"{"op":"made_up_op"}"#)).unwrap();
    expect_error_frame(&mut s);
    ping_works(&mut s);
    assert_eq!(server.stats().worker_panics.load(Ordering::Relaxed), 0);
    server.shutdown();
}

#[test]
fn valid_frame_split_at_every_byte_boundary_still_parses() {
    let mut server = start_server();
    let mut s = connect(&server);
    let wire = frame(br#"{"op":"stats"}"#);
    for cut in 1..wire.len() {
        s.write_all(&wire[..cut]).unwrap();
        s.flush().unwrap();
        // Let the core observe the partial frame before the rest lands.
        std::thread::sleep(Duration::from_millis(2));
        s.write_all(&wire[cut..]).unwrap();
        let payload = read_frame(&mut s).expect("split frame must still be answered");
        let text = String::from_utf8(payload).unwrap();
        assert!(text.contains("\"status\":\"ok\""), "cut at {cut}: {text}");
    }
    assert_eq!(server.stats().worker_panics.load(Ordering::Relaxed), 0);
    server.shutdown();
}

/// Frames a hostile binary payload: length prefix + `PMCB1` + body.
fn binary_frame(body: &[u8]) -> Vec<u8> {
    let mut payload = Vec::with_capacity(5 + body.len());
    payload.extend_from_slice(b"PMCB1");
    payload.extend_from_slice(body);
    frame(&payload)
}

#[test]
fn hostile_binary_payloads_get_typed_errors_in_sync() {
    let mut server = start_server();
    let mut s = connect(&server);
    let nan = f64::NAN.to_bits().to_le_bytes();
    let inf = f64::INFINITY.to_bits().to_le_bytes();
    let cases: Vec<(&str, Vec<u8>)> = vec![
        ("empty body", vec![]),
        ("num with no bytes", vec![0x03]),
        ("num truncated mid-f64", vec![0x03, 0x00, 0x01, 0x02]),
        ("nan bit pattern", [vec![0x03], nan.to_vec()].concat()),
        ("inf bit pattern", [vec![0x03], inf.to_vec()].concat()),
        ("unknown tag", vec![0xee]),
        (
            "string truncated vs declared length",
            vec![0x04, 4, 0, 0, 0, b'a', b'b'],
        ),
        (
            "string that is not utf-8",
            vec![0x04, 2, 0, 0, 0, 0xff, 0xfe],
        ),
        (
            "array count past the buffer",
            vec![0x05, 0xff, 0xff, 0xff, 0xff],
        ),
        (
            "f64-array count past the buffer",
            vec![0x07, 0xff, 0xff, 0xff, 0x7f],
        ),
        (
            "object count past the buffer",
            vec![0x06, 0xff, 0xff, 0xff, 0x7f],
        ),
        ("trailing bytes after a complete value", vec![0x00, 0x00]),
    ];
    for (what, body) in cases {
        s.write_all(&binary_frame(&body)).unwrap();
        // The connection never negotiated, so the typed error comes
        // back as JSON and names the binary decoder.
        let text = expect_error_frame(&mut s);
        assert!(
            text.contains("binary payload"),
            "{what}: error should blame the binary codec: {text}"
        );
    }
    ping_works(&mut s);
    assert_eq!(server.stats().worker_panics.load(Ordering::Relaxed), 0);
    server.shutdown();
}

#[test]
fn valid_binary_frame_split_at_every_byte_boundary_still_parses() {
    let mut server = start_server();
    let mut s = connect(&server);
    let wire = encode_frame_as(&Request::Stats.to_json_value(), Encoding::Binary).unwrap();
    for cut in 1..wire.len() {
        s.write_all(&wire[..cut]).unwrap();
        s.flush().unwrap();
        std::thread::sleep(Duration::from_millis(2));
        s.write_all(&wire[cut..]).unwrap();
        // Un-negotiated connection: binary requests are accepted (the
        // magic makes every frame self-describing) but answered in
        // the connection's encoding, JSON.
        let payload = read_frame(&mut s).expect("split binary frame must still be answered");
        let text = String::from_utf8(payload).unwrap();
        assert!(text.contains("\"status\":\"ok\""), "cut at {cut}: {text}");
    }
    assert_eq!(server.stats().worker_panics.load(Ordering::Relaxed), 0);
    server.shutdown();
}

#[test]
fn hello_negotiates_binary_responses_and_survives_garbage() {
    let mut server = start_server();
    let mut s = connect(&server);
    s.write_all(&frame(br#"{"op":"hello","encoding":"binary"}"#))
        .unwrap();
    // The hello acknowledgement itself arrives in the new encoding.
    let ack = read_frame(&mut s).expect("hello must be answered");
    assert!(ack.starts_with(b"PMCB1"), "hello ack should be binary");
    let ack = decode_binary_payload(&ack).unwrap();
    assert_eq!(ack.str_field("status").unwrap(), "ok");
    assert_eq!(
        ack.field("result").unwrap().str_field("encoding").unwrap(),
        "binary"
    );
    // JSON requests still work on a binary connection (per-frame
    // sniffing); only responses switch encodings.
    s.write_all(&frame(br#"{"op":"ping","delay_ms":0}"#))
        .unwrap();
    let pong = read_frame(&mut s).expect("ping must be answered");
    assert!(pong.starts_with(b"PMCB1"), "pong should be binary now");
    decode_binary_payload(&pong).unwrap();
    // Hostile binary bytes still produce an in-sync typed error.
    s.write_all(&binary_frame(&[0xee])).unwrap();
    let err = read_frame(&mut s).expect("garbage must be answered");
    let err = decode_binary_payload(&err).unwrap();
    assert_eq!(err.str_field("status").unwrap(), "error");
    assert_eq!(server.stats().worker_panics.load(Ordering::Relaxed), 0);
    server.shutdown();
}

#[test]
fn hello_after_data_frame_is_a_typed_error_and_encoding_sticks() {
    let mut server = start_server();
    let mut s = connect(&server);
    ping_works(&mut s);
    s.write_all(&frame(br#"{"op":"hello","encoding":"binary"}"#))
        .unwrap();
    let text = expect_error_frame(&mut s);
    assert!(
        text.contains("hello must precede"),
        "late hello should be refused by name: {text}"
    );
    // The refusal neither closed the connection nor changed its
    // encoding: the next answer is still JSON.
    ping_works(&mut s);
    assert_eq!(server.stats().worker_panics.load(Ordering::Relaxed), 0);
    server.shutdown();
}

#[test]
fn unknown_encoding_falls_back_to_json_with_a_notice() {
    let mut server = start_server();
    let mut s = connect(&server);
    s.write_all(&frame(br#"{"op":"hello","encoding":"msgpack"}"#))
        .unwrap();
    let payload = read_frame(&mut s).expect("hello must be answered");
    let text = String::from_utf8(payload).expect("fallback ack must be JSON");
    assert!(text.contains("\"status\":\"ok\""), "bad ack: {text}");
    assert!(text.contains("\"encoding\":\"json\""), "bad ack: {text}");
    assert!(
        text.contains("\"notice\""),
        "fallback must carry a notice: {text}"
    );
    ping_works(&mut s);
    server.shutdown();
}

#[test]
fn seeded_random_payload_corpus_never_panics_a_worker() {
    let seed = fuzz_seed();
    let mut server = start_server();
    let mut s = connect(&server);
    let mut rng = seed ^ 0xdead_beef_cafe_f00d;
    for i in 0..200 {
        let len = (splitmix64(&mut rng) % 64) as usize;
        let payload: Vec<u8> = (0..len)
            .map(|_| (splitmix64(&mut rng) & 0xff) as u8)
            .collect();
        s.write_all(&frame(&payload)).unwrap();
        // Every well-delimited frame gets exactly one answer, garbage
        // or not — the stream never desynchronizes.
        let answer = read_frame(&mut s);
        assert!(answer.is_some(), "frame {i} (seed {seed}) went unanswered");
    }
    ping_works(&mut s);
    assert_eq!(server.stats().worker_panics.load(Ordering::Relaxed), 0);
    assert!(server.stats().frames_errored.load(Ordering::Relaxed) >= 150);
    server.shutdown();
}

// ----- Negotiated-encoding equivalence (resume, router relay) ------

/// A small fitted two-event model so ingests produce real estimates.
fn fitted_model() -> pmc_model::model::PowerModel {
    let rows: Vec<_> = (0..24)
        .map(|i| pmc_model::dataset::SampleRow {
            workload_id: i as u32,
            workload: format!("w{i}"),
            suite: "syn".into(),
            phase: "main".into(),
            threads: 24,
            freq_mhz: [1200, 1600, 2000, 2400][i % 4],
            duration_s: 1.0,
            voltage: 0.8 + 0.05 * (i % 4) as f64,
            power: 70.0 + 3.0 * (i as f64),
            rates: (0..pmc_events::PapiEvent::COUNT)
                .map(|j| ((i * 13 + j * 7) % 41) as f64 / 4100.0)
                .collect(),
        })
        .collect();
    let data = pmc_model::dataset::Dataset::from_rows(rows);
    pmc_model::model::PowerModel::fit(
        &data,
        &[
            pmc_events::PapiEvent::PRF_DM,
            pmc_events::PapiEvent::TOT_CYC,
        ],
    )
    .unwrap()
}

/// Deterministic two-counter sample `i` of a client's stream.
fn sample(i: u64) -> pmc_serve::CounterSample {
    let avail = 24.0 * 2000.0 * 1e6 * 0.25;
    pmc_serve::CounterSample {
        time_ns: (i + 1) * 250_000_000,
        duration_s: 0.25,
        freq_mhz: 2000,
        voltage: 0.85,
        deltas: vec![0.011 * avail, 0.21 * avail],
        missing: vec![],
    }
}

#[test]
fn resume_behaves_identically_under_both_encodings() {
    use pmc_serve::PowerClient;
    let mut server = start_server();
    let mut admin = PowerClient::connect(server.addr()).unwrap();
    admin.load_model("hsw", &fitted_model(), true).unwrap();
    let mut observed = Vec::new();
    for enc in [Encoding::Json, Encoding::Binary] {
        let token = format!("resume-{}", enc.as_str());
        let mut c = PowerClient::connect(server.addr()).unwrap();
        if enc != Encoding::Json {
            assert_eq!(c.negotiate_encoding(enc).unwrap(), enc);
        }
        let fresh = c.resume(&token).unwrap();
        let e1 = c.ingest(&sample(0)).unwrap();
        drop(c);
        // Reconnect, renegotiate, resume the same token: the sliding
        // window must pick up where it left off.
        let mut c = PowerClient::connect(server.addr()).unwrap();
        if enc != Encoding::Json {
            assert_eq!(c.negotiate_encoding(enc).unwrap(), enc);
        }
        let resumed = c.resume(&token).unwrap();
        let e2 = c.ingest(&sample(1)).unwrap();
        observed.push((
            fresh,
            resumed,
            e1.power_w.to_bits(),
            e2.power_w.to_bits(),
            e2.window_power_w.to_bits(),
            e2.samples_in_window,
        ));
    }
    assert_eq!(
        observed[0], observed[1],
        "resume semantics must not depend on the wire encoding"
    );
    assert_eq!(
        observed[0].5, 2,
        "the resumed window must hold both samples"
    );
    server.shutdown();
}

/// Drives one raw connection: optional hello, resume, then `n`
/// ingests; returns the hello acknowledgement and the raw ingest
/// response payloads (resume acks echo the token, so they are not
/// comparable across connections).
fn drive_ingests(
    addr: std::net::SocketAddr,
    enc: Encoding,
    token: &str,
    n: u64,
) -> (Option<Vec<u8>>, Vec<Vec<u8>>) {
    let mut s = TcpStream::connect(addr).unwrap();
    s.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    let hello_ack = (enc != Encoding::Json).then(|| {
        let hf = encode_frame_as(
            &Request::Hello {
                encoding: enc.as_str().to_string(),
            }
            .to_json_value(),
            Encoding::Json,
        )
        .unwrap();
        s.write_all(&hf).unwrap();
        read_frame(&mut s).expect("hello must be answered")
    });
    let rf = encode_frame_as(
        &Request::Resume {
            token: token.to_string(),
        }
        .to_json_value(),
        enc,
    )
    .unwrap();
    s.write_all(&rf).unwrap();
    read_frame(&mut s).expect("resume must be answered");
    let responses = (0..n)
        .map(|i| {
            let f = encode_frame_as(&Request::Ingest(sample(i)).to_json_value(), enc).unwrap();
            s.write_all(&f).unwrap();
            read_frame(&mut s).expect("ingest must be answered")
        })
        .collect();
    (hello_ack, responses)
}

#[test]
fn mixed_encoding_clients_through_router_match_direct_bitwise() {
    use pmc_router::{BackendSpec, PowerRouter, RouterConfig};
    use pmc_serve::PowerClient;
    let mut server = start_server();
    let mut admin = PowerClient::connect(server.addr()).unwrap();
    admin.load_model("hsw", &fitted_model(), true).unwrap();
    let mut router = PowerRouter::start(RouterConfig {
        backends: vec![BackendSpec::parse(&server.addr().to_string()).unwrap()],
        ..RouterConfig::default()
    })
    .unwrap();

    // Direct reference runs against the backend itself.
    let (direct_json_ack, direct_json) =
        drive_ingests(server.addr(), Encoding::Json, "mix-json-direct", 4);
    let (direct_bin_ack, direct_bin) =
        drive_ingests(server.addr(), Encoding::Binary, "mix-bin-direct", 4);
    assert!(direct_json_ack.is_none());
    // The same streams relayed through the router — a JSON client and
    // a binary client coexisting on the same fleet.
    let (routed_json_ack, routed_json) =
        drive_ingests(router.addr(), Encoding::Json, "mix-json-routed", 4);
    let (routed_bin_ack, routed_bin) =
        drive_ingests(router.addr(), Encoding::Binary, "mix-bin-routed", 4);
    assert!(routed_json_ack.is_none());

    // The router's inline hello verdict must be byte-identical to the
    // backend's own.
    assert_eq!(direct_bin_ack, routed_bin_ack, "hello ack diverged");
    // Every relayed response must match the direct one byte-for-byte.
    for (i, (d, r)) in direct_json.iter().zip(&routed_json).enumerate() {
        assert_eq!(d, r, "json ingest {i} diverged through the router");
    }
    for (i, (d, r)) in direct_bin.iter().zip(&routed_bin).enumerate() {
        assert_eq!(d, r, "binary ingest {i} diverged through the router");
    }
    // And the two encodings really are different wire formats.
    assert!(routed_bin[0].starts_with(b"PMCB1"));
    assert!(!routed_json[0].starts_with(b"PMCB1"));
    let d = decode_binary_payload(&routed_bin[0]).unwrap();
    assert_eq!(d.str_field("status").unwrap(), "ok");

    router.shutdown();
    assert_eq!(server.stats().worker_panics.load(Ordering::Relaxed), 0);
    server.shutdown();
}
