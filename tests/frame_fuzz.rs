//! Malformed-frame hardening: a hostile or broken peer must never
//! crash a worker or desynchronize the server.
//!
//! Talks to a live [`pmc_serve::PowerServer`] over raw TCP, below the
//! client library, so it can send what no well-behaved client would:
//! zero-length payloads, length prefixes past the frame cap, payloads
//! that are not UTF-8, JSON nested past the parser's depth bound, a
//! valid frame dribbled in at every possible byte boundary, and a
//! seeded corpus of random garbage. Every case must be answered with a
//! typed error frame (or a clean close for desynchronizing prefixes),
//! the connection must stay usable whenever the stream is still in
//! sync, and `worker_panics` must stay zero throughout.
//!
//! Seeded via `FUZZ_SEED` (default 1) so CI can sweep a matrix.

use pmc_serve::registry::ModelRegistry;
use pmc_serve::server::{PowerServer, ServerConfig};
use std::io::{ErrorKind, Read, Write};
use std::net::TcpStream;
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::Duration;

fn fuzz_seed() -> u64 {
    std::env::var("FUZZ_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(1)
}

/// splitmix64 — tiny, seedable, and good enough to fuzz with.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

fn start_server() -> PowerServer {
    PowerServer::start(ServerConfig::default(), Arc::new(ModelRegistry::default())).unwrap()
}

fn connect(server: &PowerServer) -> TcpStream {
    let s = TcpStream::connect(server.addr()).unwrap();
    // A wedge is a test failure, not a hang.
    s.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    s
}

/// Encodes one wire frame: 4-byte big-endian length prefix + payload.
fn frame(payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(4 + payload.len());
    out.extend_from_slice(&(payload.len() as u32).to_be_bytes());
    out.extend_from_slice(payload);
    out
}

/// Reads one response frame; `None` on clean EOF.
fn read_frame(stream: &mut TcpStream) -> Option<Vec<u8>> {
    let mut prefix = [0u8; 4];
    let mut got = 0;
    while got < 4 {
        match stream.read(&mut prefix[got..]) {
            Ok(0) if got == 0 => return None,
            Ok(0) => panic!("EOF inside a length prefix"),
            Ok(n) => got += n,
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(e) => panic!("read failed: {e}"),
        }
    }
    let len = u32::from_be_bytes(prefix) as usize;
    let mut payload = vec![0u8; len];
    stream.read_exact(&mut payload).unwrap();
    Some(payload)
}

/// Reads one frame and asserts it is a typed error-status response.
fn expect_error_frame(stream: &mut TcpStream) -> String {
    let payload = read_frame(stream).expect("server must answer, not hang up");
    let text = String::from_utf8(payload).expect("server frames are UTF-8");
    assert!(
        text.contains("\"status\":\"error\"") || text.contains("\"status\": \"error\""),
        "expected a typed error frame, got: {text}"
    );
    text
}

/// Round-trips a ping on an already-open raw connection.
fn ping_works(stream: &mut TcpStream) {
    stream
        .write_all(&frame(br#"{"op":"ping","delay_ms":0}"#))
        .unwrap();
    let payload = read_frame(stream).expect("ping must be answered");
    let text = String::from_utf8(payload).unwrap();
    assert!(text.contains("\"slept_ms\""), "bad pong: {text}");
}

#[test]
fn zero_length_payload_gets_typed_error_and_conn_survives() {
    let mut server = start_server();
    let mut s = connect(&server);
    s.write_all(&frame(b"")).unwrap();
    expect_error_frame(&mut s);
    ping_works(&mut s);
    assert_eq!(server.stats().worker_panics.load(Ordering::Relaxed), 0);
    server.shutdown();
}

#[test]
fn oversized_length_prefix_is_answered_then_closed() {
    let mut server = start_server();
    let mut s = connect(&server);
    // One byte past the cap: the prefix itself is hostile — nothing
    // after it can be trusted, so the server answers and hangs up.
    let over = (pmc_serve::protocol::MAX_FRAME_BYTES + 1).to_be_bytes();
    s.write_all(&over).unwrap();
    let text = expect_error_frame(&mut s);
    assert!(text.contains("cap"), "error should name the cap: {text}");
    assert!(
        read_frame(&mut s).is_none(),
        "a desynchronized connection must be closed"
    );
    // The listener itself is unharmed.
    let mut s2 = connect(&server);
    ping_works(&mut s2);
    assert_eq!(server.stats().worker_panics.load(Ordering::Relaxed), 0);
    server.shutdown();
}

#[test]
fn non_utf8_and_truncated_utf8_payloads_get_typed_errors() {
    let mut server = start_server();
    let mut s = connect(&server);
    // A multi-byte sequence chopped mid-rune (€ is E2 82 AC).
    for payload in [&[0xffu8, 0xfe, 0xfd][..], &[b'{', b'"', 0xe2, 0x82][..]] {
        s.write_all(&frame(payload)).unwrap();
        let text = expect_error_frame(&mut s);
        assert!(text.contains("UTF-8"), "error should say why: {text}");
    }
    ping_works(&mut s);
    assert_eq!(server.stats().worker_panics.load(Ordering::Relaxed), 0);
    server.shutdown();
}

#[test]
fn nested_garbage_json_is_rejected_without_blowing_the_stack() {
    let mut server = start_server();
    let mut s = connect(&server);
    // 1000 unclosed arrays — far past the parser's depth bound. A
    // naive recursive parser would overflow the worker's stack here.
    let mut bomb = vec![b'['; 1000];
    s.write_all(&frame(&bomb)).unwrap();
    expect_error_frame(&mut s);
    // The closed variant too: well-formed, equally deep.
    bomb.extend(vec![b']'; 1000]);
    s.write_all(&frame(&bomb)).unwrap();
    expect_error_frame(&mut s);
    // Valid JSON that is not a valid request is still a typed error.
    s.write_all(&frame(br#"{"op":"made_up_op"}"#)).unwrap();
    expect_error_frame(&mut s);
    ping_works(&mut s);
    assert_eq!(server.stats().worker_panics.load(Ordering::Relaxed), 0);
    server.shutdown();
}

#[test]
fn valid_frame_split_at_every_byte_boundary_still_parses() {
    let mut server = start_server();
    let mut s = connect(&server);
    let wire = frame(br#"{"op":"stats"}"#);
    for cut in 1..wire.len() {
        s.write_all(&wire[..cut]).unwrap();
        s.flush().unwrap();
        // Let the core observe the partial frame before the rest lands.
        std::thread::sleep(Duration::from_millis(2));
        s.write_all(&wire[cut..]).unwrap();
        let payload = read_frame(&mut s).expect("split frame must still be answered");
        let text = String::from_utf8(payload).unwrap();
        assert!(text.contains("\"status\":\"ok\""), "cut at {cut}: {text}");
    }
    assert_eq!(server.stats().worker_panics.load(Ordering::Relaxed), 0);
    server.shutdown();
}

#[test]
fn seeded_random_payload_corpus_never_panics_a_worker() {
    let seed = fuzz_seed();
    let mut server = start_server();
    let mut s = connect(&server);
    let mut rng = seed ^ 0xdead_beef_cafe_f00d;
    for i in 0..200 {
        let len = (splitmix64(&mut rng) % 64) as usize;
        let payload: Vec<u8> = (0..len)
            .map(|_| (splitmix64(&mut rng) & 0xff) as u8)
            .collect();
        s.write_all(&frame(&payload)).unwrap();
        // Every well-delimited frame gets exactly one answer, garbage
        // or not — the stream never desynchronizes.
        let answer = read_frame(&mut s);
        assert!(answer.is_some(), "frame {i} (seed {seed}) went unanswered");
    }
    ping_works(&mut s);
    assert_eq!(server.stats().worker_panics.load(Ordering::Relaxed), 0);
    assert!(server.stats().frames_errored.load(Ordering::Relaxed) >= 150);
    server.shutdown();
}
