//! Equivalence property for the coalescing batch scheduler and the
//! wire codec: for seeded random interleavings of N concurrent
//! clients streaming samples against M models (an active model plus a
//! previous-version fallback of a different width), every cell of the
//! {JSON, binary} × {`batch_max = 1`, coalesced columnar} matrix must
//! produce **bitwise identical** per-client response sequences to the
//! JSON `batch_max = 1` reference (the scalar kernel, no coalescing).
//!
//! The comparison keys on `f64::to_bits` of every power field — the
//! in-tree JSON codec round-trips f64 exactly, so any arithmetic
//! divergence between the batched and sequential ingest paths shows
//! up as a hard bit mismatch, not a tolerance failure. Errors count
//! too: a request refused on one server must be refused identically
//! on the other.
//!
//! Seeds come from `BATCH_SEED` (one run) or default to a small
//! matrix, mirroring the chaos suite's `CHAOS_SEED` convention.

use pmc_serve::registry::ModelRegistry;
use pmc_serve::server::{PowerServer, ServerConfig};
use pmc_serve::{CounterSample, Encoding, PowerClient, ServeError};
use std::sync::Arc;
use std::time::Duration;

const CLIENTS: usize = 6;
const SAMPLES_PER_CLIENT: usize = 20;

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e3779b97f4a7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e9b5);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

/// Uniform f64 in [0, 1).
fn unit(state: &mut u64) -> f64 {
    (splitmix64(state) >> 11) as f64 / (1u64 << 53) as f64
}

fn fit(events: &[pmc_events::PapiEvent]) -> pmc_model::model::PowerModel {
    let rows: Vec<_> = (0..24)
        .map(|i| pmc_model::dataset::SampleRow {
            workload_id: i as u32,
            workload: format!("w{i}"),
            suite: "syn".into(),
            phase: "main".into(),
            threads: 24,
            freq_mhz: [1200, 1600, 2000, 2400][i % 4],
            duration_s: 1.0,
            voltage: 0.8 + 0.05 * (i % 4) as f64,
            power: 70.0 + 3.0 * (i as f64),
            rates: (0..pmc_events::PapiEvent::COUNT)
                .map(|j| ((i * 13 + j * 7) % 41) as f64 / 4100.0)
                .collect(),
        })
        .collect();
    let data = pmc_model::dataset::Dataset::from_rows(rows);
    pmc_model::model::PowerModel::fit(&data, events).unwrap()
}

/// One client's full sample schedule, derived from the seed alone so
/// both servers replay the identical stream. Mixes widths (narrow
/// samples hit the active model, wide ones fall back to the previous
/// version), declared-missing counters, and zero voltages.
fn schedule(seed: u64, client: usize) -> Vec<CounterSample> {
    let mut rng = seed
        .wrapping_mul(0x2545f4914f6cdd1d)
        .wrapping_add(client as u64 + 1);
    (0..SAMPLES_PER_CLIENT)
        .map(|i| {
            let freq_mhz = [1200u32, 1600, 2000, 2400][(splitmix64(&mut rng) % 4) as usize];
            let duration_s = 0.25;
            let avail = 24.0 * freq_mhz as f64 * 1e6 * duration_s;
            // 1 in 4 samples is wide (3 deltas → previous-model
            // fallback); the rest match the active narrow model.
            let width = if splitmix64(&mut rng) % 4 == 0 { 3 } else { 2 };
            let deltas: Vec<f64> = (0..width)
                .map(|_| (0.001 + 0.4 * unit(&mut rng)) * avail)
                .collect();
            // Occasional unreadable counter / dead voltage readout.
            let missing = if splitmix64(&mut rng) % 8 == 0 {
                vec![(splitmix64(&mut rng) % width as u64) as usize]
            } else {
                vec![]
            };
            let voltage = if splitmix64(&mut rng) % 10 == 0 {
                0.0
            } else {
                0.75 + 0.25 * unit(&mut rng)
            };
            CounterSample {
                time_ns: (i as u64 + 1) * 250_000_000,
                duration_s,
                freq_mhz,
                voltage,
                deltas,
                missing,
            }
        })
        .collect()
}

/// Everything observable about one response, with floats as raw bits.
#[derive(Debug, PartialEq)]
enum Outcome {
    Est {
        time_ns: u64,
        power_bits: u64,
        window_bits: u64,
        samples_in_window: usize,
        out_of_envelope: bool,
        degraded: bool,
        reasons: Vec<String>,
        model: String,
        version: u32,
    },
    Err(String),
}

fn outcome(result: Result<pmc_serve::Estimate, ServeError>) -> Outcome {
    match result {
        Ok(e) => Outcome::Est {
            time_ns: e.time_ns,
            power_bits: e.power_w.to_bits(),
            window_bits: e.window_power_w.to_bits(),
            samples_in_window: e.samples_in_window,
            out_of_envelope: e.out_of_envelope,
            degraded: e.degraded,
            reasons: e.degraded_reasons,
            model: e.model,
            version: e.version,
        },
        Err(e) => Outcome::Err(format!("{e:?}")),
    }
}

/// Starts a server with both models loaded (wide v1 previous, narrow
/// v2 active), drives all clients concurrently with seeded jitter —
/// each speaking `encoding` on the wire, negotiated with a leading
/// `hello` — and returns each client's response sequence.
fn run_server(cfg: ServerConfig, seed: u64, encoding: Encoding) -> Vec<Vec<Outcome>> {
    let mut server = PowerServer::start(cfg, Arc::new(ModelRegistry::default())).unwrap();
    let addr = server.addr();
    let mut admin = PowerClient::connect(addr).unwrap();
    let wide = fit(&[
        pmc_events::PapiEvent::PRF_DM,
        pmc_events::PapiEvent::TOT_CYC,
        pmc_events::PapiEvent::TLB_IM,
    ]);
    let narrow = fit(&[
        pmc_events::PapiEvent::PRF_DM,
        pmc_events::PapiEvent::TOT_CYC,
    ]);
    assert_eq!(admin.load_model("hsw", &wide, true).unwrap(), 1);
    assert_eq!(admin.load_model("hsw", &narrow, true).unwrap(), 2);

    let handles: Vec<_> = (0..CLIENTS)
        .map(|id| {
            std::thread::spawn(move || {
                let mut rng = seed.wrapping_add(0xc0ffee * (id as u64 + 1));
                let mut c = PowerClient::connect(addr).unwrap();
                if encoding != Encoding::Json {
                    assert_eq!(c.negotiate_encoding(encoding).unwrap(), encoding);
                }
                schedule(seed, id)
                    .iter()
                    .map(|s| {
                        // Seeded jitter varies how client streams
                        // interleave in the worker queue.
                        let pause = splitmix64(&mut rng) % 400;
                        std::thread::sleep(Duration::from_micros(pause));
                        outcome(c.ingest(s))
                    })
                    .collect::<Vec<_>>()
            })
        })
        .collect();
    let out = handles
        .into_iter()
        .map(|h| h.join().expect("client thread panicked"))
        .collect();
    server.shutdown();
    out
}

#[test]
fn encoding_batching_matrix_is_bitwise_identical_to_reference() {
    let seeds: Vec<u64> = match std::env::var("BATCH_SEED") {
        Ok(s) => vec![s.parse().expect("BATCH_SEED must be a u64")],
        Err(_) => vec![1, 2, 3],
    };
    for seed in seeds {
        let base = ServerConfig {
            workers: 2,
            queue_depth: 64,
            max_inflight: 64,
            ..ServerConfig::default()
        };
        let sequential = ServerConfig {
            batch_max: 1,
            ..base.clone()
        };
        let coalesced = ServerConfig {
            batch_max: 32,
            batch_linger: Duration::from_micros(300),
            ..base
        };
        // The scalar kernel over JSON is the reference cell; the other
        // three cells of {json, binary} × {sequential, coalesced} must
        // match it bitwise. The coalesced cells exercise the columnar
        // kernel; the binary cells exercise the PMCB1 codec.
        let reference = run_server(sequential.clone(), seed, Encoding::Json);
        let variants: [(&str, ServerConfig, Encoding); 3] = [
            ("json+coalesced", coalesced.clone(), Encoding::Json),
            ("binary+sequential", sequential, Encoding::Binary),
            ("binary+coalesced", coalesced, Encoding::Binary),
        ];
        for (label, cfg, enc) in variants {
            let got = run_server(cfg, seed, enc);
            for (id, (want, have)) in reference.iter().zip(&got).enumerate() {
                assert_eq!(want.len(), SAMPLES_PER_CLIENT);
                for (i, (w, g)) in want.iter().zip(have).enumerate() {
                    assert_eq!(
                        w, g,
                        "seed {seed}: client {id} sample {i} diverged between \
                         json+sequential and {label}"
                    );
                }
            }
        }
    }
}
