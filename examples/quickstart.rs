//! Quickstart: build a PMC power model end-to-end and use it.
//!
//! Runs a reduced acquisition campaign on the simulated Haswell-EP
//! machine, selects counters with Algorithm 1, fits Equation 1, and
//! estimates the power of a workload the model has never seen.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use pmc_cpusim::{Machine, MachineConfig};
use pmc_events::PapiEvent;
use pmc_model::acquisition::{Campaign, ExperimentPlan};
use pmc_model::dataset::Dataset;
use pmc_model::model::PowerModel;
use pmc_model::selection::select_events;
use pmc_workloads::WorkloadSet;

fn main() {
    // 1. A machine to measure: dual-socket Haswell-EP with calibrated
    //    power instrumentation (simulated).
    let machine = Machine::new(MachineConfig::haswell_ep(6));

    // 2. Acquire training data: every roco2 kernel at three DVFS
    //    states, 13 runs each (counter-group limit), through the full
    //    trace pipeline.
    let plan = ExperimentPlan::quick_plan(WorkloadSet::roco2_only(), vec![1200, 2000, 2600]);
    println!(
        "acquiring {} experiments ({} runs)…",
        plan.experiment_count(),
        plan.run_count()
    );
    let profiles = Campaign::new(&machine, plan)
        .run()
        .expect("acquisition failed");
    let data = Dataset::from_profiles(&profiles, machine.config().total_cores())
        .expect("dataset assembly failed");
    println!("dataset: {} samples", data.len());

    // 3. Select the most informative counters (Algorithm 1) on the
    //    middle frequency.
    let report =
        select_events(&data.at_frequency(2000), PapiEvent::ALL, 4).expect("selection failed");
    println!("\nselected counters:");
    for step in &report.steps {
        println!(
            "  {:8} R²={:.3}  mean VIF={}",
            step.event.mnemonic(),
            step.r_squared,
            step.mean_vif.map_or("n/a".into(), |v| format!("{v:.2}")),
        );
    }

    // 4. Fit Equation 1 across all DVFS states.
    let events = report.selected_events();
    let model = PowerModel::fit(&data, &events).expect("model fit failed");
    println!(
        "\nEquation 1 fit: R² = {:.4}, adj R² = {:.4} ({} samples)",
        model.fit_r_squared, model.fit_adj_r_squared, model.n_observations
    );
    println!(
        "coefficients: α = {:?}, β = {:.1}, γ = {:.1}, δ = {:.1}",
        model
            .alpha
            .iter()
            .map(|a| format!("{a:.1}"))
            .collect::<Vec<_>>(),
        model.beta,
        model.gamma,
        model.delta
    );

    // 5. Estimate the power of an *unseen* workload: the SPEC-like
    //    bwaves benchmark at a frequency the model was trained on.
    let spec = WorkloadSet::spec_only();
    let bwaves = spec.by_name("bwaves").unwrap();
    let plan = ExperimentPlan::quick_plan(
        WorkloadSet::from_workloads(vec![bwaves.clone()]),
        vec![2000],
    );
    let profiles = Campaign::new(&machine, plan).run().unwrap();
    let test = Dataset::from_profiles(&profiles, machine.config().total_cores()).unwrap();

    println!("\nestimating bwaves (never seen during training):");
    for row in test.rows() {
        let predicted = model.predict_row(row);
        println!(
            "  phase {:10} measured {:6.1} W   estimated {:6.1} W   error {:+.1}%",
            row.phase,
            row.power,
            predicted,
            100.0 * (predicted - row.power) / row.power
        );
    }
}
