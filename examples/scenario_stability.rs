//! Model stability on unseen workloads: the paper's four training
//! scenarios (§IV-B, Fig. 4/5) on a reduced dataset, plus the
//! per-workload bias analysis that reveals *why* synthetic-only
//! training fails.
//!
//! ```text
//! cargo run --release --example scenario_stability
//! ```

use pmc_cpusim::{Machine, MachineConfig};
use pmc_events::PapiEvent;
use pmc_model::acquisition::{Campaign, ExperimentPlan};
use pmc_model::dataset::Dataset;
use pmc_model::scenarios::{run_scenario, Scenario};
use pmc_model::selection::select_events;
use pmc_workloads::WorkloadSet;

fn main() {
    let machine = Machine::new(MachineConfig::haswell_ep(6));
    let plan = ExperimentPlan::quick_plan(WorkloadSet::paper_set(), vec![1200, 2000, 2600]);
    println!("acquiring {} experiments…", plan.experiment_count());
    let profiles = Campaign::new(&machine, plan).run().expect("acquisition");
    let data = Dataset::from_profiles(&profiles, machine.config().total_cores()).unwrap();

    let events = select_events(&data.at_frequency(2000), PapiEvent::ALL, 6)
        .expect("selection")
        .selected_events();
    println!(
        "counters: {}",
        events
            .iter()
            .map(|e| e.mnemonic())
            .collect::<Vec<_>>()
            .join(", ")
    );

    println!("\nscenario MAPE (the paper's Fig. 4):");
    let mut scenario2 = None;
    for scenario in Scenario::paper_scenarios(6) {
        match run_scenario(&data, &events, scenario) {
            Ok(r) => {
                println!(
                    "  scenario {}: {:6.2}%  — {}",
                    r.label, r.mape, r.description
                );
                if r.label == "2" {
                    scenario2 = Some(r);
                }
            }
            Err(e) => println!("  scenario {}: failed: {e}", scenario.label()),
        }
    }

    // Scenario 2 autopsy: per-workload signed bias (Fig. 5a). A
    // synthetic-only model misattributes the unobservable power of
    // application workloads — md and nab are consistently
    // overestimated, exactly as the paper reports.
    let r = scenario2.expect("scenario 2 must run");
    println!("\nscenario 2 per-workload bias (positive = overestimated):");
    let mut names: Vec<String> = r.points.iter().map(|p| p.workload.clone()).collect();
    names.sort();
    names.dedup();
    let mut biases: Vec<(String, f64)> = names
        .into_iter()
        .map(|name| {
            let pts: Vec<f64> = r
                .points
                .iter()
                .filter(|p| p.workload == name)
                .map(|p| 100.0 * (p.predicted - p.actual) / p.actual)
                .collect();
            (name, pts.iter().sum::<f64>() / pts.len() as f64)
        })
        .collect();
    biases.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap());
    for (name, bias) in &biases {
        let bar = "#".repeat((bias.abs() / 2.0).min(30.0) as usize);
        println!("  {name:<10} {bias:+7.2}%  {bar}");
    }
    let over: Vec<&str> = biases
        .iter()
        .filter(|(_, b)| *b > 5.0)
        .map(|(n, _)| n.as_str())
        .collect();
    println!("\nconsistently overestimated: {}", over.join(", "));
}
