//! The full service loop in one process: train a model on the
//! simulated machine, boot the telemetry server on an ephemeral port,
//! and stream live phases through the wire protocol — the deployable
//! "software power meter" the paper motivates, as a running service.
//!
//! ```text
//! cargo run --release --example power_service
//! ```

use pmc_cpusim::{Machine, MachineConfig, PhaseContext};
use pmc_events::PapiEvent;
use pmc_model::acquisition::{Campaign, ExperimentPlan};
use pmc_model::dataset::Dataset;
use pmc_model::model::PowerModel;
use pmc_serve::registry::ModelRegistry;
use pmc_serve::server::{PowerServer, ServerConfig};
use pmc_serve::{CounterSample, EngineConfig, PowerClient};
use pmc_workloads::{roco2, WorkloadSet};
use std::sync::Arc;

fn main() {
    // --- Offline: calibrate ----------------------------------------
    let machine = Machine::new(MachineConfig::haswell_ep(6));
    let total_cores = machine.config().total_cores();
    let plan = ExperimentPlan::quick_plan(WorkloadSet::paper_set(), vec![1200, 2000, 2600]);
    println!("calibration campaign: {} runs…", plan.run_count());
    let profiles = Campaign::new(&machine, plan).run().expect("acquisition");
    let data = Dataset::from_profiles(&profiles, total_cores).unwrap();
    // Six events that fit one counter group (4 programmable + 2 fixed);
    // a greedy-selected set that needs multiplexing would be *rejected*
    // by the registry — an online meter cannot re-run the application.
    let events = vec![
        PapiEvent::PRF_DM,
        PapiEvent::REF_CYC,
        PapiEvent::TOT_CYC,
        PapiEvent::STL_ICY,
        PapiEvent::TLB_IM,
        PapiEvent::FUL_CCY,
    ];
    let model = PowerModel::fit(&data, &events).expect("fit");
    println!(
        "trained {}-counter model, R² = {:.4}",
        model.events.len(),
        model.fit_r_squared
    );

    // --- Boot the service ------------------------------------------
    let config = ServerConfig {
        addr: "127.0.0.1:0".into(),
        workers: 2,
        queue_depth: 8,
        engine: EngineConfig {
            window: 8,
            total_cores,
            staleness_ns: 5_000_000_000,
        },
        ..ServerConfig::default()
    };
    let mut server = PowerServer::start(config, Arc::new(ModelRegistry::default())).unwrap();
    println!("server listening on {}", server.addr());

    let mut client = PowerClient::connect(server.addr()).unwrap();
    let version = client.load_model("haswell-ep", &model, true).unwrap();
    println!("loaded and activated haswell-ep v{version}\n");

    // --- Stream live phases over the wire --------------------------
    let mut kernels = roco2::kernels();
    kernels.extend(roco2::extended_kernels());
    println!(
        "{:<10} {:>5} {:>9} {:>10} {:>10} {:>6}",
        "phase", "MHz", "true W", "est. W", "window W", "flags"
    );
    for (i, w) in kernels.iter().enumerate() {
        let freq_mhz = [1200u32, 2000, 2600][i % 3];
        let phase = &w.phases(24)[0];
        let obs = machine.observe(
            &phase.activity,
            &PhaseContext {
                workload_id: w.id,
                phase_id: 0,
                run_id: 1000 + i as u32,
                threads: 24,
                freq_mhz,
                duration_s: 1.0,
            },
        );
        let sample = CounterSample {
            time_ns: (i as u64 + 1) * 1_000_000_000,
            duration_s: obs.duration_s,
            freq_mhz,
            voltage: obs.voltage,
            deltas: events.iter().map(|e| obs.counters[e.index()]).collect(),
            missing: vec![],
        };
        let est = client.ingest(&sample).expect("ingest");
        println!(
            "{:<10} {:>5} {:>9.1} {:>10.1} {:>10.1} {:>6}",
            w.name,
            freq_mhz,
            obs.power_true,
            est.power_w,
            est.window_power_w,
            if est.out_of_envelope { "OOE" } else { "ok" }
        );
    }

    let stats = client.stats().unwrap();
    let server_stats = stats.field("server").unwrap();
    println!(
        "\nserved {} estimates over {} frames — shutting down.",
        server_stats.u64_field("estimates_served").unwrap(),
        server_stats.u64_field("frames_received").unwrap()
    );
    server.shutdown();
}
