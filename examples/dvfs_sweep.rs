//! DVFS behaviour of the model: train across voltage–frequency states
//! and verify Equation 1 transfers between them.
//!
//! Demonstrates the reason Equation 1 multiplies counter rates by
//! `V²·f`: a model trained at *low* frequencies extrapolates to *high*
//! frequencies because the physics is in the regressors.
//!
//! ```text
//! cargo run --release --example dvfs_sweep
//! ```

use pmc_cpusim::{Machine, MachineConfig, VoltageCurve};
use pmc_events::PapiEvent;
use pmc_model::acquisition::{Campaign, ExperimentPlan};
use pmc_model::dataset::Dataset;
use pmc_model::model::PowerModel;
use pmc_stats::mape;
use pmc_workloads::WorkloadSet;

/// The counters the paper's workflow selects on this platform.
const EVENTS: [PapiEvent; 4] = [
    PapiEvent::PRF_DM,
    PapiEvent::REF_CYC,
    PapiEvent::STL_ICY,
    PapiEvent::FUL_CCY,
];

fn main() {
    let machine = Machine::new(MachineConfig::haswell_ep(6));

    // Show the operating points the machine exposes.
    println!("DVFS operating points:");
    for op in machine.config().voltage_curve.paper_operating_points() {
        println!(
            "  {:>4} MHz  V = {:.3} V  V²f = {:.3}",
            op.freq_mhz,
            op.voltage,
            op.voltage * op.voltage * op.freq_ghz()
        );
    }

    let plan = ExperimentPlan::quick_plan(
        WorkloadSet::roco2_only(),
        VoltageCurve::paper_frequencies().to_vec(),
    );
    println!(
        "\nacquiring {} experiments across 5 DVFS states…",
        plan.experiment_count()
    );
    let profiles = Campaign::new(&machine, plan).run().expect("acquisition");
    let data = Dataset::from_profiles(&profiles, machine.config().total_cores()).unwrap();

    // Train on the three lowest frequencies, test on the two highest:
    // cross-frequency extrapolation.
    let train = data.filter(|r| r.freq_mhz <= 2000);
    let test = data.filter(|r| r.freq_mhz > 2000);
    let model = PowerModel::fit(&train, &EVENTS).expect("fit");
    println!(
        "\ntrained on ≤2000 MHz ({} samples): R² = {:.4}",
        train.len(),
        model.fit_r_squared
    );

    for freq in [2400u32, 2600] {
        let sub = test.at_frequency(freq);
        let predicted = model.predict(&sub);
        let err = mape(&sub.power(), &predicted).unwrap();
        println!(
            "extrapolating to {freq} MHz: MAPE {err:5.2}%  ({} samples)",
            sub.len()
        );
    }

    // Per-frequency in-distribution errors for comparison.
    let full = PowerModel::fit(&data, &EVENTS).expect("fit all");
    println!("\ntrained on all frequencies (reference):");
    for freq in VoltageCurve::paper_frequencies() {
        let sub = data.at_frequency(freq);
        let err = mape(&sub.power(), &full.predict(&sub)).unwrap();
        println!("  {freq:>4} MHz: MAPE {err:5.2}%");
    }

    // The decomposition Equation 1 gives for one operating point: how
    // much power the model attributes to events vs V²f vs V vs system.
    let row = data
        .rows()
        .iter()
        .find(|r| r.freq_mhz == 2400 && r.threads == 24 && r.workload == "memory")
        .expect("memory @ 2400 MHz, 24 threads");
    let v2f = row.v2f();
    let event_power: f64 = full
        .events
        .iter()
        .zip(&full.alpha)
        .map(|(&e, a)| a * row.rate(e) * v2f)
        .sum();
    println!(
        "\nmemory kernel @ 2400 MHz / 24 threads — attribution:\n  \
         events {:.1} W + dynamic floor {:.1} W + static {:.1} W + system {:.1} W \
         = {:.1} W (measured {:.1} W)",
        event_power,
        full.beta * v2f,
        full.gamma * row.voltage,
        full.delta,
        full.predict_row(row),
        row.power
    );
}
