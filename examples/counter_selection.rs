//! Counter selection in depth: Algorithm 1, the VIF stability gate,
//! and the snoop-counter trap (paper §IV-A).
//!
//! ```text
//! cargo run --release --example counter_selection
//! ```

use pmc_cpusim::{Machine, MachineConfig};
use pmc_events::PapiEvent;
use pmc_model::acquisition::{Campaign, ExperimentPlan};
use pmc_model::dataset::Dataset;
use pmc_model::selection::{probe_additional_event, select_events};
use pmc_stats::{mean_vif, pearson};
use pmc_workloads::WorkloadSet;

fn main() {
    let machine = Machine::new(MachineConfig::haswell_ep(6));
    let plan = ExperimentPlan::quick_plan(WorkloadSet::paper_set(), vec![2400]);
    println!("acquiring selection dataset (all 16 workloads @ 2400 MHz)…");
    let profiles = Campaign::new(&machine, plan).run().expect("acquisition");
    let data = Dataset::from_profiles(&profiles, machine.config().total_cores()).unwrap();

    // The marginal-R² view: what each greedy step buys.
    let report = select_events(&data, PapiEvent::ALL, 6).expect("selection");
    println!("\ngreedy forward selection (Algorithm 1):");
    let mut prev = 0.0;
    for (i, s) in report.steps.iter().enumerate() {
        println!(
            "  step {}: +{:7} ΔR² = {:+.4} → R² {:.4}, mean VIF {}",
            i + 1,
            s.event.mnemonic(),
            s.r_squared - prev,
            s.r_squared,
            s.mean_vif.map_or("n/a".into(), |v| format!("{v:.2}")),
        );
        prev = s.r_squared;
    }

    // Why the selected counters are NOT simply the most correlated
    // ones (paper §V): show each selected counter's |PCC| rank.
    let power = data.power();
    let mut pcc_rank: Vec<(PapiEvent, f64)> = PapiEvent::ALL
        .iter()
        .filter_map(|&e| {
            pearson(&data.rate_column(e), &power)
                .ok()
                .map(|r| (e, r.abs()))
        })
        .collect();
    pcc_rank.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap());
    println!("\nselected counters vs their raw-correlation rank:");
    for s in &report.steps {
        let rank = pcc_rank
            .iter()
            .position(|(e, _)| *e == s.event)
            .map(|p| p + 1);
        println!(
            "  {:8} |PCC| rank {:>2} of {}",
            s.event.mnemonic(),
            rank.map_or("—".into(), |r| r.to_string()),
            pcc_rank.len()
        );
    }

    // The snoop-counter trap: adding CA_SNP inflates the mean VIF past
    // the stability threshold while barely moving R².
    let events = report.selected_events();
    match probe_additional_event(&data, &events, PapiEvent::CA_SNP) {
        Ok(step) => {
            println!(
                "\nprobing CA_SNP as a 7th counter: R² {:.4} (was {:.4}), mean VIF {:.1}",
                step.r_squared,
                prev,
                step.mean_vif.unwrap_or(f64::NAN)
            );
            println!("mean VIF > 10 ⇒ multicollinear, unstable coefficients — rejected.");
        }
        Err(e) => println!("\nCA_SNP probe failed: {e}"),
    }

    // Show the raw collinearity: mean VIF of the selected set vs the
    // set plus each L3 counter.
    let base = mean_vif(&data.rate_matrix(&events)).unwrap();
    println!("\nmean VIF of the selected 6: {base:.2}");
    for extra in [PapiEvent::L3_TCA, PapiEvent::L3_TCM, PapiEvent::CA_SNP] {
        let mut trial = events.clone();
        trial.push(extra);
        let v = mean_vif(&data.rate_matrix(&trial)).unwrap();
        println!("  + {:8} → {v:.2}", extra.mnemonic());
    }
}
