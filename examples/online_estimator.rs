//! Online power estimation: deploy a trained model as a software power
//! meter that only ever records the model's selected counters.
//!
//! This is the production use case the paper motivates: once the six
//! counters are known, a runtime needs just one counter group (plus
//! voltage) to produce live power estimates — no wattmeter.
//!
//! ```text
//! cargo run --release --example online_estimator
//! ```

use pmc_cpusim::{Machine, MachineConfig, PhaseContext};
use pmc_events::scheduler::CounterScheduler;
use pmc_events::PapiEvent;
use pmc_model::acquisition::{Campaign, ExperimentPlan};
use pmc_model::dataset::Dataset;
use pmc_model::model::PowerModel;
use pmc_model::selection::select_events;
use pmc_workloads::{roco2, WorkloadSet};

fn main() {
    // --- Offline: calibrate once -----------------------------------
    let machine = Machine::new(MachineConfig::haswell_ep(6));
    let plan = ExperimentPlan::quick_plan(WorkloadSet::paper_set(), vec![1200, 2000, 2600]);
    println!("calibration campaign: {} runs…", plan.run_count());
    let profiles = Campaign::new(&machine, plan).run().expect("acquisition");
    let data = Dataset::from_profiles(&profiles, machine.config().total_cores()).unwrap();
    let events = select_events(&data.at_frequency(2000), PapiEvent::ALL, 6)
        .expect("selection")
        .selected_events();
    let model = PowerModel::fit(&data, &events).expect("fit");

    // The deployable artifact: a JSON model file.
    let json = model.to_json().expect("serialize");
    println!(
        "trained model: {} counters, R² = {:.4}, {} bytes as JSON",
        model.events.len(),
        model.fit_r_squared,
        json.len()
    );

    // The runtime needs this single counter group — it fits in one
    // hardware slot allocation, no multiplexing.
    let groups = CounterScheduler::haswell_default()
        .schedule(&model.events)
        .expect("schedule");
    println!(
        "runtime counter groups needed: {} ({} programmable slots)",
        groups.len(),
        groups.iter().map(|g| g.programmable.len()).sum::<usize>()
    );

    // --- Online: estimate live phases ------------------------------
    // A "live" stream of 1-second phases from mixed workloads; the
    // estimator sees only counter deltas and the voltage readout.
    let restored = PowerModel::from_json(&json).expect("deserialize");
    let mut kernels = roco2::kernels();
    kernels.extend(roco2::extended_kernels());

    println!("\nlive estimation (1 s windows):");
    println!(
        "{:<10} {:>5} {:>9} {:>10} {:>7}",
        "phase", "MHz", "true W", "est. W", "err %"
    );
    let mut worst: f64 = 0.0;
    for (i, w) in kernels.iter().enumerate() {
        let freq = [1200u32, 2000, 2600][i % 3];
        let phase = &w.phases(24)[0];
        let obs = machine.observe(
            &phase.activity,
            &PhaseContext {
                workload_id: w.id,
                phase_id: 0,
                run_id: 1000 + i as u32, // live run, unseen noise
                threads: 24,
                freq_mhz: freq,
                duration_s: 1.0,
            },
        );
        // Counter deltas → rates per available core cycle.
        let avail = machine.config().total_cores() as f64 * freq as f64 * 1e6 * obs.duration_s;
        let rates: Vec<f64> = restored
            .events
            .iter()
            .map(|e| obs.counters[e.index()] / avail)
            .collect();
        let estimate = restored
            .predict_raw(&rates, obs.voltage, freq)
            .expect("predict");
        let err = 100.0 * (estimate - obs.power_true) / obs.power_true;
        worst = worst.max(err.abs());
        println!(
            "{:<10} {:>5} {:>9.1} {:>10.1} {:>+7.2}",
            w.name, freq, obs.power_true, estimate, err
        );
    }
    println!("\nworst live error: {worst:.2}% — no wattmeter attached.");
}
