//! Process-level training resume: SIGKILL the real `pmc-serve` binary
//! mid-training and prove the next life resumes the incremental OLS
//! fit **bitwise** — the restored stream produces exactly the
//! coefficient bits an uninterrupted run of the same labeled stream
//! would have. The fit's sufficient statistics ride the engine
//! checkpoint (`training` section), so nothing after the last explicit
//! checkpoint may matter and nothing before it may be lost.
//!
//! Seeded via `TRAIN_SEED` (default 1; CI runs 1/7/42), which shifts
//! the deterministic labeled stream.

use pmc_events::PapiEvent;
use pmc_json::Json;
use pmc_model::dataset::{Dataset, SampleRow};
use pmc_model::model::PowerModel;
use pmc_serve::registry::ModelRegistry;
use pmc_serve::server::{PowerServer, ServerConfig};
use pmc_serve::{CounterSample, ModelArtifact, PowerClient};
use std::io::{BufRead, BufReader};
use std::path::Path;
use std::process::{Child, ChildStdin, Command, Stdio};
use std::sync::Arc;

/// Matches the fixture dataset's thread count, so wire deltas divide
/// back into exactly the rates the model was fitted on.
const CORES: f64 = 24.0;

fn train_seed() -> u64 {
    std::env::var("TRAIN_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(1)
}

/// Same synthetic fixture as the crate's unit tests: power exactly
/// linear in three event rates.
fn tiny_dataset(n: usize) -> Dataset {
    let mut rows = Vec::with_capacity(n);
    for i in 0..n {
        let freq_mhz = [1200u32, 1600, 2000, 2400, 2600][i % 5];
        let f = freq_mhz as f64 / 1000.0;
        let v = 0.492857 + 0.214286 * f;
        let mut rates: Vec<f64> = (0..PapiEvent::COUNT)
            .map(|j| ((31 * i + 17 * j + i * i * (j + 3)) % 97) as f64 / 9700.0)
            .collect();
        rates[PapiEvent::PRF_DM.index()] = 0.001 + 0.00002 * (i as f64);
        rates[PapiEvent::TOT_CYC.index()] = 0.2 + 0.01 * ((i * 7 % 13) as f64);
        rates[PapiEvent::TLB_IM.index()] = 0.0005 + 0.00001 * ((i * 5 % 11) as f64);
        let v2f = v * v * f;
        let power = 5000.0 * rates[PapiEvent::PRF_DM.index()] * v2f
            + 120.0 * rates[PapiEvent::TOT_CYC.index()] * v2f
            + 900.0 * rates[PapiEvent::TLB_IM.index()] * v2f
            + 20.0 * v2f
            + 40.0 * v
            + 70.0;
        rows.push(SampleRow {
            workload_id: (i % 8) as u32,
            workload: format!("w{}", i % 8),
            suite: "roco2".into(),
            phase: "main".into(),
            threads: 24,
            freq_mhz,
            duration_s: 1.0,
            voltage: v,
            power,
            rates,
        });
    }
    Dataset::from_rows(rows)
}

fn tiny_model() -> PowerModel {
    PowerModel::fit(
        &tiny_dataset(40),
        &[PapiEvent::PRF_DM, PapiEvent::TOT_CYC, PapiEvent::TLB_IM],
    )
    .expect("well-posed synthetic fit")
}

/// One labeled training sample following the fixture law, with a
/// +7.5 W drift so the incremental fit actually diverges from the
/// active model's coefficients (a fit of all-zero residuals would
/// make the bitwise comparison vacuous).
fn labeled(i: usize) -> (CounterSample, f64) {
    let freq_mhz = [1200u32, 1600, 2000, 2400, 2600][i % 5];
    let f = freq_mhz as f64 / 1000.0;
    let v = 0.492857 + 0.214286 * f;
    let r_prf = 0.001 + 0.00002 * (i as f64);
    // The extra aperiodic (mod-29) component breaks the lattice
    // degeneracy of the pure fixture law: for some 20-row windows the
    // periodic rates make the v²f regressor collinear with the rate
    // columns to machine precision, which (correctly) leaves the fit
    // cold — but this test needs a warm, determined fit at every
    // TRAIN_SEED offset to compare coefficient bits.
    let r_cyc = 0.2 + 0.01 * ((i * 7 % 13) as f64) + 0.003 * ((i * i % 29) as f64) / 29.0;
    let r_tlb = 0.0005 + 0.00001 * ((i * 5 % 11) as f64);
    let v2f = v * v * f;
    let power = 5000.0 * r_prf * v2f
        + 120.0 * r_cyc * v2f
        + 900.0 * r_tlb * v2f
        + 20.0 * v2f
        + 40.0 * v
        + 70.0
        + 7.5;
    let avail = CORES * freq_mhz as f64 * 1e6;
    let sample = CounterSample {
        time_ns: (i as u64 + 1) * 250_000_000,
        duration_s: 1.0,
        freq_mhz,
        voltage: v,
        deltas: vec![r_prf * avail, r_cyc * avail, r_tlb * avail],
        missing: Vec::new(),
    };
    (sample, power)
}

struct ServeProc {
    child: Child,
    stdin: Option<ChildStdin>,
    addr: String,
}

fn spawn_serve(model_path: &Path, ck_path: &Path) -> ServeProc {
    let mut child = Command::new(env!("CARGO_BIN_EXE_pmc-serve"))
        .args([
            "serve",
            "--addr",
            "127.0.0.1:0",
            "--model",
            model_path.to_str().unwrap(),
            "--checkpoint",
            ck_path.to_str().unwrap(),
            "--checkpoint-interval-ms",
            "0",
        ])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn pmc-serve");
    let stdin = child.stdin.take();
    let stdout = child.stdout.take().expect("stdout piped");
    let mut lines = BufReader::new(stdout).lines();
    let first = lines
        .next()
        .expect("server must print its address")
        .expect("readable stdout");
    let addr = first
        .strip_prefix("listening on ")
        .unwrap_or_else(|| panic!("unexpected banner: {first}"))
        .to_string();
    ServeProc { child, stdin, addr }
}

impl ServeProc {
    /// SIGKILL — no drain, no final checkpoint, the real crash.
    fn kill_hard(mut self) {
        self.child.kill().expect("kill -9");
        let _ = self.child.wait();
    }

    fn shutdown_clean(mut self) {
        drop(self.stdin.take());
        let _ = self.child.wait();
    }
}

fn coef_bits(resp: &Json) -> Vec<String> {
    resp.arr_field("coef_bits")
        .expect("warm fit reports coefficient bits")
        .iter()
        .map(|b| b.as_str().unwrap().to_string())
        .collect()
}

#[test]
fn sigkill_mid_training_resumes_the_fit_bitwise() {
    let offset = (train_seed() as usize % 17) * 3;
    let total = 20usize;
    let split = 10usize;

    let dir = std::env::temp_dir().join(format!("pmc-train-proc-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let model_path = dir.join("model.json");
    let ck_path = dir.join("engine.ckpt");
    std::fs::write(
        &model_path,
        ModelArtifact::new("hsw", tiny_model()).to_json().unwrap(),
    )
    .unwrap();

    // Uninterrupted reference, in-process (identical trainer defaults:
    // the in-process server and the binary share `ServerConfig`).
    let reference = {
        let registry = Arc::new(ModelRegistry::default());
        registry
            .load_and_activate(ModelArtifact::new("hsw", tiny_model()))
            .unwrap();
        let mut server = PowerServer::start(ServerConfig::default(), registry).unwrap();
        let mut c = PowerClient::connect(server.addr()).unwrap();
        let mut last = None;
        for i in 0..total {
            let (sample, power) = labeled(offset + i);
            let r = c.train(&sample, power).unwrap();
            assert!(r.field("accepted").unwrap().as_bool().unwrap());
            last = Some(r);
        }
        server.shutdown();
        last.unwrap()
    };

    // First life: half the labeled stream, an explicit checkpoint,
    // then SIGKILL mid-training.
    let proc1 = spawn_serve(&model_path, &ck_path);
    {
        let mut c = PowerClient::connect(proc1.addr.as_str()).unwrap();
        for i in 0..split {
            let (sample, power) = labeled(offset + i);
            let r = c.train(&sample, power).unwrap();
            assert!(r.field("accepted").unwrap().as_bool().unwrap(), "{r}");
        }
        c.checkpoint_now().unwrap();
    }
    proc1.kill_hard();
    assert!(ck_path.exists(), "checkpoint must survive the kill");

    // Second life: the fit resumes from the checkpoint and the tail of
    // the stream lands on it.
    let proc2 = spawn_serve(&model_path, &ck_path);
    let resumed = {
        let mut c = PowerClient::connect(proc2.addr.as_str()).unwrap();
        let mut last = None;
        for i in split..total {
            let (sample, power) = labeled(offset + i);
            let r = c.train(&sample, power).unwrap();
            assert!(r.field("accepted").unwrap().as_bool().unwrap(), "{r}");
            last = Some(r);
        }
        last.unwrap()
    };
    proc2.shutdown_clean();

    // Bitwise: every restored coefficient carries the exact bits of
    // the uninterrupted run's, and the sample count carried across.
    assert_eq!(
        resumed.u64_field("n").unwrap(),
        reference.u64_field("n").unwrap()
    );
    assert_eq!(coef_bits(&resumed), coef_bits(&reference));
    // The rolling score window also crossed the kill: the resumed
    // life reports the same scored-label count, not a cold window.
    assert_eq!(
        resumed.usize_field("scored_active").unwrap(),
        reference.usize_field("scored_active").unwrap()
    );
    let _ = std::fs::remove_dir_all(&dir);
}
