//! Process-level crash recovery: SIGKILL the real `pmc-serve` binary
//! and prove the next life resumes warm from the checkpoint file.
//!
//! The in-process tests (`tests/recovery_e2e.rs` at the workspace
//! root) exercise drain-time checkpoints; this file covers the part
//! only a real process death can: `kill -9` leaves no drain, so the
//! survival of the durable windows rests entirely on the last
//! explicit/periodic checkpoint and on the restore path of a freshly
//! exec'd server. Also proves the boot-time quarantine report a torn
//! checkpoint produces on stderr.

use pmc_events::PapiEvent;
use pmc_model::dataset::{Dataset, SampleRow};
use pmc_model::model::PowerModel;
use pmc_serve::registry::ModelRegistry;
use pmc_serve::server::{PowerServer, ServerConfig};
use pmc_serve::{CounterSample, ModelArtifact, PowerClient};
use std::io::{BufRead, BufReader};
use std::path::Path;
use std::process::{Child, ChildStdin, Command, Stdio};
use std::sync::Arc;

/// Same synthetic fixture as the crate's unit tests: power exactly
/// linear in three event rates, so fits and estimates are reproducible
/// to machine epsilon across processes.
fn tiny_dataset(n: usize) -> Dataset {
    let mut rows = Vec::with_capacity(n);
    for i in 0..n {
        let freq_mhz = [1200u32, 1600, 2000, 2400, 2600][i % 5];
        let f = freq_mhz as f64 / 1000.0;
        let v = 0.492857 + 0.214286 * f;
        let mut rates: Vec<f64> = (0..PapiEvent::COUNT)
            .map(|j| ((31 * i + 17 * j + i * i * (j + 3)) % 97) as f64 / 9700.0)
            .collect();
        rates[PapiEvent::PRF_DM.index()] = 0.001 + 0.00002 * (i as f64);
        rates[PapiEvent::TOT_CYC.index()] = 0.2 + 0.01 * ((i * 7 % 13) as f64);
        rates[PapiEvent::TLB_IM.index()] = 0.0005 + 0.00001 * ((i * 5 % 11) as f64);
        let v2f = v * v * f;
        let power = 5000.0 * rates[PapiEvent::PRF_DM.index()] * v2f
            + 120.0 * rates[PapiEvent::TOT_CYC.index()] * v2f
            + 900.0 * rates[PapiEvent::TLB_IM.index()] * v2f
            + 20.0 * v2f
            + 40.0 * v
            + 70.0;
        rows.push(SampleRow {
            workload_id: (i % 8) as u32,
            workload: format!("w{}", i % 8),
            suite: "roco2".into(),
            phase: "main".into(),
            threads: 24,
            freq_mhz,
            duration_s: 1.0,
            voltage: v,
            power,
            rates,
        });
    }
    Dataset::from_rows(rows)
}

fn tiny_model() -> PowerModel {
    PowerModel::fit(
        &tiny_dataset(40),
        &[PapiEvent::PRF_DM, PapiEvent::TOT_CYC, PapiEvent::TLB_IM],
    )
    .expect("well-posed synthetic fit")
}

fn sample_for(model: &PowerModel, data: &Dataset, i: usize) -> CounterSample {
    let row = &data.rows()[i % data.rows().len()];
    let avail = 24.0 * row.freq_mhz as f64 * 1e6 * row.duration_s;
    CounterSample {
        time_ns: (i as u64 + 1) * 250_000_000,
        duration_s: row.duration_s,
        freq_mhz: row.freq_mhz,
        voltage: row.voltage,
        deltas: model.events.iter().map(|e| row.rate(*e) * avail).collect(),
        missing: vec![],
    }
}

/// A running `pmc-serve serve` child plus the stdin handle keeping it
/// alive and the parsed ephemeral address it bound.
struct ServeProc {
    child: Child,
    stdin: Option<ChildStdin>,
    addr: String,
}

/// Spawns the real binary on an ephemeral port and waits for its
/// "listening on" line.
fn spawn_serve(model_path: &Path, ck_path: &Path) -> ServeProc {
    let mut child = Command::new(env!("CARGO_BIN_EXE_pmc-serve"))
        .args([
            "serve",
            "--addr",
            "127.0.0.1:0",
            "--model",
            model_path.to_str().unwrap(),
            "--checkpoint",
            ck_path.to_str().unwrap(),
            "--checkpoint-interval-ms",
            "0",
        ])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn pmc-serve");
    let stdin = child.stdin.take();
    let stdout = child.stdout.take().expect("stdout piped");
    let mut lines = BufReader::new(stdout).lines();
    let first = lines
        .next()
        .expect("server must print its address")
        .expect("readable stdout");
    let addr = first
        .strip_prefix("listening on ")
        .unwrap_or_else(|| panic!("unexpected banner: {first}"))
        .to_string();
    ServeProc { child, stdin, addr }
}

impl ServeProc {
    /// SIGKILL — no drain, no final checkpoint, the real crash.
    fn kill_hard(mut self) {
        self.child.kill().expect("kill -9");
        let _ = self.child.wait();
    }

    /// Closes stdin (the conventional shutdown trigger) and collects
    /// the exit status plus everything the server wrote to stderr.
    fn shutdown_clean(mut self) -> String {
        drop(self.stdin.take());
        let out = self.child.wait_with_output().expect("server exit");
        assert!(out.status.success(), "clean shutdown must exit 0");
        String::from_utf8_lossy(&out.stderr).into_owned()
    }
}

#[test]
fn sigkill_then_restart_resumes_from_last_explicit_checkpoint() {
    let model = tiny_model();
    let data = tiny_dataset(24);
    let total = 20usize;
    let split = 10usize;
    let token = "proc-sensor";

    let dir = std::env::temp_dir().join(format!("pmc-proc-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let model_path = dir.join("model.json");
    let ck_path = dir.join("engine.ckpt");
    std::fs::write(
        &model_path,
        ModelArtifact::new("hsw", tiny_model()).to_json().unwrap(),
    )
    .unwrap();

    // Uninterrupted reference, in-process (identical engine defaults).
    let reference = {
        let registry = Arc::new(ModelRegistry::default());
        registry
            .load_and_activate(ModelArtifact::new("hsw", tiny_model()))
            .unwrap();
        let mut server = PowerServer::start(ServerConfig::default(), registry).unwrap();
        let mut c = PowerClient::connect(server.addr()).unwrap();
        c.resume(token).unwrap();
        let mut last = None;
        for i in 0..total {
            last = Some(c.ingest(&sample_for(&model, &data, i)).unwrap());
        }
        server.shutdown();
        last.unwrap()
    };

    // First life: stream the head, checkpoint explicitly, die by
    // SIGKILL — nothing after the snapshot may matter.
    let proc1 = spawn_serve(&model_path, &ck_path);
    {
        let mut c = PowerClient::connect(proc1.addr.as_str()).unwrap();
        assert!(!c.resume(token).unwrap());
        for i in 0..split {
            c.ingest(&sample_for(&model, &data, i)).unwrap();
        }
        assert_eq!(c.checkpoint_now().unwrap(), 1);
    }
    proc1.kill_hard();
    assert!(ck_path.exists(), "checkpoint must survive the kill");

    // Second life: warm resume, stream the tail, match the reference.
    let proc2 = spawn_serve(&model_path, &ck_path);
    let resumed = {
        let mut c = PowerClient::connect(proc2.addr.as_str()).unwrap();
        assert!(
            c.resume(token).unwrap(),
            "restarted server must find the token's window in the checkpoint"
        );
        let mut last = None;
        for i in split..total {
            last = Some(c.ingest(&sample_for(&model, &data, i)).unwrap());
        }
        last.unwrap()
    };
    let stderr = proc2.shutdown_clean();
    assert!(
        stderr.contains("checkpoint restored: 1 client window(s) warm"),
        "stderr: {stderr}"
    );

    let drift_pp = 100.0 * (resumed.power_w - reference.power_w).abs() / reference.power_w;
    assert!(drift_pp <= 2.0, "restart drifted {drift_pp:.4} pp");
    assert_eq!(resumed.power_w.to_bits(), reference.power_w.to_bits());
    assert_eq!(resumed.samples_in_window, reference.samples_in_window);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn torn_checkpoint_on_disk_is_reported_and_never_blocks_boot() {
    let dir = std::env::temp_dir().join(format!("pmc-proc-torn-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let model_path = dir.join("model.json");
    let ck_path = dir.join("engine.ckpt");
    std::fs::write(
        &model_path,
        ModelArtifact::new("hsw", tiny_model()).to_json().unwrap(),
    )
    .unwrap();
    // A plausible half-written file: valid magic, bogus CRC, torn body.
    std::fs::write(&ck_path, b"PMCCKPT1 deadbeef\n{\"clients\":[{\"trunc").unwrap();

    // The server must still boot and serve — printing the banner IS
    // the proof (spawn_serve blocks on it).
    let proc1 = spawn_serve(&model_path, &ck_path);
    {
        let mut c = PowerClient::connect(proc1.addr.as_str()).unwrap();
        assert!(!c.resume("anyone").unwrap(), "cold start: nothing warm");
        c.ping(0).unwrap();
    }
    let stderr = proc1.shutdown_clean();
    assert!(
        stderr.contains("checkpoint rejected"),
        "boot must report the quarantine: {stderr}"
    );
    assert!(stderr.contains("quarantined to"), "stderr: {stderr}");
    let corrupt = dir.join("engine.ckpt.corrupt");
    assert!(corrupt.exists(), "torn file must be moved aside");
    // The clean drain wrote a fresh, valid checkpoint at the original
    // path — the quarantine cleared the way for it.
    let fresh = std::fs::read(&ck_path).expect("drain rewrites the checkpoint");
    assert!(
        fresh.starts_with(b"PMCCKPT1 "),
        "not a checkpoint: {fresh:?}"
    );
    assert_ne!(fresh, b"PMCCKPT1 deadbeef\n{\"clients\":[{\"trunc".to_vec());
    let _ = std::fs::remove_dir_all(&dir);
}
