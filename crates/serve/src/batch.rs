//! The coalescing batch scheduler.
//!
//! Workers do not execute queued requests one at a time: each worker
//! drains the shared job queue into an **assembly** — a run of jobs it
//! will answer in order — so that consecutive `ingest` frames can be
//! evaluated by one batched model call ([`crate::engine::EstimatorEngine::estimate_batch`])
//! instead of one call per request. Two knobs govern assembly:
//!
//! - **`batch_max`** — dispatch as soon as this many jobs accumulate.
//! - **`batch_linger`** — with a batch started by an `ingest`, wait
//!   until the *oldest* job has been queued this long for more work to
//!   coalesce. Zero (the default) means *opportunistic* assembly: take
//!   whatever is already queued, never wait — a solo request pays no
//!   added latency.
//!
//! Assembly is also where deadline shedding happens: a job that has
//! outlived [`crate::server::ServerConfig::queue_deadline`] at drain
//! time is diverted into the assembly's `shed` list and never enters a
//! batch — the client gets a typed `overloaded` answer, not a stale
//! batched estimate. A job whose **propagated** budget (the frame's
//! `deadline_ms`, resolved to an absolute expiry at enqueue) ran out
//! is diverted into `expired` instead and answered with the typed
//! `deadline_exceeded` status — the client's patience is gone, so a
//! retry hint would be a lie.
//!
//! The scheduler is written against the [`BatchSource`] trait rather
//! than the worker channel directly, so tests drive it with a
//! virtual-time scripted source (`BatchProbe`) and assert exactly which
//! jobs land in which batch — batch formation is deterministic given an
//! arrival schedule, never timing-dependent.

use crate::protocol::{is_ingest_frame, Encoding};
use pmc_json::Json;
use std::sync::mpsc::{Receiver, RecvTimeoutError, TryRecvError};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// A parsed-but-unexecuted request handed to the worker pool.
#[derive(Debug)]
pub(crate) struct Job {
    /// Connection id the response routes back to.
    pub conn: u64,
    /// Engine key the request's state accumulates under — equals
    /// `conn` unless the connection resumed a durable token.
    pub client: u64,
    /// The raw request frame; parsed after assembly.
    pub frame: Json,
    /// When the core queued the job (drives shedding and linger).
    pub enqueued: Instant,
    /// Absolute expiry of the request's propagated `deadline_ms`
    /// budget, resolved against the local clock at enqueue time.
    /// `None` when the client stamped no budget.
    pub deadline: Option<Instant>,
    /// The connection's negotiated response encoding at enqueue time —
    /// workers pre-encode responses, so it must ride with the job.
    pub encoding: Encoding,
}

impl Job {
    /// True if this job is an `ingest` — the only op worth lingering
    /// for, since only ingests coalesce into a batched model call.
    pub fn is_ingest(&self) -> bool {
        is_ingest_frame(&self.frame)
    }
}

/// Assembly tuning, resolved once per worker from the server config.
#[derive(Debug, Clone, Copy)]
pub(crate) struct BatchPolicy {
    /// Dispatch when this many jobs have been admitted.
    pub max: usize,
    /// How long the oldest admitted ingest may wait for company.
    pub linger: Duration,
    /// Jobs older than this at drain time are shed, never batched.
    pub queue_deadline: Option<Duration>,
}

/// One worker dispatch: the jobs to answer, in queue order.
#[derive(Debug, Default)]
pub(crate) struct Assembly {
    /// Jobs to execute, oldest first.
    pub jobs: Vec<Job>,
    /// Jobs that outlived the queue deadline while queued; they must
    /// be answered with a typed overload frame without executing.
    pub shed: Vec<Job>,
    /// Jobs whose *propagated* deadline budget (`deadline_ms`) ran out
    /// while queued. Kept separate from `shed`: an overload answer
    /// invites a retry, while an exceeded budget must be answered with
    /// the typed `deadline_exceeded` status — retrying inside a spent
    /// budget only adds load.
    pub expired: Vec<Job>,
    /// The linger deadline expired before the batch filled.
    pub lingered: bool,
}

/// Where a worker's jobs come from. The production implementation is
/// the shared worker channel ([`ChannelSource`]); tests substitute a
/// scripted virtual-time source so assembly decisions are reproducible.
pub(crate) trait BatchSource {
    /// Blocks for the next job; `None` means the queue is closed and
    /// the worker should retire.
    fn recv(&mut self) -> Option<Job>;
    /// Waits up to `timeout` for a job. A zero timeout only takes what
    /// is already queued.
    fn recv_timeout(&mut self, timeout: Duration) -> Result<Job, RecvTimeoutError>;
    /// The source's clock — monotonic, comparable with job `enqueued`
    /// stamps.
    fn now(&self) -> Instant;
}

/// The worker pool's shared queue as a [`BatchSource`].
///
/// The queue lock is acquired on the first `recv` of an assembly and
/// **held until [`ChannelSource::release`]** — one worker drains the
/// queue at a time, which is what lets consecutive requests coalesce
/// into its batch. Re-acquiring per call would deadlock: a sibling can
/// hold the lock blocked inside `recv()`, waiting for a job that will
/// not arrive until this worker's responses go out. The worker loop
/// releases the lock before executing, so siblings drain while it
/// works.
pub(crate) struct ChannelSource<'a> {
    rx: &'a Mutex<Receiver<Job>>,
    held: Option<std::sync::MutexGuard<'a, Receiver<Job>>>,
}

impl<'a> ChannelSource<'a> {
    pub fn new(rx: &'a Mutex<Receiver<Job>>) -> Self {
        ChannelSource { rx, held: None }
    }

    /// Hands the queue to sibling workers; call as soon as assembly is
    /// done and before any request executes.
    pub fn release(&mut self) {
        self.held = None;
    }

    fn queue(&mut self) -> &Receiver<Job> {
        if self.held.is_none() {
            // A sibling worker that panicked while holding the lock
            // poisons it; the receiver itself is still sound, so
            // recover the guard rather than cascading the crash.
            self.held = Some(self.rx.lock().unwrap_or_else(|e| e.into_inner()));
        }
        self.held.as_ref().expect("just acquired")
    }
}

impl BatchSource for ChannelSource<'_> {
    fn recv(&mut self) -> Option<Job> {
        self.queue().recv().ok()
    }

    fn recv_timeout(&mut self, timeout: Duration) -> Result<Job, RecvTimeoutError> {
        let queue = self.queue();
        if timeout.is_zero() {
            queue.try_recv().map_err(|e| match e {
                TryRecvError::Empty => RecvTimeoutError::Timeout,
                TryRecvError::Disconnected => RecvTimeoutError::Disconnected,
            })
        } else {
            queue.recv_timeout(timeout)
        }
    }

    fn now(&self) -> Instant {
        Instant::now()
    }
}

/// Drains the source into one [`Assembly`]. Blocks for the first job;
/// returns `None` only when the queue is closed with nothing pending
/// (the worker's signal to retire).
///
/// Invariants the tests pin down:
/// - at most `max` jobs are admitted per assembly;
/// - a job past the queue deadline at drain time is shed, never
///   admitted — even if it arrived first;
/// - linger only ever applies when the first admitted job is an
///   `ingest` and `linger > 0`, and the wait is measured from that
///   job's *enqueue* time, so time already spent queued counts;
/// - with `linger == 0` the source is never waited on: the assembly is
///   whatever had already been queued (plus the blocking first job).
pub(crate) fn assemble<S: BatchSource>(source: &mut S, policy: &BatchPolicy) -> Option<Assembly> {
    let max = policy.max.max(1);
    let mut next = Some(source.recv()?);
    let mut asm = Assembly::default();
    loop {
        if let Some(job) = next.take() {
            let now = source.now();
            let age = now.saturating_duration_since(job.enqueued);
            if job.deadline.is_some_and(|d| now >= d) {
                asm.expired.push(job);
            } else if policy.queue_deadline.is_some_and(|d| age > d) {
                asm.shed.push(job);
            } else {
                asm.jobs.push(job);
            }
        }
        if asm.jobs.len() >= max {
            break;
        }
        let linger_active = match asm.jobs.first() {
            Some(first) => !policy.linger.is_zero() && first.is_ingest(),
            // Everything drained so far was shed: take whatever else is
            // already queued (zero wait), but never block — the shed
            // clients are already waiting for their answers.
            None if !asm.shed.is_empty() || !asm.expired.is_empty() => false,
            None => match source.recv() {
                Some(j) => {
                    next = Some(j);
                    continue;
                }
                None => break,
            },
        };
        let wait = if linger_active {
            (asm.jobs[0].enqueued + policy.linger).saturating_duration_since(source.now())
        } else {
            Duration::ZERO
        };
        match source.recv_timeout(wait) {
            Ok(j) => next = Some(j),
            Err(RecvTimeoutError::Timeout) => {
                asm.lingered = linger_active;
                break;
            }
            Err(RecvTimeoutError::Disconnected) => break,
        }
    }
    Some(asm)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::VecDeque;

    /// A deterministic, virtual-time [`BatchSource`]: jobs arrive at
    /// scripted offsets from a fixed base instant, and "waiting" just
    /// advances the virtual clock. Assembly behavior under any arrival
    /// interleaving is therefore exactly reproducible.
    struct BatchProbe {
        base: Instant,
        /// Virtual time elapsed since `base`.
        clock: Duration,
        /// `(arrival offset, job)` in arrival order.
        arrivals: VecDeque<(Duration, Job)>,
    }

    impl BatchProbe {
        /// `base` must be the same instant the jobs' `enqueued` stamps
        /// were built against — virtual time is offsets from it, and a
        /// second wall-clock read here would leak real elapsed time
        /// into the ages.
        fn new(base: Instant, arrivals: Vec<(Duration, Job)>) -> Self {
            let mut arrivals = arrivals;
            arrivals.sort_by_key(|(at, _)| *at);
            BatchProbe {
                base,
                clock: Duration::ZERO,
                arrivals: arrivals.into(),
            }
        }
    }

    impl BatchSource for BatchProbe {
        fn recv(&mut self) -> Option<Job> {
            let (at, job) = self.arrivals.pop_front()?;
            self.clock = self.clock.max(at);
            Some(job)
        }

        fn recv_timeout(&mut self, timeout: Duration) -> Result<Job, RecvTimeoutError> {
            match self.arrivals.front() {
                Some((at, _)) if *at <= self.clock + timeout => {
                    let (at, job) = self.arrivals.pop_front().expect("peeked");
                    self.clock = self.clock.max(at);
                    Ok(job)
                }
                Some(_) => {
                    self.clock += timeout;
                    Err(RecvTimeoutError::Timeout)
                }
                None => {
                    // The script ended: treat the queue as open but
                    // idle, so a linger wait times out rather than
                    // seeing a disconnect.
                    self.clock += timeout;
                    Err(RecvTimeoutError::Timeout)
                }
            }
        }

        fn now(&self) -> Instant {
            self.base + self.clock
        }
    }

    fn ingest_job(probe_base: Instant, conn: u64, enqueued_us: u64) -> (Duration, Job) {
        let at = Duration::from_micros(enqueued_us);
        (
            at,
            Job {
                conn,
                client: conn,
                frame: Json::obj(vec![("op", Json::from("ingest"))]),
                enqueued: probe_base + at,
                deadline: None,
                encoding: Encoding::Json,
            },
        )
    }

    fn control_job(probe_base: Instant, conn: u64, enqueued_us: u64) -> (Duration, Job) {
        let at = Duration::from_micros(enqueued_us);
        (
            at,
            Job {
                conn,
                client: conn,
                frame: Json::obj(vec![("op", Json::from("stats"))]),
                enqueued: probe_base + at,
                deadline: None,
                encoding: Encoding::Json,
            },
        )
    }

    fn policy(max: usize, linger_us: u64, deadline_ms: Option<u64>) -> BatchPolicy {
        BatchPolicy {
            max,
            linger: Duration::from_micros(linger_us),
            queue_deadline: deadline_ms.map(Duration::from_millis),
        }
    }

    fn conns(asm: &Assembly) -> Vec<u64> {
        asm.jobs.iter().map(|j| j.conn).collect()
    }

    #[test]
    fn fills_to_max_and_leaves_the_rest() {
        let base = Instant::now();
        let arrivals = (0..6).map(|c| ingest_job(base, c, 0)).collect();
        let mut probe = BatchProbe {
            base,
            clock: Duration::ZERO,
            arrivals,
        };
        let asm = assemble(&mut probe, &policy(4, 0, None)).unwrap();
        assert_eq!(conns(&asm), vec![0, 1, 2, 3]);
        assert!(!asm.lingered);
        let rest = assemble(&mut probe, &policy(4, 0, None)).unwrap();
        assert_eq!(conns(&rest), vec![4, 5]);
    }

    #[test]
    fn zero_linger_never_waits_for_a_solo_request() {
        let base = Instant::now();
        let probe_base;
        let mut probe = {
            // One job now, the next 10 ms later: with linger 0 the
            // first must dispatch alone, at its own arrival time.
            let arrivals = vec![ingest_job(base, 1, 0), ingest_job(base, 2, 10_000)];
            probe_base = base;
            BatchProbe {
                base,
                clock: Duration::ZERO,
                arrivals: arrivals.into(),
            }
        };
        let asm = assemble(&mut probe, &policy(8, 0, None)).unwrap();
        assert_eq!(conns(&asm), vec![1]);
        assert!(!asm.lingered);
        assert_eq!(probe.now(), probe_base, "zero linger must not advance time");
    }

    #[test]
    fn linger_holds_the_batch_open_until_the_oldest_times_out() {
        let base = Instant::now();
        // Jobs at 0, 40 µs, 80 µs; linger 100 µs → all three coalesce,
        // and dispatch happens via linger timeout at t = 100 µs.
        let arrivals = vec![
            ingest_job(base, 1, 0),
            ingest_job(base, 2, 40),
            ingest_job(base, 3, 80),
        ];
        let mut probe = BatchProbe {
            base,
            clock: Duration::ZERO,
            arrivals: arrivals.into(),
        };
        let asm = assemble(&mut probe, &policy(8, 100, None)).unwrap();
        assert_eq!(conns(&asm), vec![1, 2, 3]);
        assert!(asm.lingered);
        assert_eq!(probe.now() - base, Duration::from_micros(100));
    }

    #[test]
    fn linger_counts_time_already_spent_queued() {
        let base = Instant::now();
        // The worker picks the job up 300 µs after it was enqueued —
        // already past the 100 µs linger. No extra wait is allowed:
        // the batch is whatever else is instantly available.
        let (_, mut stale_start) = ingest_job(base, 1, 0);
        stale_start.enqueued = base; // enqueued at t=0
        let arrivals = vec![
            (Duration::from_micros(300), stale_start),
            ingest_job(base, 2, 300),
            ingest_job(base, 3, 500),
        ];
        let mut probe = BatchProbe {
            base,
            clock: Duration::ZERO,
            arrivals: arrivals.into(),
        };
        let asm = assemble(&mut probe, &policy(8, 100, None)).unwrap();
        assert_eq!(conns(&asm), vec![1, 2]);
        assert!(asm.lingered);
        assert_eq!(
            probe.now() - base,
            Duration::from_micros(300),
            "an expired linger budget must not buy extra waiting"
        );
    }

    #[test]
    fn stale_jobs_are_shed_at_assembly_never_batched() {
        let base = Instant::now();
        // Job 1 was enqueued 5 ms before the worker drains it; the
        // queue deadline is 2 ms. It must land in `shed`, and the
        // fresh jobs behind it form the batch.
        let (_, mut stale) = ingest_job(base, 1, 0);
        stale.enqueued = base;
        let arrivals = vec![
            (Duration::from_millis(5), stale),
            ingest_job(base, 2, 5_000),
            ingest_job(base, 3, 5_000),
        ];
        let mut probe = BatchProbe {
            base,
            clock: Duration::ZERO,
            arrivals: arrivals.into(),
        };
        let asm = assemble(&mut probe, &policy(8, 0, Some(2))).unwrap();
        assert_eq!(asm.shed.len(), 1);
        assert_eq!(asm.shed[0].conn, 1);
        assert_eq!(conns(&asm), vec![2, 3]);
    }

    #[test]
    fn expired_budget_jobs_land_in_expired_not_shed() {
        let base = Instant::now();
        // Job 1 carried a 2 ms budget and spent 5 ms queued: its
        // propagated deadline wins over the (longer) queue deadline
        // and it lands in `expired`. Job 2's 20 ms budget is intact.
        let (_, mut spent) = ingest_job(base, 1, 0);
        spent.enqueued = base;
        spent.deadline = Some(base + Duration::from_millis(2));
        let (at2, mut alive) = ingest_job(base, 2, 5_000);
        alive.deadline = Some(base + Duration::from_millis(20));
        let arrivals = vec![(Duration::from_millis(5), spent), (at2, alive)];
        let mut probe = BatchProbe {
            base,
            clock: Duration::ZERO,
            arrivals: arrivals.into(),
        };
        let asm = assemble(&mut probe, &policy(8, 0, Some(50))).unwrap();
        assert_eq!(asm.expired.len(), 1);
        assert_eq!(asm.expired[0].conn, 1);
        assert!(asm.shed.is_empty());
        assert_eq!(conns(&asm), vec![2]);
    }

    #[test]
    fn all_expired_assembly_dispatches_without_blocking() {
        // Mirror of the all-shed case: when everything drained so far
        // ran out of budget, the worker must answer those clients now,
        // never block waiting for fresh work.
        let base = Instant::now();
        let (_, mut spent) = ingest_job(base, 1, 0);
        spent.enqueued = base;
        spent.deadline = Some(base);
        let arrivals = vec![(Duration::from_millis(1), spent)];
        let mut probe = BatchProbe {
            base,
            clock: Duration::ZERO,
            arrivals: arrivals.into(),
        };
        let asm = assemble(&mut probe, &policy(8, 0, None)).unwrap();
        assert!(asm.jobs.is_empty() && asm.shed.is_empty());
        assert_eq!(asm.expired.len(), 1);
    }

    #[test]
    fn all_stale_assembly_dispatches_sheds_without_blocking() {
        let base = Instant::now();
        let (_, mut stale) = ingest_job(base, 1, 0);
        stale.enqueued = base;
        let arrivals = vec![(Duration::from_millis(10), stale)];
        let mut probe = BatchProbe {
            base,
            clock: Duration::ZERO,
            arrivals: arrivals.into(),
        };
        let asm = assemble(&mut probe, &policy(8, 0, Some(2))).unwrap();
        assert!(asm.jobs.is_empty());
        assert_eq!(asm.shed.len(), 1);
    }

    #[test]
    fn control_ops_do_not_linger() {
        let base = Instant::now();
        // A stats op leads; an ingest would arrive within the linger
        // window, but control ops never wait for company.
        let arrivals = vec![control_job(base, 1, 0), ingest_job(base, 2, 50)];
        let mut probe = BatchProbe {
            base,
            clock: Duration::ZERO,
            arrivals: arrivals.into(),
        };
        let asm = assemble(&mut probe, &policy(8, 1_000, None)).unwrap();
        assert_eq!(conns(&asm), vec![1]);
        assert!(!asm.lingered);
        assert_eq!(probe.now(), base, "control op must dispatch immediately");
    }

    #[test]
    fn closed_queue_retires_the_worker() {
        let base = Instant::now();
        struct Closed;
        impl BatchSource for Closed {
            fn recv(&mut self) -> Option<Job> {
                None
            }
            fn recv_timeout(&mut self, _: Duration) -> Result<Job, RecvTimeoutError> {
                Err(RecvTimeoutError::Disconnected)
            }
            fn now(&self) -> Instant {
                Instant::now()
            }
        }
        let _ = base;
        assert!(assemble(&mut Closed, &policy(4, 0, None)).is_none());
    }

    /// Seeded pseudo-random arrival schedules: same seed → bitwise
    /// identical batch formation; every job is dispatched exactly once
    /// (either batched or shed); no assembly exceeds `max`.
    #[test]
    fn seeded_schedules_form_identical_batches() {
        for seed in [3u64, 17, 4242] {
            let runs: Vec<Vec<Vec<u64>>> = (0..2)
                .map(|_| {
                    let base = Instant::now();
                    let mut state = seed;
                    let mut next_rand = move || {
                        // splitmix64 — deterministic, dependency-free.
                        state = state.wrapping_add(0x9e3779b97f4a7c15);
                        let mut z = state;
                        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
                        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
                        z ^ (z >> 31)
                    };
                    let mut at = 0u64;
                    let mut arrivals = Vec::new();
                    for conn in 0..40u64 {
                        at += next_rand() % 120; // bursts and gaps
                        let job = if next_rand() % 5 == 0 {
                            control_job(base, conn, at)
                        } else {
                            ingest_job(base, conn, at)
                        };
                        arrivals.push(job);
                    }
                    let mut probe = BatchProbe::new(base, arrivals);
                    let pol = policy(6, 100, Some(1));
                    let mut batches = Vec::new();
                    let mut dispatched = 0usize;
                    while dispatched < 40 {
                        let asm = assemble(&mut probe, &pol).unwrap();
                        assert!(asm.jobs.len() <= 6, "assembly over max");
                        dispatched += asm.jobs.len() + asm.shed.len();
                        batches.push(conns(&asm));
                    }
                    assert_eq!(dispatched, 40, "every job exactly once");
                    batches
                })
                .collect();
            assert_eq!(runs[0], runs[1], "seed {seed} not reproducible");
        }
    }
}
