//! Error type for the serving layer.

use std::fmt;

/// Errors produced by the registry, engine, protocol and server.
#[derive(Debug)]
pub enum ServeError {
    /// A socket or file operation failed.
    Io(std::io::Error),
    /// A frame payload was not valid JSON or had the wrong shape.
    Json(pmc_json::JsonError),
    /// A model operation (load, predict) failed.
    Model(pmc_model::ModelError),
    /// The model's event set cannot be recorded in a single online run.
    Schedule(pmc_events::scheduler::ScheduleError),
    /// A wire frame violated the protocol (oversized, bad op, …).
    Protocol {
        /// What was wrong with the frame.
        reason: String,
    },
    /// A registry operation referenced a missing model or was invalid.
    Registry {
        /// Why the registry refused.
        reason: String,
    },
    /// An ingested sample was unusable (arity, non-finite, duration…).
    BadSample {
        /// Why the sample was rejected.
        reason: String,
    },
    /// A sample carried the wrong number of counter deltas for the
    /// model it was evaluated against. Kept distinct from
    /// [`ServeError::BadSample`] because the server can recover from
    /// it (fall back to a model with the matching width) while a
    /// malformed sample is unrecoverable.
    WidthMismatch {
        /// Delta count the model expects (its event-set size).
        expected: usize,
        /// Delta count the sample carried.
        got: usize,
    },
    /// A per-connection read or write deadline expired.
    Deadline {
        /// True if the deadline hit in the middle of a frame (the
        /// stream is desynchronized and must be dropped); false if it
        /// hit between frames (an idle poll — recoverable).
        mid_frame: bool,
    },
    /// The server answered a request with an error frame. Carries the
    /// server's message verbatim so clients can pattern-match on it.
    Server {
        /// The server's error text.
        message: String,
    },
    /// The server refused admission (connection budget, in-flight
    /// budget, or a request that outlived its queue deadline). Typed
    /// so clients can back off for the suggested interval instead of
    /// hammering an overloaded server.
    Overloaded {
        /// Server's suggested backoff before retrying, milliseconds.
        retry_after_ms: u64,
    },
    /// The server is draining for shutdown: in-flight work finishes,
    /// new requests are refused, and the connection will close.
    Draining,
    /// The request's propagated deadline budget (`deadline_ms` on the
    /// frame) was spent before the work ran, so it was shed unstarted.
    /// Distinct from [`ServeError::Overloaded`]: an overloaded reply
    /// invites a retry after a hint, while an exceeded deadline means
    /// the client's patience is gone — retrying inside the same budget
    /// is pointless by definition.
    DeadlineExceeded {
        /// Budget the request had left when it was shed, milliseconds
        /// (zero when it arrived already expired).
        remaining_ms: u64,
    },
    /// The client-side circuit breaker is open: recent calls failed
    /// with overload/timeout, so this call failed fast without
    /// touching the network.
    CircuitOpen {
        /// Time until the breaker half-opens for a probe, milliseconds.
        retry_in_ms: u64,
    },
    /// The server hit an internal fault (a worker panicked mid-job).
    /// The request was *not* necessarily applied; the connection
    /// stays usable and the client may retry. Kept distinct from
    /// [`ServeError::Server`] so callers can tell "you sent something
    /// invalid" from "the server broke".
    Internal {
        /// What broke, as much as the server can say safely.
        reason: String,
    },
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Io(e) => write!(f, "i/o failure: {e}"),
            ServeError::Json(e) => write!(f, "frame payload invalid: {e}"),
            ServeError::Model(e) => write!(f, "model failure: {e}"),
            ServeError::Schedule(e) => write!(f, "model not servable online: {e}"),
            ServeError::Protocol { reason } => write!(f, "protocol violation: {reason}"),
            ServeError::Registry { reason } => write!(f, "registry refused: {reason}"),
            ServeError::BadSample { reason } => write!(f, "sample rejected: {reason}"),
            ServeError::WidthMismatch { expected, got } => write!(
                f,
                "sample width mismatch: model expects {expected} counter deltas, got {got}"
            ),
            ServeError::Deadline { mid_frame } => {
                if *mid_frame {
                    write!(f, "deadline expired mid-frame: stream desynchronized")
                } else {
                    write!(f, "deadline expired between frames")
                }
            }
            ServeError::Server { message } => write!(f, "server error: {message}"),
            ServeError::Overloaded { retry_after_ms } => write!(
                f,
                "server overloaded: request shed, retry after {retry_after_ms} ms"
            ),
            ServeError::Draining => write!(f, "server draining: shutting down, no new work"),
            ServeError::DeadlineExceeded { remaining_ms } => write!(
                f,
                "deadline exceeded: request shed with {remaining_ms} ms of budget remaining"
            ),
            ServeError::CircuitOpen { retry_in_ms } => write!(
                f,
                "circuit breaker open: failing fast, next probe in {retry_in_ms} ms"
            ),
            ServeError::Internal { reason } => write!(f, "internal server error: {reason}"),
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::Io(e) => Some(e),
            ServeError::Json(e) => Some(e),
            ServeError::Model(e) => Some(e),
            ServeError::Schedule(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for ServeError {
    fn from(e: std::io::Error) -> Self {
        ServeError::Io(e)
    }
}

impl From<pmc_json::JsonError> for ServeError {
    fn from(e: pmc_json::JsonError) -> Self {
        ServeError::Json(e)
    }
}

impl From<pmc_model::ModelError> for ServeError {
    fn from(e: pmc_model::ModelError) -> Self {
        ServeError::Model(e)
    }
}

impl From<pmc_events::scheduler::ScheduleError> for ServeError {
    fn from(e: pmc_events::scheduler::ScheduleError) -> Self {
        ServeError::Schedule(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        let e = ServeError::Overloaded { retry_after_ms: 50 };
        assert!(e.to_string().contains("shed") && e.to_string().contains("50"));
        assert!(ServeError::Draining.to_string().contains("draining"));
        let e = ServeError::DeadlineExceeded { remaining_ms: 0 };
        assert!(e.to_string().contains("deadline exceeded"));
        let e = ServeError::CircuitOpen { retry_in_ms: 75 };
        assert!(e.to_string().contains("breaker") && e.to_string().contains("75"));
        let e = ServeError::Protocol {
            reason: "frame too large".into(),
        };
        assert!(e.to_string().contains("frame too large"));
        let e = ServeError::Registry {
            reason: "no such model".into(),
        };
        assert!(e.to_string().contains("no such model"));
        let e = ServeError::Internal {
            reason: "worker panicked".into(),
        };
        assert!(e.to_string().contains("internal server error"));
    }

    #[test]
    fn conversions_work() {
        let e: ServeError = std::io::Error::other("boom").into();
        assert!(matches!(e, ServeError::Io(_)));
    }
}
