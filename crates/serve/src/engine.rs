//! The streaming estimator engine.
//!
//! Each client streams timestamped counter-delta samples (one delta per
//! model event, in model-event order) plus the voltage readout. The
//! engine normalizes deltas to events per available core cycle exactly
//! as the offline [`pmc_model::dataset`] assembly does —
//! `count / (total_cores · f_clk · duration)` — evaluates Equation 1,
//! and maintains a per-client sliding window whose mean smooths sensor
//! noise the way the paper's trace post-processing averages runs.
//!
//! Every estimate carries quality flags: `out_of_envelope` when the
//! sample's (V, f) operating point falls outside the model's training
//! envelope (extrapolation — the estimate is untrustworthy), and
//! `stale` when the estimate is queried long after the last sample
//! arrived.
//!
//! ## Degraded-mode estimation
//!
//! Real counter streams lose readings: a multiplexing gap leaves a
//! counter unread, a sensor drops out, an overflowed counter reports
//! garbage. Rather than reject the whole sample, the engine substitutes
//! the **last good rate** seen for that counter on this client (or 0.0
//! when it has no history) and flags the estimate `degraded`, with one
//! machine-readable reason token per substitution:
//!
//! - `stale_counter:<EVT>` — the delta was missing/non-finite/negative;
//!   the client's last good rate for `<EVT>` was used.
//! - `no_history:<EVT>` — same, but no good rate has ever been seen, so
//!   0.0 was used.
//! - `saturated_counter:<EVT>` — the delta implied an implausible
//!   events-per-cycle rate (counter overflow); substituted likewise.
//! - `stale_voltage` — the voltage readout was non-finite or
//!   non-positive; the last good readout was used.
//!
//! Only structurally hopeless samples remain hard errors: a delta-count
//! mismatch ([`ServeError::WidthMismatch`]), a bad duration/frequency,
//! or a bad voltage with no previous good readout.

use crate::artifact::ModelArtifact;
use crate::error::ServeError;
use pmc_events::MAX_PLAUSIBLE_EVENTS_PER_CYCLE;
use pmc_json::Json;
use std::collections::{HashMap, VecDeque};
use std::sync::{Arc, Mutex, MutexGuard};

/// Engine tuning knobs.
#[derive(Debug, Clone, Copy)]
pub struct EngineConfig {
    /// Sliding-window length in samples.
    pub window: usize,
    /// Total cores of the monitored machine (normalization constant).
    pub total_cores: u32,
    /// An estimate older than this is flagged stale.
    pub staleness_ns: u64,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            window: 8,
            total_cores: 24,
            staleness_ns: 5_000_000_000, // 5 s
        }
    }
}

/// One timestamped counter-delta sample from a client.
#[derive(Debug, Clone, PartialEq)]
pub struct CounterSample {
    /// Client timestamp, nanoseconds (monotonic per client).
    pub time_ns: u64,
    /// Length of the sampling interval, seconds.
    pub duration_s: f64,
    /// Operating frequency during the interval, MHz.
    pub freq_mhz: u32,
    /// Core voltage readout, volts.
    pub voltage: f64,
    /// Raw counter deltas, one per model event in model-event order.
    pub deltas: Vec<f64>,
    /// Indices into `deltas` the client knows are unread (counter
    /// multiplexing gaps, sensor dropouts). JSON cannot carry NaN, so
    /// "this reading does not exist" travels out-of-band here; the
    /// engine treats a listed delta exactly like a non-finite one.
    pub missing: Vec<usize>,
}

impl CounterSample {
    /// Serializes to a JSON value (the wire shape). The `missing`
    /// field is omitted when empty, keeping the common case compact.
    pub fn to_json_value(&self) -> Json {
        let mut fields = vec![
            ("time_ns", Json::from(self.time_ns)),
            ("duration_s", Json::from(self.duration_s)),
            ("freq_mhz", Json::from(self.freq_mhz)),
            ("voltage", Json::from(self.voltage)),
            ("deltas", Json::from(&self.deltas[..])),
        ];
        if !self.missing.is_empty() {
            fields.push((
                "missing",
                Json::Arr(self.missing.iter().map(|&i| Json::from(i as u64)).collect()),
            ));
        }
        Json::obj(fields)
    }

    /// Reads a sample from a JSON value. An absent `missing` field
    /// means no declared gaps.
    pub fn from_json_value(v: &Json) -> Result<Self, ServeError> {
        let missing = match v.get("missing") {
            Some(m) => m
                .as_arr()?
                .iter()
                .map(Json::as_usize)
                .collect::<Result<Vec<_>, _>>()?,
            None => Vec::new(),
        };
        Ok(CounterSample {
            time_ns: v.u64_field("time_ns")?,
            duration_s: v.f64_field("duration_s")?,
            freq_mhz: v.u32_field("freq_mhz")?,
            voltage: v.f64_field("voltage")?,
            deltas: v.f64_vec_field("deltas")?,
            missing,
        })
    }
}

/// A power estimate with quality flags.
#[derive(Debug, Clone, PartialEq)]
pub struct Estimate {
    /// Timestamp of the newest contributing sample.
    pub time_ns: u64,
    /// Instantaneous estimate from the newest sample, watts.
    pub power_w: f64,
    /// Sliding-window mean estimate, watts.
    pub window_power_w: f64,
    /// Samples currently in the window.
    pub samples_in_window: usize,
    /// True if (V, f) fell outside the model's training envelope.
    pub out_of_envelope: bool,
    /// True if the estimate is older than the staleness budget.
    pub stale: bool,
    /// True if any input was substituted (missing counter, stale
    /// voltage, saturated counter) — see [`Self::degraded_reasons`].
    pub degraded: bool,
    /// Machine-readable reason tokens for each substitution, e.g.
    /// `stale_counter:PAPI_TOT_CYC` or `stale_voltage`. Empty when the
    /// estimate is not degraded.
    pub degraded_reasons: Vec<String>,
    /// Name of the model that produced the estimate.
    pub model: String,
    /// Version of the model that produced the estimate.
    pub version: u32,
}

impl Estimate {
    /// Serializes to a JSON value (the wire shape).
    pub fn to_json_value(&self) -> Json {
        Json::obj(vec![
            ("time_ns", Json::from(self.time_ns)),
            ("power_w", Json::from(self.power_w)),
            ("window_power_w", Json::from(self.window_power_w)),
            ("samples_in_window", Json::from(self.samples_in_window)),
            ("out_of_envelope", Json::Bool(self.out_of_envelope)),
            ("stale", Json::Bool(self.stale)),
            ("degraded", Json::Bool(self.degraded)),
            (
                "degraded_reasons",
                Json::Arr(
                    self.degraded_reasons
                        .iter()
                        .map(|r| Json::from(r.as_str()))
                        .collect(),
                ),
            ),
            ("model", Json::from(self.model.as_str())),
            ("version", Json::from(self.version)),
        ])
    }

    /// Reads an estimate from a JSON value.
    pub fn from_json_value(v: &Json) -> Result<Self, ServeError> {
        let as_bool = |name: &'static str| -> Result<bool, ServeError> {
            v.field(name)?.as_bool().map_err(ServeError::from)
        };
        Ok(Estimate {
            time_ns: v.u64_field("time_ns")?,
            power_w: v.f64_field("power_w")?,
            window_power_w: v.f64_field("window_power_w")?,
            samples_in_window: v.usize_field("samples_in_window")?,
            out_of_envelope: as_bool("out_of_envelope")?,
            stale: as_bool("stale")?,
            degraded: as_bool("degraded")?,
            degraded_reasons: v
                .arr_field("degraded_reasons")?
                .iter()
                .map(|r| r.as_str().map(str::to_string))
                .collect::<Result<Vec<_>, _>>()?,
            model: v.str_field("model")?.to_string(),
            version: v.u32_field("version")?,
        })
    }
}

/// Per-client sliding-window state.
#[derive(Debug, Default)]
struct ClientState {
    /// `(time_ns, instantaneous power)` of recent samples.
    window: VecDeque<(u64, f64)>,
    /// Model identity the window was built under; a model switch
    /// invalidates the window (estimates are not comparable).
    model_id: Option<(String, u32)>,
    /// Last good normalized rate per model event — the degraded-mode
    /// substitute when a counter reading is missing or implausible.
    last_rates: Vec<Option<f64>>,
    /// Last good voltage readout — the substitute when the sensor
    /// reports NaN or zero.
    last_voltage: Option<f64>,
    last: Option<Estimate>,
    /// Monotone per-window modification counter, bumped on every
    /// ingest. Replication compares this against the last sequence it
    /// drained to decide whether a window is dirty, so anti-entropy
    /// costs one integer compare per clean window instead of a full
    /// record diff.
    dirty_seq: u64,
}

/// Output of the prepare half of ingestion: the (possibly substituted)
/// operating voltage plus any degraded-mode reason tokens. The
/// normalized rate row itself is appended to the caller's flat buffer
/// so batched prediction needs no per-sample allocation.
#[derive(Debug)]
struct Prepared {
    voltage: f64,
    reasons: Vec<String>,
}

/// A client's full sliding-window state, exported for checkpointing
/// and re-imported on restart. This is everything the engine knows
/// about a client: restoring a snapshot and then ingesting a sample
/// behaves exactly as if the intervening process death never happened.
#[derive(Debug, Clone, PartialEq)]
pub struct ClientSnapshot {
    /// The engine key the state belongs to.
    pub client: u64,
    /// Model identity the window was built under.
    pub model_id: Option<(String, u32)>,
    /// `(time_ns, instantaneous power)` of recent samples, oldest first.
    pub window: Vec<(u64, f64)>,
    /// Last good normalized rate per model event.
    pub last_rates: Vec<Option<f64>>,
    /// Last good voltage readout.
    pub last_voltage: Option<f64>,
    /// The last estimate served.
    pub last: Option<Estimate>,
    /// Modification counter at export time (see [`ClientState`]).
    pub dirty_seq: u64,
}

/// How many locks the client map is split across. Connection ids are
/// sequential, so `id % SHARDS` spreads neighbors over distinct locks
/// and concurrent ingests from different clients rarely contend.
const SHARDS: u64 = 16;

/// The multi-client streaming estimator. Client state is sharded
/// across [`SHARDS`] independently locked maps so the readiness core's
/// worker pool does not serialize on a single engine lock at high
/// client counts.
#[derive(Debug)]
pub struct EstimatorEngine {
    config: EngineConfig,
    shards: [Mutex<HashMap<u64, ClientState>>; SHARDS as usize],
}

impl EstimatorEngine {
    /// Creates an engine with the given tuning.
    pub fn new(config: EngineConfig) -> Self {
        EstimatorEngine {
            config,
            shards: std::array::from_fn(|_| Mutex::new(HashMap::new())),
        }
    }

    /// Locks a shard, recovering from poisoning: a worker that
    /// panicked while holding the lock leaves per-client state that is
    /// at worst one sample behind — self-healing on the next ingest —
    /// so propagating the poison would amplify one contained panic
    /// into an engine-wide outage.
    fn lock(shard: &Mutex<HashMap<u64, ClientState>>) -> MutexGuard<'_, HashMap<u64, ClientState>> {
        shard.lock().unwrap_or_else(|e| e.into_inner())
    }

    fn shard(&self, client: u64) -> &Mutex<HashMap<u64, ClientState>> {
        &self.shards[(client % SHARDS) as usize]
    }

    /// The engine's configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// Validates and ingests one sample for `client`, returning the
    /// updated estimate. Missing or implausible readings degrade the
    /// estimate instead of failing it (see the module docs); only
    /// structurally hopeless samples are errors.
    pub fn ingest(
        &self,
        client: u64,
        sample: &CounterSample,
        artifact: &Arc<ModelArtifact>,
    ) -> Result<Estimate, ServeError> {
        let mut rates = Vec::with_capacity(artifact.model.events.len());
        let prep = self.prepare(client, sample, artifact, &mut rates)?;
        let power = artifact
            .model
            .predict_raw(&rates, prep.voltage, sample.freq_mhz)?;
        Ok(self.finish(client, sample, artifact, power, prep))
    }

    /// Batched ingest: prepares every request (validation + degraded-
    /// mode substitution, in request order), evaluates the model once
    /// over all coalesced rows, then applies each client's sliding-
    /// window state individually (again in request order).
    ///
    /// Results are bitwise identical to calling [`Self::ingest`]
    /// sequentially over the same requests in the same order — the
    /// batched predict runs `predict_raw`'s arithmetic per row, the
    /// prepare pass updates substitution history (`last_rates`,
    /// `last_voltage`) in order, and the finish pass updates window
    /// state in order. That holds even if one client appears more than
    /// once in a batch, because prepare and finish touch disjoint
    /// per-client state.
    pub fn estimate_batch(
        &self,
        requests: &[(u64, CounterSample)],
        artifact: &Arc<ModelArtifact>,
    ) -> Vec<Result<Estimate, ServeError>> {
        let model = &artifact.model;
        let width = model.events.len();
        let mut rates = Vec::with_capacity(requests.len() * width);
        let mut points = Vec::with_capacity(requests.len());
        let mut prepped = Vec::with_capacity(requests.len());
        for (client, sample) in requests {
            let before = rates.len();
            match self.prepare(*client, sample, artifact, &mut rates) {
                Ok(p) => {
                    points.push((p.voltage, sample.freq_mhz));
                    prepped.push(Ok(p));
                }
                Err(e) => {
                    rates.truncate(before);
                    prepped.push(Err(e));
                }
            }
        }
        let mut powers = Vec::with_capacity(points.len());
        if points.len() > 1 {
            // Columnar path: transpose the row-major prepare output
            // into one contiguous column per model event, evaluate the
            // Eq.-1 terms column-wise (SIMD-friendly strips), results
            // come back in request order. Bitwise identical to the
            // scalar path — see `predict_raw_columns_into`.
            let rows = points.len();
            let mut columns = vec![0.0f64; rows * width];
            for i in 0..rows {
                let row = &rates[i * width..(i + 1) * width];
                for (n, &r) in row.iter().enumerate() {
                    columns[n * rows + i] = r;
                }
            }
            let mut v2f = Vec::with_capacity(rows);
            model
                .predict_raw_columns_into(&columns, &points, &mut v2f, &mut powers)
                .expect("prepare emits exactly one aligned rate row per accepted request");
        } else {
            // Single-row batches (and `--batch-max 1` servers) keep the
            // scalar row-major kernel: the bitwise reference the
            // equivalence harness compares the columnar path against.
            model
                .predict_raw_batch_into(&rates, &points, &mut powers)
                .expect("prepare emits exactly one aligned rate row per accepted request");
        }
        let mut out = Vec::with_capacity(requests.len());
        let mut next_power = powers.iter();
        for ((client, sample), prep) in requests.iter().zip(prepped) {
            out.push(prep.map(|p| {
                let power = *next_power.next().expect("one power per accepted request");
                self.finish(*client, sample, artifact, power, p)
            }));
        }
        out
    }

    /// The per-sample front half of ingestion: validates the sample,
    /// applies degraded-mode substitution against the client's history
    /// (updating `last_rates`/`last_voltage` under the shard lock), and
    /// appends exactly one model-width row of normalized rates to
    /// `rates_out` — nothing is appended on error.
    fn prepare(
        &self,
        client: u64,
        sample: &CounterSample,
        artifact: &Arc<ModelArtifact>,
        rates_out: &mut Vec<f64>,
    ) -> Result<Prepared, ServeError> {
        let model = &artifact.model;
        if sample.deltas.len() != model.events.len() {
            return Err(ServeError::WidthMismatch {
                expected: model.events.len(),
                got: sample.deltas.len(),
            });
        }
        if !(sample.duration_s > 0.0 && sample.duration_s.is_finite()) {
            return Err(ServeError::BadSample {
                reason: "duration_s must be positive and finite".into(),
            });
        }
        if sample.freq_mhz == 0 {
            return Err(ServeError::BadSample {
                reason: "freq_mhz must be positive".into(),
            });
        }
        if let Some(&i) = sample.missing.iter().find(|&&i| i >= sample.deltas.len()) {
            return Err(ServeError::BadSample {
                reason: format!(
                    "missing index {i} out of range for {} deltas",
                    sample.deltas.len()
                ),
            });
        }

        let id = (artifact.name.clone(), artifact.version);
        let mut clients = Self::lock(self.shard(client));
        let state = clients.entry(client).or_default();
        if state.model_id.as_ref() != Some(&id) {
            state.window.clear();
            state.last_rates.clear();
            state.last_voltage = None;
            state.model_id = Some(id);
        }
        state.last_rates.resize(model.events.len(), None);

        let mut reasons: Vec<String> = Vec::new();

        let voltage = if sample.voltage.is_finite() && sample.voltage > 0.0 {
            state.last_voltage = Some(sample.voltage);
            sample.voltage
        } else if let Some(v) = state.last_voltage {
            reasons.push("stale_voltage".to_string());
            v
        } else {
            return Err(ServeError::BadSample {
                reason: "voltage must be positive and finite (no previous good readout)".into(),
            });
        };

        // Events per available core cycle — identical to the offline
        // Dataset::from_profiles normalization.
        let available_cycles =
            self.config.total_cores as f64 * sample.freq_mhz as f64 * 1e6 * sample.duration_s;
        for (i, (&delta, &event)) in sample.deltas.iter().zip(model.events.iter()).enumerate() {
            let unreadable = sample.missing.contains(&i) || !delta.is_finite() || delta < 0.0;
            let rate = delta / available_cycles;
            if unreadable || rate > MAX_PLAUSIBLE_EVENTS_PER_CYCLE {
                // Substitute: last good rate for this event, else 0.
                let (substitute, token) = match state.last_rates[i] {
                    Some(r) if unreadable => (r, "stale_counter"),
                    Some(r) => (r, "saturated_counter"),
                    None if unreadable => (0.0, "no_history"),
                    None => (0.0, "saturated_counter"),
                };
                reasons.push(format!("{token}:{}", event.mnemonic()));
                rates_out.push(substitute);
            } else {
                state.last_rates[i] = Some(rate);
                rates_out.push(rate);
            }
        }
        Ok(Prepared { voltage, reasons })
    }

    /// The per-sample back half of ingestion: envelope check, window
    /// update, and estimate assembly, under the client's shard lock.
    fn finish(
        &self,
        client: u64,
        sample: &CounterSample,
        artifact: &Arc<ModelArtifact>,
        power: f64,
        prep: Prepared,
    ) -> Estimate {
        let out_of_envelope = match &artifact.model.envelope {
            Some(env) => !env.contains(prep.voltage, sample.freq_mhz),
            None => false,
        };
        let mut clients = Self::lock(self.shard(client));
        let state = clients.entry(client).or_default();
        // A retry after a lost response re-sends the same sample; the
        // recompute is deterministic, so replacing the entry (instead
        // of stacking a duplicate) keeps the window bitwise identical
        // to a run where the first response arrived.
        if state.window.back().map(|&(t, _)| t) == Some(sample.time_ns) {
            state.window.pop_back();
        }
        state.window.push_back((sample.time_ns, power));
        while state.window.len() > self.config.window.max(1) {
            state.window.pop_front();
        }
        state.dirty_seq += 1;
        let window_power_w =
            state.window.iter().map(|(_, p)| p).sum::<f64>() / state.window.len() as f64;
        let est = Estimate {
            time_ns: sample.time_ns,
            power_w: power,
            window_power_w,
            samples_in_window: state.window.len(),
            out_of_envelope,
            stale: false,
            degraded: !prep.reasons.is_empty(),
            degraded_reasons: prep.reasons,
            model: artifact.name.clone(),
            version: artifact.version,
        };
        state.last = Some(est.clone());
        est
    }

    /// The latest estimate for `client`, with the staleness flag
    /// evaluated against `now_ns` (the client's clock).
    pub fn estimate(&self, client: u64, now_ns: u64) -> Option<Estimate> {
        let clients = Self::lock(self.shard(client));
        let state = clients.get(&client)?;
        let mut est = state.last.clone()?;
        est.stale = now_ns.saturating_sub(est.time_ns) > self.config.staleness_ns;
        Some(est)
    }

    /// Drops a client's window (connection closed).
    pub fn forget(&self, client: u64) {
        Self::lock(self.shard(client)).remove(&client);
    }

    /// Number of clients with live state.
    pub fn client_count(&self) -> usize {
        self.shards.iter().map(|s| Self::lock(s).len()).sum()
    }

    /// True if the engine holds state for `client`.
    pub fn has_client(&self, client: u64) -> bool {
        Self::lock(self.shard(client)).contains_key(&client)
    }

    /// Exports every client for which `keep` is true, sorted by client
    /// key so checkpoint bytes are deterministic. Each shard is locked
    /// briefly in turn; ingests on other shards proceed concurrently.
    pub fn export_clients(&self, keep: impl Fn(u64) -> bool) -> Vec<ClientSnapshot> {
        let mut out = Vec::new();
        for shard in &self.shards {
            let clients = Self::lock(shard);
            for (&client, state) in clients.iter().filter(|(&c, _)| keep(c)) {
                out.push(ClientSnapshot {
                    client,
                    model_id: state.model_id.clone(),
                    window: state.window.iter().copied().collect(),
                    last_rates: state.last_rates.clone(),
                    last_voltage: state.last_voltage,
                    last: state.last.clone(),
                    dirty_seq: state.dirty_seq,
                });
            }
        }
        out.sort_by_key(|s| s.client);
        out
    }

    /// Imports snapshots (a checkpoint restore), replacing any state
    /// the same keys already have. Windows longer than the configured
    /// cap are trimmed from the front — the checkpoint may come from a
    /// process with a larger window. Returns how many clients were
    /// restored.
    pub fn restore_clients(&self, snaps: Vec<ClientSnapshot>) -> usize {
        let cap = self.config.window.max(1);
        let n = snaps.len();
        for snap in snaps {
            let mut window: VecDeque<(u64, f64)> = snap.window.into();
            while window.len() > cap {
                window.pop_front();
            }
            let state = ClientState {
                window,
                model_id: snap.model_id,
                last_rates: snap.last_rates,
                last_voltage: snap.last_voltage,
                last: snap.last,
                dirty_seq: snap.dirty_seq,
            };
            Self::lock(self.shard(snap.client)).insert(snap.client, state);
        }
        n
    }

    /// `(client, dirty_seq)` for every client for which `keep` is
    /// true, sorted by client key. This is the cheap anti-entropy
    /// poll: a replicator compares sequence numbers against what it
    /// last drained and only exports windows that moved.
    pub fn client_seqs(&self, keep: impl Fn(u64) -> bool) -> Vec<(u64, u64)> {
        let mut out = Vec::new();
        for shard in &self.shards {
            let clients = Self::lock(shard);
            for (&client, state) in clients.iter().filter(|(&c, _)| keep(c)) {
                out.push((client, state.dirty_seq));
            }
        }
        out.sort_unstable();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_fixtures::{tiny_artifact, tiny_dataset};

    fn engine() -> EstimatorEngine {
        EstimatorEngine::new(EngineConfig {
            window: 4,
            total_cores: 24,
            staleness_ns: 1_000_000_000,
        })
    }

    /// A sample whose normalized rates reproduce a dataset row exactly.
    fn sample_from_row(
        row: &pmc_model::dataset::SampleRow,
        a: &Arc<ModelArtifact>,
        t: u64,
    ) -> CounterSample {
        let avail = 24.0 * row.freq_mhz as f64 * 1e6 * row.duration_s;
        CounterSample {
            time_ns: t,
            duration_s: row.duration_s,
            freq_mhz: row.freq_mhz,
            voltage: row.voltage,
            deltas: a
                .model
                .events
                .iter()
                .map(|e| row.rate(*e) * avail)
                .collect(),
            missing: vec![],
        }
    }

    #[test]
    fn ingest_matches_offline_prediction() {
        let eng = engine();
        let a = tiny_artifact();
        let data = tiny_dataset(12);
        for (i, row) in data.rows().iter().enumerate() {
            let s = sample_from_row(row, &a, i as u64);
            let est = eng.ingest(7, &s, &a).unwrap();
            let offline = a.model.predict_row(row);
            assert!(
                (est.power_w - offline).abs() < 1e-9,
                "row {i}: {} vs {offline}",
                est.power_w
            );
        }
    }

    #[test]
    fn window_caps_and_averages() {
        let eng = engine();
        let a = tiny_artifact();
        let data = tiny_dataset(10);
        let mut last = None;
        for (i, row) in data.rows().iter().enumerate() {
            let s = sample_from_row(row, &a, i as u64);
            last = Some(eng.ingest(1, &s, &a).unwrap());
        }
        let est = last.unwrap();
        assert_eq!(est.samples_in_window, 4); // capped at window
                                              // Window mean equals the mean of the last 4 instantaneous estimates.
        let tail: Vec<f64> = data.rows()[6..]
            .iter()
            .map(|r| a.model.predict_row(r))
            .collect();
        let mean = tail.iter().sum::<f64>() / tail.len() as f64;
        assert!((est.window_power_w - mean).abs() < 1e-9);
    }

    #[test]
    fn clients_are_isolated() {
        let eng = engine();
        let a = tiny_artifact();
        let data = tiny_dataset(2);
        let s = sample_from_row(&data.rows()[0], &a, 0);
        eng.ingest(1, &s, &a).unwrap();
        assert!(eng.estimate(2, 0).is_none());
        assert!(eng.estimate(1, 0).is_some());
        eng.forget(1);
        assert!(eng.estimate(1, 0).is_none());
        assert_eq!(eng.client_count(), 0);
    }

    #[test]
    fn staleness_flag_tracks_clock() {
        let eng = engine();
        let a = tiny_artifact();
        let data = tiny_dataset(1);
        let s = sample_from_row(&data.rows()[0], &a, 1_000);
        eng.ingest(1, &s, &a).unwrap();
        assert!(!eng.estimate(1, 1_000).unwrap().stale);
        assert!(eng.estimate(1, 2_000_001_000).unwrap().stale);
    }

    #[test]
    fn out_of_envelope_flagged() {
        let eng = engine();
        let a = tiny_artifact();
        let data = tiny_dataset(4);
        let mut s = sample_from_row(&data.rows()[0], &a, 0);
        assert!(!eng.ingest(1, &s, &a).unwrap().out_of_envelope);
        // Training envelope spans the fixture's 1200–2600 MHz.
        s.freq_mhz = 3600;
        assert!(eng.ingest(1, &s, &a).unwrap().out_of_envelope);
        s.freq_mhz = 2400;
        s.voltage = 2.5;
        assert!(eng.ingest(1, &s, &a).unwrap().out_of_envelope);
    }

    #[test]
    fn bad_samples_are_typed_errors() {
        let eng = engine();
        let a = tiny_artifact();
        let data = tiny_dataset(1);
        let good = sample_from_row(&data.rows()[0], &a, 0);

        // Width mismatch is its own variant, carrying both counts.
        let mut s = good.clone();
        s.deltas.pop();
        let expected = a.model.events.len();
        assert!(matches!(
            eng.ingest(1, &s, &a),
            Err(ServeError::WidthMismatch { expected: e, got }) if e == expected && got == expected - 1
        ));

        let mut s = good.clone();
        s.duration_s = 0.0;
        assert!(eng.ingest(1, &s, &a).is_err());

        // NaN voltage on a client with no history is unrecoverable.
        let mut s = good.clone();
        s.voltage = f64::NAN;
        assert!(matches!(
            eng.ingest(1, &s, &a),
            Err(ServeError::BadSample { .. })
        ));

        let mut s = good.clone();
        s.missing = vec![99];
        assert!(eng.ingest(1, &s, &a).is_err());

        let mut s = good;
        s.freq_mhz = 0;
        assert!(eng.ingest(1, &s, &a).is_err());
    }

    #[test]
    fn missing_counter_degrades_with_last_good_rate() {
        let eng = engine();
        let a = tiny_artifact();
        let data = tiny_dataset(1);
        let good = sample_from_row(&data.rows()[0], &a, 0);
        let baseline = eng.ingest(1, &good, &a).unwrap();
        assert!(!baseline.degraded);

        // Same readings, but counter 0 declared unread: the engine
        // substitutes its last good rate, reproducing the estimate.
        let mut s = good.clone();
        s.time_ns = 1;
        s.deltas[0] = 0.0;
        s.missing = vec![0];
        let est = eng.ingest(1, &s, &a).unwrap();
        assert!(est.degraded);
        let evt = a.model.events[0].mnemonic();
        assert_eq!(est.degraded_reasons, vec![format!("stale_counter:{evt}")]);
        assert!((est.power_w - baseline.power_w).abs() < 1e-9);

        // A non-finite delta degrades the same way as a declared gap.
        let mut s = good.clone();
        s.time_ns = 2;
        s.deltas[0] = f64::NAN;
        let est = eng.ingest(1, &s, &a).unwrap();
        assert_eq!(est.degraded_reasons, vec![format!("stale_counter:{evt}")]);
        assert!((est.power_w - baseline.power_w).abs() < 1e-9);
    }

    #[test]
    fn no_history_substitutes_zero() {
        let eng = engine();
        let a = tiny_artifact();
        let data = tiny_dataset(1);
        let mut s = sample_from_row(&data.rows()[0], &a, 0);
        s.missing = vec![0];
        let est = eng.ingest(1, &s, &a).unwrap();
        assert!(est.degraded);
        let evt = a.model.events[0].mnemonic();
        assert_eq!(est.degraded_reasons, vec![format!("no_history:{evt}")]);
        assert!(est.power_w.is_finite());
    }

    #[test]
    fn saturated_counter_is_substituted_not_trusted() {
        let eng = engine();
        let a = tiny_artifact();
        let data = tiny_dataset(1);
        let good = sample_from_row(&data.rows()[0], &a, 0);
        let baseline = eng.ingest(1, &good, &a).unwrap();

        let mut s = good.clone();
        s.time_ns = 1;
        s.deltas[0] = (1u64 << 56) as f64; // overflowed counter
        let est = eng.ingest(1, &s, &a).unwrap();
        assert!(est.degraded);
        let evt = a.model.events[0].mnemonic();
        assert_eq!(
            est.degraded_reasons,
            vec![format!("saturated_counter:{evt}")]
        );
        assert!((est.power_w - baseline.power_w).abs() < 1e-9);

        // The garbage rate must not poison the history: the next gap
        // still substitutes the last *good* rate.
        let mut s = good.clone();
        s.time_ns = 2;
        s.missing = vec![0];
        let est = eng.ingest(1, &s, &a).unwrap();
        assert!((est.power_w - baseline.power_w).abs() < 1e-9);
    }

    #[test]
    fn stale_voltage_uses_last_good_readout() {
        let eng = engine();
        let a = tiny_artifact();
        let data = tiny_dataset(1);
        let good = sample_from_row(&data.rows()[0], &a, 0);
        let baseline = eng.ingest(1, &good, &a).unwrap();

        for bad in [f64::NAN, 0.0, -0.3] {
            let mut s = good.clone();
            s.time_ns += 1;
            s.voltage = bad;
            let est = eng.ingest(1, &s, &a).unwrap();
            assert!(est.degraded, "voltage {bad} should degrade");
            assert_eq!(est.degraded_reasons, vec!["stale_voltage".to_string()]);
            assert!((est.power_w - baseline.power_w).abs() < 1e-9);
        }
    }

    #[test]
    fn model_switch_clears_degraded_history() {
        let eng = engine();
        let a = tiny_artifact();
        let mut b = tiny_artifact();
        {
            let m = Arc::get_mut(&mut b).unwrap();
            m.version = 2;
        }
        let data = tiny_dataset(1);
        let good = sample_from_row(&data.rows()[0], &a, 0);
        eng.ingest(1, &good, &a).unwrap();

        // Under the new model the voltage history is gone: a bad
        // readout is a hard error again, not a silent substitution.
        let mut s = sample_from_row(&data.rows()[0], &b, 1);
        s.voltage = f64::NAN;
        assert!(eng.ingest(1, &s, &b).is_err());
    }

    #[test]
    fn model_switch_resets_window() {
        let eng = engine();
        let a = tiny_artifact();
        let mut b = tiny_artifact();
        {
            let m = Arc::get_mut(&mut b).unwrap();
            m.version = 2;
        }
        let data = tiny_dataset(3);
        for (i, row) in data.rows().iter().enumerate() {
            let s = sample_from_row(row, &a, i as u64);
            eng.ingest(1, &s, &a).unwrap();
        }
        let s = sample_from_row(&data.rows()[0], &b, 99);
        let est = eng.ingest(1, &s, &b).unwrap();
        assert_eq!(est.samples_in_window, 1); // fresh window under v2
        assert_eq!(est.version, 2);
    }

    /// Two engines fed the same requests — one per-sample, one batched
    /// — must agree bit for bit, flags and reasons included.
    fn assert_batch_matches_sequential(requests: &[(u64, CounterSample)]) {
        let a = tiny_artifact();
        let solo = engine();
        let batched = engine();
        let expected: Vec<_> = requests
            .iter()
            .map(|(c, s)| solo.ingest(*c, s, &a))
            .collect();
        let got = batched.estimate_batch(requests, &a);
        assert_eq!(got.len(), expected.len());
        for (i, (g, e)) in got.iter().zip(&expected).enumerate() {
            match (g, e) {
                (Ok(g), Ok(e)) => {
                    assert_eq!(g.power_w.to_bits(), e.power_w.to_bits(), "row {i} power");
                    assert_eq!(
                        g.window_power_w.to_bits(),
                        e.window_power_w.to_bits(),
                        "row {i} window"
                    );
                    let (g_rest, e_rest) = (
                        (
                            g.time_ns,
                            g.samples_in_window,
                            g.out_of_envelope,
                            g.stale,
                            g.degraded,
                            &g.degraded_reasons,
                            &g.model,
                            g.version,
                        ),
                        (
                            e.time_ns,
                            e.samples_in_window,
                            e.out_of_envelope,
                            e.stale,
                            e.degraded,
                            &e.degraded_reasons,
                            &e.model,
                            e.version,
                        ),
                    );
                    assert_eq!(g_rest, e_rest, "row {i} metadata");
                }
                (Err(g), Err(e)) => assert_eq!(format!("{g:?}"), format!("{e:?}"), "row {i}"),
                _ => panic!("row {i}: batched {g:?} vs sequential {e:?}"),
            }
        }
    }

    #[test]
    fn estimate_batch_bitwise_matches_sequential_ingest() {
        let a = tiny_artifact();
        let data = tiny_dataset(12);
        // Interleave three clients over the rows, with degraded and
        // erroring samples mixed in.
        let mut requests: Vec<(u64, CounterSample)> = Vec::new();
        for (i, row) in data.rows().iter().enumerate() {
            let client = (i % 3) as u64;
            let mut s = sample_from_row(row, &a, i as u64);
            match i {
                4 => s.missing = vec![0],               // declared gap
                5 => s.deltas[1] = f64::NAN,            // unreadable counter
                6 => s.voltage = 0.0,                   // stale voltage
                7 => s.deltas[2] = (1u64 << 56) as f64, // saturated
                8 => s.duration_s = 0.0,                // hard error
                _ => {}
            }
            requests.push((client, s));
        }
        assert_batch_matches_sequential(&requests);
    }

    #[test]
    fn estimate_batch_preserves_order_for_repeated_client() {
        // The same client twice in one batch: the second sample must
        // see the first's window and substitution history, exactly as
        // two sequential ingests would.
        let a = tiny_artifact();
        let data = tiny_dataset(4);
        let mut requests: Vec<(u64, CounterSample)> = Vec::new();
        for (i, row) in data.rows().iter().enumerate() {
            let mut s = sample_from_row(row, &a, i as u64);
            if i == 2 {
                s.missing = vec![0]; // substitutes rate learned at i==0
            }
            requests.push((9, s));
        }
        assert_batch_matches_sequential(&requests);
        let eng = engine();
        let ests = eng.estimate_batch(&requests, &a);
        assert_eq!(ests.last().unwrap().as_ref().unwrap().samples_in_window, 4);
    }

    #[test]
    fn bad_voltage_row_degrades_only_itself_in_a_batch() {
        let eng = engine();
        let a = tiny_artifact();
        let data = tiny_dataset(3);
        // Establish voltage history for client 0 so its bad readout
        // degrades instead of erroring.
        let warm = sample_from_row(&data.rows()[0], &a, 0);
        eng.ingest(0, &warm, &a).unwrap();

        let mut bad = sample_from_row(&data.rows()[0], &a, 1);
        bad.voltage = f64::NAN;
        let requests = vec![
            (1, sample_from_row(&data.rows()[1], &a, 1)),
            (0, bad),
            (2, sample_from_row(&data.rows()[2], &a, 1)),
        ];
        let out = eng.estimate_batch(&requests, &a);

        let degraded = out[1].as_ref().unwrap();
        assert!(degraded.degraded);
        assert_eq!(degraded.degraded_reasons, vec!["stale_voltage".to_string()]);

        // Neighbors are untouched: bitwise equal to solo ingests on a
        // fresh engine.
        let reference = engine();
        for (slot, (client, row_idx)) in [(0usize, (1u64, 1usize)), (2, (2, 2))] {
            let est = out[slot].as_ref().unwrap();
            assert!(!est.degraded, "neighbor {client} degraded");
            let solo = reference
                .ingest(client, &sample_from_row(&data.rows()[row_idx], &a, 1), &a)
                .unwrap();
            assert_eq!(est.power_w.to_bits(), solo.power_w.to_bits());
            assert_eq!(est.window_power_w.to_bits(), solo.window_power_w.to_bits());
        }
    }

    #[test]
    fn estimate_batch_empty_is_empty() {
        let eng = engine();
        let a = tiny_artifact();
        assert!(eng.estimate_batch(&[], &a).is_empty());
    }

    #[test]
    fn export_restore_roundtrips_client_state() {
        let eng = engine();
        let a = tiny_artifact();
        let data = tiny_dataset(6);
        for (i, row) in data.rows().iter().enumerate() {
            let mut s = sample_from_row(row, &a, i as u64);
            if i == 3 {
                s.missing = vec![0]; // leave degraded history behind
            }
            eng.ingest(7, &s, &a).unwrap();
            eng.ingest(8, &s, &a).unwrap();
        }
        let snaps = eng.export_clients(|c| c == 7);
        assert_eq!(snaps.len(), 1);
        assert_eq!(snaps[0].client, 7);
        assert_eq!(snaps[0].window.len(), 4);

        // A cold engine restored from the snapshot continues exactly
        // where the donor stopped: same estimate, same window growth.
        let cold = engine();
        assert_eq!(cold.restore_clients(snaps), 1);
        assert!(cold.has_client(7) && !cold.has_client(8));
        assert_eq!(cold.estimate(7, 5), eng.estimate(7, 5));
        let next = sample_from_row(&data.rows()[0], &a, 99);
        let warm = eng.ingest(7, &next, &a).unwrap();
        let restored = cold.ingest(7, &next, &a).unwrap();
        assert_eq!(warm.power_w.to_bits(), restored.power_w.to_bits());
        assert_eq!(
            warm.window_power_w.to_bits(),
            restored.window_power_w.to_bits()
        );
        assert_eq!(warm.samples_in_window, restored.samples_in_window);
    }

    #[test]
    fn restore_trims_oversized_windows_from_the_front() {
        let eng = engine(); // window = 4
        let snap = ClientSnapshot {
            client: 1,
            model_id: Some(("m".into(), 1)),
            window: (0..10).map(|i| (i as u64, i as f64)).collect(),
            last_rates: vec![None; 3],
            last_voltage: Some(1.0),
            last: None,
            dirty_seq: 10,
        };
        eng.restore_clients(vec![snap]);
        let exported = eng.export_clients(|_| true);
        assert_eq!(exported[0].window.len(), 4);
        assert_eq!(exported[0].window[0], (6, 6.0)); // oldest dropped
    }

    #[test]
    fn export_is_sorted_and_filtered() {
        let eng = engine();
        let a = tiny_artifact();
        let data = tiny_dataset(1);
        let s = sample_from_row(&data.rows()[0], &a, 0);
        for client in [33u64, 2, 17, 50] {
            eng.ingest(client, &s, &a).unwrap();
        }
        let keys: Vec<u64> = eng
            .export_clients(|c| c != 17)
            .iter()
            .map(|s| s.client)
            .collect();
        assert_eq!(keys, vec![2, 33, 50]);
    }

    #[test]
    fn dirty_seq_counts_ingests_and_survives_restore() {
        let eng = engine();
        let a = tiny_artifact();
        let data = tiny_dataset(3);
        for (i, row) in data.rows().iter().enumerate() {
            let s = sample_from_row(row, &a, i as u64 + 1);
            eng.ingest(5, &s, &a).unwrap();
        }
        assert_eq!(eng.client_seqs(|_| true), vec![(5, 3)]);
        let snaps = eng.export_clients(|_| true);
        assert_eq!(snaps[0].dirty_seq, 3);
        let cold = engine();
        cold.restore_clients(snaps);
        assert_eq!(cold.client_seqs(|_| true), vec![(5, 3)]);
        // The counter keeps moving after restore, never resets.
        let s = sample_from_row(&data.rows()[0], &a, 9);
        cold.ingest(5, &s, &a).unwrap();
        assert_eq!(cold.client_seqs(|_| true), vec![(5, 4)]);
    }

    #[test]
    fn duplicate_timestamp_reingest_is_idempotent() {
        // A client retry after a lost response re-sends the sample the
        // server already applied. The window must end up bitwise
        // identical to a run where the duplicate never happened.
        let eng = engine();
        let dup = engine();
        let a = tiny_artifact();
        let data = tiny_dataset(6);
        for (i, row) in data.rows().iter().enumerate() {
            let s = sample_from_row(row, &a, (i as u64 + 1) * 100);
            let clean = eng.ingest(3, &s, &a).unwrap();
            dup.ingest(3, &s, &a).unwrap();
            let retried = dup.ingest(3, &s, &a).unwrap(); // retry
            assert_eq!(clean.power_w.to_bits(), retried.power_w.to_bits());
            assert_eq!(
                clean.window_power_w.to_bits(),
                retried.window_power_w.to_bits()
            );
            assert_eq!(clean.samples_in_window, retried.samples_in_window);
        }
        let a_snap = eng.export_clients(|_| true);
        let b_snap = dup.export_clients(|_| true);
        assert_eq!(a_snap[0].window, b_snap[0].window);
    }

    /// Property test for the columnar kernel against the scalar
    /// reference: hand-built models over every interesting
    /// counter-group width — N=0 (pure base term), N=1, and widths
    /// and row counts that are not multiples of the chunk — with
    /// seeded random coefficients and rates, must agree bit for bit.
    #[test]
    fn columnar_kernel_bitwise_matches_scalar_across_widths() {
        use pmc_events::PapiEvent;
        use pmc_model::model::{PowerModel, COLUMN_CHUNK};

        fn splitmix(state: &mut u64) -> u64 {
            *state = state.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = *state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        }
        fn unit(state: &mut u64) -> f64 {
            (splitmix(state) >> 11) as f64 / (1u64 << 53) as f64
        }

        let event_pool = [
            PapiEvent::PRF_DM,
            PapiEvent::TOT_CYC,
            PapiEvent::TLB_IM,
            PapiEvent::STL_ICY,
            PapiEvent::FUL_CCY,
            PapiEvent::BR_MSP,
        ];
        let mut state = 0xC0FFEEu64;
        // Widths straddle 0, 1, and non-multiples of anything; row
        // counts straddle the chunk boundary (below, at, above, and a
        // large non-multiple).
        for width in [0usize, 1, 2, 3, 5, 6] {
            for rows in [1usize, COLUMN_CHUNK - 1, COLUMN_CHUNK, COLUMN_CHUNK + 1, 67] {
                let model = PowerModel {
                    events: event_pool[..width].to_vec(),
                    alpha: (0..width).map(|_| unit(&mut state) * 100.0).collect(),
                    beta: unit(&mut state) * 30.0,
                    gamma: unit(&mut state) * 50.0,
                    delta: unit(&mut state) * 80.0,
                    fit_r_squared: 0.0,
                    fit_adj_r_squared: 0.0,
                    std_errors: vec![0.0; width + 3],
                    n_observations: 0,
                    envelope: None,
                };
                let mut rates = Vec::with_capacity(rows * width);
                let mut points = Vec::with_capacity(rows);
                for _ in 0..rows {
                    for _ in 0..width {
                        rates.push(unit(&mut state) * 0.3);
                    }
                    points.push((
                        0.7 + unit(&mut state),
                        1200 + (splitmix(&mut state) % 1600) as u32,
                    ));
                }
                let mut columns = vec![0.0f64; rows * width];
                for i in 0..rows {
                    for n in 0..width {
                        columns[n * rows + i] = rates[i * width + n];
                    }
                }
                let (mut v2f, mut columnar) = (Vec::new(), Vec::new());
                model
                    .predict_raw_columns_into(&columns, &points, &mut v2f, &mut columnar)
                    .unwrap();
                assert_eq!(columnar.len(), rows);
                for (i, &(voltage, freq_mhz)) in points.iter().enumerate() {
                    let scalar = model
                        .predict_raw(&rates[i * width..(i + 1) * width], voltage, freq_mhz)
                        .unwrap();
                    assert_eq!(
                        columnar[i].to_bits(),
                        scalar.to_bits(),
                        "width {width} rows {rows} row {i}: columnar != scalar"
                    );
                }
            }
        }
    }

    /// The engine's batched path (which picks the columnar kernel for
    /// multi-row batches) stays bitwise identical to sequential
    /// single-sample ingestion — the end-to-end version of the kernel
    /// property above.
    #[test]
    fn estimate_batch_columnar_path_bitwise_matches_sequential() {
        let batched = engine();
        let solo = engine();
        let a = tiny_artifact();
        let data = tiny_dataset(12);
        let requests: Vec<(u64, CounterSample)> = data
            .rows()
            .iter()
            .enumerate()
            .map(|(i, row)| {
                (
                    (i % 3) as u64,
                    sample_from_row(row, &a, (i as u64 + 1) * 50),
                )
            })
            .collect();
        let via_batch = batched.estimate_batch(&requests, &a);
        assert!(requests.len() > 1, "must exercise the columnar path");
        for ((client, sample), got) in requests.iter().zip(via_batch) {
            let want = solo.ingest(*client, sample, &a).unwrap();
            let got = got.unwrap();
            assert_eq!(got.power_w.to_bits(), want.power_w.to_bits());
            assert_eq!(got.window_power_w.to_bits(), want.window_power_w.to_bits());
        }
    }

    #[test]
    fn sample_json_roundtrip() {
        let s = CounterSample {
            time_ns: 123,
            duration_s: 0.25,
            freq_mhz: 2400,
            voltage: 1.01,
            deltas: vec![1.0, 2.0, 3.0],
            missing: vec![],
        };
        let v = s.to_json_value();
        assert_eq!(CounterSample::from_json_value(&v).unwrap(), s);
        // Declared gaps survive the roundtrip.
        let s = CounterSample {
            missing: vec![0, 2],
            ..s
        };
        let v = s.to_json_value();
        assert_eq!(CounterSample::from_json_value(&v).unwrap(), s);
        // Malformed shape is a typed error.
        assert!(CounterSample::from_json_value(&Json::obj(vec![("x", Json::Null)])).is_err());
    }
}
