//! # pmc-serve
//!
//! The online power-telemetry service: everything needed to deploy a
//! fitted [`pmc_model::model::PowerModel`] as a live software power
//! meter, the production use case the paper motivates (once the six
//! counters are chosen, a runtime needs one counter group plus the
//! voltage readout — no wattmeter).
//!
//! Three layers:
//!
//! 1. **[`registry`]** — named, versioned model artifacts
//!    ([`artifact::ModelArtifact`]) with load / activate / rollback.
//!    Loading validates that the model's events schedule into a
//!    *single* Haswell counter group
//!    ([`pmc_events::scheduler::CounterScheduler::validate_single_run`]):
//!    a model that needs multiplexed groups cannot be driven online.
//! 2. **[`engine`]** — the streaming estimator: per-client sliding
//!    windows over timestamped counter-delta samples, normalized to
//!    events per available core cycle exactly as the offline dataset
//!    assembly does, with out-of-envelope and staleness flags.
//! 3. **[`server`] / [`client`] / [`protocol`]** — a
//!    readiness-based server speaking 4-byte-length-prefixed frames
//!    (`ingest`, `estimate`, `load_model`, `activate`,
//!    `rollback`, `stats`, `ping`, `healthz`, `readyz`, `metrics`,
//!    `resume`, `checkpoint`) — payloads in UTF-8 JSON by default, or
//!    the self-describing `PMCB1` tagged binary encoding negotiated
//!    per connection with a leading `hello {"encoding": "binary"}`
//!    op ([`protocol::Encoding`]) — over localhost TCP and optionally
//!    a Unix domain socket. One non-blocking core thread multiplexes
//!    every connection over a **supervised** worker pool: a worker
//!    panic is contained by `catch_unwind` (the affected request gets
//!    a typed `internal_error` frame, the slot is respawned with
//!    backoff, flapping slots are retired and surfaced in `readyz`),
//!    with admission control (connection and in-flight budgets
//!    answered by typed `overloaded` frames), deadline-aware load
//!    shedding, slow-client buffering under read/write deadlines, and
//!    a graceful drain that finishes in-flight work, notifies clients
//!    with a `draining` frame, writes a final [`checkpoint`] and
//!    flushes the registry. Health probes and the Prometheus
//!    `metrics` scrape are answered inline by the core — they work
//!    even with every worker wedged. The client side composes
//!    jittered retry/backoff ([`RetryPolicy`]) with a circuit breaker
//!    ([`BreakerPolicy`]) that fails fast after consecutive
//!    overload/timeout failures.
//!
//! Durable hot restart: a connection that issues `resume TOKEN` keys
//! its sliding window by the token instead of the socket; with
//! [`server::ServerConfig::checkpoint_path`] set those windows (plus
//! the active-model pin) survive crashes via an atomic, CRC-checked
//! checkpoint file — see [`checkpoint`].
//!
//! ## Quick example
//!
//! ```no_run
//! use pmc_serve::client::PowerClient;
//! use pmc_serve::registry::ModelRegistry;
//! use pmc_serve::server::{PowerServer, ServerConfig};
//! use std::sync::Arc;
//!
//! let server = PowerServer::start(ServerConfig::default(),
//!                                 Arc::new(ModelRegistry::default())).unwrap();
//! let mut client = PowerClient::connect(server.addr()).unwrap();
//! # let model = unimplemented!();
//! client.load_model("haswell-ep", &model, true).unwrap();
//! // …stream CounterSamples with client.ingest(…)
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod artifact;
mod batch;
pub mod checkpoint;
pub mod client;
pub mod engine;
mod error;
pub mod fsutil;
pub mod protocol;
pub mod registry;
pub mod server;
pub mod stats;
pub mod tokenhash;
pub mod trainer;

pub use artifact::ModelArtifact;
pub use checkpoint::{CheckpointData, CheckpointOutcome};
pub use client::{BreakerPolicy, ClientStats, HedgeStats, PowerClient, RetryPolicy};
pub use engine::{ClientSnapshot, CounterSample, EngineConfig, Estimate, EstimatorEngine};
pub use error::ServeError;
pub use protocol::Encoding;
pub use registry::{ModelRegistry, RecoveryReport};
pub use server::{CheckpointRestore, PowerServer, ServerConfig};

/// Convenience result alias.
pub type Result<T> = std::result::Result<T, ServeError>;

#[cfg(test)]
pub(crate) mod test_fixtures {
    //! Synthetic fitted models for unit tests — no simulator needed:
    //! power is an exact linear function of a few rates, so fits are
    //! well-posed and predictions are reproducible to machine epsilon.

    use crate::artifact::ModelArtifact;
    use pmc_events::PapiEvent;
    use pmc_model::dataset::{Dataset, SampleRow};
    use pmc_model::model::PowerModel;
    use std::sync::Arc;

    /// A deterministic synthetic dataset spanning 1200–2600 MHz whose
    /// power is exactly linear in the tiny/oversized event rates.
    pub fn tiny_dataset(n: usize) -> Dataset {
        let mut rows = Vec::with_capacity(n);
        for i in 0..n {
            let freq_mhz = [1200u32, 1600, 2000, 2400, 2600][i % 5];
            let f = freq_mhz as f64 / 1000.0;
            let v = 0.492857 + 0.214286 * f;
            let mut rates: Vec<f64> = (0..PapiEvent::COUNT)
                .map(|j| ((31 * i + 17 * j + i * i * (j + 3)) % 97) as f64 / 9700.0)
                .collect();
            rates[PapiEvent::PRF_DM.index()] = 0.001 + 0.00002 * (i as f64);
            rates[PapiEvent::TOT_CYC.index()] = 0.2 + 0.01 * ((i * 7 % 13) as f64);
            rates[PapiEvent::TLB_IM.index()] = 0.0005 + 0.00001 * ((i * 5 % 11) as f64);
            let v2f = v * v * f;
            let power = 5000.0 * rates[PapiEvent::PRF_DM.index()] * v2f
                + 120.0 * rates[PapiEvent::TOT_CYC.index()] * v2f
                + 900.0 * rates[PapiEvent::TLB_IM.index()] * v2f
                + 20.0 * v2f
                + 40.0 * v
                + 70.0;
            rows.push(SampleRow {
                workload_id: (i % 8) as u32,
                workload: format!("w{}", i % 8),
                suite: "roco2".into(),
                phase: "main".into(),
                threads: 24,
                freq_mhz,
                duration_s: 1.0,
                voltage: v,
                power,
                rates,
            });
        }
        Dataset::from_rows(rows)
    }

    /// Events of the servable test model: 2 programmable + 1 fixed.
    pub fn tiny_events() -> Vec<PapiEvent> {
        vec![PapiEvent::PRF_DM, PapiEvent::TOT_CYC, PapiEvent::TLB_IM]
    }

    /// A fitted model that schedules into a single counter group.
    pub fn tiny_model() -> PowerModel {
        PowerModel::fit(&tiny_dataset(40), &tiny_events()).unwrap()
    }

    /// The tiny model wrapped as a version-1 artifact.
    pub fn tiny_artifact() -> Arc<ModelArtifact> {
        let mut a = ModelArtifact::new("hsw", tiny_model());
        a.version = 1;
        Arc::new(a)
    }

    /// A servable model with one event fewer than [`tiny_model`] —
    /// for width-mismatch and model-fallback tests.
    pub fn narrow_model() -> PowerModel {
        PowerModel::fit(&tiny_dataset(40), &[PapiEvent::PRF_DM, PapiEvent::TOT_CYC]).unwrap()
    }

    /// A fitted model with five programmable events — more than the
    /// four Haswell slots, so it must be rejected for online serving.
    pub fn oversized_model() -> PowerModel {
        let events = vec![
            PapiEvent::PRF_DM,
            PapiEvent::TLB_IM,
            PapiEvent::STL_ICY,
            PapiEvent::FUL_CCY,
            PapiEvent::BR_MSP,
        ];
        PowerModel::fit(&tiny_dataset(40), &events).unwrap()
    }
}
