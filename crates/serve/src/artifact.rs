//! Versioned model artifacts — the unit the registry stores.
//!
//! An artifact wraps a fitted [`PowerModel`] with a deployment name and
//! a monotonically increasing version, and carries the metadata an
//! operator needs to judge it: the selected events, the training-fit
//! R², and the training operating envelope. Artifacts are validated on
//! load: a model whose programmable events do not fit a *single*
//! Haswell counter group cannot be driven by a live PMU session and is
//! rejected before it can be activated.

use crate::error::ServeError;
use pmc_events::scheduler::{CounterGroup, CounterScheduler};
use pmc_json::Json;
use pmc_model::model::PowerModel;

/// A named, versioned, deployable power model.
#[derive(Debug, Clone)]
pub struct ModelArtifact {
    /// Deployment name (e.g. `"haswell-ep"`).
    pub name: String,
    /// Version within the name; assigned by the registry on load.
    pub version: u32,
    /// The fitted model.
    pub model: PowerModel,
}

impl ModelArtifact {
    /// Wraps a model under a deployment name. The version is a
    /// placeholder until the registry assigns the real one on load.
    pub fn new(name: impl Into<String>, model: PowerModel) -> Self {
        ModelArtifact {
            name: name.into(),
            version: 0,
            model,
        }
    }

    /// Checks that this model can be served online: its event set must
    /// schedule into one counter group on the given hardware. Returns
    /// the group a runtime would program.
    ///
    /// The name must be filesystem-safe (`[A-Za-z0-9._-]`, ≤ 64 chars,
    /// no leading dot) because the registry persists artifacts under
    /// it — a name is never allowed to become a path traversal.
    pub fn validate(&self, scheduler: &CounterScheduler) -> Result<CounterGroup, ServeError> {
        if self.name.is_empty() {
            return Err(ServeError::Registry {
                reason: "artifact name must not be empty".into(),
            });
        }
        if self.name.len() > 64 {
            return Err(ServeError::Registry {
                reason: format!("artifact name exceeds 64 characters ({})", self.name.len()),
            });
        }
        if self.name.starts_with('.') {
            return Err(ServeError::Registry {
                reason: "artifact name must not start with '.'".into(),
            });
        }
        if let Some(c) = self
            .name
            .chars()
            .find(|c| !(c.is_ascii_alphanumeric() || matches!(c, '.' | '_' | '-')))
        {
            return Err(ServeError::Registry {
                reason: format!(
                    "artifact name contains {c:?}; allowed: ASCII letters, digits, '.', '_', '-'"
                ),
            });
        }
        Ok(scheduler.validate_single_run(&self.model.events)?)
    }

    /// Operator-facing metadata: events, fit quality, training span.
    pub fn describe(&self) -> Json {
        let events: Vec<Json> = self
            .model
            .events
            .iter()
            .map(|e| Json::from(e.mnemonic()))
            .collect();
        let mut fields = vec![
            ("name", Json::from(self.name.as_str())),
            ("version", Json::from(self.version)),
            ("events", Json::Arr(events)),
            ("fit_r_squared", Json::from(self.model.fit_r_squared)),
            ("n_observations", Json::from(self.model.n_observations)),
        ];
        if let Some(env) = &self.model.envelope {
            fields.push((
                "training_envelope",
                Json::obj(vec![
                    ("voltage_min", Json::from(env.voltage_min)),
                    ("voltage_max", Json::from(env.voltage_max)),
                    ("freq_mhz_min", Json::from(env.freq_mhz_min)),
                    ("freq_mhz_max", Json::from(env.freq_mhz_max)),
                ]),
            ));
        }
        Json::obj(fields)
    }

    /// Serializes the artifact (name + version + model) to a JSON value.
    pub fn to_json_value(&self) -> Json {
        Json::obj(vec![
            ("name", Json::from(self.name.as_str())),
            ("version", Json::from(self.version)),
            ("model", self.model.to_json_value()),
        ])
    }

    /// Serializes the artifact to pretty JSON text.
    pub fn to_json(&self) -> Result<String, ServeError> {
        Ok(self.to_json_value().to_string_pretty())
    }

    /// Reads an artifact from a JSON value.
    pub fn from_json_value(v: &Json) -> Result<Self, ServeError> {
        Ok(ModelArtifact {
            name: v.str_field("name")?.to_string(),
            version: v.u32_field("version")?,
            model: PowerModel::from_json_value(v.field("model")?)?,
        })
    }

    /// Reads an artifact from JSON text.
    pub fn from_json(s: &str) -> Result<Self, ServeError> {
        Self::from_json_value(&Json::parse(s)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_fixtures::tiny_model;

    #[test]
    fn artifact_roundtrips_through_json() {
        let a = ModelArtifact::new("hsw", tiny_model());
        let text = a.to_json().unwrap();
        let b = ModelArtifact::from_json(&text).unwrap();
        assert_eq!(b.name, "hsw");
        assert_eq!(b.model.events, a.model.events);
        assert_eq!(b.model.alpha, a.model.alpha);
    }

    #[test]
    fn six_event_model_is_servable() {
        // tiny_model selects ≤ 4 programmable events + fixed riders.
        let a = ModelArtifact::new("hsw", tiny_model());
        let group = a.validate(&CounterScheduler::haswell_default()).unwrap();
        assert!(group.programmable.len() <= 4);
    }

    #[test]
    fn empty_name_rejected() {
        let a = ModelArtifact::new("", tiny_model());
        assert!(matches!(
            a.validate(&CounterScheduler::haswell_default()),
            Err(ServeError::Registry { .. })
        ));
    }

    #[test]
    fn unsafe_names_rejected() {
        let sched = CounterScheduler::haswell_default();
        for bad in [
            "../escape",
            "a/b",
            "a\\b",
            "nul\0byte",
            ".hidden",
            "..",
            "spa ce",
            &"x".repeat(65),
        ] {
            let a = ModelArtifact::new(bad, tiny_model());
            assert!(
                matches!(a.validate(&sched), Err(ServeError::Registry { .. })),
                "name {bad:?} must be rejected"
            );
        }
        for good in ["hsw", "haswell-ep_v2.1", "A.B-c_9"] {
            let a = ModelArtifact::new(good, tiny_model());
            assert!(a.validate(&sched).is_ok(), "name {good:?} must be accepted");
        }
    }

    #[test]
    fn truncated_json_is_typed_error_not_panic() {
        let a = ModelArtifact::new("hsw", tiny_model());
        let text = a.to_json().unwrap();
        for cut in [1, text.len() / 4, text.len() / 2, text.len() - 2] {
            let err = ModelArtifact::from_json(&text[..cut]);
            assert!(err.is_err(), "truncation at {cut} must fail");
        }
    }

    #[test]
    fn describe_carries_fit_metadata() {
        let mut a = ModelArtifact::new("hsw", tiny_model());
        a.version = 3;
        let d = a.describe();
        assert_eq!(d.str_field("name").unwrap(), "hsw");
        assert_eq!(d.u32_field("version").unwrap(), 3);
        assert!(d.f64_field("fit_r_squared").unwrap() > 0.9);
        assert!(d.get("training_envelope").is_some());
    }
}
