//! Engine checkpoint format: durable snapshots of per-client state.
//!
//! A checkpoint file is one header line followed by a JSON payload:
//!
//! ```text
//! PMCCKPT1 <crc32-of-payload, 8 hex digits>\n
//! {"version":1,"active":…,"clients":[…]}
//! ```
//!
//! The CRC is computed over the exact payload bytes, so *any* torn
//! write — a truncated tail, a partially applied rename, a corrupted
//! block — fails verification and the file is **quarantined**: renamed
//! to `<path>.corrupt` with the reason reported, and the server
//! cold-starts. A checkpoint problem must never keep the server from
//! booting; it only costs warm windows.
//!
//! ## Lossless number encoding
//!
//! The JSON layer carries every number as `f64`, which cannot encode
//! all `u64` timestamps (above 2^53) nor non-finite floats (a window
//! entry can legitimately hold a NaN power if a model misbehaved).
//! State that must round-trip *bitwise* — timestamps, window powers,
//! substitution rates, voltage — is therefore stored as fixed-width
//! hex strings of the raw bits (`time:16 hex`, `f64::to_bits:16 hex`),
//! not JSON numbers. The embedded last [`Estimate`] reuses its wire
//! shape; if it fails to re-parse it is dropped rather than failing
//! the restore (it is re-derivable from the next ingest).

use crate::engine::{ClientSnapshot, Estimate};
use crate::error::ServeError;
use crate::fsutil::{crc32, write_atomic_durable};
use crate::trainer::{GuardSnapshot, TrainingSnapshot};
use pmc_json::Json;
use std::path::{Path, PathBuf};

/// Magic prefix of the checkpoint header line.
const MAGIC: &str = "PMCCKPT1";
/// Payload schema version inside the JSON body.
const VERSION: u64 = 1;

/// Everything a checkpoint persists.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct CheckpointData {
    /// The active model at snapshot time, re-pinned on restore.
    pub active: Option<(String, u32)>,
    /// Durable (token-keyed) client windows.
    pub clients: Vec<ClientSnapshot>,
    /// Online-learning state (incremental fit + shadow score windows),
    /// present once training has started. Absent in checkpoints
    /// written before online learning existed — those restore with
    /// cold training, never a boot failure (like the `seq` field).
    pub training: Option<TrainingSnapshot>,
}

/// What loading a checkpoint file produced.
#[derive(Debug)]
pub enum CheckpointOutcome {
    /// No checkpoint file exists — a genuine cold start.
    NotFound,
    /// The checkpoint verified and decoded; state can be restored.
    Restored(CheckpointData),
    /// The file was torn or corrupt. It has been moved aside (to
    /// `<path>.corrupt`, best effort) and the server must cold-start.
    Quarantined {
        /// Why the checkpoint was rejected.
        reason: String,
        /// Where the corrupt file was moved, if the rename succeeded.
        quarantined_to: Option<PathBuf>,
    },
}

fn hex_u64(v: u64) -> Json {
    Json::from(format!("{v:016x}").as_str())
}

fn hex_f64(v: f64) -> Json {
    hex_u64(v.to_bits())
}

fn parse_hex_u64(v: &Json) -> Result<u64, ServeError> {
    let s = v.as_str().map_err(ServeError::from)?;
    u64::from_str_radix(s, 16).map_err(|_| ServeError::Protocol {
        reason: format!("checkpoint hex field {s:?} is not a u64"),
    })
}

fn parse_hex_f64(v: &Json) -> Result<f64, ServeError> {
    Ok(f64::from_bits(parse_hex_u64(v)?))
}

fn model_id_json(id: &Option<(String, u32)>) -> Json {
    match id {
        Some((name, version)) => Json::obj(vec![
            ("name", Json::from(name.as_str())),
            ("version", Json::from(*version)),
        ]),
        None => Json::Null,
    }
}

fn parse_model_id(v: &Json) -> Result<Option<(String, u32)>, ServeError> {
    if matches!(v, Json::Null) {
        return Ok(None);
    }
    Ok(Some((
        v.str_field("name")?.to_string(),
        v.u32_field("version")?,
    )))
}

/// Encodes one client window as a self-contained checkpoint record —
/// the unit of live migration. The router drains a window from its
/// old owner as this record, replays it on the new owner, and the
/// hex-bits number encoding guarantees the replayed window is bitwise
/// identical to the drained one.
pub fn encode_client_record(snap: &ClientSnapshot) -> Json {
    Json::obj(vec![
        ("key", hex_u64(snap.client)),
        ("model", model_id_json(&snap.model_id)),
        (
            "window",
            Json::Arr(
                snap.window
                    .iter()
                    .map(|&(t, p)| Json::Arr(vec![hex_u64(t), hex_f64(p)]))
                    .collect(),
            ),
        ),
        (
            "last_rates",
            Json::Arr(
                snap.last_rates
                    .iter()
                    .map(|r| r.map(hex_f64).unwrap_or(Json::Null))
                    .collect(),
            ),
        ),
        (
            "last_voltage",
            snap.last_voltage.map(hex_f64).unwrap_or(Json::Null),
        ),
        (
            "last",
            snap.last
                .as_ref()
                .map(Estimate::to_json_value)
                .unwrap_or(Json::Null),
        ),
        ("seq", hex_u64(snap.dirty_seq)),
    ])
}

/// Decodes one client-window checkpoint record (the inverse of
/// [`encode_client_record`]).
pub fn decode_client_record(v: &Json) -> Result<ClientSnapshot, ServeError> {
    let window = v
        .arr_field("window")?
        .iter()
        .map(|entry| {
            let pair = entry.as_arr()?;
            if pair.len() != 2 {
                return Err(ServeError::Protocol {
                    reason: "checkpoint window entry is not a [time, power] pair".into(),
                });
            }
            Ok((parse_hex_u64(&pair[0])?, parse_hex_f64(&pair[1])?))
        })
        .collect::<Result<Vec<_>, ServeError>>()?;
    let last_rates = v
        .arr_field("last_rates")?
        .iter()
        .map(|r| {
            if matches!(r, Json::Null) {
                Ok(None)
            } else {
                parse_hex_f64(r).map(Some)
            }
        })
        .collect::<Result<Vec<_>, ServeError>>()?;
    let last_voltage = match v.field("last_voltage")? {
        Json::Null => None,
        other => Some(parse_hex_f64(other)?),
    };
    // A malformed embedded estimate is re-derivable state, not a
    // reason to reject the whole client.
    let last = match v.field("last")? {
        Json::Null => None,
        other => Estimate::from_json_value(other).ok(),
    };
    // Absent in records written before replication existed: those
    // windows restore with a zero sequence and the next ingest moves
    // it, so old checkpoints stay loadable.
    let dirty_seq = match v.field("seq") {
        Ok(raw) => parse_hex_u64(raw)?,
        Err(_) => 0,
    };
    Ok(ClientSnapshot {
        client: parse_hex_u64(v.field("key")?)?,
        model_id: parse_model_id(v.field("model")?)?,
        window,
        last_rates,
        last_voltage,
        last,
        dirty_seq,
    })
}

/// Reads the dirty sequence number straight off an encoded client
/// record without decoding the whole snapshot — what a replicator
/// needs to compare the freshness of two copies of the same window.
pub fn record_seq(record: &Json) -> u64 {
    record
        .field("seq")
        .ok()
        .and_then(|raw| parse_hex_u64(raw).ok())
        .unwrap_or(0)
}

/// Encodes the online-learning state. Floats and counters use the
/// same hex-bits encoding as client windows: a restored fit must be
/// bitwise identical to the snapshotted one.
fn encode_training(t: &TrainingSnapshot) -> Json {
    let mut fields = vec![
        (
            "words",
            Json::Arr(t.words.iter().map(|&w| hex_u64(w)).collect()),
        ),
        (
            "floats",
            Json::Arr(t.floats.iter().map(|&f| hex_f64(f)).collect()),
        ),
        (
            "events",
            Json::Arr(t.events.iter().map(|e| Json::from(e.as_str())).collect()),
        ),
        ("base", model_id_json(&t.base)),
        ("accepted", hex_u64(t.accepted)),
        (
            "active_apes",
            Json::Arr(t.active_apes.iter().map(|&a| hex_f64(a)).collect()),
        ),
        (
            "shadow_apes",
            Json::Arr(t.shadow_apes.iter().map(|&a| hex_f64(a)).collect()),
        ),
    ];
    // Omitted (not null) when no guard is armed, so the common case
    // keeps the established payload shape.
    if let Some(g) = &t.guard {
        fields.push((
            "guard",
            Json::obj(vec![
                ("baseline", hex_f64(g.baseline)),
                (
                    "apes",
                    Json::Arr(g.apes.iter().map(|&a| hex_f64(a)).collect()),
                ),
            ]),
        ));
    }
    Json::obj(fields)
}

fn decode_training(v: &Json) -> Result<TrainingSnapshot, ServeError> {
    let hex_u64s = |field: &str| -> Result<Vec<u64>, ServeError> {
        v.arr_field(field)?.iter().map(parse_hex_u64).collect()
    };
    let hex_f64s = |field: &str| -> Result<Vec<f64>, ServeError> {
        v.arr_field(field)?.iter().map(parse_hex_f64).collect()
    };
    Ok(TrainingSnapshot {
        words: hex_u64s("words")?,
        floats: hex_f64s("floats")?,
        events: v
            .arr_field("events")?
            .iter()
            .map(|e| Ok(e.as_str()?.to_string()))
            .collect::<Result<Vec<_>, ServeError>>()?,
        base: parse_model_id(v.field("base")?)?,
        accepted: parse_hex_u64(v.field("accepted")?)?,
        active_apes: hex_f64s("active_apes")?,
        shadow_apes: hex_f64s("shadow_apes")?,
        // Absent in checkpoints written before the guard rode along:
        // those restore with no watch armed, never a boot failure.
        guard: match v.field("guard") {
            Ok(g) if !matches!(g, Json::Null) => Some(GuardSnapshot {
                baseline: parse_hex_f64(g.field("baseline")?)?,
                apes: g
                    .arr_field("apes")?
                    .iter()
                    .map(parse_hex_f64)
                    .collect::<Result<Vec<_>, _>>()?,
            }),
            _ => None,
        },
    })
}

/// Serializes a checkpoint to its full file content (header + payload).
pub fn encode_checkpoint(data: &CheckpointData) -> String {
    let mut fields = vec![
        ("version", Json::from(VERSION)),
        ("active", model_id_json(&data.active)),
        (
            "clients",
            Json::Arr(data.clients.iter().map(encode_client_record).collect()),
        ),
    ];
    // Omitted entirely (not null) when no training has happened, so
    // pre-training checkpoints stay byte-identical to the old format.
    if let Some(t) = &data.training {
        fields.push(("training", encode_training(t)));
    }
    let payload = Json::obj(fields).to_string();
    format!("{MAGIC} {:08x}\n{payload}", crc32(payload.as_bytes()))
}

/// Parses and CRC-verifies full checkpoint file content.
pub fn decode_checkpoint(content: &str) -> Result<CheckpointData, ServeError> {
    let bad = |reason: String| ServeError::Protocol { reason };
    let (header, payload) = content
        .split_once('\n')
        .ok_or_else(|| bad("checkpoint has no header line".into()))?;
    let crc_hex = header
        .strip_prefix(MAGIC)
        .and_then(|r| r.strip_prefix(' '))
        .ok_or_else(|| bad(format!("checkpoint header {header:?} lacks {MAGIC} magic")))?;
    let expected = u32::from_str_radix(crc_hex.trim_end(), 16)
        .map_err(|_| bad(format!("checkpoint header CRC {crc_hex:?} is not hex")))?;
    let actual = crc32(payload.as_bytes());
    if actual != expected {
        return Err(bad(format!(
            "checkpoint CRC mismatch: header says {expected:08x}, payload is {actual:08x} (torn write)"
        )));
    }
    let v = Json::parse(payload)?;
    let version = v.u64_field("version")?;
    if version != VERSION {
        return Err(bad(format!("unsupported checkpoint version {version}")));
    }
    Ok(CheckpointData {
        active: parse_model_id(v.field("active")?)?,
        clients: v
            .arr_field("clients")?
            .iter()
            .map(decode_client_record)
            .collect::<Result<Vec<_>, _>>()?,
        // Absent in checkpoints written before online learning (and
        // tolerated if malformed): the server restores with cold
        // training rather than failing the boot — training state only
        // costs warm-up, exactly like the absent `seq` tolerance.
        training: match v.field("training") {
            Ok(raw) => decode_training(raw).ok(),
            Err(_) => None,
        },
    })
}

/// Writes a checkpoint atomically and durably. With a
/// [`pmc_faults::ServeFaults`] armed for a torn write, the content is
/// instead truncated mid-payload and written *non*-atomically to the
/// final path — exactly the wreckage a crash between `write` and
/// `fsync` leaves — and the call reports failure.
pub fn write_checkpoint(
    path: &Path,
    data: &CheckpointData,
    faults: Option<&pmc_faults::ServeFaults>,
) -> Result<(), ServeError> {
    let content = encode_checkpoint(data);
    if faults.is_some_and(|f| f.should_tear_write()) {
        let torn = &content[..content.len() * 2 / 3];
        std::fs::write(path, torn)?;
        return Err(ServeError::Internal {
            reason: "injected torn checkpoint write".into(),
        });
    }
    write_atomic_durable(path, &content)
}

/// Loads the checkpoint at `path`. Never fails the boot: a missing
/// file is [`CheckpointOutcome::NotFound`], and a torn or corrupt one
/// is moved aside and reported as [`CheckpointOutcome::Quarantined`].
pub fn load_checkpoint(path: &Path) -> CheckpointOutcome {
    let content = match std::fs::read_to_string(path) {
        Ok(c) => c,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return CheckpointOutcome::NotFound,
        Err(e) => {
            return quarantine(path, format!("checkpoint unreadable: {e}"));
        }
    };
    match decode_checkpoint(&content) {
        Ok(data) => CheckpointOutcome::Restored(data),
        Err(e) => quarantine(path, e.to_string()),
    }
}

/// Moves a rejected checkpoint to `<path>.corrupt` (best effort) so
/// the next write starts clean and the evidence survives for a
/// post-mortem.
fn quarantine(path: &Path, reason: String) -> CheckpointOutcome {
    let mut corrupt_name = path.as_os_str().to_os_string();
    corrupt_name.push(".corrupt");
    let corrupt = PathBuf::from(corrupt_name);
    let quarantined_to = std::fs::rename(path, &corrupt).ok().map(|_| corrupt);
    CheckpointOutcome::Quarantined {
        reason,
        quarantined_to,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_data() -> CheckpointData {
        CheckpointData {
            active: Some(("hsw".into(), 3)),
            clients: vec![
                ClientSnapshot {
                    client: 0x8000_0000_dead_beef,
                    model_id: Some(("hsw".into(), 3)),
                    window: vec![(1, 70.5), (u64::MAX, f64::NAN), (3, -0.0)],
                    last_rates: vec![Some(0.25), None, Some(f64::INFINITY)],
                    last_voltage: Some(1.05),
                    last: Some(Estimate {
                        time_ns: 3,
                        power_w: 71.0,
                        window_power_w: 70.75,
                        samples_in_window: 3,
                        out_of_envelope: false,
                        stale: false,
                        degraded: true,
                        degraded_reasons: vec!["stale_voltage".into()],
                        model: "hsw".into(),
                        version: 3,
                    }),
                    dirty_seq: 0x1_0000_0003,
                },
                ClientSnapshot {
                    client: 2,
                    model_id: None,
                    window: vec![],
                    last_rates: vec![],
                    last_voltage: None,
                    last: None,
                    dirty_seq: 0,
                },
            ],
            training: Some(TrainingSnapshot {
                words: vec![2, 9, 256, 7, 2, 1],
                floats: vec![1.5, -0.0, f64::NAN, 2.0f64.powi(-1060), 4.0, 0.25],
                events: vec!["PRF_DM".into(), "TOT_CYC".into()],
                base: Some(("hsw".into(), 3)),
                accepted: u64::MAX - 5,
                active_apes: vec![0.05, 0.041],
                shadow_apes: vec![0.031],
                guard: Some(GuardSnapshot {
                    baseline: 3.25,
                    apes: vec![0.07, -0.0],
                }),
            }),
        }
    }

    /// PartialEq on f64 treats NaN != NaN; compare windows bitwise.
    fn assert_data_eq(a: &CheckpointData, b: &CheckpointData) {
        assert_eq!(a.active, b.active);
        assert_eq!(a.clients.len(), b.clients.len());
        for (x, y) in a.clients.iter().zip(&b.clients) {
            assert_eq!(x.client, y.client);
            assert_eq!(x.model_id, y.model_id);
            assert_eq!(x.last, y.last);
            assert_eq!(x.window.len(), y.window.len());
            for ((t1, p1), (t2, p2)) in x.window.iter().zip(&y.window) {
                assert_eq!(t1, t2);
                assert_eq!(p1.to_bits(), p2.to_bits());
            }
            let bits = |v: &Option<f64>| v.map(f64::to_bits);
            assert_eq!(bits(&x.last_voltage), bits(&y.last_voltage));
            let rate_bits: Vec<_> = x.last_rates.iter().map(bits_opt).collect();
            let other_bits: Vec<_> = y.last_rates.iter().map(bits_opt).collect();
            assert_eq!(rate_bits, other_bits);
            assert_eq!(x.dirty_seq, y.dirty_seq);
        }
        assert_eq!(a.training.is_some(), b.training.is_some());
        if let (Some(ta), Some(tb)) = (&a.training, &b.training) {
            assert_eq!(ta.words, tb.words);
            let fbits = |f: &[f64]| f.iter().map(|v| v.to_bits()).collect::<Vec<_>>();
            assert_eq!(fbits(&ta.floats), fbits(&tb.floats));
            assert_eq!(ta.events, tb.events);
            assert_eq!(ta.base, tb.base);
            assert_eq!(ta.accepted, tb.accepted);
            assert_eq!(fbits(&ta.active_apes), fbits(&tb.active_apes));
            assert_eq!(fbits(&ta.shadow_apes), fbits(&tb.shadow_apes));
            assert_eq!(ta.guard.is_some(), tb.guard.is_some());
            if let (Some(ga), Some(gb)) = (&ta.guard, &tb.guard) {
                assert_eq!(ga.baseline.to_bits(), gb.baseline.to_bits());
                assert_eq!(fbits(&ga.apes), fbits(&gb.apes));
            }
        }
    }

    fn bits_opt(v: &Option<f64>) -> Option<u64> {
        v.map(f64::to_bits)
    }

    #[test]
    fn encode_decode_roundtrips_bitwise() {
        let data = sample_data();
        let encoded = encode_checkpoint(&data);
        let decoded = decode_checkpoint(&encoded).unwrap();
        assert_data_eq(&data, &decoded);
        // Encoding is deterministic (stable checkpoint bytes).
        assert_eq!(encoded, encode_checkpoint(&decoded));
    }

    #[test]
    fn record_without_seq_field_decodes_as_zero() {
        // Pre-replication records carry no "seq"; they must stay
        // loadable and report sequence 0 both ways.
        let mut record = encode_client_record(&sample_data().clients[0]);
        if let Json::Obj(fields) = &mut record {
            fields.retain(|(k, _)| k != "seq");
        }
        assert_eq!(record_seq(&record), 0);
        let snap = decode_client_record(&record).unwrap();
        assert_eq!(snap.dirty_seq, 0);
        // And a present field reads back exactly.
        let full = encode_client_record(&sample_data().clients[0]);
        assert_eq!(record_seq(&full), 0x1_0000_0003);
    }

    /// Satellite: checkpoints written before online learning carry no
    /// `training` section; they must restore with cold training —
    /// never a boot failure — mirroring the absent-`seq` tolerance.
    #[test]
    fn checkpoint_without_training_section_restores_cold() {
        let data = CheckpointData {
            training: None,
            ..sample_data()
        };
        let encoded = encode_checkpoint(&data);
        assert!(
            !encoded.contains("\"training\""),
            "no-training checkpoints must keep the pre-training payload shape"
        );
        let decoded = decode_checkpoint(&encoded).unwrap();
        assert!(decoded.training.is_none());
        assert_data_eq(&data, &decoded);
        // A malformed training section is dropped (cold training), not
        // a boot failure: everything else still restores.
        let full = encode_checkpoint(&sample_data());
        let payload = full.split_once('\n').unwrap().1;
        let mut v = Json::parse(payload).unwrap();
        if let Json::Obj(fields) = &mut v {
            for (k, val) in fields.iter_mut() {
                if k == "training" {
                    *val = Json::from("not an object");
                }
            }
        }
        let tampered = v.to_string();
        let retagged = format!("PMCCKPT1 {:08x}\n{tampered}", crc32(tampered.as_bytes()));
        let decoded = decode_checkpoint(&retagged).unwrap();
        assert!(decoded.training.is_none(), "malformed training must drop");
        assert_eq!(decoded.clients.len(), 2, "client windows must survive");
    }

    /// Training sections written before the guard rode the checkpoint
    /// carry no `guard` field: they must decode with no watch armed —
    /// never a boot failure.
    #[test]
    fn training_without_guard_field_decodes_unarmed() {
        let full = encode_checkpoint(&sample_data());
        let payload = full.split_once('\n').unwrap().1;
        let mut v = Json::parse(payload).unwrap();
        if let Json::Obj(fields) = &mut v {
            for (k, val) in fields.iter_mut() {
                if k == "training" {
                    if let Json::Obj(t) = val {
                        t.retain(|(k, _)| k != "guard");
                    }
                }
            }
        }
        let tampered = v.to_string();
        let retagged = format!("PMCCKPT1 {:08x}\n{tampered}", crc32(tampered.as_bytes()));
        let decoded = decode_checkpoint(&retagged).unwrap();
        let training = decoded.training.expect("training section must survive");
        assert!(training.guard.is_none());
        assert_eq!(training.accepted, u64::MAX - 5);
    }

    #[test]
    fn every_truncation_is_detected() {
        let encoded = encode_checkpoint(&sample_data());
        for cut in 0..encoded.len() {
            if !encoded.is_char_boundary(cut) {
                continue;
            }
            assert!(
                decode_checkpoint(&encoded[..cut]).is_err(),
                "truncation at {cut} accepted"
            );
        }
    }

    #[test]
    fn corrupted_payload_byte_is_detected() {
        let encoded = encode_checkpoint(&sample_data());
        let body_start = encoded.find('\n').unwrap() + 1;
        // Flip one payload character (stay ASCII to keep valid UTF-8).
        let mut bytes = encoded.into_bytes();
        let i = body_start + 10;
        bytes[i] = if bytes[i] == b'a' { b'b' } else { b'a' };
        let tampered = String::from_utf8(bytes).unwrap();
        let err = decode_checkpoint(&tampered).unwrap_err();
        assert!(err.to_string().contains("CRC"), "{err}");
    }

    #[test]
    fn load_missing_is_not_found() {
        let path = std::env::temp_dir().join(format!("pmc-ckpt-none-{}", std::process::id()));
        let _ = std::fs::remove_file(&path);
        assert!(matches!(
            load_checkpoint(&path),
            CheckpointOutcome::NotFound
        ));
    }

    #[test]
    fn write_then_load_restores() {
        let dir = std::env::temp_dir().join(format!("pmc-ckpt-rt-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("engine.ckpt");
        let data = sample_data();
        write_checkpoint(&path, &data, None).unwrap();
        match load_checkpoint(&path) {
            CheckpointOutcome::Restored(got) => assert_data_eq(&data, &got),
            other => panic!("expected restore, got {other:?}"),
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_write_is_quarantined_on_load() {
        let dir = std::env::temp_dir().join(format!("pmc-ckpt-torn-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("engine.ckpt");
        let faults = pmc_faults::ServeFaults::new().tear_checkpoint(1);
        let err = write_checkpoint(&path, &sample_data(), Some(&faults)).unwrap_err();
        assert!(matches!(err, ServeError::Internal { .. }));
        assert_eq!(faults.tears_fired(), 1);
        match load_checkpoint(&path) {
            CheckpointOutcome::Quarantined {
                reason,
                quarantined_to,
            } => {
                assert!(!reason.is_empty());
                let moved = quarantined_to.expect("rename should succeed");
                assert!(moved.exists());
                assert!(!path.exists(), "corrupt file must be moved aside");
            }
            other => panic!("expected quarantine, got {other:?}"),
        }
        // The next write starts clean and loads fine.
        write_checkpoint(&path, &sample_data(), Some(&faults)).unwrap();
        assert!(matches!(
            load_checkpoint(&path),
            CheckpointOutcome::Restored(_)
        ));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
