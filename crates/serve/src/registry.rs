//! The model registry: named, versioned artifacts with one active
//! serving model.
//!
//! Loading assigns the next version under the artifact's name and
//! validates online schedulability; activation switches the serving
//! model atomically (readers holding an [`std::sync::Arc`] to the old
//! model finish their prediction unperturbed); rollback restores the
//! previously active model, which is the operator's escape hatch when
//! a freshly activated model turns out to estimate badly.
//!
//! ## Crash-safe persistence
//!
//! A registry built with [`ModelRegistry::with_persistence`] mirrors
//! every loaded artifact to disk as
//! `<dir>/<name>__v<version>.model.json`, the active id to
//! `<dir>/ACTIVE.json`, and the rollback target to
//! `<dir>/PREVIOUS.json`. All writes are **atomic**: the bytes go to a
//! `.tmp` sibling, are fsynced, and the file is renamed into place —
//! a crash at any instant leaves either the old content or the new,
//! never a torn file. Recovery scans the directory, loads every
//! fully-written artifact, skips (and reports) anything torn or
//! invalid, deletes stray `.tmp` leftovers, and restores the active
//! model and the rollback target if their pointers resolve — so an
//! automatic rollback (the post-activation guard) still has somewhere
//! to go after a crash-restart.

use crate::artifact::ModelArtifact;
use crate::error::ServeError;
use crate::fsutil::write_atomic_durable;
use pmc_events::scheduler::CounterScheduler;
use pmc_json::Json;
use std::path::{Path, PathBuf};
use std::sync::{Arc, RwLock, RwLockReadGuard, RwLockWriteGuard};

/// Identifier of a loaded artifact: `(name, version)`.
pub type ModelId = (String, u32);

#[derive(Debug, Default)]
struct RegistryInner {
    models: Vec<Arc<ModelArtifact>>,
    active: Option<usize>,
    previous: Option<usize>,
}

impl RegistryInner {
    fn find(&self, name: &str, version: u32) -> Option<usize> {
        self.models
            .iter()
            .position(|m| m.name == name && m.version == version)
    }

    fn next_version(&self, name: &str) -> u32 {
        self.models
            .iter()
            .filter(|m| m.name == name)
            .map(|m| m.version)
            .max()
            .unwrap_or(0)
            + 1
    }
}

/// What a persistence recovery scan found.
#[derive(Debug, Default, Clone, PartialEq)]
pub struct RecoveryReport {
    /// Artifacts restored, in `(name, version)` order.
    pub loaded: Vec<ModelId>,
    /// Files that could not be restored: `(file name, reason)`. Torn
    /// writes, invalid JSON, unschedulable models, stray temp files.
    pub skipped: Vec<(String, String)>,
    /// The active model restored from the `ACTIVE.json` pointer, if it
    /// resolved to a loaded artifact.
    pub active_restored: Option<ModelId>,
    /// The rollback target restored from the `PREVIOUS.json` pointer,
    /// if it resolved to a loaded artifact.
    pub previous_restored: Option<ModelId>,
}

impl RecoveryReport {
    /// True if every file in the directory was restored cleanly.
    pub fn is_clean(&self) -> bool {
        self.skipped.is_empty()
    }
}

/// Thread-safe registry of deployable power models.
#[derive(Debug)]
pub struct ModelRegistry {
    inner: RwLock<RegistryInner>,
    scheduler: CounterScheduler,
    persist_dir: Option<PathBuf>,
}

/// Resolves one persisted `{name, version}` pointer file against the
/// recovered artifact set. A missing file or a persisted `null`
/// resolves to nothing silently; an unreadable or dangling pointer is
/// reported in the recovery report, never fatal.
fn resolve_pointer(
    dir: &Path,
    file: &str,
    inner: &RegistryInner,
    report: &mut RecoveryReport,
) -> Option<(usize, ModelId)> {
    let path = dir.join(file);
    if !path.exists() {
        return None;
    }
    let parsed = std::fs::read_to_string(&path)
        .map_err(ServeError::from)
        .and_then(|text| Json::parse(&text).map_err(ServeError::from));
    let v = match parsed {
        Ok(Json::Null) => return None,
        Ok(v) => v,
        Err(e) => {
            report.skipped.push((file.to_string(), e.to_string()));
            return None;
        }
    };
    let id = match (v.str_field("name"), v.u32_field("version")) {
        (Ok(name), Ok(version)) => (name.to_string(), version),
        _ => {
            report
                .skipped
                .push((file.to_string(), "pointer is not {name, version}".into()));
            return None;
        }
    };
    match inner.find(&id.0, id.1) {
        Some(idx) => Some((idx, id)),
        None => {
            report.skipped.push((
                file.to_string(),
                format!("points at {} v{}, which did not recover", id.0, id.1),
            ));
            None
        }
    }
}

/// Recovers a read guard even if a panicking worker poisoned the
/// lock. The registry's invariants hold at every await-free mutation
/// boundary, so the data under a poisoned lock is still consistent —
/// propagating the poison would turn one contained panic into a
/// registry-wide outage.
fn read_inner(lock: &RwLock<RegistryInner>) -> RwLockReadGuard<'_, RegistryInner> {
    lock.read().unwrap_or_else(|e| e.into_inner())
}

/// Write-guard twin of [`read_inner`].
fn write_inner(lock: &RwLock<RegistryInner>) -> RwLockWriteGuard<'_, RegistryInner> {
    lock.write().unwrap_or_else(|e| e.into_inner())
}

/// The on-disk file name for an artifact. The name charset is
/// enforced by [`ModelArtifact::validate`], so this can never escape
/// the persistence directory.
fn artifact_file_name(name: &str, version: u32) -> String {
    format!("{name}__v{version}.model.json")
}

impl Default for ModelRegistry {
    fn default() -> Self {
        Self::new(CounterScheduler::haswell_default())
    }
}

impl ModelRegistry {
    /// Creates an empty registry that validates against the given
    /// hardware counter budget.
    pub fn new(scheduler: CounterScheduler) -> Self {
        ModelRegistry {
            inner: RwLock::new(RegistryInner::default()),
            scheduler,
            persist_dir: None,
        }
    }

    /// Creates a registry persisted under `dir` (created if absent)
    /// and recovers whatever a previous process left there. Torn or
    /// invalid files are skipped and reported, never fatal — after a
    /// crash the registry comes back with the last fully-written
    /// artifact set.
    pub fn with_persistence(
        scheduler: CounterScheduler,
        dir: impl Into<PathBuf>,
    ) -> Result<(Self, RecoveryReport), ServeError> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        let mut report = RecoveryReport::default();
        let mut artifacts: Vec<ModelArtifact> = Vec::new();

        let mut entries: Vec<PathBuf> = std::fs::read_dir(&dir)?
            .filter_map(|e| e.ok().map(|e| e.path()))
            .collect();
        entries.sort();
        for path in entries {
            let file = match path.file_name().and_then(|n| n.to_str()) {
                Some(f) => f.to_string(),
                None => continue,
            };
            if file.ends_with(".tmp") {
                // A crash mid-save left this behind; the rename never
                // happened, so its target still holds the old content.
                let _ = std::fs::remove_file(&path);
                report.skipped.push((
                    file,
                    "stale temp file from interrupted save; removed".into(),
                ));
                continue;
            }
            if !file.ends_with(".model.json") {
                continue;
            }
            let restored = std::fs::read_to_string(&path)
                .map_err(ServeError::from)
                .and_then(|text| ModelArtifact::from_json(&text))
                .and_then(|a| a.validate(&scheduler).map(|_| a));
            match restored {
                Ok(a) => artifacts.push(a),
                Err(e) => report.skipped.push((file, e.to_string())),
            }
        }

        artifacts.sort_by(|a, b| (&a.name, a.version).cmp(&(&b.name, b.version)));
        report.loaded = artifacts
            .iter()
            .map(|a| (a.name.clone(), a.version))
            .collect();
        let mut inner = RegistryInner {
            models: artifacts.into_iter().map(Arc::new).collect(),
            active: None,
            previous: None,
        };

        if let Some((idx, id)) = resolve_pointer(&dir, "ACTIVE.json", &inner, &mut report) {
            inner.active = Some(idx);
            report.active_restored = Some(id);
        }
        if let Some((idx, id)) = resolve_pointer(&dir, "PREVIOUS.json", &inner, &mut report) {
            // The rollback target survives the restart — without it, a
            // post-activation guard restored from the checkpoint would
            // have nowhere to roll back to.
            if inner.active != Some(idx) {
                inner.previous = Some(idx);
                report.previous_restored = Some(id);
            }
        }

        Ok((
            ModelRegistry {
                inner: RwLock::new(inner),
                scheduler,
                persist_dir: Some(dir),
            },
            report,
        ))
    }

    /// The persistence directory, if this registry has one.
    pub fn persist_dir(&self) -> Option<&Path> {
        self.persist_dir.as_deref()
    }

    /// Re-mirrors the active pointer to disk. Every mutation already
    /// persists eagerly, so this is a no-op in the steady state — it
    /// exists for the server's graceful drain, which flushes the
    /// registry as its last act so a restart resumes from exactly the
    /// drained state even if an earlier eager write raced a crash.
    pub fn flush(&self) -> Result<(), ServeError> {
        let inner = read_inner(&self.inner);
        self.persist_active(&inner)
    }

    /// Mirrors the active id and the rollback target (or their
    /// absence) to `ACTIVE.json` / `PREVIOUS.json`. The two writes are
    /// individually atomic; a crash between them leaves a stale
    /// rollback target, which recovery tolerates (it only costs the
    /// guard its target, exactly the pre-persistence behavior).
    fn persist_active(&self, inner: &RegistryInner) -> Result<(), ServeError> {
        let Some(dir) = &self.persist_dir else {
            return Ok(());
        };
        let pointer = |idx: Option<usize>| match idx.map(|i| &inner.models[i]) {
            Some(m) => Json::obj(vec![
                ("name", Json::from(m.name.as_str())),
                ("version", Json::from(m.version)),
            ]),
            None => Json::Null,
        };
        write_atomic_durable(&dir.join("ACTIVE.json"), &pointer(inner.active).to_string())?;
        write_atomic_durable(
            &dir.join("PREVIOUS.json"),
            &pointer(inner.previous).to_string(),
        )
    }

    /// Loads an artifact: validates it, assigns the next version under
    /// its name, and stores it *inactive*. Returns the assigned id.
    ///
    /// With persistence enabled the artifact is written to disk
    /// (atomically) *before* it becomes visible in memory — a load
    /// that returns `Ok` is durable.
    pub fn load(&self, mut artifact: ModelArtifact) -> Result<ModelId, ServeError> {
        artifact.validate(&self.scheduler)?;
        let mut inner = write_inner(&self.inner);
        artifact.version = inner.next_version(&artifact.name);
        let id = (artifact.name.clone(), artifact.version);
        if let Some(dir) = &self.persist_dir {
            write_atomic_durable(
                &dir.join(artifact_file_name(&id.0, id.1)),
                &artifact.to_json()?,
            )?;
        }
        inner.models.push(Arc::new(artifact));
        Ok(id)
    }

    /// Loads and immediately activates an artifact.
    pub fn load_and_activate(&self, artifact: ModelArtifact) -> Result<ModelId, ServeError> {
        let id = self.load(artifact)?;
        self.activate(&id.0, id.1)?;
        Ok(id)
    }

    /// Makes `(name, version)` the serving model. The previously active
    /// model is remembered for [`ModelRegistry::rollback`].
    pub fn activate(&self, name: &str, version: u32) -> Result<ModelId, ServeError> {
        let mut inner = write_inner(&self.inner);
        let idx = inner
            .find(name, version)
            .ok_or_else(|| ServeError::Registry {
                reason: format!("no loaded model {name} v{version}"),
            })?;
        if inner.active != Some(idx) {
            inner.previous = inner.active;
            inner.active = Some(idx);
            self.persist_active(&inner)?;
        }
        Ok((name.to_string(), version))
    }

    /// Restores the previously active model. Errors if there is none.
    pub fn rollback(&self) -> Result<ModelId, ServeError> {
        let mut inner = write_inner(&self.inner);
        let prev = inner.previous.ok_or_else(|| ServeError::Registry {
            reason: "no previous model to roll back to".into(),
        })?;
        inner.previous = inner.active;
        inner.active = Some(prev);
        self.persist_active(&inner)?;
        let m = &inner.models[prev];
        Ok((m.name.clone(), m.version))
    }

    /// The currently serving model, if any.
    pub fn active(&self) -> Option<Arc<ModelArtifact>> {
        let inner = read_inner(&self.inner);
        inner.active.map(|i| Arc::clone(&inner.models[i]))
    }

    /// The previously active model (the rollback target), if any —
    /// also the server's fallback when the active model cannot serve
    /// a request the previous one can.
    pub fn previous(&self) -> Option<Arc<ModelArtifact>> {
        let inner = read_inner(&self.inner);
        inner.previous.map(|i| Arc::clone(&inner.models[i]))
    }

    /// The serving pair — `(active, previous)` — captured under one
    /// lock acquisition. Callers that dispatch a batch must resolve
    /// the pair exactly once through this method and hold the returned
    /// `Arc`s for the whole dispatch: separate [`ModelRegistry::active`]
    /// / [`ModelRegistry::previous`] calls can interleave with an
    /// `activate` or `rollback` and observe a torn pair (e.g. the new
    /// active with the old previous), which would let two rows of the
    /// same batch be served by inconsistent model versions.
    pub fn serving_pair(&self) -> (Option<Arc<ModelArtifact>>, Option<Arc<ModelArtifact>>) {
        let inner = read_inner(&self.inner);
        (
            inner.active.map(|i| Arc::clone(&inner.models[i])),
            inner.previous.map(|i| Arc::clone(&inner.models[i])),
        )
    }

    /// A specific loaded model.
    pub fn get(&self, name: &str, version: u32) -> Option<Arc<ModelArtifact>> {
        let inner = read_inner(&self.inner);
        inner
            .find(name, version)
            .map(|i| Arc::clone(&inner.models[i]))
    }

    /// Number of loaded artifacts.
    pub fn len(&self) -> usize {
        read_inner(&self.inner).models.len()
    }

    /// True if nothing is loaded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Metadata for every loaded artifact, active one flagged.
    pub fn list(&self) -> Json {
        let inner = read_inner(&self.inner);
        let items: Vec<Json> = inner
            .models
            .iter()
            .enumerate()
            .map(|(i, m)| {
                let mut d = m.describe();
                if let Json::Obj(fields) = &mut d {
                    fields.push(("active".into(), Json::Bool(inner.active == Some(i))));
                }
                d
            })
            .collect();
        Json::Arr(items)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_fixtures::{oversized_model, tiny_model};

    fn registry() -> ModelRegistry {
        ModelRegistry::default()
    }

    #[test]
    fn load_assigns_monotone_versions_per_name() {
        let r = registry();
        let (_, v1) = r.load(ModelArtifact::new("a", tiny_model())).unwrap();
        let (_, v2) = r.load(ModelArtifact::new("a", tiny_model())).unwrap();
        let (_, u1) = r.load(ModelArtifact::new("b", tiny_model())).unwrap();
        assert_eq!((v1, v2, u1), (1, 2, 1));
        assert_eq!(r.len(), 3);
    }

    #[test]
    fn nothing_active_until_activated() {
        let r = registry();
        r.load(ModelArtifact::new("a", tiny_model())).unwrap();
        assert!(r.active().is_none());
        r.activate("a", 1).unwrap();
        assert_eq!(r.active().unwrap().version, 1);
    }

    #[test]
    fn activate_unknown_version_errors() {
        let r = registry();
        r.load(ModelArtifact::new("a", tiny_model())).unwrap();
        assert!(matches!(
            r.activate("a", 7),
            Err(ServeError::Registry { .. })
        ));
    }

    #[test]
    fn rollback_restores_previous_and_swaps() {
        let r = registry();
        r.load_and_activate(ModelArtifact::new("a", tiny_model()))
            .unwrap();
        r.load_and_activate(ModelArtifact::new("a", tiny_model()))
            .unwrap();
        assert_eq!(r.active().unwrap().version, 2);
        assert_eq!(r.rollback().unwrap().1, 1);
        assert_eq!(r.active().unwrap().version, 1);
        // Rolling back again returns to v2 (swap semantics).
        assert_eq!(r.rollback().unwrap().1, 2);
    }

    #[test]
    fn serving_pair_snapshot_survives_activate_and_rollback() {
        let r = registry();
        r.load_and_activate(ModelArtifact::new("a", tiny_model()))
            .unwrap();
        r.load_and_activate(ModelArtifact::new("a", tiny_model()))
            .unwrap();

        // A dispatch resolves its pair once, then registry churn
        // happens mid-flight: the pinned Arcs must be unaffected.
        let (active, previous) = r.serving_pair();
        r.load_and_activate(ModelArtifact::new("a", tiny_model()))
            .unwrap(); // v3 active
        r.rollback().unwrap(); // back to v2
        assert_eq!(active.as_ref().unwrap().version, 2);
        assert_eq!(previous.as_ref().unwrap().version, 1);

        // A fresh snapshot sees the post-churn state consistently.
        let (active2, previous2) = r.serving_pair();
        assert_eq!(active2.unwrap().version, 2);
        assert_eq!(previous2.unwrap().version, 3);
    }

    #[test]
    fn rollback_without_history_errors() {
        let r = registry();
        assert!(r.rollback().is_err());
        r.load_and_activate(ModelArtifact::new("a", tiny_model()))
            .unwrap();
        // One activation: nothing was active before it.
        assert!(r.rollback().is_err());
    }

    #[test]
    fn unschedulable_model_rejected_on_load() {
        let r = registry();
        let err = r.load(ModelArtifact::new("fat", oversized_model()));
        assert!(matches!(err, Err(ServeError::Schedule(_))), "{err:?}");
        assert!(r.is_empty());
    }

    /// A fresh scratch directory under the system temp dir.
    fn scratch_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("pmc-registry-test-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn persistence_survives_a_restart() {
        let dir = scratch_dir("restart");
        {
            let (r, report) =
                ModelRegistry::with_persistence(CounterScheduler::haswell_default(), &dir).unwrap();
            assert!(report.loaded.is_empty() && report.is_clean());
            r.load(ModelArtifact::new("a", tiny_model())).unwrap();
            r.load_and_activate(ModelArtifact::new("a", tiny_model()))
                .unwrap();
            r.load(ModelArtifact::new("b", tiny_model())).unwrap();
        }
        let (r, report) =
            ModelRegistry::with_persistence(CounterScheduler::haswell_default(), &dir).unwrap();
        assert!(report.is_clean(), "{:?}", report.skipped);
        assert_eq!(
            report.loaded,
            vec![
                ("a".to_string(), 1),
                ("a".to_string(), 2),
                ("b".to_string(), 1)
            ]
        );
        assert_eq!(report.active_restored, Some(("a".to_string(), 2)));
        let active = r.active().unwrap();
        assert_eq!((active.name.as_str(), active.version), ("a", 2));
        // Version numbering continues where it left off.
        assert_eq!(r.load(ModelArtifact::new("a", tiny_model())).unwrap().1, 3);
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Review regression: the rollback target did not survive a
    /// restart, so a post-activation guard restored from the
    /// checkpoint had nowhere to roll back to — a bad model activated
    /// just before a crash kept serving unguarded.
    #[test]
    fn rollback_target_survives_a_restart() {
        let dir = scratch_dir("previous");
        {
            let (r, _) =
                ModelRegistry::with_persistence(CounterScheduler::haswell_default(), &dir).unwrap();
            r.load_and_activate(ModelArtifact::new("a", tiny_model()))
                .unwrap();
            r.load_and_activate(ModelArtifact::new("a", tiny_model()))
                .unwrap();
        }
        let (r, report) =
            ModelRegistry::with_persistence(CounterScheduler::haswell_default(), &dir).unwrap();
        assert!(report.is_clean(), "{:?}", report.skipped);
        assert_eq!(report.previous_restored, Some(("a".to_string(), 1)));
        assert_eq!(r.previous().unwrap().version, 1);
        // The restored pair still rolls back — what a restored
        // post-activation guard depends on.
        assert_eq!(r.rollback().unwrap().1, 1);
        assert_eq!(r.active().unwrap().version, 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn kill_mid_save_recovers_last_fully_written_set() {
        let dir = scratch_dir("torn");
        {
            let (r, _) =
                ModelRegistry::with_persistence(CounterScheduler::haswell_default(), &dir).unwrap();
            r.load_and_activate(ModelArtifact::new("good", tiny_model()))
                .unwrap();
        }
        // Simulate a crash mid-save: a half-written artifact file and
        // a stray temp file the rename never consumed.
        let full = ModelArtifact::new("torn", tiny_model()).to_json().unwrap();
        std::fs::write(dir.join("torn__v1.model.json"), &full[..full.len() / 2]).unwrap();
        std::fs::write(dir.join("other__v1.model.json.tmp"), "partial").unwrap();

        let (r, report) =
            ModelRegistry::with_persistence(CounterScheduler::haswell_default(), &dir).unwrap();
        // The fully-written artifact set is back; the torn file and the
        // stray temp are skipped and reported, never loaded.
        assert_eq!(report.loaded, vec![("good".to_string(), 1)]);
        assert_eq!(report.active_restored, Some(("good".to_string(), 1)));
        assert_eq!(report.skipped.len(), 2, "{:?}", report.skipped);
        assert!(report
            .skipped
            .iter()
            .any(|(f, _)| f == "torn__v1.model.json"));
        assert!(report.skipped.iter().any(|(f, _)| f.ends_with(".tmp")));
        assert!(!dir.join("other__v1.model.json.tmp").exists());
        assert_eq!(r.len(), 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn dangling_active_pointer_is_reported_not_fatal() {
        let dir = scratch_dir("dangling");
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(
            dir.join("ACTIVE.json"),
            "{\"name\": \"ghost\", \"version\": 9}",
        )
        .unwrap();
        let (r, report) =
            ModelRegistry::with_persistence(CounterScheduler::haswell_default(), &dir).unwrap();
        assert!(r.active().is_none());
        assert!(report
            .skipped
            .iter()
            .any(|(f, why)| f == "ACTIVE.json" && why.contains("ghost")));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn list_reports_active_flag() {
        let r = registry();
        r.load(ModelArtifact::new("a", tiny_model())).unwrap();
        r.load_and_activate(ModelArtifact::new("a", tiny_model()))
            .unwrap();
        let l = r.list();
        let items = l.as_arr().unwrap();
        assert_eq!(items.len(), 2);
        assert_eq!(items[0].field("active").unwrap(), &Json::Bool(false));
        assert_eq!(items[1].field("active").unwrap(), &Json::Bool(true));
    }
}
