//! The model registry: named, versioned artifacts with one active
//! serving model.
//!
//! Loading assigns the next version under the artifact's name and
//! validates online schedulability; activation switches the serving
//! model atomically (readers holding an [`std::sync::Arc`] to the old
//! model finish their prediction unperturbed); rollback restores the
//! previously active model, which is the operator's escape hatch when
//! a freshly activated model turns out to estimate badly.

use crate::artifact::ModelArtifact;
use crate::error::ServeError;
use pmc_events::scheduler::CounterScheduler;
use pmc_json::Json;
use std::sync::{Arc, RwLock};

/// Identifier of a loaded artifact: `(name, version)`.
pub type ModelId = (String, u32);

#[derive(Debug, Default)]
struct RegistryInner {
    models: Vec<Arc<ModelArtifact>>,
    active: Option<usize>,
    previous: Option<usize>,
}

impl RegistryInner {
    fn find(&self, name: &str, version: u32) -> Option<usize> {
        self.models
            .iter()
            .position(|m| m.name == name && m.version == version)
    }

    fn next_version(&self, name: &str) -> u32 {
        self.models
            .iter()
            .filter(|m| m.name == name)
            .map(|m| m.version)
            .max()
            .unwrap_or(0)
            + 1
    }
}

/// Thread-safe registry of deployable power models.
#[derive(Debug)]
pub struct ModelRegistry {
    inner: RwLock<RegistryInner>,
    scheduler: CounterScheduler,
}

impl Default for ModelRegistry {
    fn default() -> Self {
        Self::new(CounterScheduler::haswell_default())
    }
}

impl ModelRegistry {
    /// Creates an empty registry that validates against the given
    /// hardware counter budget.
    pub fn new(scheduler: CounterScheduler) -> Self {
        ModelRegistry {
            inner: RwLock::new(RegistryInner::default()),
            scheduler,
        }
    }

    /// Loads an artifact: validates it, assigns the next version under
    /// its name, and stores it *inactive*. Returns the assigned id.
    pub fn load(&self, mut artifact: ModelArtifact) -> Result<ModelId, ServeError> {
        artifact.validate(&self.scheduler)?;
        let mut inner = self.inner.write().expect("registry lock poisoned");
        artifact.version = inner.next_version(&artifact.name);
        let id = (artifact.name.clone(), artifact.version);
        inner.models.push(Arc::new(artifact));
        Ok(id)
    }

    /// Loads and immediately activates an artifact.
    pub fn load_and_activate(&self, artifact: ModelArtifact) -> Result<ModelId, ServeError> {
        let id = self.load(artifact)?;
        self.activate(&id.0, id.1)?;
        Ok(id)
    }

    /// Makes `(name, version)` the serving model. The previously active
    /// model is remembered for [`ModelRegistry::rollback`].
    pub fn activate(&self, name: &str, version: u32) -> Result<ModelId, ServeError> {
        let mut inner = self.inner.write().expect("registry lock poisoned");
        let idx = inner
            .find(name, version)
            .ok_or_else(|| ServeError::Registry {
                reason: format!("no loaded model {name} v{version}"),
            })?;
        if inner.active != Some(idx) {
            inner.previous = inner.active;
            inner.active = Some(idx);
        }
        Ok((name.to_string(), version))
    }

    /// Restores the previously active model. Errors if there is none.
    pub fn rollback(&self) -> Result<ModelId, ServeError> {
        let mut inner = self.inner.write().expect("registry lock poisoned");
        let prev = inner.previous.ok_or_else(|| ServeError::Registry {
            reason: "no previous model to roll back to".into(),
        })?;
        inner.previous = inner.active;
        inner.active = Some(prev);
        let m = &inner.models[prev];
        Ok((m.name.clone(), m.version))
    }

    /// The currently serving model, if any.
    pub fn active(&self) -> Option<Arc<ModelArtifact>> {
        let inner = self.inner.read().expect("registry lock poisoned");
        inner.active.map(|i| Arc::clone(&inner.models[i]))
    }

    /// A specific loaded model.
    pub fn get(&self, name: &str, version: u32) -> Option<Arc<ModelArtifact>> {
        let inner = self.inner.read().expect("registry lock poisoned");
        inner
            .find(name, version)
            .map(|i| Arc::clone(&inner.models[i]))
    }

    /// Number of loaded artifacts.
    pub fn len(&self) -> usize {
        self.inner
            .read()
            .expect("registry lock poisoned")
            .models
            .len()
    }

    /// True if nothing is loaded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Metadata for every loaded artifact, active one flagged.
    pub fn list(&self) -> Json {
        let inner = self.inner.read().expect("registry lock poisoned");
        let items: Vec<Json> = inner
            .models
            .iter()
            .enumerate()
            .map(|(i, m)| {
                let mut d = m.describe();
                if let Json::Obj(fields) = &mut d {
                    fields.push(("active".into(), Json::Bool(inner.active == Some(i))));
                }
                d
            })
            .collect();
        Json::Arr(items)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_fixtures::{oversized_model, tiny_model};

    fn registry() -> ModelRegistry {
        ModelRegistry::default()
    }

    #[test]
    fn load_assigns_monotone_versions_per_name() {
        let r = registry();
        let (_, v1) = r.load(ModelArtifact::new("a", tiny_model())).unwrap();
        let (_, v2) = r.load(ModelArtifact::new("a", tiny_model())).unwrap();
        let (_, u1) = r.load(ModelArtifact::new("b", tiny_model())).unwrap();
        assert_eq!((v1, v2, u1), (1, 2, 1));
        assert_eq!(r.len(), 3);
    }

    #[test]
    fn nothing_active_until_activated() {
        let r = registry();
        r.load(ModelArtifact::new("a", tiny_model())).unwrap();
        assert!(r.active().is_none());
        r.activate("a", 1).unwrap();
        assert_eq!(r.active().unwrap().version, 1);
    }

    #[test]
    fn activate_unknown_version_errors() {
        let r = registry();
        r.load(ModelArtifact::new("a", tiny_model())).unwrap();
        assert!(matches!(
            r.activate("a", 7),
            Err(ServeError::Registry { .. })
        ));
    }

    #[test]
    fn rollback_restores_previous_and_swaps() {
        let r = registry();
        r.load_and_activate(ModelArtifact::new("a", tiny_model()))
            .unwrap();
        r.load_and_activate(ModelArtifact::new("a", tiny_model()))
            .unwrap();
        assert_eq!(r.active().unwrap().version, 2);
        assert_eq!(r.rollback().unwrap().1, 1);
        assert_eq!(r.active().unwrap().version, 1);
        // Rolling back again returns to v2 (swap semantics).
        assert_eq!(r.rollback().unwrap().1, 2);
    }

    #[test]
    fn rollback_without_history_errors() {
        let r = registry();
        assert!(r.rollback().is_err());
        r.load_and_activate(ModelArtifact::new("a", tiny_model()))
            .unwrap();
        // One activation: nothing was active before it.
        assert!(r.rollback().is_err());
    }

    #[test]
    fn unschedulable_model_rejected_on_load() {
        let r = registry();
        let err = r.load(ModelArtifact::new("fat", oversized_model()));
        assert!(matches!(err, Err(ServeError::Schedule(_))), "{err:?}");
        assert!(r.is_empty());
    }

    #[test]
    fn list_reports_active_flag() {
        let r = registry();
        r.load(ModelArtifact::new("a", tiny_model())).unwrap();
        r.load_and_activate(ModelArtifact::new("a", tiny_model()))
            .unwrap();
        let l = r.list();
        let items = l.as_arr().unwrap();
        assert_eq!(items.len(), 2);
        assert_eq!(items[0].field("active").unwrap(), &Json::Bool(false));
        assert_eq!(items[1].field("active").unwrap(), &Json::Bool(true));
    }
}
