//! Guarded online model refresh: the `train` op's whole lifecycle.
//!
//! A labeled sample (counter vector + measured watts) flows through
//! three defenses before it can influence serving:
//!
//! 1. **Quarantine gate** — typed, machine-readable rejection of
//!    poisoned samples: non-finite / implausible / out-of-envelope
//!    labels, bad voltage or duration, implausible counters, and
//!    high-leverage design rows (the classic single-observation
//!    poisoning vector), reusing [`pmc_model::quarantine`]'s reason
//!    taxonomy.
//! 2. **Shadow evaluation** — accepted samples feed an incremental OLS
//!    refit ([`pmc_stats::OnlineOls`], rank-1 Sherman–Morrison updates
//!    with a conditioning fallback). The refit candidate never answers
//!    clients; it is scored on live labels (rolling MAPE) against the
//!    active model, and only auto-activated through the versioned
//!    registry after beating the active model by a configurable margin
//!    over a minimum number of scored labels.
//! 3. **Activation guard** — after *any* activation (auto or manual),
//!    the newly active model's rolling MAPE is watched against the
//!    baseline it promised; regressing past the guard threshold
//!    triggers an automatic [`ModelRegistry::rollback`] to the pinned
//!    previous version and latches the `shadow_regressed` readiness
//!    reason until a later activation proves healthy.
//!
//! The fit, both score windows, and any armed activation guard
//! serialize into the engine checkpoint ([`TrainingSnapshot`]) so a
//! SIGKILL mid-training resumes the fit **bitwise** — the restored
//! stream produces exactly the coefficients the uninterrupted one
//! would have — and a crash right after an activation does not disarm
//! the rollback watch.

use crate::artifact::ModelArtifact;
use crate::engine::CounterSample;
use crate::error::ServeError;
use crate::registry::ModelRegistry;
use crate::stats::ServerStats;
use pmc_events::PapiEvent;
use pmc_json::Json;
use pmc_model::model::PowerModel;
use pmc_model::quarantine::{triage_label, QuarantineConfig, QuarantineReason};
use pmc_stats::OnlineOls;
use std::collections::VecDeque;
use std::sync::atomic::Ordering;
use std::sync::Mutex;

/// Thresholds and windows of the online-learning loop.
#[derive(Debug, Clone)]
pub struct TrainerConfig {
    /// Rolling score-window length (labels) for both MAPE series.
    pub score_window: usize,
    /// Minimum scored labels in *both* windows before the shadow may
    /// auto-activate.
    pub min_score_samples: usize,
    /// Minimum accepted samples before a candidate is even built.
    pub min_train_samples: u64,
    /// The shadow must beat the active MAPE by this relative margin
    /// (`shadow < active · (1 − margin)`) to auto-activate.
    pub activate_margin: f64,
    /// Post-activation regression bound: rolling MAPE above
    /// `baseline · (1 + threshold)` triggers automatic rollback.
    pub guard_threshold: f64,
    /// Labels scored after an activation before the guard verdict.
    pub guard_window: usize,
    /// Absolute MAPE slack, percentage points. Auto-activation needs
    /// `active − shadow` to exceed this, and the guard bound gets it
    /// added — so machine-epsilon MAPE differences between two
    /// near-perfect models never drive activation churn or spurious
    /// rollback.
    pub mape_slack: f64,
    /// A design row with leverage above `factor · p / n` — squared
    /// Mahalanobis distance beyond `factor · p` — is quarantined as a
    /// leverage outlier. Benign first-of-kind operating points on a
    /// gridded campaign reach ~100·p/n; injected single-row poisoning
    /// (counters scaled tens of ×) lands thousands of ×p/n out, so
    /// the default separates them with a wide margin at any `n`.
    pub leverage_factor: f64,
    /// Full-refactorization cadence of the incremental fit.
    pub resync_every: u64,
    /// Plausibility envelope for labels, voltage, and counter rates.
    pub quarantine: QuarantineConfig,
}

impl Default for TrainerConfig {
    fn default() -> Self {
        TrainerConfig {
            score_window: 64,
            min_score_samples: 20,
            min_train_samples: 24,
            activate_margin: 0.1,
            guard_threshold: 0.5,
            guard_window: 10,
            mape_slack: 0.01,
            leverage_factor: 500.0,
            resync_every: 256,
            quarantine: QuarantineConfig::default(),
        }
    }
}

/// Post-activation watch: the promised baseline MAPE and the labels
/// scored against the newly active model since activation.
#[derive(Debug)]
struct GuardState {
    /// MAPE (percent) the activation promised — the shadow window's
    /// median at auto-activation, or the retired active window's when
    /// the activation was external (manual `activate` / `rollback`).
    baseline: f64,
    apes: VecDeque<f64>,
}

#[derive(Debug)]
struct TrainerState {
    fit: OnlineOls,
    events: Vec<PapiEvent>,
    /// The active model id the shadow is racing; an observed change
    /// means an activation happened and both score windows retire.
    base: Option<(String, u32)>,
    candidate: Option<PowerModel>,
    active_apes: VecDeque<f64>,
    shadow_apes: VecDeque<f64>,
    guard: Option<GuardState>,
    accepted: u64,
}

impl Default for TrainerState {
    fn default() -> Self {
        TrainerState {
            // Placeholder width; the first `train` call resets the fit
            // to the active model's design before any push.
            fit: OnlineOls::new(0, 0),
            events: Vec::new(),
            base: None,
            candidate: None,
            active_apes: VecDeque::new(),
            shadow_apes: VecDeque::new(),
            guard: None,
            accepted: 0,
        }
    }
}

/// [`GuardState`] as it rides the checkpoint: a crash right after an
/// activation must not disarm the post-activation regression watch —
/// a bad model activated just before a SIGKILL would otherwise keep
/// serving with no automatic rollback.
#[derive(Debug, Clone, PartialEq)]
pub struct GuardSnapshot {
    /// Promised baseline MAPE, percent.
    pub baseline: f64,
    /// APEs scored against the newly active model since activation.
    pub apes: Vec<f64>,
}

/// Complete serializable training state — what rides the checkpoint.
#[derive(Debug, Clone, PartialEq)]
pub struct TrainingSnapshot {
    /// [`OnlineOls::state`] integer words.
    pub words: Vec<u64>,
    /// [`OnlineOls::state`] float words (bitwise-exact).
    pub floats: Vec<f64>,
    /// Event mnemonics of the fit's design, in coefficient order.
    pub events: Vec<String>,
    /// The active model id the shadow was racing.
    pub base: Option<(String, u32)>,
    /// Accepted (gate-passing) samples so far.
    pub accepted: u64,
    /// Rolling APE window of the active model (fractions).
    pub active_apes: Vec<f64>,
    /// Rolling APE window of the shadow candidate (fractions).
    pub shadow_apes: Vec<f64>,
    /// Armed post-activation guard, if an activation was still under
    /// watch at snapshot time.
    pub guard: Option<GuardSnapshot>,
}

/// The shared online-learning loop: one per server, called from any
/// worker holding a `train` request.
#[derive(Debug)]
pub struct Trainer {
    config: TrainerConfig,
    state: Mutex<TrainerState>,
}

/// Rolling MAPE of a window, percent (the paper's convention) —
/// computed as the **median** APE, not the mean. The windows score
/// every gate-passing label, and a leverage attack that slips through
/// the cold-start gate produces a few wild APEs against the honest
/// active model; a mean would let that minority hand the race to the
/// very candidate that trained on the poison. The median ignores any
/// minority of wild points while tracking genuine (whole-stream)
/// drift exactly.
fn window_mape(w: &VecDeque<f64>) -> Option<f64> {
    if w.is_empty() {
        return None;
    }
    let mut sorted: Vec<f64> = w.iter().copied().collect();
    // total_cmp: the windows only ever receive finite APEs, but a NaN
    // that somehow slipped in (or rode a checkpoint) must not panic
    // the whole train path for the window's lifetime.
    sorted.sort_by(f64::total_cmp);
    let mid = sorted.len() / 2;
    let median = if sorted.len() % 2 == 1 {
        sorted[mid]
    } else {
        (sorted[mid - 1] + sorted[mid]) / 2.0
    };
    Some(100.0 * median)
}

/// Pushes one APE, dropping non-finite scores: a degenerate model's
/// NaN prediction must never poison a window — a single NaN median
/// would disable every threshold comparison (NaN compares false) and
/// ride the checkpoint across restarts.
fn push_window(w: &mut VecDeque<f64>, ape: f64, cap: usize) {
    if !ape.is_finite() {
        return;
    }
    w.push_back(ape);
    while w.len() > cap.max(1) {
        w.pop_front();
    }
}

fn id_json(id: &(String, u32)) -> Json {
    Json::obj(vec![
        ("name", Json::from(id.0.as_str())),
        ("version", Json::from(id.1)),
    ])
}

impl Trainer {
    /// Creates a trainer with the given thresholds.
    pub fn new(config: TrainerConfig) -> Self {
        Trainer {
            config,
            state: Mutex::new(TrainerState::default()),
        }
    }

    /// The configured thresholds.
    pub fn config(&self) -> &TrainerConfig {
        &self.config
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, TrainerState> {
        // A panic mid-update cannot corrupt the state (exact
        // accumulators are updated atomically per push); recover the
        // lock like the registry does.
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Handles one `train` request end to end. `total_cores` is the
    /// engine's rate-normalization constant (events per available core
    /// cycle must match the offline dataset normalization).
    pub fn train(
        &self,
        registry: &ModelRegistry,
        stats: &ServerStats,
        total_cores: u32,
        sample: &CounterSample,
        power_w: f64,
    ) -> Result<Json, ServeError> {
        let cfg = &self.config;
        let active = registry.active().ok_or_else(|| ServeError::Registry {
            reason: "no active model — training needs a serving baseline".into(),
        })?;
        let active_id = (active.name.clone(), active.version);
        let mut st = self.lock();

        if st.events != active.model.events {
            // The serving design changed width or content: the old
            // sufficient statistics describe a different regression.
            self.reset_training(&mut st, &active.model.events);
            st.base = Some(active_id.clone());
        } else if st.base.as_ref() != Some(&active_id) {
            // An activation (manual activate/rollback, or another
            // worker's auto-activation) landed since the last label:
            // both score windows described the retired pairing and
            // must retire with it. The retired active window's mean
            // becomes the guard baseline for the new model.
            let baseline = (st.active_apes.len() >= cfg.min_score_samples)
                .then(|| window_mape(&st.active_apes))
                .flatten();
            st.active_apes.clear();
            st.shadow_apes.clear();
            st.guard = baseline.map(|baseline| GuardState {
                baseline,
                apes: VecDeque::new(),
            });
            st.base = Some(active_id.clone());
        }

        if sample.deltas.len() != st.events.len() {
            return Err(ServeError::WidthMismatch {
                expected: st.events.len(),
                got: sample.deltas.len(),
            });
        }

        // ---- Quarantine gate: typed reasons, nothing poisoned ever
        // reaches the sufficient statistics or the score windows. ----
        let mut reasons: Vec<QuarantineReason> = triage_label(power_w, &cfg.quarantine);
        if !(sample.duration_s.is_finite() && sample.duration_s > 0.0) {
            reasons.push(QuarantineReason::BadDuration);
        }
        if sample.freq_mhz == 0 {
            // Mirrors the ingest path's rejection (engine.rs): zero
            // frequency means zero available cycles, and 0/0 rates
            // would smear NaN through predictions and score windows.
            reasons.push(QuarantineReason::BadFrequency);
        }
        if !(sample.voltage.is_finite()
            && sample.voltage >= cfg.quarantine.min_voltage_v
            && sample.voltage <= cfg.quarantine.max_voltage_v)
        {
            reasons.push(QuarantineReason::BadVoltage);
        }
        if !sample.missing.is_empty() {
            // A training label must be explained by a complete counter
            // vector; substitution heuristics are for serving, not
            // fitting.
            reasons.push(QuarantineReason::MissingCounters {
                missing: sample
                    .missing
                    .iter()
                    .filter_map(|&i| st.events.get(i).copied())
                    .collect(),
            });
        }

        let mut rates = Vec::with_capacity(st.events.len());
        if reasons.is_empty() {
            let available_cycles =
                total_cores as f64 * sample.freq_mhz as f64 * 1e6 * sample.duration_s;
            for (&delta, &event) in sample.deltas.iter().zip(st.events.iter()) {
                if !delta.is_finite() || delta < 0.0 {
                    reasons.push(QuarantineReason::NonFiniteCounter { event });
                    continue;
                }
                let rate = delta / available_cycles;
                if rate > cfg.quarantine.max_rate_per_cycle {
                    reasons.push(QuarantineReason::ImplausibleCounter { event });
                }
                rates.push(rate);
            }
        }

        let mut row = Vec::new();
        if reasons.is_empty() {
            if let Some(env) = &active.model.envelope {
                if !env.contains(sample.voltage, sample.freq_mhz) {
                    reasons.push(QuarantineReason::OutOfEnvelopeLabel);
                }
            }
            let v2f = sample.voltage * sample.voltage * (sample.freq_mhz as f64 / 1000.0);
            row = Vec::with_capacity(st.events.len() + 3);
            for &r in &rates {
                row.push(r * v2f);
            }
            row.push(v2f);
            row.push(sample.voltage);
            row.push(1.0);
            // Leverage check: h = rᵀ(XᵀX)⁻¹r against the p/n average.
            // A single far-out design row could otherwise steer the
            // whole incremental fit (the leverage poisoning vector).
            // Engages only once n ≥ 2p: a just-determined fit's
            // near-singular inverse makes every new row look extreme.
            if reasons.is_empty() && st.fit.is_warm() && st.fit.n() >= 2 * st.fit.width() as u64 {
                if let Some(h) = st.fit.leverage(&row) {
                    let avg = st.fit.width() as f64 / st.fit.n().max(1) as f64;
                    if h > cfg.leverage_factor * avg {
                        reasons.push(QuarantineReason::LeverageOutlier);
                    }
                }
            }
        }

        if !reasons.is_empty() {
            ServerStats::bump(&stats.train_samples_quarantined);
            return Ok(self.response(&st, false, &reasons, None, false));
        }

        // ---- Shadow scoring: the label is a holdout for both models
        // *before* it feeds the fit. ----
        let label_ape = |pred: f64| ((pred - power_w) / power_w).abs();
        let active_pred = active
            .model
            .predict_raw(&rates, sample.voltage, sample.freq_mhz)?;
        let ape_active = label_ape(active_pred);
        push_window(&mut st.active_apes, ape_active, cfg.score_window);
        if let Some(candidate) = &st.candidate {
            let shadow_pred = candidate.predict_raw(&rates, sample.voltage, sample.freq_mhz)?;
            push_window(
                &mut st.shadow_apes,
                label_ape(shadow_pred),
                cfg.score_window,
            );
        }
        stats.shadow_mape_bits.store(
            window_mape(&st.shadow_apes).unwrap_or(0.0).to_bits(),
            Ordering::Relaxed,
        );

        // ---- Activation guard: the newly active model must hold the
        // MAPE its activation promised. ----
        if let Some(guard) = &mut st.guard {
            if ape_active.is_finite() {
                guard.apes.push_back(ape_active);
            }
            if guard.apes.len() >= cfg.guard_window {
                let observed = window_mape(&guard.apes).unwrap_or(f64::INFINITY);
                let bound = guard.baseline * (1.0 + cfg.guard_threshold) + cfg.mape_slack;
                if observed > bound {
                    match registry.rollback() {
                        Ok(id) => {
                            ServerStats::bump(&stats.auto_rollbacks);
                            stats.shadow_regressed.store(1, Ordering::Relaxed);
                            // The fit that produced (or tolerated) the
                            // regressed model restarts cold — keeping
                            // it would re-promote the same candidate.
                            let events = st.events.clone();
                            self.reset_training(&mut st, &events);
                            st.base = Some(id);
                            // `accepted` means "entered the fit" — this
                            // label triggered the rollback and the fit
                            // was reset before it could be pushed, so
                            // it was not accepted (and the accepted
                            // counters agree).
                            return Ok(self.response(&st, false, &[], None, true));
                        }
                        // No pinned previous version: nothing to roll
                        // back to; disarm and keep serving.
                        Err(_) => st.guard = None,
                    }
                } else {
                    st.guard = None;
                    stats.shadow_regressed.store(0, Ordering::Relaxed);
                }
            }
        }

        // ---- Incremental refit (rank-1 update or conditioning
        // fallback inside OnlineOls) and candidate rebuild. ----
        st.fit
            .push(&row, power_w)
            .map_err(|e| ServeError::BadSample {
                reason: format!("training push failed: {e}"),
            })?;
        st.accepted += 1;
        ServerStats::bump(&stats.train_samples_accepted);
        if st.accepted >= cfg.min_train_samples {
            if let Some(model) = self.build_candidate(&st, &active.model) {
                st.candidate = Some(model);
            }
        }

        // ---- Auto-activation: shadow must win by the margin over a
        // minimum number of scored labels in both windows. ----
        let mut activated = None;
        if st.guard.is_none()
            && st.active_apes.len() >= cfg.min_score_samples
            && st.shadow_apes.len() >= cfg.min_score_samples
        {
            if let (Some(candidate), Some(active_mape), Some(shadow_mape)) = (
                st.candidate.clone(),
                window_mape(&st.active_apes),
                window_mape(&st.shadow_apes),
            ) {
                if shadow_mape < active_mape * (1.0 - cfg.activate_margin)
                    && active_mape - shadow_mape > cfg.mape_slack
                {
                    let artifact = ModelArtifact::new(active.name.clone(), candidate);
                    if let Ok(id) = registry.load_and_activate(artifact) {
                        ServerStats::bump(&stats.auto_activations);
                        stats.shadow_regressed.store(0, Ordering::Relaxed);
                        st.active_apes.clear();
                        st.shadow_apes.clear();
                        st.candidate = None;
                        st.guard = Some(GuardState {
                            baseline: shadow_mape,
                            apes: VecDeque::new(),
                        });
                        st.base = Some(id.clone());
                        activated = Some(id);
                    }
                }
            }
        }

        Ok(self.response(&st, true, &[], activated.as_ref(), false))
    }

    /// Builds the shadow candidate from the current fit (coefficients
    /// via the maintained inverse). `None` while underdetermined.
    fn build_candidate(&self, st: &TrainerState, active: &PowerModel) -> Option<PowerModel> {
        if !st.fit.is_warm() {
            return None;
        }
        let coefs = st.fit.coefficients().ok()?;
        let k = st.events.len();
        let p = st.fit.width() as f64;
        let n = st.fit.n() as f64;
        let r2 = st.fit.r_squared().unwrap_or(0.0);
        let adj = if n > p + 1.0 {
            1.0 - (1.0 - r2) * (n - 1.0) / (n - p)
        } else {
            r2
        };
        Some(PowerModel {
            events: st.events.clone(),
            alpha: coefs[..k].to_vec(),
            beta: coefs[k],
            gamma: coefs[k + 1],
            delta: coefs[k + 2],
            fit_r_squared: r2,
            fit_adj_r_squared: adj,
            // Incremental fits carry no covariance sandwich; zeros keep
            // the one-per-column shape invariant.
            std_errors: vec![0.0; st.fit.width()],
            n_observations: st.fit.n() as usize,
            // The candidate saw the same operating region the active
            // model guards; it inherits that envelope.
            envelope: active.envelope.clone(),
        })
    }

    fn reset_training(&self, st: &mut TrainerState, events: &[PapiEvent]) {
        st.fit = OnlineOls::new(events.len() + 3, self.config.resync_every);
        st.events = events.to_vec();
        st.candidate = None;
        st.active_apes.clear();
        st.shadow_apes.clear();
        st.guard = None;
        st.accepted = 0;
    }

    fn response(
        &self,
        st: &TrainerState,
        accepted: bool,
        reasons: &[QuarantineReason],
        activated: Option<&(String, u32)>,
        rolled_back: bool,
    ) -> Json {
        let opt_num = |v: Option<f64>| v.map(Json::Num).unwrap_or(Json::Null);
        let coef_bits = match st.fit.coefficients() {
            Ok(coefs) => Json::Arr(
                coefs
                    .iter()
                    .map(|c| Json::from(format!("{:016x}", c.to_bits()).as_str()))
                    .collect(),
            ),
            Err(_) => Json::Null,
        };
        Json::obj(vec![
            ("accepted", Json::Bool(accepted)),
            (
                "reasons",
                Json::Arr(
                    reasons
                        .iter()
                        .map(|r| Json::from(r.to_string().as_str()))
                        .collect(),
                ),
            ),
            ("n", Json::from(st.fit.n())),
            ("accepted_total", Json::from(st.accepted)),
            ("scored_active", Json::from(st.active_apes.len())),
            ("scored_shadow", Json::from(st.shadow_apes.len())),
            ("active_mape", opt_num(window_mape(&st.active_apes))),
            ("shadow_mape", opt_num(window_mape(&st.shadow_apes))),
            ("candidate", Json::Bool(st.candidate.is_some())),
            ("activated", activated.map(id_json).unwrap_or(Json::Null)),
            ("rolled_back", Json::Bool(rolled_back)),
            ("coef_bits", coef_bits),
        ])
    }

    /// Serializes the fit and score windows for the checkpoint.
    /// `None` when nothing has been trained yet (keeps pre-training
    /// checkpoints byte-identical to the previous format).
    pub fn snapshot(&self) -> Option<TrainingSnapshot> {
        let st = self.lock();
        if st.fit.n() == 0 && st.active_apes.is_empty() && st.guard.is_none() {
            return None;
        }
        let (words, floats) = st.fit.state();
        Some(TrainingSnapshot {
            words,
            floats,
            events: st.events.iter().map(|e| e.mnemonic().to_string()).collect(),
            base: st.base.clone(),
            accepted: st.accepted,
            active_apes: st.active_apes.iter().copied().collect(),
            shadow_apes: st.shadow_apes.iter().copied().collect(),
            guard: st.guard.as_ref().map(|g| GuardSnapshot {
                baseline: g.baseline,
                apes: g.apes.iter().copied().collect(),
            }),
        })
    }

    /// Restores training state from a checkpoint. The fit resumes
    /// bitwise; the shadow candidate is rebuilt from the restored
    /// coefficients against `active` so post-restore scoring continues
    /// exactly as the uninterrupted run would.
    pub fn restore(
        &self,
        snap: &TrainingSnapshot,
        active: Option<&PowerModel>,
    ) -> Result<(), ServeError> {
        let fit =
            OnlineOls::from_state(&snap.words, &snap.floats).map_err(|e| ServeError::Protocol {
                reason: format!("training state: {e}"),
            })?;
        let events = snap
            .events
            .iter()
            .map(|m| m.parse::<PapiEvent>())
            .collect::<Result<Vec<_>, _>>()
            .map_err(|e| ServeError::Protocol {
                reason: format!("training state: {e}"),
            })?;
        if events.len() + 3 != fit.width() {
            return Err(ServeError::Protocol {
                reason: format!(
                    "training state: {} events cannot span a width-{} fit",
                    events.len(),
                    fit.width()
                ),
            });
        }
        let mut st = self.lock();
        st.fit = fit;
        st.events = events;
        st.base = snap.base.clone();
        st.accepted = snap.accepted;
        st.active_apes = snap.active_apes.iter().copied().collect();
        st.shadow_apes = snap.shadow_apes.iter().copied().collect();
        // The regression watch survives the restart: an activation made
        // just before a crash stays under guard, so a bad model cannot
        // outlive its rollback window by getting the server killed.
        st.guard = snap.guard.as_ref().map(|g| GuardState {
            baseline: g.baseline,
            apes: g.apes.iter().copied().collect(),
        });
        st.candidate = None;
        if st.accepted >= self.config.min_train_samples {
            if let Some(model) = active.and_then(|a| self.build_candidate(&st, a)) {
                st.candidate = Some(model);
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_fixtures::tiny_model;
    use std::sync::atomic::Ordering;

    /// Matches `tiny_dataset`'s thread count, so wire deltas divide
    /// back into exactly the rates the fixture model was fitted on.
    const CORES: u32 = 24;

    fn fast_config() -> TrainerConfig {
        TrainerConfig {
            score_window: 12,
            min_score_samples: 6,
            min_train_samples: 8,
            guard_window: 3,
            ..TrainerConfig::default()
        }
    }

    fn registry_with_tiny() -> ModelRegistry {
        let registry = ModelRegistry::default();
        registry
            .load_and_activate(ModelArtifact::new("hsw", tiny_model()))
            .unwrap();
        registry
    }

    /// A labeled sample following `tiny_dataset`'s exact linear law,
    /// with `drift_w` watts added to the label (a workload/platform
    /// drift the active model does not know about).
    fn labeled(i: usize, drift_w: f64) -> (CounterSample, f64) {
        let freq_mhz = [1200u32, 1600, 2000, 2400, 2600][i % 5];
        let f = freq_mhz as f64 / 1000.0;
        let v = 0.492857 + 0.214286 * f;
        let r_prf = 0.001 + 0.00002 * (i as f64);
        let r_cyc = 0.2 + 0.01 * ((i * 7 % 13) as f64);
        let r_tlb = 0.0005 + 0.00001 * ((i * 5 % 11) as f64);
        let v2f = v * v * f;
        let power = 5000.0 * r_prf * v2f
            + 120.0 * r_cyc * v2f
            + 900.0 * r_tlb * v2f
            + 20.0 * v2f
            + 40.0 * v
            + 70.0
            + drift_w;
        let avail = CORES as f64 * freq_mhz as f64 * 1e6;
        let sample = CounterSample {
            time_ns: i as u64,
            duration_s: 1.0,
            freq_mhz,
            voltage: v,
            deltas: vec![r_prf * avail, r_cyc * avail, r_tlb * avail],
            missing: Vec::new(),
        };
        (sample, power)
    }

    fn reasons_of(resp: &Json) -> Vec<String> {
        resp.arr_field("reasons")
            .unwrap()
            .iter()
            .map(|r| r.as_str().unwrap().to_string())
            .collect()
    }

    #[test]
    fn quarantine_gate_rejects_each_poison_class_with_typed_reason() {
        let registry = registry_with_tiny();
        let stats = ServerStats::default();
        let trainer = Trainer::new(fast_config());
        let train = |sample: &CounterSample, power: f64| {
            trainer
                .train(&registry, &stats, CORES, sample, power)
                .unwrap()
        };

        let (good, power) = labeled(0, 0.0);
        let cases: Vec<(CounterSample, f64, &str)> = vec![
            (good.clone(), f64::NAN, "non_finite_label"),
            (good.clone(), -4.0, "implausible_label"),
            (good.clone(), 9000.0, "implausible_label"),
            (
                {
                    let mut s = good.clone();
                    s.duration_s = 0.0;
                    s
                },
                power,
                "bad_duration",
            ),
            (
                {
                    let mut s = good.clone();
                    s.voltage = 2.5;
                    s
                },
                power,
                "bad_voltage",
            ),
            (
                {
                    let mut s = good.clone();
                    s.missing = vec![1];
                    s
                },
                power,
                "missing_counters:1",
            ),
            (
                {
                    let mut s = good.clone();
                    s.deltas[0] = f64::NAN;
                    s
                },
                power,
                "non_finite_counter:PRF_DM",
            ),
            (
                {
                    let mut s = good.clone();
                    s.deltas[2] = 1e30;
                    s
                },
                power,
                "implausible_counter:TLB_IM",
            ),
            (
                {
                    // Within the plausibility box but outside the
                    // fitted envelope: voltage the campaign never saw.
                    let mut s = good.clone();
                    s.voltage = 1.4;
                    s
                },
                power,
                "out_of_envelope_label",
            ),
        ];
        for (sample, label, want) in &cases {
            let resp = train(sample, *label);
            assert!(!resp.field("accepted").unwrap().as_bool().unwrap());
            assert!(
                reasons_of(&resp).iter().any(|r| r == want),
                "expected reason {want}, got {:?}",
                reasons_of(&resp)
            );
        }
        assert_eq!(
            stats.train_samples_quarantined.load(Ordering::Relaxed),
            cases.len() as u64
        );
        // Nothing poisoned reached the fit.
        assert_eq!(stats.train_samples_accepted.load(Ordering::Relaxed), 0);
        let resp = train(&good, power);
        assert!(resp.field("accepted").unwrap().as_bool().unwrap());
        assert_eq!(resp.u64_field("n").unwrap(), 1);
    }

    /// Review regression: a zero-frequency sample once sailed past the
    /// gate — with zero deltas, `rate = 0 / 0 = NaN` passed every
    /// plausibility comparison, the NaN APE entered the score windows,
    /// and every later `train` call panicked in the median sort until
    /// the NaN rolled out (and it rode the checkpoint across
    /// restarts). The gate must reject it with a typed reason.
    #[test]
    fn zero_frequency_sample_is_quarantined_and_never_poisons_windows() {
        let registry = registry_with_tiny();
        let stats = ServerStats::default();
        let trainer = Trainer::new(fast_config());
        let (mut sample, power) = labeled(0, 0.0);
        sample.freq_mhz = 0;
        sample.deltas = vec![0.0; 3];
        let resp = trainer
            .train(&registry, &stats, CORES, &sample, power)
            .unwrap();
        assert!(!resp.field("accepted").unwrap().as_bool().unwrap());
        assert!(
            reasons_of(&resp).iter().any(|r| r == "bad_frequency"),
            "expected bad_frequency, got {:?}",
            reasons_of(&resp)
        );
        assert_eq!(stats.train_samples_accepted.load(Ordering::Relaxed), 0);
        // Later labels keep training and computing medians normally —
        // no NaN reached the windows, nothing panics.
        for i in 0..8 {
            let (sample, power) = labeled(i, 0.0);
            let resp = trainer
                .train(&registry, &stats, CORES, &sample, power)
                .unwrap();
            assert!(resp.field("accepted").unwrap().as_bool().unwrap());
            assert!(resp.f64_field("active_mape").unwrap().is_finite());
        }
    }

    #[test]
    fn leverage_outlier_is_quarantined_once_fit_is_warm() {
        let registry = registry_with_tiny();
        let stats = ServerStats::default();
        let trainer = Trainer::new(fast_config());
        for i in 0..12 {
            let (sample, power) = labeled(i, 0.0);
            let resp = trainer
                .train(&registry, &stats, CORES, &sample, power)
                .unwrap();
            assert!(resp.field("accepted").unwrap().as_bool().unwrap());
        }
        // A design row dozens of sigma outside the training cloud.
        let (mut sample, power) = labeled(12, 0.0);
        sample.deltas[0] *= 400.0;
        let resp = trainer
            .train(&registry, &stats, CORES, &sample, power)
            .unwrap();
        assert!(!resp.field("accepted").unwrap().as_bool().unwrap());
        assert_eq!(reasons_of(&resp), vec!["leverage_outlier".to_string()]);
    }

    #[test]
    fn drifted_labels_shadow_win_auto_activates_and_guard_passes() {
        let registry = registry_with_tiny();
        let stats = ServerStats::default();
        let trainer = Trainer::new(fast_config());
        let mut activated_at = None;
        for i in 0..30 {
            let (sample, power) = labeled(i, 25.0);
            let resp = trainer
                .train(&registry, &stats, CORES, &sample, power)
                .unwrap();
            assert!(
                resp.field("accepted").unwrap().as_bool().unwrap(),
                "sample {i} rejected: {resp}"
            );
            assert!(!resp.field("rolled_back").unwrap().as_bool().unwrap());
            if !matches!(resp.field("activated").unwrap(), Json::Null) && activated_at.is_none() {
                activated_at = Some(i);
                assert_eq!(
                    resp.field("activated")
                        .unwrap()
                        .u32_field("version")
                        .unwrap(),
                    2
                );
            }
        }
        assert!(activated_at.is_some(), "shadow never won against drift");
        assert_eq!(stats.auto_activations.load(Ordering::Relaxed), 1);
        // The guard watched the fresh model and cleared it — no
        // rollback, readiness latch stays clean.
        assert_eq!(stats.auto_rollbacks.load(Ordering::Relaxed), 0);
        assert_eq!(stats.shadow_regressed.load(Ordering::Relaxed), 0);
        let active = registry.active().unwrap();
        assert_eq!((active.name.as_str(), active.version), ("hsw", 2));
        // The refit model explains the drifted labels where v1 missed
        // by ~25 W.
        let (sample, power) = labeled(31, 25.0);
        let rates: Vec<f64> = sample
            .deltas
            .iter()
            .map(|d| d / (CORES as f64 * sample.freq_mhz as f64 * 1e6))
            .collect();
        let pred = active
            .model
            .predict_raw(&rates, sample.voltage, sample.freq_mhz)
            .unwrap();
        assert!(
            (pred - power).abs() < 1.0,
            "refit missed by {}",
            pred - power
        );
    }

    #[test]
    fn manual_activation_mid_shadow_retires_score_windows() {
        let registry = registry_with_tiny();
        let stats = ServerStats::default();
        // Huge win requirement: auto-activation can never preempt the
        // manual one this test stages.
        let trainer = Trainer::new(TrainerConfig {
            min_score_samples: 1000,
            ..fast_config()
        });
        for i in 0..10 {
            let (sample, power) = labeled(i, 0.0);
            let resp = trainer
                .train(&registry, &stats, CORES, &sample, power)
                .unwrap();
            assert_eq!(resp.usize_field("scored_active").unwrap(), i + 1);
        }
        // An operator activates a new version while the shadow race is
        // in flight: both rolling windows describe the retired pairing
        // and must not leak into the new one's comparison.
        registry
            .load_and_activate(ModelArtifact::new("hsw", tiny_model()))
            .unwrap();
        let (sample, power) = labeled(10, 0.0);
        let resp = trainer
            .train(&registry, &stats, CORES, &sample, power)
            .unwrap();
        assert_eq!(resp.usize_field("scored_active").unwrap(), 1);
        // The candidate keeps racing — against the *new* active — so
        // its window restarts at this sample's score rather than
        // keeping the pre-activation history.
        assert_eq!(resp.usize_field("scored_shadow").unwrap(), 1);
    }

    #[test]
    fn regressed_manual_activation_rolls_back_within_guard_window() {
        let registry = registry_with_tiny();
        let stats = ServerStats::default();
        let trainer = Trainer::new(fast_config());
        for i in 0..8 {
            let (sample, power) = labeled(i, 0.0);
            trainer
                .train(&registry, &stats, CORES, &sample, power)
                .unwrap();
        }
        // Force a bad activation: same design, intercept off by 50 W.
        let mut bad = tiny_model();
        bad.delta += 50.0;
        registry
            .load_and_activate(ModelArtifact::new("hsw", bad))
            .unwrap();
        assert_eq!(registry.active().unwrap().version, 2);
        let mut rolled_back = false;
        for i in 8..8 + fast_config().guard_window {
            let (sample, power) = labeled(i, 0.0);
            let resp = trainer
                .train(&registry, &stats, CORES, &sample, power)
                .unwrap();
            rolled_back |= resp.field("rolled_back").unwrap().as_bool().unwrap();
        }
        assert!(rolled_back, "guard never fired on a 50 W regression");
        assert_eq!(stats.auto_rollbacks.load(Ordering::Relaxed), 1);
        assert_eq!(stats.shadow_regressed.load(Ordering::Relaxed), 1);
        // Serving is back on the pinned previous version.
        assert_eq!(registry.active().unwrap().version, 1);
    }

    /// Review regression: the guard did not ride the snapshot, so a
    /// crash right after a bad activation silently disarmed the
    /// regression watch — the bad model kept serving with no automatic
    /// rollback. The restored trainer must finish the watch and roll
    /// back within the remaining guard window.
    #[test]
    fn guard_rides_snapshot_and_rolls_back_after_restore() {
        let registry = registry_with_tiny();
        let stats = ServerStats::default();
        let trainer = Trainer::new(fast_config());
        for i in 0..8 {
            let (sample, power) = labeled(i, 0.0);
            trainer
                .train(&registry, &stats, CORES, &sample, power)
                .unwrap();
        }
        // A bad activation arms the guard, which scores one label —
        // short of the guard window — before the "SIGKILL".
        let mut bad = tiny_model();
        bad.delta += 50.0;
        registry
            .load_and_activate(ModelArtifact::new("hsw", bad))
            .unwrap();
        let (sample, power) = labeled(8, 0.0);
        trainer
            .train(&registry, &stats, CORES, &sample, power)
            .unwrap();
        let snap = trainer.snapshot().unwrap();
        assert!(snap.guard.is_some(), "armed guard must ride the snapshot");

        let resumed = Trainer::new(fast_config());
        resumed
            .restore(&snap, registry.active().as_ref().map(|a| &a.model))
            .unwrap();
        let mut rolled_back = false;
        for i in 9..9 + fast_config().guard_window {
            let (sample, power) = labeled(i, 0.0);
            let resp = resumed
                .train(&registry, &stats, CORES, &sample, power)
                .unwrap();
            if resp.field("rolled_back").unwrap().as_bool().unwrap() {
                // The rollback-triggering label never entered the
                // (reset) fit; the response must not claim it did.
                assert!(!resp.field("accepted").unwrap().as_bool().unwrap());
                rolled_back = true;
            }
        }
        assert!(
            rolled_back,
            "restored guard never fired on a 50 W regression"
        );
        assert_eq!(stats.auto_rollbacks.load(Ordering::Relaxed), 1);
        assert_eq!(registry.active().unwrap().version, 1);
    }

    #[test]
    fn snapshot_restore_resumes_fit_bitwise() {
        let registry = registry_with_tiny();
        let stats = ServerStats::default();
        // No auto-activation: pure fit-resume comparison.
        let config = TrainerConfig {
            min_score_samples: 1000,
            ..fast_config()
        };
        let uninterrupted = Trainer::new(config.clone());
        let killed = Trainer::new(config.clone());
        for i in 0..10 {
            let (sample, power) = labeled(i, 7.5);
            uninterrupted
                .train(&registry, &stats, CORES, &sample, power)
                .unwrap();
            killed
                .train(&registry, &stats, CORES, &sample, power)
                .unwrap();
        }
        // "SIGKILL": all that survives of `killed` is its snapshot.
        let snap = killed.snapshot().unwrap();
        let resumed = Trainer::new(config);
        resumed
            .restore(&snap, registry.active().as_ref().map(|a| &a.model))
            .unwrap();
        let mut last = (Json::Null, Json::Null);
        for i in 10..18 {
            let (sample, power) = labeled(i, 7.5);
            let a = uninterrupted
                .train(&registry, &stats, CORES, &sample, power)
                .unwrap();
            let b = resumed
                .train(&registry, &stats, CORES, &sample, power)
                .unwrap();
            last = (a, b);
        }
        let (a, b) = last;
        // Bitwise: the restored stream produced the exact coefficient
        // bits of the uninterrupted one.
        assert_ne!(a.field("coef_bits").unwrap(), &Json::Null);
        assert_eq!(a.field("coef_bits").unwrap(), b.field("coef_bits").unwrap());
        assert_eq!(
            uninterrupted.snapshot().unwrap(),
            resumed.snapshot().unwrap()
        );
    }

    #[test]
    fn train_without_active_model_is_a_typed_error() {
        let registry = ModelRegistry::default();
        let stats = ServerStats::default();
        let trainer = Trainer::new(fast_config());
        let (sample, power) = labeled(0, 0.0);
        let err = trainer
            .train(&registry, &stats, CORES, &sample, power)
            .unwrap_err();
        assert!(matches!(err, ServeError::Registry { .. }));
    }
}
