//! The concurrent wire-protocol server.
//!
//! A localhost TCP acceptor feeds a **fixed worker-thread pool**
//! through a **bounded pending-connection queue**. When the queue is
//! full the acceptor sheds the connection *with an error frame* —
//! clients see "server overloaded", never a silent hang. Each worker
//! owns one connection at a time and processes its frames in order,
//! which keeps per-connection responses sequenced without locks.
//!
//! Shutdown is graceful: the stop flag is raised, the listener is
//! unblocked, live sockets are shut down so blocked reads return, and
//! every worker is joined — in-flight frames finish, nothing is
//! detached.
//!
//! ## Deadlines and the idle reaper
//!
//! Each connection's socket carries a read deadline
//! ([`ServerConfig::read_timeout`]): a client that stalls **mid-frame**
//! has desynchronized the stream and is dropped. Between frames the
//! deadline acts as an idle poll; a connection that stays silent past
//! [`ServerConfig::idle_timeout`] is reaped (with an explicit deadline
//! error frame), so abandoned clients cannot pin workers forever.
//! Writes carry [`ServerConfig::write_timeout`] so a client that stops
//! draining its socket cannot wedge a worker either, and the read path
//! enforces [`ServerConfig::max_frame_bytes`].

use crate::artifact::ModelArtifact;
use crate::engine::{EngineConfig, EstimatorEngine};
use crate::error::ServeError;
use crate::protocol::{
    error_response, ok_response, read_frame_limited, write_frame, Request, MAX_FRAME_BYTES,
};
use crate::registry::ModelRegistry;
use crate::stats::ServerStats;
use pmc_json::Json;
use pmc_model::model::PowerModel;
use std::collections::HashMap;
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, TrySendError};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// Server tuning knobs.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Listen address; use port 0 for an ephemeral port.
    pub addr: String,
    /// Fixed worker-thread count (each serves one connection at a time).
    pub workers: usize,
    /// Bounded pending-connection queue depth; beyond it, shed.
    pub queue_depth: usize,
    /// Per-read socket deadline. Mid-frame expiry drops the
    /// connection; between frames it is an idle poll. `None` disables
    /// both deadlines and the reaper.
    pub read_timeout: Option<Duration>,
    /// Per-write socket deadline; a client that stops draining its
    /// socket is dropped. `None` = block forever.
    pub write_timeout: Option<Duration>,
    /// A connection silent for this long between frames is reaped.
    /// Effective only with a `read_timeout`. `None` = never reap.
    pub idle_timeout: Option<Duration>,
    /// Largest accepted request-frame payload, bytes.
    pub max_frame_bytes: u32,
    /// Estimator-engine tuning.
    pub engine: EngineConfig,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".into(),
            workers: 4,
            queue_depth: 16,
            read_timeout: Some(Duration::from_secs(2)),
            write_timeout: Some(Duration::from_secs(10)),
            idle_timeout: Some(Duration::from_secs(60)),
            max_frame_bytes: MAX_FRAME_BYTES,
            engine: EngineConfig::default(),
        }
    }
}

/// The request handler shared by all workers: registry + engine + stats.
struct Service {
    registry: Arc<ModelRegistry>,
    engine: EstimatorEngine,
    stats: Arc<ServerStats>,
    config: ServerConfig,
}

impl Service {
    fn handle(&self, client: u64, req: Request) -> Json {
        match self.try_handle(client, req) {
            Ok(result) => ok_response(result),
            Err(e) => {
                ServerStats::bump(&self.stats.frames_errored);
                error_response(&e)
            }
        }
    }

    fn try_handle(&self, client: u64, req: Request) -> Result<Json, ServeError> {
        match req {
            Request::Ingest(sample) => {
                let artifact = self.registry.active().ok_or_else(|| ServeError::Registry {
                    reason: "no active model — load_model/activate first".into(),
                })?;
                let est = match self.engine.ingest(client, &sample, &artifact) {
                    Ok(est) => est,
                    // The active model cannot read this sample (its
                    // width changed under the client, e.g. a bad
                    // activation). Fall back to the last good model if
                    // it still matches, flagging the estimate.
                    Err(ServeError::WidthMismatch { expected, got }) => {
                        let fallback = self
                            .registry
                            .previous()
                            .filter(|p| p.model.events.len() == sample.deltas.len());
                        match fallback {
                            Some(prev) => {
                                let mut est = self.engine.ingest(client, &sample, &prev)?;
                                est.degraded = true;
                                est.degraded_reasons
                                    .push(format!("stale_model:{}@v{}", prev.name, prev.version));
                                ServerStats::bump(&self.stats.stale_model_fallbacks);
                                est
                            }
                            None => return Err(ServeError::WidthMismatch { expected, got }),
                        }
                    }
                    Err(e) => return Err(e),
                };
                if est.degraded {
                    ServerStats::bump(&self.stats.degraded_estimates);
                }
                ServerStats::bump(&self.stats.samples_ingested);
                ServerStats::bump(&self.stats.estimates_served);
                Ok(est.to_json_value())
            }
            Request::Estimate { now_ns } => match self.engine.estimate(client, now_ns) {
                Some(est) => {
                    ServerStats::bump(&self.stats.estimates_served);
                    Ok(est.to_json_value())
                }
                // No samples yet on this connection: ok with null, so
                // pollers can distinguish "not yet" from a failure.
                None => Ok(Json::Null),
            },
            Request::LoadModel {
                name,
                model,
                activate,
            } => {
                let model = PowerModel::from_json_value(&model)?;
                let artifact = ModelArtifact::new(name, model);
                let (name, version) = if activate {
                    self.registry.load_and_activate(artifact)?
                } else {
                    self.registry.load(artifact)?
                };
                ServerStats::bump(&self.stats.models_loaded);
                Ok(id_json(&name, version))
            }
            Request::Activate { name, version } => {
                let (name, version) = self.registry.activate(&name, version)?;
                Ok(id_json(&name, version))
            }
            Request::Rollback => {
                let (name, version) = self.registry.rollback()?;
                Ok(id_json(&name, version))
            }
            Request::Stats => Ok(Json::obj(vec![
                ("server", self.stats.snapshot()),
                ("models", self.registry.list()),
                (
                    "active",
                    match self.registry.active() {
                        Some(a) => a.describe(),
                        None => Json::Null,
                    },
                ),
                ("clients", Json::from(self.engine.client_count())),
            ])),
        }
    }
}

fn id_json(name: &str, version: u32) -> Json {
    Json::obj(vec![
        ("name", Json::from(name)),
        ("version", Json::from(version)),
    ])
}

/// Handle to a running server; dropping it shuts the server down.
pub struct PowerServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    conns: Arc<Mutex<HashMap<u64, TcpStream>>>,
    acceptor: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
    stats: Arc<ServerStats>,
    registry: Arc<ModelRegistry>,
}

impl PowerServer {
    /// Binds and starts the acceptor and worker pool.
    pub fn start(config: ServerConfig, registry: Arc<ModelRegistry>) -> Result<Self, ServeError> {
        if config.workers == 0 {
            return Err(ServeError::Registry {
                reason: "server needs at least one worker".into(),
            });
        }
        let listener = TcpListener::bind(&config.addr)?;
        let addr = listener.local_addr()?;
        let stats = Arc::new(ServerStats::default());
        let service = Arc::new(Service {
            registry: Arc::clone(&registry),
            engine: EstimatorEngine::new(config.engine),
            stats: Arc::clone(&stats),
            config: config.clone(),
        });
        let stop = Arc::new(AtomicBool::new(false));
        let conns: Arc<Mutex<HashMap<u64, TcpStream>>> = Arc::new(Mutex::new(HashMap::new()));
        let (tx, rx) = sync_channel::<(u64, TcpStream)>(config.queue_depth.max(1));
        let rx = Arc::new(Mutex::new(rx));

        let mut workers = Vec::with_capacity(config.workers);
        for _ in 0..config.workers {
            let rx = Arc::clone(&rx);
            let service = Arc::clone(&service);
            let stop = Arc::clone(&stop);
            let conns = Arc::clone(&conns);
            workers.push(std::thread::spawn(move || {
                worker_loop(&rx, &service, &stop, &conns);
            }));
        }

        let acceptor = {
            let stats = Arc::clone(&stats);
            let stop = Arc::clone(&stop);
            let conns = Arc::clone(&conns);
            std::thread::spawn(move || {
                let next_id = AtomicU64::new(1);
                for stream in listener.incoming() {
                    if stop.load(Ordering::SeqCst) {
                        break;
                    }
                    let stream = match stream {
                        Ok(s) => s,
                        Err(_) => continue,
                    };
                    let id = next_id.fetch_add(1, Ordering::Relaxed);
                    if let Ok(clone) = stream.try_clone() {
                        conns.lock().expect("conn table poisoned").insert(id, clone);
                    }
                    match tx.try_send((id, stream)) {
                        Ok(()) => ServerStats::bump(&stats.connections_accepted),
                        Err(TrySendError::Full((id, mut stream))) => {
                            // Shed with an explicit error frame.
                            ServerStats::bump(&stats.connections_shed);
                            let _ =
                                write_frame(&mut stream, &error_response(&ServeError::Overloaded));
                            let _ = stream.shutdown(Shutdown::Both);
                            conns.lock().expect("conn table poisoned").remove(&id);
                        }
                        Err(TrySendError::Disconnected(_)) => break,
                    }
                }
                // Dropping `tx` here disconnects idle workers.
            })
        };

        Ok(PowerServer {
            addr,
            stop,
            conns,
            acceptor: Some(acceptor),
            workers,
            stats,
            registry,
        })
    }

    /// The bound address (resolves the ephemeral port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Live operational counters.
    pub fn stats(&self) -> Arc<ServerStats> {
        Arc::clone(&self.stats)
    }

    /// The registry the server serves from.
    pub fn registry(&self) -> Arc<ModelRegistry> {
        Arc::clone(&self.registry)
    }

    /// Graceful shutdown: drains in-flight frames, joins every thread.
    /// Idempotent.
    pub fn shutdown(&mut self) {
        if self.stop.swap(true, Ordering::SeqCst) {
            return;
        }
        // Unblock the acceptor with a no-op connection.
        let _ = TcpStream::connect(self.addr);
        // Unblock workers parked in read().
        for (_, s) in self.conns.lock().expect("conn table poisoned").iter() {
            let _ = s.shutdown(Shutdown::Both);
        }
        if let Some(a) = self.acceptor.take() {
            let _ = a.join();
        }
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

impl Drop for PowerServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn worker_loop(
    rx: &Mutex<Receiver<(u64, TcpStream)>>,
    service: &Service,
    stop: &AtomicBool,
    conns: &Mutex<HashMap<u64, TcpStream>>,
) {
    loop {
        let next = {
            let guard = rx.lock().expect("worker queue poisoned");
            guard.recv()
        };
        let (id, stream) = match next {
            Ok(pair) => pair,
            Err(_) => break, // acceptor gone, queue drained
        };
        handle_connection(id, stream, service, stop);
        service.engine.forget(id);
        conns.lock().expect("conn table poisoned").remove(&id);
        // On shutdown the loop keeps draining the queue so queued
        // clients are closed promptly (their sockets are already shut
        // down); it exits when the acceptor drops the sender.
    }
}

fn handle_connection(id: u64, mut stream: TcpStream, service: &Service, stop: &AtomicBool) {
    let cfg = &service.config;
    let _ = stream.set_read_timeout(cfg.read_timeout);
    let _ = stream.set_write_timeout(cfg.write_timeout);
    let mut idle = Duration::ZERO;
    loop {
        if stop.load(Ordering::SeqCst) {
            break;
        }
        match read_frame_limited(&mut stream, cfg.max_frame_bytes) {
            Ok(None) => break, // clean EOF
            Ok(Some(frame)) => {
                idle = Duration::ZERO;
                ServerStats::bump(&service.stats.frames_received);
                let response = match Request::from_json_value(&frame) {
                    Ok(req) => service.handle(id, req),
                    Err(e) => {
                        ServerStats::bump(&service.stats.frames_errored);
                        error_response(&e)
                    }
                };
                if write_frame(&mut stream, &response).is_err() {
                    break; // client went away mid-response
                }
            }
            // The read deadline expired between frames: an idle poll.
            // Keep waiting until the idle budget is spent, then reap.
            Err(ServeError::Deadline { mid_frame: false }) => {
                idle += cfg.read_timeout.unwrap_or(Duration::ZERO);
                match cfg.idle_timeout {
                    Some(max) if idle >= max => {
                        ServerStats::bump(&service.stats.connections_reaped);
                        let _ = write_frame(
                            &mut stream,
                            &error_response(&ServeError::Deadline { mid_frame: false }),
                        );
                        break;
                    }
                    _ => {}
                }
            }
            // Payload was framed correctly but wasn't valid JSON: the
            // stream is still in sync, so answer and keep serving.
            Err(e @ ServeError::Json(_)) => {
                ServerStats::bump(&service.stats.frames_errored);
                if write_frame(&mut stream, &error_response(&e)).is_err() {
                    break;
                }
            }
            // Framing broken (truncation, oversized prefix, a deadline
            // mid-frame) or socket error: report if possible, then
            // drop the connection.
            Err(e) => {
                ServerStats::bump(&service.stats.frames_errored);
                let _ = write_frame(&mut stream, &error_response(&e));
                break;
            }
        }
    }
    let _ = stream.shutdown(Shutdown::Both);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::{read_frame, unwrap_response};
    use crate::test_fixtures::tiny_model;

    fn request(stream: &mut TcpStream, req: &Request) -> Result<Json, ServeError> {
        write_frame(stream, &req.to_json_value())?;
        let frame = read_frame(stream)?.ok_or(ServeError::Protocol {
            reason: "server closed connection".into(),
        })?;
        unwrap_response(frame)
    }

    fn started(workers: usize, queue_depth: usize) -> PowerServer {
        let cfg = ServerConfig {
            workers,
            queue_depth,
            ..ServerConfig::default()
        };
        PowerServer::start(cfg, Arc::new(ModelRegistry::default())).unwrap()
    }

    #[test]
    fn load_activate_and_stats_over_the_wire() {
        let mut server = started(2, 4);
        let mut c = TcpStream::connect(server.addr()).unwrap();
        let m = tiny_model();
        let r = request(
            &mut c,
            &Request::LoadModel {
                name: "hsw".into(),
                model: m.to_json_value(),
                activate: true,
            },
        )
        .unwrap();
        assert_eq!(r.u32_field("version").unwrap(), 1);
        let stats = request(&mut c, &Request::Stats).unwrap();
        assert_eq!(
            stats.field("active").unwrap().str_field("name").unwrap(),
            "hsw"
        );
        assert_eq!(
            stats
                .field("server")
                .unwrap()
                .u64_field("models_loaded")
                .unwrap(),
            1
        );
        server.shutdown();
    }

    #[test]
    fn ingest_without_model_is_an_error_response() {
        let mut server = started(1, 4);
        let mut c = TcpStream::connect(server.addr()).unwrap();
        let err = request(
            &mut c,
            &Request::Ingest(crate::engine::CounterSample {
                time_ns: 0,
                duration_s: 1.0,
                freq_mhz: 2400,
                voltage: 1.0,
                deltas: vec![0.0],
                missing: vec![],
            }),
        );
        assert!(err.unwrap_err().to_string().contains("no active model"));
        // Connection still usable afterwards.
        assert!(request(&mut c, &Request::Stats).is_ok());
        server.shutdown();
    }

    #[test]
    fn malformed_json_frame_does_not_kill_the_connection() {
        let mut server = started(1, 4);
        let mut c = TcpStream::connect(server.addr()).unwrap();
        let garbage = b"{not json";
        use std::io::Write;
        c.write_all(&(garbage.len() as u32).to_be_bytes()).unwrap();
        c.write_all(garbage).unwrap();
        let resp = read_frame(&mut c).unwrap().unwrap();
        assert!(unwrap_response(resp).is_err());
        // Same connection keeps working.
        assert!(request(&mut c, &Request::Stats).is_ok());
        server.shutdown();
    }

    #[test]
    fn overload_sheds_with_error_frame() {
        let mut server = started(1, 1);
        // Occupy the single worker…
        let mut busy = TcpStream::connect(server.addr()).unwrap();
        request(&mut busy, &Request::Stats).unwrap();
        // …fill the single queue slot…
        let _queued = TcpStream::connect(server.addr()).unwrap();
        // Give the acceptor a moment to enqueue in order.
        std::thread::sleep(std::time::Duration::from_millis(50));
        // …and the next connection is shed with an explicit error.
        let mut shed = TcpStream::connect(server.addr()).unwrap();
        let frame = read_frame(&mut shed).unwrap().unwrap();
        let err = unwrap_response(frame).unwrap_err();
        assert!(err.to_string().contains("overloaded"), "{err}");
        assert_eq!(server.stats().connections_shed.load(Ordering::Relaxed), 1);
        server.shutdown();
    }

    #[test]
    fn idle_connections_are_reaped_with_a_deadline_frame() {
        let cfg = ServerConfig {
            workers: 1,
            read_timeout: Some(Duration::from_millis(10)),
            idle_timeout: Some(Duration::from_millis(30)),
            ..ServerConfig::default()
        };
        let mut server = PowerServer::start(cfg, Arc::new(ModelRegistry::default())).unwrap();
        let mut c = TcpStream::connect(server.addr()).unwrap();
        // Say nothing. The reaper must answer with a deadline error
        // frame and close the connection.
        let frame = read_frame(&mut c).unwrap().unwrap();
        let err = unwrap_response(frame).unwrap_err();
        assert!(err.to_string().contains("deadline"), "{err}");
        assert!(matches!(read_frame(&mut c), Ok(None) | Err(_)));
        assert_eq!(server.stats().connections_reaped.load(Ordering::Relaxed), 1);
        // The worker is free again for the next client.
        let mut c2 = TcpStream::connect(server.addr()).unwrap();
        assert!(request(&mut c2, &Request::Stats).is_ok());
        server.shutdown();
    }

    #[test]
    fn configurable_frame_cap_is_enforced_on_the_read_path() {
        let cfg = ServerConfig {
            workers: 1,
            max_frame_bytes: 64,
            ..ServerConfig::default()
        };
        let mut server = PowerServer::start(cfg, Arc::new(ModelRegistry::default())).unwrap();
        let mut c = TcpStream::connect(server.addr()).unwrap();
        // A stats request fits in 64 bytes…
        assert!(request(&mut c, &Request::Stats).is_ok());
        // …but a frame above the cap is rejected and the connection
        // dropped (the payload was never read, so the stream would be
        // out of sync).
        use std::io::Write;
        let big = vec![b' '; 65];
        c.write_all(&(big.len() as u32).to_be_bytes()).unwrap();
        c.write_all(&big).unwrap();
        let frame = read_frame(&mut c).unwrap().unwrap();
        assert!(unwrap_response(frame)
            .unwrap_err()
            .to_string()
            .contains("cap"));
        server.shutdown();
    }

    #[test]
    fn width_mismatch_falls_back_to_previous_model() {
        use crate::test_fixtures::{narrow_model, tiny_dataset};
        let mut server = started(1, 4);
        let mut c = TcpStream::connect(server.addr()).unwrap();

        // v1: the regular tiny model. v2: a model with fewer events.
        let m1 = tiny_model();
        let narrow = narrow_model();
        request(
            &mut c,
            &Request::LoadModel {
                name: "hsw".into(),
                model: m1.to_json_value(),
                activate: true,
            },
        )
        .unwrap();
        request(
            &mut c,
            &Request::LoadModel {
                name: "hsw".into(),
                model: narrow.to_json_value(),
                activate: true,
            },
        )
        .unwrap();

        // A client still streaming v1-width samples gets served by the
        // previous model, flagged as degraded with a stale_model token.
        let data = tiny_dataset(1);
        let row = &data.rows()[0];
        let avail = 24.0 * row.freq_mhz as f64 * 1e6 * row.duration_s;
        let sample = crate::engine::CounterSample {
            time_ns: 1,
            duration_s: row.duration_s,
            freq_mhz: row.freq_mhz,
            voltage: row.voltage,
            deltas: m1.events.iter().map(|e| row.rate(*e) * avail).collect(),
            missing: vec![],
        };
        let r = request(&mut c, &Request::Ingest(sample)).unwrap();
        let est = crate::engine::Estimate::from_json_value(&r).unwrap();
        assert!(est.degraded);
        assert!(est
            .degraded_reasons
            .iter()
            .any(|t| t.starts_with("stale_model:hsw@v1")));
        assert_eq!(est.version, 1);
        assert_eq!(
            server.stats().stale_model_fallbacks.load(Ordering::Relaxed),
            1
        );
        server.shutdown();
    }

    #[test]
    fn shutdown_is_graceful_and_idempotent() {
        let mut server = started(2, 4);
        let mut c = TcpStream::connect(server.addr()).unwrap();
        request(&mut c, &Request::Stats).unwrap();
        let addr = server.addr();
        server.shutdown();
        server.shutdown(); // idempotent
                           // Listener is gone: new connections fail or see immediate EOF.
        match TcpStream::connect(addr) {
            Err(_) => {}
            Ok(mut s) => assert!(matches!(read_frame(&mut s), Ok(None) | Err(_))),
        }
    }
}
