//! The readiness-based wire-protocol server.
//!
//! One **core thread** owns every listener (TCP, and optionally a Unix
//! domain socket) and every connection as a non-blocking stream. Bytes
//! arrive in arbitrary fragments and accumulate in per-connection read
//! buffers; complete frames are dispatched to a fixed **worker pool**
//! through a bounded queue; responses come back over a completion
//! channel and drain through per-connection write buffers. A slow or
//! hostile peer therefore never pins a thread — it pins only its own
//! buffers, and those are bounded and deadline-guarded.
//!
//! ## Overload machinery
//!
//! - **Admission control.** At most [`ServerConfig::max_connections`]
//!   connections are admitted; past the budget the server writes a
//!   typed `overloaded` frame (with a `retry_after_ms` hint) and
//!   closes. At most [`ServerConfig::max_inflight`] requests run or
//!   queue at once; past that budget a request is answered with the
//!   same typed overload frame instead of silently queuing.
//! - **Deadline-aware shedding.** A queued request that outlives
//!   [`ServerConfig::queue_deadline`] before a worker picks it up is
//!   shed without executing (counted in `requests_shed`) — executing
//!   it would burn a worker on an answer the client has already given
//!   up on.
//! - **Per-connection ordering.** One request per connection is in
//!   flight at a time; further complete frames wait in the read
//!   buffer, so responses stay sequenced without locks and a single
//!   chatty client cannot monopolize the pool.
//!
//! ## Deadlines
//!
//! [`ServerConfig::read_timeout`] bounds the **age of a partial
//! frame**: a peer that trickles one byte at a time (slow loris) is
//! reaped once its unfinished frame is older than the deadline.
//! [`ServerConfig::idle_timeout`] reaps connections silent *between*
//! frames (with an explicit deadline frame, so clients can tell a reap
//! from a crash). [`ServerConfig::write_timeout`] bounds how long an
//! unflushed response may stall on a peer that stopped draining its
//! socket.
//!
//! ## Graceful drain
//!
//! Shutdown raises the stop flag; the core drops its listeners (no new
//! connections), refuses new requests with a typed `draining` frame,
//! lets in-flight requests finish within
//! [`ServerConfig::drain_deadline`], sends every client a `draining`
//! notice before closing, writes a final checkpoint, flushes the
//! registry, and records the drain wall time in `drain_duration_ms`.
//!
//! ## Crash containment and durability
//!
//! - **Supervised workers.** Every worker executes its assembled jobs
//!   under `catch_unwind`; a panic answers each unanswered in-flight
//!   request with a typed `internal_error` frame (the connection
//!   survives), bumps `worker_panics`, and retires the worker. A
//!   supervisor thread respawns it with exponential backoff, gives up
//!   after [`ServerConfig::flap_cap`] consecutive fast deaths (readyz
//!   then reports not-ready), and runs a watchdog that flags workers
//!   stuck on one job past [`ServerConfig::stuck_job_bound`].
//! - **Checkpoint/replay.** With [`ServerConfig::checkpoint_path`]
//!   set, durable (token-keyed, see the `resume` op) client windows
//!   and the active-model pin are snapshotted periodically and on
//!   drain to an atomic CRC-checked file; on startup a valid
//!   checkpoint restores them so estimates resume warm, while a torn
//!   one is quarantined and the server cold-starts — it never refuses
//!   to boot over a bad checkpoint.
//! - **Inline health surface.** `healthz`/`readyz`/`metrics`/`resume`
//!   are answered by the core thread itself, never queued — liveness
//!   probes keep working even when the whole pool is wedged.

use crate::artifact::ModelArtifact;
use crate::batch::{assemble, BatchPolicy, ChannelSource, Job};
use crate::checkpoint::{load_checkpoint, write_checkpoint, CheckpointData, CheckpointOutcome};
use crate::engine::{CounterSample, EngineConfig, EstimatorEngine};
use crate::error::ServeError;
use crate::protocol::{
    encode_frame, encode_frame_as, error_response, frame_deadline_ms, is_core_inline_frame,
    is_hello_frame, ok_response, parse_frame, Encoding, FrameError, Request, MAX_FRAME_BYTES,
};
use crate::registry::ModelRegistry;
use crate::stats::ServerStats;
use crate::tokenhash::{resume_key, RESUME_KEY_BIT};
use crate::trainer::{Trainer, TrainerConfig};
use pmc_json::Json;
use pmc_model::model::PowerModel;
use std::collections::HashMap;
use std::io::{Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{
    channel, sync_channel, Receiver, RecvTimeoutError, Sender, SyncSender, TrySendError,
};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant, SystemTime, UNIX_EPOCH};

/// Cap on the worker hold time a `ping` request may ask for.
const MAX_PING_DELAY_MS: u64 = 5_000;

/// Server tuning knobs.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// TCP listen address; use port 0 for an ephemeral port.
    pub addr: String,
    /// Optional Unix-domain-socket path to listen on beside TCP
    /// (same frame protocol; unix-like platforms only). A stale
    /// socket file at the path is removed on bind.
    pub uds_path: Option<String>,
    /// Fixed worker-thread count executing requests.
    pub workers: usize,
    /// Bounded request-queue depth between the core and the workers.
    pub queue_depth: usize,
    /// Maximum age of a partial frame: a peer that has not completed
    /// a started frame within this long is reaped (slow-loris
    /// defense). `None` = never.
    pub read_timeout: Option<Duration>,
    /// Maximum stall of an unflushed response: a peer that stops
    /// draining its socket for this long is dropped. `None` = never.
    pub write_timeout: Option<Duration>,
    /// A connection silent for this long between frames is reaped
    /// with an explicit deadline frame. `None` = never.
    pub idle_timeout: Option<Duration>,
    /// Largest accepted request-frame payload, bytes.
    pub max_frame_bytes: u32,
    /// Connection admission budget; past it new connections get a
    /// typed overload frame and are closed.
    pub max_connections: usize,
    /// Request admission budget: running + queued requests across all
    /// connections; past it requests get a typed overload response.
    pub max_inflight: usize,
    /// A request older than this when a worker dequeues it is shed
    /// without executing. `None` = execute no matter how stale.
    pub queue_deadline: Option<Duration>,
    /// How long a graceful drain may take: in-flight work past this
    /// deadline is abandoned and connections force-closed.
    pub drain_deadline: Duration,
    /// Backoff hint carried by overload responses, milliseconds.
    pub retry_after_ms: u64,
    /// Most ingest requests one coalesced batch may carry. `1`
    /// disables coalescing (every request is its own model call).
    pub batch_max: usize,
    /// How long the oldest queued ingest may wait for more requests to
    /// coalesce before its batch dispatches anyway. Zero (the default)
    /// means opportunistic batching: take what is queued, never wait —
    /// a solo request pays no added latency.
    pub batch_linger: Duration,
    /// Estimator-engine tuning.
    pub engine: EngineConfig,
    /// Where to persist engine checkpoints (durable client windows and
    /// the active-model pin). `None` disables checkpointing entirely.
    pub checkpoint_path: Option<PathBuf>,
    /// How often the supervisor writes a periodic checkpoint. Zero
    /// means only on graceful drain / explicit `checkpoint` requests.
    pub checkpoint_interval: Duration,
    /// Base delay before respawning a panicked worker; doubles per
    /// consecutive fast death (capped at one second).
    pub respawn_backoff: Duration,
    /// Consecutive fast deaths after which a worker slot is retired
    /// and the supervisor reports flapping (readyz goes not-ready).
    pub flap_cap: u32,
    /// A worker busy on a single assembly for longer than this is
    /// counted in the `workers_stuck` gauge by the watchdog.
    pub stuck_job_bound: Duration,
    /// Deterministic fault hooks (injected worker panics, stalls, torn
    /// checkpoint writes); `None` in production.
    pub faults: Option<Arc<pmc_faults::ServeFaults>>,
    /// Online-learning thresholds (shadow evaluation, activation
    /// margin, rollback guard, quarantine envelope).
    pub trainer: TrainerConfig,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".into(),
            uds_path: None,
            workers: 4,
            queue_depth: 16,
            read_timeout: Some(Duration::from_secs(2)),
            write_timeout: Some(Duration::from_secs(10)),
            idle_timeout: Some(Duration::from_secs(60)),
            max_frame_bytes: MAX_FRAME_BYTES,
            max_connections: 256,
            max_inflight: 64,
            queue_deadline: Some(Duration::from_secs(1)),
            drain_deadline: Duration::from_secs(5),
            retry_after_ms: 50,
            batch_max: 16,
            batch_linger: Duration::ZERO,
            engine: EngineConfig::default(),
            checkpoint_path: None,
            checkpoint_interval: Duration::from_secs(5),
            respawn_backoff: Duration::from_millis(10),
            flap_cap: 5,
            stuck_job_bound: Duration::from_secs(30),
            faults: None,
            trainer: TrainerConfig::default(),
        }
    }
}

/// Milliseconds since the Unix epoch (0 if the clock is before it).
fn unix_ms() -> u64 {
    SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_millis() as u64)
        .unwrap_or(0)
}

/// Health bookkeeping shared between the core, workers and supervisor.
#[derive(Debug, Default)]
struct HealthState {
    /// Unix ms of the last successful checkpoint write (seeded from
    /// the restored file's mtime on startup); 0 = none yet.
    last_checkpoint_ms: AtomicU64,
}

impl HealthState {
    fn mark_checkpoint(&self) {
        self.last_checkpoint_ms.store(unix_ms(), Ordering::Relaxed);
    }

    fn checkpoint_age_ms(&self) -> Option<u64> {
        match self.last_checkpoint_ms.load(Ordering::Relaxed) {
            0 => None,
            then => Some(unix_ms().saturating_sub(then)),
        }
    }
}

/// A client byte stream, TCP or Unix-domain.
enum Stream {
    Tcp(TcpStream),
    #[cfg(unix)]
    Unix(std::os::unix::net::UnixStream),
}

impl Stream {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        match self {
            Stream::Tcp(s) => s.read(buf),
            #[cfg(unix)]
            Stream::Unix(s) => s.read(buf),
        }
    }

    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        match self {
            Stream::Tcp(s) => s.write(buf),
            #[cfg(unix)]
            Stream::Unix(s) => s.write(buf),
        }
    }

    fn set_nonblocking(&self, nb: bool) -> std::io::Result<()> {
        match self {
            Stream::Tcp(s) => s.set_nonblocking(nb),
            #[cfg(unix)]
            Stream::Unix(s) => s.set_nonblocking(nb),
        }
    }

    fn close(&self) {
        match self {
            Stream::Tcp(s) => {
                let _ = s.shutdown(Shutdown::Both);
            }
            #[cfg(unix)]
            Stream::Unix(s) => {
                let _ = s.shutdown(Shutdown::Both);
            }
        }
    }
}

/// An accept source feeding the readiness loop.
enum Listener {
    Tcp(TcpListener),
    #[cfg(unix)]
    Unix(std::os::unix::net::UnixListener),
}

impl Listener {
    /// Non-blocking accept; the returned stream is already
    /// non-blocking. `WouldBlock` means "no pending connection".
    fn accept(&self) -> std::io::Result<Stream> {
        let stream = match self {
            Listener::Tcp(l) => Stream::Tcp(l.accept()?.0),
            #[cfg(unix)]
            Listener::Unix(l) => Stream::Unix(l.accept()?.0),
        };
        stream.set_nonblocking(true)?;
        Ok(stream)
    }
}

/// Per-connection state owned by the core thread.
struct Conn {
    stream: Stream,
    /// Engine key this connection's samples accumulate under. Defaults
    /// to the connection id (ephemeral — forgotten on close); a
    /// `resume` op rebinds it to a durable token-derived key (bit 63
    /// set) that survives disconnects and checkpointed restarts.
    client: u64,
    /// Bytes received but not yet parsed into frames.
    read_buf: Vec<u8>,
    /// Encoded response bytes not yet accepted by the socket.
    write_buf: Vec<u8>,
    /// How much of `write_buf` the socket has taken.
    write_pos: usize,
    /// Last time any byte arrived (drives the idle reaper).
    last_activity: Instant,
    /// When the current *incomplete* frame was first seen
    /// (slow-loris clock); `None` while the buffer is empty, holds a
    /// complete frame, or a request is in flight.
    partial_since: Option<Instant>,
    /// When the unflushed tail of `write_buf` last made progress.
    write_since: Option<Instant>,
    /// A request from this connection is running or queued.
    inflight: bool,
    /// Close once the write buffer flushes; stop reading now.
    closing: bool,
    /// The peer half-closed (or errored) its sending side.
    eof: bool,
    /// Response payload encoding, negotiated by a leading `hello` op
    /// (JSON until then).
    encoding: Encoding,
    /// A non-`hello` frame has arrived — negotiation is closed.
    saw_data: bool,
}

impl Conn {
    fn new(stream: Stream, now: Instant, id: u64) -> Self {
        Conn {
            stream,
            client: id,
            read_buf: Vec::new(),
            write_buf: Vec::new(),
            write_pos: 0,
            last_activity: now,
            partial_since: None,
            write_since: None,
            inflight: false,
            closing: false,
            eof: false,
            encoding: Encoding::Json,
            saw_data: false,
        }
    }

    fn flushed(&self) -> bool {
        self.write_pos == self.write_buf.len()
    }
}

/// The request handler shared by all workers: registry + engine + stats.
struct Service {
    registry: Arc<ModelRegistry>,
    engine: EstimatorEngine,
    stats: Arc<ServerStats>,
    health: Arc<HealthState>,
    trainer: Arc<Trainer>,
    config: ServerConfig,
}

impl Service {
    fn handle(&self, client: u64, req: Request) -> Json {
        match self.try_handle(client, req) {
            Ok(result) => ok_response(result),
            Err(e) => {
                ServerStats::bump(&self.stats.frames_errored);
                error_response(&e)
            }
        }
    }

    fn try_handle(&self, client: u64, req: Request) -> Result<Json, ServeError> {
        match req {
            Request::Ingest(sample) => {
                // One atomic registry snapshot: active and fallback
                // must come from the same serving state (a concurrent
                // activate/rollback between two lookups could pair the
                // new active with the old previous).
                let (active, previous) = self.registry.serving_pair();
                let artifact = active.ok_or_else(|| ServeError::Registry {
                    reason: "no active model — load_model/activate first".into(),
                })?;
                let est = match self.engine.ingest(client, &sample, &artifact) {
                    Ok(est) => est,
                    // The active model cannot read this sample (its
                    // width changed under the client, e.g. a bad
                    // activation). Fall back to the last good model if
                    // it still matches, flagging the estimate.
                    Err(ServeError::WidthMismatch { expected, got }) => {
                        let fallback =
                            previous.filter(|p| p.model.events.len() == sample.deltas.len());
                        match fallback {
                            Some(prev) => {
                                let mut est = self.engine.ingest(client, &sample, &prev)?;
                                est.degraded = true;
                                est.degraded_reasons
                                    .push(format!("stale_model:{}@v{}", prev.name, prev.version));
                                ServerStats::bump(&self.stats.stale_model_fallbacks);
                                est
                            }
                            None => return Err(ServeError::WidthMismatch { expected, got }),
                        }
                    }
                    Err(e) => return Err(e),
                };
                if est.degraded {
                    ServerStats::bump(&self.stats.degraded_estimates);
                }
                ServerStats::bump(&self.stats.samples_ingested);
                ServerStats::bump(&self.stats.estimates_served);
                Ok(est.to_json_value())
            }
            Request::Estimate { now_ns } => match self.engine.estimate(client, now_ns) {
                Some(est) => {
                    ServerStats::bump(&self.stats.estimates_served);
                    Ok(est.to_json_value())
                }
                // No samples yet on this connection: ok with null, so
                // pollers can distinguish "not yet" from a failure.
                None => Ok(Json::Null),
            },
            Request::LoadModel {
                name,
                model,
                activate,
            } => {
                let model = PowerModel::from_json_value(&model)?;
                let artifact = ModelArtifact::new(name, model);
                let (name, version) = if activate {
                    self.registry.load_and_activate(artifact)?
                } else {
                    self.registry.load(artifact)?
                };
                ServerStats::bump(&self.stats.models_loaded);
                Ok(id_json(&name, version))
            }
            Request::Activate { name, version } => {
                let (name, version) = self.registry.activate(&name, version)?;
                Ok(id_json(&name, version))
            }
            Request::Rollback => {
                let (name, version) = self.registry.rollback()?;
                Ok(id_json(&name, version))
            }
            Request::Stats => Ok(Json::obj(vec![
                ("server", self.stats.snapshot()),
                ("models", self.registry.list()),
                (
                    "active",
                    match self.registry.active() {
                        Some(a) => a.describe(),
                        None => Json::Null,
                    },
                ),
                ("clients", Json::from(self.engine.client_count())),
            ])),
            Request::Ping { delay_ms } => {
                let slept = delay_ms.min(MAX_PING_DELAY_MS);
                if slept > 0 {
                    std::thread::sleep(Duration::from_millis(slept));
                }
                Ok(Json::obj(vec![
                    ("pong", Json::Bool(true)),
                    ("slept_ms", Json::from(slept)),
                ]))
            }
            // Health/metrics ops are normally intercepted inline by the
            // core (so they work with a wedged pool); these arms answer
            // them if one is ever routed through a worker anyway.
            Request::Healthz => Ok(self.healthz_json(false)),
            Request::Readyz => Ok(self.readyz_json(false)),
            Request::Metrics => Ok(self.metrics_json()),
            Request::Resume { .. } => Err(ServeError::Protocol {
                reason: "resume is bound to the connection and handled inline by the core".into(),
            }),
            Request::Hello { .. } => Err(ServeError::Protocol {
                reason: "hello is bound to the connection and handled inline by the core".into(),
            }),
            Request::Checkpoint => {
                let (clients, path) = self.write_checkpoint_now()?;
                Ok(Json::obj(vec![
                    ("written", Json::Bool(true)),
                    ("clients", Json::from(clients)),
                    ("path", Json::from(path.display().to_string().as_str())),
                ]))
            }
            Request::MigrateExport { token, keep } => {
                let key = resume_key(&token);
                let record = self
                    .engine
                    .export_clients(|c| c == key)
                    .pop()
                    .map(|snap| crate::checkpoint::encode_client_record(&snap));
                let found = record.is_some();
                if found {
                    if !keep {
                        // Drain semantics: the exported window leaves
                        // this server — a later resume here cold-starts
                        // unless the record is imported back.
                        self.engine.forget(key);
                    }
                    ServerStats::bump(&self.stats.windows_migrated_out);
                }
                Ok(Json::obj(vec![
                    ("found", Json::Bool(found)),
                    ("key", Json::from(format!("{key:016x}").as_str())),
                    ("record", record.unwrap_or(Json::Null)),
                ]))
            }
            Request::MigrateImport { record } => {
                let snap = crate::checkpoint::decode_client_record(&record)?;
                if snap.client & RESUME_KEY_BIT == 0 {
                    return Err(ServeError::Protocol {
                        reason: "only durable (resume-token) windows can be imported".into(),
                    });
                }
                let key = snap.client;
                self.engine.restore_clients(vec![snap]);
                ServerStats::bump(&self.stats.windows_migrated_in);
                Ok(Json::obj(vec![
                    ("imported", Json::Bool(true)),
                    ("key", Json::from(format!("{key:016x}").as_str())),
                ]))
            }
            Request::Train { sample, power_w } => self.trainer.train(
                &self.registry,
                &self.stats,
                self.engine.config().total_cores,
                &sample,
                power_w,
            ),
            Request::WindowSeqs => {
                let windows = self
                    .engine
                    .client_seqs(|c| c & RESUME_KEY_BIT != 0)
                    .into_iter()
                    .map(|(key, seq)| {
                        Json::Arr(vec![
                            Json::from(format!("{key:016x}").as_str()),
                            Json::from(format!("{seq:016x}").as_str()),
                        ])
                    })
                    .collect();
                Ok(Json::obj(vec![("windows", Json::Arr(windows))]))
            }
        }
    }

    /// Liveness: answering at all is the signal.
    fn healthz_json(&self, draining: bool) -> Json {
        Json::obj(vec![
            ("alive", Json::Bool(true)),
            ("draining", Json::Bool(draining)),
        ])
    }

    /// Readiness: whether this process should receive traffic, with
    /// every failing condition spelled out.
    fn readyz_json(&self, draining: bool) -> Json {
        let mut reasons: Vec<&str> = Vec::new();
        if draining {
            reasons.push("draining");
        }
        let active = self.registry.active();
        if active.is_none() {
            reasons.push("no active model");
        }
        let flapping = self.stats.supervisor_flapping.load(Ordering::Relaxed) != 0;
        if flapping {
            reasons.push("supervisor flapping: worker slot retired after repeated panics");
        }
        let stuck = self.stats.workers_stuck.load(Ordering::Relaxed);
        if stuck > 0 {
            reasons.push("worker stuck past the wall-clock bound");
        }
        if self.stats.shadow_regressed.load(Ordering::Relaxed) != 0 {
            // The latest model activation regressed past the guard and
            // was auto-rolled back; an operator should look before
            // trusting further refreshes.
            reasons.push("shadow_regressed");
        }
        Json::obj(vec![
            ("ready", Json::Bool(reasons.is_empty())),
            (
                "reasons",
                Json::Arr(reasons.into_iter().map(Json::from).collect()),
            ),
            ("draining", Json::Bool(draining)),
            (
                "active_model",
                match active {
                    Some(a) => id_json(&a.name, a.version),
                    None => Json::Null,
                },
            ),
            ("flapping", Json::Bool(flapping)),
            ("stuck_workers", Json::from(stuck)),
            (
                "checkpoint_age_ms",
                match self.health.checkpoint_age_ms() {
                    Some(age) => Json::from(age),
                    None => Json::Null,
                },
            ),
            ("clients", Json::from(self.engine.client_count())),
        ])
    }

    /// The Prometheus text exposition wrapped for the JSON framing.
    fn metrics_json(&self) -> Json {
        Json::obj(vec![
            ("content_type", Json::from("text/plain; version=0.0.4")),
            ("body", Json::from(self.stats.prometheus().as_str())),
        ])
    }

    /// Snapshots durable (token-keyed) client windows plus the active
    /// model pin and writes them to the configured checkpoint path.
    /// Returns the client count and path on success.
    fn write_checkpoint_now(&self) -> Result<(usize, PathBuf), ServeError> {
        let path = self
            .config
            .checkpoint_path
            .clone()
            .ok_or_else(|| ServeError::Registry {
                reason: "checkpoint not configured — start with --checkpoint PATH".into(),
            })?;
        let data = CheckpointData {
            active: self.registry.active().map(|a| (a.name.clone(), a.version)),
            clients: self.engine.export_clients(|c| c & RESUME_KEY_BIT != 0),
            training: self.trainer.snapshot(),
        };
        let clients = data.clients.len();
        match write_checkpoint(&path, &data, self.config.faults.as_deref()) {
            Ok(()) => {
                ServerStats::bump(&self.stats.checkpoints_written);
                self.health.mark_checkpoint();
                Ok((clients, path))
            }
            Err(e) => {
                ServerStats::bump(&self.stats.checkpoint_write_failures);
                Err(e)
            }
        }
    }

    /// Executes one coalesced run of ingest requests, returning one
    /// response per request in request order. Each batch entry is
    /// `(conn, client, sample)`: `conn` routes the response, `client`
    /// keys the engine window (they differ after a `resume`). The
    /// registry's serving pair is resolved exactly **once** for the
    /// whole batch — a concurrent activate/rollback cannot split a
    /// batch across model versions or pair the new active with the old
    /// fallback.
    fn handle_ingest_batch(&self, batch: Vec<(u64, u64, CounterSample)>) -> Vec<(u64, Json)> {
        let (active, previous) = self.registry.serving_pair();
        self.run_pinned(batch, active, previous)
    }

    /// The execution half of [`Self::handle_ingest_batch`], taking the
    /// already-pinned serving pair (split out so tests can interpose
    /// registry churn between resolution and execution).
    fn run_pinned(
        &self,
        batch: Vec<(u64, u64, CounterSample)>,
        active: Option<Arc<ModelArtifact>>,
        previous: Option<Arc<ModelArtifact>>,
    ) -> Vec<(u64, Json)> {
        if batch.is_empty() {
            return Vec::new();
        }
        ServerStats::bump(&self.stats.batches_dispatched);
        self.stats
            .batched_requests
            .fetch_add(batch.len() as u64, Ordering::Relaxed);
        self.stats.record_batch_fill(batch.len());

        let Some(active) = active else {
            return batch
                .into_iter()
                .map(|(conn, _, _)| {
                    ServerStats::bump(&self.stats.frames_errored);
                    let err = ServeError::Registry {
                        reason: "no active model — load_model/activate first".into(),
                    };
                    (conn, error_response(&err))
                })
                .collect();
        };
        let active_width = active.model.events.len();

        // Partition by serving model, preserving request order within
        // each group (and overall, via the index map): samples the
        // active model can read, samples only the pinned fallback can
        // read (the stale-model path), and hopeless widths.
        let n = batch.len();
        let mut conns = Vec::with_capacity(n);
        let mut responses: Vec<Option<Json>> = std::iter::repeat_with(|| None).take(n).collect();
        let mut active_rows: Vec<(u64, CounterSample)> = Vec::with_capacity(n);
        let mut active_slots = Vec::with_capacity(n);
        let mut fallback_rows: Vec<(u64, CounterSample)> = Vec::new();
        let mut fallback_slots = Vec::new();
        for (slot, (conn, client, sample)) in batch.into_iter().enumerate() {
            conns.push(conn);
            let width = sample.deltas.len();
            if width == active_width {
                active_rows.push((client, sample));
                active_slots.push(slot);
            } else if previous
                .as_ref()
                .is_some_and(|p| p.model.events.len() == width)
            {
                fallback_rows.push((client, sample));
                fallback_slots.push(slot);
            } else {
                ServerStats::bump(&self.stats.frames_errored);
                let err = ServeError::WidthMismatch {
                    expected: active_width,
                    got: width,
                };
                responses[slot] = Some(error_response(&err));
            }
        }

        for (slot, result) in active_slots
            .into_iter()
            .zip(self.engine.estimate_batch(&active_rows, &active))
        {
            responses[slot] = Some(self.ingest_response(result, None));
        }
        if let Some(prev) = previous.filter(|_| !fallback_rows.is_empty()) {
            for (slot, result) in fallback_slots
                .into_iter()
                .zip(self.engine.estimate_batch(&fallback_rows, &prev))
            {
                responses[slot] = Some(self.ingest_response(result, Some(&prev)));
            }
        }
        conns
            .into_iter()
            .zip(responses)
            .map(|(conn, resp)| (conn, resp.expect("every batch slot answered")))
            .collect()
    }

    /// Folds one batched-ingest engine outcome into a wire response,
    /// with the same flagging and stat bumps as the unbatched path.
    /// `stale_from` marks an estimate served by the pinned fallback
    /// model rather than the active one.
    fn ingest_response(
        &self,
        result: Result<crate::engine::Estimate, ServeError>,
        stale_from: Option<&Arc<ModelArtifact>>,
    ) -> Json {
        match result {
            Ok(mut est) => {
                if let Some(prev) = stale_from {
                    est.degraded = true;
                    est.degraded_reasons
                        .push(format!("stale_model:{}@v{}", prev.name, prev.version));
                    ServerStats::bump(&self.stats.stale_model_fallbacks);
                }
                if est.degraded {
                    ServerStats::bump(&self.stats.degraded_estimates);
                }
                ServerStats::bump(&self.stats.samples_ingested);
                ServerStats::bump(&self.stats.estimates_served);
                ok_response(est.to_json_value())
            }
            Err(e) => {
                ServerStats::bump(&self.stats.frames_errored);
                error_response(&e)
            }
        }
    }
}

fn id_json(name: &str, version: u32) -> Json {
    Json::obj(vec![
        ("name", Json::from(name)),
        ("version", Json::from(version)),
    ])
}

/// What happened to the configured checkpoint file at startup.
#[derive(Debug, Clone, PartialEq)]
pub enum CheckpointRestore {
    /// A valid checkpoint restored this many client windows (and this
    /// active-model pin, if the registry still holds the artifact).
    Restored {
        /// Durable client windows warmed from the checkpoint.
        clients: usize,
        /// The checkpointed active model id, if any.
        active: Option<(String, u32)>,
    },
    /// The checkpoint failed validation (torn write, CRC mismatch,
    /// garbage); it was moved aside and the server cold-started.
    Quarantined {
        /// Why the file was rejected.
        reason: String,
        /// Where the bad file went (`None` if the rename failed and it
        /// was left in place to be overwritten).
        quarantined_to: Option<PathBuf>,
    },
}

/// Handle to a running server; dropping it shuts the server down.
pub struct PowerServer {
    addr: SocketAddr,
    uds_path: Option<String>,
    stop: Arc<AtomicBool>,
    core: Option<JoinHandle<()>>,
    supervisor: Option<JoinHandle<()>>,
    stats: Arc<ServerStats>,
    registry: Arc<ModelRegistry>,
    restore: Option<CheckpointRestore>,
}

impl PowerServer {
    /// Binds the listeners and starts the core and worker threads.
    pub fn start(config: ServerConfig, registry: Arc<ModelRegistry>) -> Result<Self, ServeError> {
        if config.workers == 0 {
            return Err(ServeError::Registry {
                reason: "server needs at least one worker".into(),
            });
        }
        let tcp = TcpListener::bind(&config.addr)?;
        tcp.set_nonblocking(true)?;
        let addr = tcp.local_addr()?;
        let mut listeners = vec![Listener::Tcp(tcp)];
        let uds_path = config.uds_path.clone();
        if let Some(path) = &config.uds_path {
            #[cfg(unix)]
            {
                let _ = std::fs::remove_file(path);
                let l = std::os::unix::net::UnixListener::bind(path)?;
                l.set_nonblocking(true)?;
                listeners.push(Listener::Unix(l));
            }
            #[cfg(not(unix))]
            return Err(ServeError::Registry {
                reason: format!("unix sockets unsupported on this platform: {path}"),
            });
        }

        let stats = Arc::new(ServerStats::default());
        let health = Arc::new(HealthState::default());
        let engine = EstimatorEngine::new(config.engine);
        let trainer = Arc::new(Trainer::new(config.trainer.clone()));

        // Checkpoint restore happens before any thread can touch the
        // engine. A bad checkpoint is quarantined and reported — it
        // must never keep the server from booting.
        let restore = match &config.checkpoint_path {
            Some(path) => match load_checkpoint(path) {
                CheckpointOutcome::NotFound => None,
                CheckpointOutcome::Restored(data) => {
                    let clients = engine.restore_clients(data.clients);
                    stats
                        .checkpoint_clients_restored
                        .fetch_add(clients as u64, Ordering::Relaxed);
                    if let Some((name, version)) = &data.active {
                        // Re-pin only if nothing is active yet (a
                        // persisted registry's own pin wins) and the
                        // artifact actually survived the restart.
                        if registry.active().is_none() {
                            let _ = registry.activate(name, *version);
                        }
                    }
                    // Online-learning state resumes bitwise (after the
                    // re-pin so the shadow candidate can rebuild
                    // against the active envelope). A malformed
                    // section costs warm training, never the boot.
                    if let Some(t) = &data.training {
                        let active = registry.active();
                        let _ = trainer.restore(t, active.as_ref().map(|a| &a.model));
                    }
                    // Age the restored checkpoint from the file itself,
                    // not from "now" — a probe should see how stale it is.
                    if let Some(ms) = std::fs::metadata(path)
                        .and_then(|m| m.modified())
                        .ok()
                        .and_then(|t| t.duration_since(UNIX_EPOCH).ok())
                        .map(|d| d.as_millis() as u64)
                    {
                        health.last_checkpoint_ms.store(ms, Ordering::Relaxed);
                    }
                    Some(CheckpointRestore::Restored {
                        clients,
                        active: data.active,
                    })
                }
                CheckpointOutcome::Quarantined {
                    reason,
                    quarantined_to,
                } => {
                    ServerStats::bump(&stats.checkpoints_quarantined);
                    Some(CheckpointRestore::Quarantined {
                        reason,
                        quarantined_to,
                    })
                }
            },
            None => None,
        };

        let service = Arc::new(Service {
            registry: Arc::clone(&registry),
            engine,
            stats: Arc::clone(&stats),
            health,
            trainer,
            config: config.clone(),
        });
        let stop = Arc::new(AtomicBool::new(false));
        let (job_tx, job_rx) = sync_channel::<Job>(config.queue_depth.max(1));
        let (done_tx, done_rx) = channel::<Vec<Completion>>();
        let (exit_tx, exit_rx) = channel::<usize>();

        let spawner = WorkerSpawner {
            job_rx: Arc::new(Mutex::new(job_rx)),
            done_tx,
            service: Arc::clone(&service),
            busy: Arc::new((0..config.workers).map(|_| AtomicU64::new(0)).collect()),
            started_at: Instant::now(),
            exit_tx,
        };
        let handles: Vec<Option<JoinHandle<()>>> = (0..config.workers)
            .map(|slot| Some(spawner.spawn(slot)))
            .collect();

        let supervisor = {
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || supervise(spawner, handles, exit_rx, &stop))
        };

        let core = {
            let stop = Arc::clone(&stop);
            let service = Arc::clone(&service);
            std::thread::spawn(move || {
                Core {
                    listeners,
                    conns: HashMap::new(),
                    next_id: 1,
                    inflight: 0,
                    job_tx: Some(job_tx),
                    done_rx,
                    service,
                    stop,
                }
                .run();
            })
        };

        Ok(PowerServer {
            addr,
            uds_path,
            stop,
            core: Some(core),
            supervisor: Some(supervisor),
            stats,
            registry,
            restore,
        })
    }

    /// What happened to the configured checkpoint at startup: `None`
    /// when checkpointing is off or no file existed yet.
    pub fn checkpoint_restore(&self) -> Option<&CheckpointRestore> {
        self.restore.as_ref()
    }

    /// The bound TCP address (resolves the ephemeral port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The Unix-socket path the server listens on, if any.
    pub fn uds_path(&self) -> Option<&str> {
        self.uds_path.as_deref()
    }

    /// Live operational counters.
    pub fn stats(&self) -> Arc<ServerStats> {
        Arc::clone(&self.stats)
    }

    /// The registry the server serves from.
    pub fn registry(&self) -> Arc<ModelRegistry> {
        Arc::clone(&self.registry)
    }

    /// Graceful drain: stops accepting, finishes in-flight requests
    /// within the drain deadline, notifies clients, flushes the
    /// registry, joins every thread. Idempotent.
    pub fn shutdown(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(core) = self.core.take() {
            let _ = core.join();
        }
        if let Some(supervisor) = self.supervisor.take() {
            let _ = supervisor.join();
        }
        if let Some(path) = self.uds_path.take() {
            let _ = std::fs::remove_file(path);
        }
    }
}

impl Drop for PowerServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// One finished request: the response frame already encoded off the
/// core thread, or `None` when encoding failed (oversized response)
/// and the connection must be closed.
type Completion = (u64, Option<Vec<u8>>);

/// Encodes a response on the worker side — serialization (float
/// formatting in particular) is the most expensive per-response step,
/// and doing it here keeps the core thread free for socket sweeps.
/// The connection's negotiated encoding rides along in the job so the
/// worker encodes exactly what the core would.
fn encoded(conn: u64, encoding: Encoding, resp: &Json) -> Completion {
    (conn, encode_frame_as(resp, encoding).ok())
}

/// Everything needed to (re)spawn a worker into a given pool slot.
/// Owned by the supervisor after startup — respawning a panicked
/// worker reuses the exact channels and shared state of the original.
struct WorkerSpawner {
    job_rx: Arc<Mutex<Receiver<Job>>>,
    done_tx: Sender<Vec<Completion>>,
    service: Arc<Service>,
    /// Per-slot busy markers: nanoseconds since `started_at` when the
    /// slot began its current assembly, 0 while idle. The watchdog
    /// reads these to find stuck workers.
    busy: Arc<Vec<AtomicU64>>,
    started_at: Instant,
    exit_tx: Sender<usize>,
}

impl WorkerSpawner {
    fn spawn(&self, slot: usize) -> JoinHandle<()> {
        let job_rx = Arc::clone(&self.job_rx);
        let done_tx = self.done_tx.clone();
        let service = Arc::clone(&self.service);
        let busy = Arc::clone(&self.busy);
        let started_at = self.started_at;
        let exit_tx = self.exit_tx.clone();
        std::thread::spawn(move || {
            let _notice = ExitNotice { slot, tx: exit_tx };
            worker_loop(&job_rx, &done_tx, &service, &busy[slot], started_at);
        })
    }
}

/// Drop guard telling the supervisor which pool slot just emptied —
/// fires on clean retirement and on any exit path after a panic alike.
struct ExitNotice {
    slot: usize,
    tx: Sender<usize>,
}

impl Drop for ExitNotice {
    fn drop(&mut self) {
        let _ = self.tx.send(self.slot);
    }
}

/// The supervisor: joins dead workers, respawns them with exponential
/// backoff, retires a slot that flaps (too many consecutive fast
/// deaths), runs the stuck-worker watchdog, and writes periodic
/// checkpoints. Exits once the stop flag is up and every worker has
/// been joined.
fn supervise(
    spawner: WorkerSpawner,
    mut handles: Vec<Option<JoinHandle<()>>>,
    exit_rx: Receiver<usize>,
    stop: &AtomicBool,
) {
    /// A worker alive longer than this before dying is not flapping —
    /// its consecutive-death counter resets.
    const FLAP_RESET: Duration = Duration::from_secs(30);
    /// Upper bound on the exponential respawn backoff.
    const MAX_BACKOFF: Duration = Duration::from_secs(1);

    let service = Arc::clone(&spawner.service);
    let cfg = &service.config;
    let n = handles.len();
    let mut consecutive = vec![0u32; n];
    let mut spawned_at = vec![spawner.started_at; n];
    let mut last_checkpoint = Instant::now();
    // Per-process jitter seed: a fleet of processes started together
    // must not snapshot in lockstep (and stall together), so each
    // process draws its own checkpoint cadence.
    let mut ckpt_rng = std::process::id() as u64 ^ unix_ms() ^ 0x9E37_79B9_7F4A_7C15;
    let mut ckpt_due = jittered_interval(cfg.checkpoint_interval, &mut ckpt_rng);
    let tick = Duration::from_millis(25);
    loop {
        match exit_rx.recv_timeout(tick) {
            Ok(slot) => {
                if let Some(handle) = handles[slot].take() {
                    let _ = handle.join();
                }
                if !stop.load(Ordering::SeqCst) {
                    if spawned_at[slot].elapsed() >= FLAP_RESET {
                        consecutive[slot] = 0;
                    }
                    consecutive[slot] += 1;
                    if consecutive[slot] >= cfg.flap_cap.max(1) {
                        // Flapping: stop feeding this slot — something
                        // is deterministically killing it.
                        service
                            .stats
                            .supervisor_flapping
                            .store(1, Ordering::Relaxed);
                    } else {
                        let shift = (consecutive[slot] - 1).min(16);
                        let backoff = cfg
                            .respawn_backoff
                            .checked_mul(1u32 << shift)
                            .unwrap_or(MAX_BACKOFF)
                            .min(MAX_BACKOFF);
                        if !backoff.is_zero() {
                            std::thread::sleep(backoff);
                        }
                        handles[slot] = Some(spawner.spawn(slot));
                        spawned_at[slot] = Instant::now();
                        ServerStats::bump(&service.stats.worker_respawns);
                    }
                }
            }
            Err(RecvTimeoutError::Timeout) => {}
            // Unreachable while `spawner` holds an exit_tx, but harmless.
            Err(RecvTimeoutError::Disconnected) => {}
        }

        // Watchdog: count workers busy on one assembly past the bound.
        let bound_ns = cfg.stuck_job_bound.as_nanos() as u64;
        let now_ns = spawner.started_at.elapsed().as_nanos() as u64;
        let stuck = spawner
            .busy
            .iter()
            .filter(|b| {
                let v = b.load(Ordering::Relaxed);
                v != 0 && now_ns.saturating_sub(v) > bound_ns
            })
            .count() as u64;
        service.stats.workers_stuck.store(stuck, Ordering::Relaxed);

        // Periodic checkpoint (the drain-time one is the core's job).
        // Each wait is the configured interval ±20%, redrawn per
        // write, so co-started fleet members drift apart.
        if cfg.checkpoint_path.is_some()
            && !cfg.checkpoint_interval.is_zero()
            && last_checkpoint.elapsed() >= ckpt_due
        {
            let _ = service.write_checkpoint_now();
            last_checkpoint = Instant::now();
            ckpt_due = jittered_interval(cfg.checkpoint_interval, &mut ckpt_rng);
        }

        if stop.load(Ordering::SeqCst) {
            // The core drops the job channel early in its drain, so
            // blocked workers wake and retire; join whatever is left.
            for handle in handles.iter_mut() {
                if let Some(handle) = handle.take() {
                    let _ = handle.join();
                }
            }
            return;
        }
    }
}

/// `base` scaled by a uniform factor in `[0.8, 1.2)` — the ±20%
/// checkpoint-cadence jitter. Zero (periodic checkpointing disabled)
/// passes through unchanged.
fn jittered_interval(base: Duration, rng: &mut u64) -> Duration {
    if base.is_zero() {
        return base;
    }
    let unit = crate::client::splitmix_next(rng) as f64 / u64::MAX as f64;
    base.mul_f64(0.8 + 0.4 * unit)
}

/// Executes assembled runs of queued requests. Each worker drains the
/// shared queue into one [`crate::batch::Assembly`] at a time: jobs
/// that outlived the queue deadline are answered with typed overload
/// frames *before* any execution, consecutive `ingest` frames are
/// dispatched as one batched model evaluation, and any other op acts
/// as a barrier — it executes only after the pending ingest run
/// flushes, so state-changing ops (activate, rollback) interleave with
/// ingests exactly as they would on an unbatched server.
///
/// The execution of every assembly runs under `catch_unwind`: a panic
/// answers each not-yet-answered job in the assembly with a typed
/// `internal_error` frame (their connections stay open) and retires
/// this worker — the supervisor respawns the slot.
fn worker_loop(
    job_rx: &Mutex<Receiver<Job>>,
    done: &Sender<Vec<Completion>>,
    service: &Service,
    busy: &AtomicU64,
    started_at: Instant,
) {
    let policy = BatchPolicy {
        max: service.config.batch_max,
        linger: service.config.batch_linger,
        queue_deadline: service.config.queue_deadline,
    };
    let mut source = ChannelSource::new(job_rx);
    while let Some(asm) = assemble(&mut source, &policy) {
        // Hand the queue to sibling workers before executing anything.
        source.release();
        if asm.lingered {
            ServerStats::bump(&service.stats.batch_linger_timeouts);
        }
        if !asm.shed.is_empty() {
            let sheds = asm
                .shed
                .into_iter()
                .map(|job| {
                    ServerStats::bump(&service.stats.requests_shed);
                    let err = ServeError::Overloaded {
                        retry_after_ms: service.config.retry_after_ms,
                    };
                    encoded(job.conn, job.encoding, &error_response(&err))
                })
                .collect();
            if done.send(sheds).is_err() {
                return; // core gone
            }
        }
        if !asm.expired.is_empty() {
            // The propagated budget ran out while the job sat queued:
            // a typed deadline_exceeded, not an overload — the client
            // must not burn a retry on patience it no longer has.
            let expired = asm
                .expired
                .into_iter()
                .map(|job| {
                    ServerStats::bump(&service.stats.requests_deadline_exceeded);
                    let err = ServeError::DeadlineExceeded { remaining_ms: 0 };
                    encoded(job.conn, job.encoding, &error_response(&err))
                })
                .collect();
            if done.send(expired).is_err() {
                return; // core gone
            }
        }

        let conns: Vec<(u64, Encoding)> = asm
            .jobs
            .iter()
            .map(|job| (job.conn, job.encoding))
            .collect();
        let answered = std::cell::RefCell::new(Vec::<u64>::new());
        busy.store(
            (started_at.elapsed().as_nanos() as u64).max(1),
            Ordering::Relaxed,
        );
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            run_assembly(asm.jobs, done, service, &answered)
        }));
        busy.store(0, Ordering::Relaxed);
        match outcome {
            Ok(true) => {}
            Ok(false) => return, // core gone
            Err(_) => {
                // Crash containment: the panic stays inside this
                // worker. Every job that never got its response is
                // answered in-protocol, then this thread retires and
                // the supervisor takes over.
                ServerStats::bump(&service.stats.worker_panics);
                let answered = answered.into_inner();
                let err = ServeError::Internal {
                    reason: "worker panicked while executing the request".into(),
                };
                let unanswered: Vec<Completion> = conns
                    .iter()
                    .filter(|(conn, _)| !answered.contains(conn))
                    .map(|&(conn, enc)| encoded(conn, enc, &error_response(&err)))
                    .collect();
                if !unanswered.is_empty() {
                    let _ = done.send(unanswered);
                }
                return;
            }
        }
    }
}

/// Runs one assembly's jobs, recording each connection in `answered`
/// the moment its response is handed to the core (the panic-recovery
/// path in [`worker_loop`] answers the rest). Returns false once the
/// core is gone.
fn run_assembly(
    jobs: Vec<Job>,
    done: &Sender<Vec<Completion>>,
    service: &Service,
    answered: &std::cell::RefCell<Vec<u64>>,
) -> bool {
    let mut pending: Vec<(u64, u64, CounterSample)> = Vec::new();
    // Response encodings of the pending ingest run, aligned with
    // `pending` (one request per connection in flight, so each conn
    // appears at most once per run).
    let mut pending_encs: Vec<Encoding> = Vec::new();
    for job in jobs {
        if let Some(faults) = &service.config.faults {
            if faults.should_panic() {
                panic!("injected worker panic (pmc-faults)");
            }
            if let Some(hold) = faults.stall_duration() {
                std::thread::sleep(hold);
            }
        }
        match Request::from_json_value(&job.frame) {
            Ok(Request::Ingest(sample)) => {
                pending.push((job.conn, job.client, sample));
                pending_encs.push(job.encoding);
            }
            Ok(req) => {
                // Barrier: the queued ingests precede this op, so
                // they must see the registry as it was before it.
                if !flush_ingests(&mut pending, &mut pending_encs, done, service, answered) {
                    return false;
                }
                let resp = service.handle(job.client, req);
                answered.borrow_mut().push(job.conn);
                if done
                    .send(vec![encoded(job.conn, job.encoding, &resp)])
                    .is_err()
                {
                    return false;
                }
            }
            Err(e) => {
                // A malformed frame has no state effect — answer
                // it inline without breaking the ingest run. (Its
                // connection cannot have an ingest pending: one
                // request per connection is in flight at a time.)
                ServerStats::bump(&service.stats.frames_errored);
                answered.borrow_mut().push(job.conn);
                if done
                    .send(vec![encoded(job.conn, job.encoding, &error_response(&e))])
                    .is_err()
                {
                    return false;
                }
            }
        }
    }
    flush_ingests(&mut pending, &mut pending_encs, done, service, answered)
}

/// Dispatches the accumulated ingest run as one batched evaluation and
/// sends every response in a single completion message. Returns false
/// once the core is gone.
fn flush_ingests(
    pending: &mut Vec<(u64, u64, CounterSample)>,
    pending_encs: &mut Vec<Encoding>,
    done: &Sender<Vec<Completion>>,
    service: &Service,
    answered: &std::cell::RefCell<Vec<u64>>,
) -> bool {
    if pending.is_empty() {
        return true;
    }
    let encs = std::mem::take(pending_encs);
    let responses = service.handle_ingest_batch(std::mem::take(pending));
    answered
        .borrow_mut()
        .extend(responses.iter().map(|(conn, _)| *conn));
    done.send(
        // `handle_ingest_batch` answers every batch slot in request
        // order, so the encodings zip back positionally.
        responses
            .iter()
            .zip(encs)
            .map(|((conn, resp), enc)| encoded(*conn, enc, resp))
            .collect(),
    )
    .is_ok()
}

/// The readiness core: owns listeners and connections, sweeps them.
struct Core {
    listeners: Vec<Listener>,
    conns: HashMap<u64, Conn>,
    next_id: u64,
    /// Requests running or queued across all connections.
    inflight: usize,
    /// `None` once drain begins (dropping it retires idle workers).
    job_tx: Option<SyncSender<Job>>,
    /// Finished work arrives in groups: one message per shed set,
    /// per batched ingest run, or per individual op.
    done_rx: Receiver<Vec<Completion>>,
    service: Arc<Service>,
    stop: Arc<AtomicBool>,
}

impl Core {
    fn run(mut self) {
        let cfg = self.service.config.clone();
        let mut drain_start: Option<Instant> = None;
        // Consecutive no-progress sweeps; the long idle nap is taken
        // only after a streak, so a client (or proxy) whose next
        // request arrives a few hundred µs after the last response
        // doesn't pay a multi-ms wakeup tail.
        let mut idle_streak = 0u32;
        loop {
            if drain_start.is_none() && self.stop.load(Ordering::SeqCst) {
                drain_start = Some(Instant::now());
                self.listeners.clear(); // stop accepting
                self.job_tx = None; // workers exit once the queue drains
            }
            let draining = drain_start.is_some();

            let mut progress = false;
            if !draining {
                progress |= self.accept(&cfg);
            }
            progress |= self.pump_completions();

            let now = Instant::now();
            let mut to_close = Vec::new();
            for (&id, conn) in self.conns.iter_mut() {
                if draining && !conn.inflight && !conn.closing {
                    // In-flight work already finished (or never
                    // existed): notify and close.
                    queue_frame(conn, &error_response(&ServeError::Draining));
                    conn.closing = true;
                }
                let (p, close) = sweep_conn(
                    id,
                    conn,
                    &self.service,
                    draining,
                    &mut self.inflight,
                    self.job_tx.as_ref(),
                    now,
                );
                progress |= p;
                if close {
                    to_close.push(id);
                }
            }
            for id in to_close {
                self.close_conn(id);
                progress = true;
            }

            if let Some(start) = drain_start {
                let done = self.conns.is_empty() && self.inflight == 0;
                let expired = start.elapsed() >= cfg.drain_deadline;
                if done || expired {
                    let ids: Vec<u64> = self.conns.keys().copied().collect();
                    for id in ids {
                        self.close_conn(id);
                    }
                    self.service
                        .stats
                        .drain_duration_ms
                        .store(start.elapsed().as_millis() as u64, Ordering::Relaxed);
                    // Final checkpoint: a graceful drain must leave
                    // durable windows warm for the next process.
                    if self.service.config.checkpoint_path.is_some() {
                        let _ = self.service.write_checkpoint_now();
                    }
                    let _ = self.service.registry.flush();
                    return;
                }
            }

            // The completion channel doubles as the wakeup primitive:
            // sleep briefly, but a finishing worker cuts the nap short.
            // While traffic is flowing the nap must stay well under a
            // request's service time — socket readability has no
            // wakeup of its own, so the active nap bounds how fast new
            // frames are noticed (and therefore caps throughput).
            let nap = if progress {
                idle_streak = 0;
                Duration::from_micros(20)
            } else {
                idle_streak = idle_streak.saturating_add(1);
                if idle_streak < 64 {
                    Duration::from_micros(20)
                } else {
                    Duration::from_millis(5)
                }
            };
            match self.done_rx.recv_timeout(nap) {
                Ok(items) => {
                    for (id, resp) in items {
                        self.complete(id, resp);
                    }
                }
                Err(RecvTimeoutError::Timeout) => {}
                // All workers gone (only during drain, or a panic):
                // keep sweeping on a timer.
                Err(RecvTimeoutError::Disconnected) => std::thread::sleep(nap),
            }
        }
    }

    /// Accepts pending connections up to the admission budget; past
    /// it, sheds with a typed overload frame.
    fn accept(&mut self, cfg: &ServerConfig) -> bool {
        let mut progress = false;
        let now = Instant::now();
        for i in 0..self.listeners.len() {
            loop {
                let accepted = self.listeners[i].accept();
                match accepted {
                    Ok(mut stream) => {
                        progress = true;
                        if self.conns.len() >= cfg.max_connections {
                            ServerStats::bump(&self.service.stats.connections_shed);
                            if let Ok(bytes) =
                                encode_frame(&error_response(&ServeError::Overloaded {
                                    retry_after_ms: cfg.retry_after_ms,
                                }))
                            {
                                // A fresh socket buffer always takes a
                                // tiny frame; best effort regardless.
                                let _ = stream.write(&bytes);
                            }
                            stream.close();
                            continue;
                        }
                        let id = self.next_id;
                        self.next_id += 1;
                        self.conns.insert(id, Conn::new(stream, now, id));
                        ServerStats::bump(&self.service.stats.connections_accepted);
                        ServerStats::bump(&self.service.stats.connections_open);
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                    Err(_) => break,
                }
            }
        }
        progress
    }

    /// Drains finished requests into their connections' write buffers.
    fn pump_completions(&mut self) -> bool {
        let mut progress = false;
        while let Ok(items) = self.done_rx.try_recv() {
            progress = true;
            for (id, resp) in items {
                self.complete(id, resp);
            }
        }
        progress
    }

    fn complete(&mut self, id: u64, frame: Option<Vec<u8>>) {
        self.inflight = self.inflight.saturating_sub(1);
        // The connection may be gone (reaped while its request ran);
        // the response is then discarded, but the budget slot frees.
        if let Some(conn) = self.conns.get_mut(&id) {
            conn.inflight = false;
            match frame {
                Some(bytes) => conn.write_buf.extend_from_slice(&bytes),
                // Unencodable (oversized) response: there is no way
                // to answer in-protocol — close the connection.
                None => conn.closing = true,
            }
        }
    }

    fn close_conn(&mut self, id: u64) {
        if let Some(conn) = self.conns.remove(&id) {
            conn.stream.close();
            // Ephemeral engine state dies with the connection; a
            // resumed (token-keyed) window outlives it by design.
            if conn.client == id {
                self.service.engine.forget(id);
            }
            ServerStats::dec(&self.service.stats.connections_open);
        }
    }
}

/// Appends one frame, encoded in the connection's negotiated
/// encoding, to its write buffer; on an encode failure (oversized
/// response) the connection is marked for close — there is no way to
/// answer in-protocol.
fn queue_frame(conn: &mut Conn, payload: &Json) {
    match encode_frame_as(payload, conn.encoding) {
        Ok(bytes) => conn.write_buf.extend_from_slice(&bytes),
        Err(_) => conn.closing = true,
    }
}

/// Answers a core-inline op (`healthz`/`readyz`/`metrics`/`resume`/
/// `hello`) without touching the worker pool. `resume` rebinds the
/// connection's engine key to the durable token-derived one, dropping
/// any ephemeral state accumulated under the connection id first.
/// `hello` negotiates the connection's payload encoding — it must
/// precede all data frames, and its response (like everything after
/// it) travels in the newly agreed encoding.
fn core_inline_response(
    id: u64,
    conn: &mut Conn,
    frame: &Json,
    service: &Service,
    draining: bool,
) -> Json {
    match Request::from_json_value(frame) {
        Ok(Request::Healthz) => ok_response(service.healthz_json(draining)),
        Ok(Request::Readyz) => ok_response(service.readyz_json(draining)),
        Ok(Request::Metrics) => ok_response(service.metrics_json()),
        Ok(Request::Hello { encoding }) => {
            if conn.saw_data {
                ServerStats::bump(&service.stats.frames_errored);
                return error_response(&ServeError::Protocol {
                    reason: "hello must precede all data frames".into(),
                });
            }
            // Unknown names fall back to JSON with a typed notice —
            // a newer client degrades loudly instead of desyncing.
            let (agreed, notice) = match Encoding::from_name(&encoding) {
                Some(e) => (e, None),
                None => (
                    Encoding::Json,
                    Some(format!("unknown encoding {encoding:?}, using json")),
                ),
            };
            conn.encoding = agreed;
            if agreed == Encoding::Binary {
                ServerStats::bump(&service.stats.binary_conns);
            }
            let mut fields = vec![("encoding", Json::from(agreed.as_str()))];
            if let Some(n) = notice {
                fields.push(("notice", Json::from(n.as_str())));
            }
            ok_response(Json::obj(fields))
        }
        Ok(Request::Resume { token }) => {
            let key = resume_key(&token);
            if conn.client == id {
                service.engine.forget(id);
            }
            conn.client = key;
            ServerStats::bump(&service.stats.resumed_clients);
            ok_response(Json::obj(vec![
                ("client", Json::from(format!("{key:016x}").as_str())),
                // Whether a checkpointed/earlier window already exists
                // under this token — i.e. whether history is warm.
                ("restored", Json::Bool(service.engine.has_client(key))),
            ]))
        }
        // A panic here would kill the core thread, so even the
        // can't-happen arm answers in-protocol.
        Ok(_) => error_response(&ServeError::Internal {
            reason: "inline dispatch disagreed with frame classification".into(),
        }),
        Err(e) => {
            ServerStats::bump(&service.stats.frames_errored);
            error_response(&e)
        }
    }
}

/// One readiness sweep over a single connection: read what the socket
/// has, parse and dispatch at most one request, flush pending writes,
/// enforce deadlines. Returns (made progress, close now).
fn sweep_conn(
    id: u64,
    conn: &mut Conn,
    service: &Service,
    draining: bool,
    inflight: &mut usize,
    job_tx: Option<&SyncSender<Job>>,
    now: Instant,
) -> (bool, bool) {
    let cfg = &service.config;
    let mut progress = false;
    let mut close = false;

    // Read phase: accumulate whatever the socket has, bounded by one
    // maximal frame past the parse point (TCP backpressure does the
    // rest).
    if !conn.closing && !conn.eof {
        let cap = 4 + cfg.max_frame_bytes as usize;
        let mut chunk = [0u8; 16 * 1024];
        while conn.read_buf.len() < cap {
            match conn.stream.read(&mut chunk) {
                Ok(0) => {
                    conn.eof = true;
                    break;
                }
                Ok(n) => {
                    conn.read_buf.extend_from_slice(&chunk[..n]);
                    conn.last_activity = now;
                    progress = true;
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    // Peer reset: nothing more will arrive.
                    conn.eof = true;
                    break;
                }
            }
        }
    }

    // Parse/dispatch phase: at most one request goes in flight;
    // payload-level garbage is answered inline and parsing continues.
    while !conn.closing && !conn.inflight {
        match parse_frame(&conn.read_buf, cfg.max_frame_bytes) {
            Ok(None) => {
                if conn.read_buf.is_empty() {
                    conn.partial_since = None;
                } else if conn.partial_since.is_none() {
                    conn.partial_since = Some(now);
                }
                break;
            }
            Ok(Some((frame, consumed))) => {
                conn.read_buf.drain(..consumed);
                conn.partial_since = None;
                progress = true;
                ServerStats::bump(&service.stats.frames_received);
                // Any non-hello frame closes the negotiation window —
                // a later hello is a typed error, so a mid-stream
                // encoding flip can never tear responses in transit.
                if !is_hello_frame(&frame) {
                    conn.saw_data = true;
                }
                // Health, metrics, resume and hello are answered by
                // the core itself — never queued, never counted
                // against the in-flight budget. Liveness probes must
                // keep working when every worker is wedged or the
                // queue is full (and hello mutates per-connection
                // encoding state only the core owns).
                if is_core_inline_frame(&frame) {
                    let resp = core_inline_response(id, conn, &frame, service, draining);
                    queue_frame(conn, &resp);
                    continue;
                }
                if draining {
                    queue_frame(conn, &error_response(&ServeError::Draining));
                    conn.closing = true;
                    break;
                }
                if *inflight >= cfg.max_inflight {
                    ServerStats::bump(&service.stats.requests_rejected_overload);
                    queue_frame(
                        conn,
                        &error_response(&ServeError::Overloaded {
                            retry_after_ms: cfg.retry_after_ms,
                        }),
                    );
                    continue;
                }
                // Propagated deadline: resolve the frame's relative
                // budget against the local clock now, at ingress. A
                // zero budget is already spent — answer the typed
                // status immediately instead of queueing doomed work.
                let deadline = match frame_deadline_ms(&frame) {
                    Some(0) => {
                        ServerStats::bump(&service.stats.requests_deadline_exceeded);
                        queue_frame(
                            conn,
                            &error_response(&ServeError::DeadlineExceeded { remaining_ms: 0 }),
                        );
                        continue;
                    }
                    Some(ms) => Some(now + Duration::from_millis(ms)),
                    None => None,
                };
                match job_tx {
                    Some(tx) => match tx.try_send(Job {
                        conn: id,
                        client: conn.client,
                        frame,
                        enqueued: now,
                        deadline,
                        encoding: conn.encoding,
                    }) {
                        Ok(()) => {
                            conn.inflight = true;
                            *inflight += 1;
                        }
                        Err(TrySendError::Full(_)) => {
                            ServerStats::bump(&service.stats.requests_rejected_overload);
                            queue_frame(
                                conn,
                                &error_response(&ServeError::Overloaded {
                                    retry_after_ms: cfg.retry_after_ms,
                                }),
                            );
                        }
                        Err(TrySendError::Disconnected(_)) => {
                            queue_frame(conn, &error_response(&ServeError::Draining));
                            conn.closing = true;
                        }
                    },
                    None => {
                        queue_frame(conn, &error_response(&ServeError::Draining));
                        conn.closing = true;
                    }
                }
            }
            Err(FrameError::Fatal(e)) => {
                ServerStats::bump(&service.stats.frames_errored);
                queue_frame(conn, &error_response(&e));
                conn.closing = true;
            }
            Err(FrameError::Payload { consumed, error }) => {
                conn.read_buf.drain(..consumed);
                conn.partial_since = None;
                progress = true;
                ServerStats::bump(&service.stats.frames_errored);
                queue_frame(conn, &error_response(&error));
            }
        }
    }

    // Flush phase.
    if !conn.flushed() {
        let mut wrote = false;
        loop {
            match conn.stream.write(&conn.write_buf[conn.write_pos..]) {
                Ok(0) => {
                    close = true;
                    break;
                }
                Ok(n) => {
                    conn.write_pos += n;
                    wrote = true;
                    progress = true;
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    close = true;
                    break;
                }
            }
            if conn.flushed() {
                break;
            }
        }
        if conn.flushed() {
            conn.write_buf.clear();
            conn.write_pos = 0;
            conn.write_since = None;
        } else if wrote || conn.write_since.is_none() {
            conn.write_since = Some(now);
        }
    }

    // Deadline phase.
    if !close {
        // Slow loris: a partial frame too old to be honest traffic.
        if let (Some(limit), Some(since)) = (cfg.read_timeout, conn.partial_since) {
            if !conn.closing && now.duration_since(since) >= limit {
                ServerStats::bump(&service.stats.connections_reaped);
                queue_frame(
                    conn,
                    &error_response(&ServeError::Deadline { mid_frame: true }),
                );
                conn.closing = true;
            }
        }
        // Write stall: the peer stopped draining its socket; no frame
        // can be delivered, so just drop.
        if let (Some(limit), Some(since)) = (cfg.write_timeout, conn.write_since) {
            if now.duration_since(since) >= limit {
                ServerStats::bump(&service.stats.connections_reaped);
                close = true;
            }
        }
        // Idle between frames: reap with an explicit deadline frame.
        if let Some(limit) = cfg.idle_timeout {
            if !conn.inflight
                && !conn.closing
                && conn.read_buf.is_empty()
                && conn.flushed()
                && now.duration_since(conn.last_activity) >= limit
            {
                ServerStats::bump(&service.stats.connections_reaped);
                queue_frame(
                    conn,
                    &error_response(&ServeError::Deadline { mid_frame: false }),
                );
                conn.closing = true;
            }
        }
    }

    // Close determination: a closing connection goes once its final
    // frames are flushed; an EOF'd one once nothing is in flight and
    // the tail (necessarily an incomplete frame) is unusable.
    if conn.closing && conn.flushed() {
        close = true;
    }
    if conn.eof && !conn.inflight && !conn.closing && conn.flushed() {
        close = true;
    }
    (progress, close)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::{read_frame, unwrap_response, write_frame};
    use crate::test_fixtures::tiny_model;

    fn request<S: Read + Write>(stream: &mut S, req: &Request) -> Result<Json, ServeError> {
        write_frame(stream, &req.to_json_value())?;
        let frame = read_frame(stream)?.ok_or(ServeError::Protocol {
            reason: "server closed connection".into(),
        })?;
        unwrap_response(frame)
    }

    fn started(workers: usize, queue_depth: usize) -> PowerServer {
        let cfg = ServerConfig {
            workers,
            queue_depth,
            ..ServerConfig::default()
        };
        PowerServer::start(cfg, Arc::new(ModelRegistry::default())).unwrap()
    }

    #[test]
    fn checkpoint_jitter_stays_within_twenty_percent() {
        let base = Duration::from_millis(1000);
        let mut rng = 42u64;
        let mut distinct = std::collections::HashSet::new();
        for _ in 0..1000 {
            let d = jittered_interval(base, &mut rng);
            assert!(d >= Duration::from_millis(800), "{d:?} below -20%");
            assert!(d < Duration::from_millis(1200), "{d:?} above +20%");
            distinct.insert(d.as_nanos());
        }
        assert!(distinct.len() > 900, "jitter not actually varying");
        // Disabled periodic checkpointing stays disabled.
        assert!(jittered_interval(Duration::ZERO, &mut rng).is_zero());
    }

    #[test]
    fn window_seqs_reports_durable_windows() {
        let mut server = started(2, 8);
        let mut c = TcpStream::connect(server.addr()).unwrap();
        let m = tiny_model();
        request(
            &mut c,
            &Request::LoadModel {
                name: "hsw".into(),
                model: m.to_json_value(),
                activate: true,
            },
        )
        .unwrap();
        // No durable windows yet.
        let r = request(&mut c, &Request::WindowSeqs).unwrap();
        assert!(r.arr_field("windows").unwrap().is_empty());
        // Bind a durable identity and ingest twice.
        request(
            &mut c,
            &Request::Resume {
                token: "seq-probe".into(),
            },
        )
        .unwrap();
        let sample = |t: u64| crate::engine::CounterSample {
            time_ns: t,
            duration_s: 0.25,
            freq_mhz: 2000,
            voltage: 0.9,
            deltas: vec![1.0e9; m.events.len()],
            missing: vec![],
        };
        request(&mut c, &Request::Ingest(sample(1))).unwrap();
        request(&mut c, &Request::Ingest(sample(2))).unwrap();
        let r = request(&mut c, &Request::WindowSeqs).unwrap();
        let windows = r.arr_field("windows").unwrap();
        assert_eq!(windows.len(), 1);
        let pair = windows[0].as_arr().unwrap();
        let key = u64::from_str_radix(pair[0].as_str().unwrap(), 16).unwrap();
        let seq = u64::from_str_radix(pair[1].as_str().unwrap(), 16).unwrap();
        assert_eq!(key, crate::tokenhash::resume_key("seq-probe"));
        assert_eq!(seq, 2);
        server.shutdown();
    }

    #[test]
    fn load_activate_and_stats_over_the_wire() {
        let mut server = started(2, 4);
        let mut c = TcpStream::connect(server.addr()).unwrap();
        let m = tiny_model();
        let r = request(
            &mut c,
            &Request::LoadModel {
                name: "hsw".into(),
                model: m.to_json_value(),
                activate: true,
            },
        )
        .unwrap();
        assert_eq!(r.u32_field("version").unwrap(), 1);
        let stats = request(&mut c, &Request::Stats).unwrap();
        assert_eq!(
            stats.field("active").unwrap().str_field("name").unwrap(),
            "hsw"
        );
        assert_eq!(
            stats
                .field("server")
                .unwrap()
                .u64_field("models_loaded")
                .unwrap(),
            1
        );
        assert_eq!(
            stats
                .field("server")
                .unwrap()
                .u64_field("connections_open")
                .unwrap(),
            1
        );
        server.shutdown();
    }

    #[test]
    fn ingest_without_model_is_an_error_response() {
        let mut server = started(1, 4);
        let mut c = TcpStream::connect(server.addr()).unwrap();
        let err = request(
            &mut c,
            &Request::Ingest(crate::engine::CounterSample {
                time_ns: 0,
                duration_s: 1.0,
                freq_mhz: 2400,
                voltage: 1.0,
                deltas: vec![0.0],
                missing: vec![],
            }),
        );
        assert!(err.unwrap_err().to_string().contains("no active model"));
        // Connection still usable afterwards.
        assert!(request(&mut c, &Request::Stats).is_ok());
        server.shutdown();
    }

    #[test]
    fn malformed_json_frame_does_not_kill_the_connection() {
        let mut server = started(1, 4);
        let mut c = TcpStream::connect(server.addr()).unwrap();
        let garbage = b"{not json";
        c.write_all(&(garbage.len() as u32).to_be_bytes()).unwrap();
        c.write_all(garbage).unwrap();
        let resp = read_frame(&mut c).unwrap().unwrap();
        assert!(unwrap_response(resp).is_err());
        // Same connection keeps working.
        assert!(request(&mut c, &Request::Stats).is_ok());
        server.shutdown();
    }

    #[test]
    fn connections_past_budget_get_typed_overload() {
        let cfg = ServerConfig {
            workers: 1,
            max_connections: 1,
            ..ServerConfig::default()
        };
        let mut server = PowerServer::start(cfg, Arc::new(ModelRegistry::default())).unwrap();
        // Fill the only admission slot (the request proves admission).
        let mut keep = TcpStream::connect(server.addr()).unwrap();
        request(&mut keep, &Request::Stats).unwrap();
        // The next connection is shed with a machine-readable hint.
        let mut shed = TcpStream::connect(server.addr()).unwrap();
        let frame = read_frame(&mut shed).unwrap().unwrap();
        match unwrap_response(frame).unwrap_err() {
            ServeError::Overloaded { retry_after_ms } => assert!(retry_after_ms > 0),
            other => panic!("expected typed overload, got {other}"),
        }
        assert_eq!(server.stats().connections_shed.load(Ordering::Relaxed), 1);
        // The admitted client is unaffected.
        assert!(request(&mut keep, &Request::Stats).is_ok());
        server.shutdown();
    }

    #[test]
    fn inflight_budget_rejects_requests_with_retry_hint() {
        let cfg = ServerConfig {
            workers: 2,
            max_inflight: 1,
            ..ServerConfig::default()
        };
        let mut server = PowerServer::start(cfg, Arc::new(ModelRegistry::default())).unwrap();
        // Occupy the single in-flight slot with a slow ping…
        let mut busy = TcpStream::connect(server.addr()).unwrap();
        write_frame(&mut busy, &Request::Ping { delay_ms: 300 }.to_json_value()).unwrap();
        std::thread::sleep(Duration::from_millis(60));
        // …so the second client's request is refused, not queued.
        let mut second = TcpStream::connect(server.addr()).unwrap();
        let err = request(&mut second, &Request::Ping { delay_ms: 0 }).unwrap_err();
        assert!(matches!(err, ServeError::Overloaded { retry_after_ms } if retry_after_ms > 0));
        assert_eq!(
            server
                .stats()
                .requests_rejected_overload
                .load(Ordering::Relaxed),
            1
        );
        // The slow ping still completes normally.
        let pong = unwrap_response(read_frame(&mut busy).unwrap().unwrap()).unwrap();
        assert!(pong.field("pong").unwrap().as_bool().unwrap());
        server.shutdown();
    }

    #[test]
    fn stale_queued_requests_are_shed_before_execution() {
        let cfg = ServerConfig {
            workers: 1,
            queue_depth: 4,
            max_inflight: 8,
            queue_deadline: Some(Duration::from_millis(30)),
            ..ServerConfig::default()
        };
        let mut server = PowerServer::start(cfg, Arc::new(ModelRegistry::default())).unwrap();
        // The only worker is held for 150 ms…
        let mut busy = TcpStream::connect(server.addr()).unwrap();
        write_frame(&mut busy, &Request::Ping { delay_ms: 150 }.to_json_value()).unwrap();
        std::thread::sleep(Duration::from_millis(50));
        // …so this request waits ~100 ms in the queue — past its 30 ms
        // deadline — and must be shed, not executed.
        let mut waiter = TcpStream::connect(server.addr()).unwrap();
        let err = request(&mut waiter, &Request::Ping { delay_ms: 0 }).unwrap_err();
        assert!(matches!(err, ServeError::Overloaded { .. }), "{err}");
        assert_eq!(server.stats().requests_shed.load(Ordering::Relaxed), 1);
        server.shutdown();
    }

    #[test]
    fn zero_budget_at_ingress_is_deadline_exceeded() {
        use crate::protocol::with_deadline_ms;
        let mut server = started(1, 4);
        let mut c = TcpStream::connect(server.addr()).unwrap();
        // A frame whose budget is already spent when it arrives must
        // be refused at ingress with the typed status — never queued.
        let stamped = with_deadline_ms(&Request::Ping { delay_ms: 0 }.to_json_value(), 0);
        write_frame(&mut c, &stamped).unwrap();
        let err = unwrap_response(read_frame(&mut c).unwrap().unwrap()).unwrap_err();
        assert!(
            matches!(err, ServeError::DeadlineExceeded { remaining_ms: 0 }),
            "{err}"
        );
        assert_eq!(
            server
                .stats()
                .requests_deadline_exceeded
                .load(Ordering::Relaxed),
            1
        );
        // The connection stays in sync and usable.
        assert!(request(&mut c, &Request::Stats).is_ok());
        // A generous budget passes through untouched.
        let stamped = with_deadline_ms(&Request::Ping { delay_ms: 0 }.to_json_value(), 5_000);
        write_frame(&mut c, &stamped).unwrap();
        assert!(unwrap_response(read_frame(&mut c).unwrap().unwrap()).is_ok());
        server.shutdown();
    }

    #[test]
    fn queued_requests_past_their_budget_get_deadline_exceeded() {
        use crate::protocol::with_deadline_ms;
        let cfg = ServerConfig {
            workers: 1,
            queue_depth: 4,
            max_inflight: 8,
            // Queue deadline far looser than the propagated budget, so
            // the typed answer proves which check fired.
            queue_deadline: Some(Duration::from_secs(5)),
            ..ServerConfig::default()
        };
        let mut server = PowerServer::start(cfg, Arc::new(ModelRegistry::default())).unwrap();
        // The only worker is held for 150 ms…
        let mut busy = TcpStream::connect(server.addr()).unwrap();
        write_frame(&mut busy, &Request::Ping { delay_ms: 150 }.to_json_value()).unwrap();
        std::thread::sleep(Duration::from_millis(50));
        // …so this 40 ms budget is spent by the time a worker drains
        // the queue: deadline_exceeded, not overloaded.
        let mut waiter = TcpStream::connect(server.addr()).unwrap();
        let stamped = with_deadline_ms(&Request::Ping { delay_ms: 0 }.to_json_value(), 40);
        write_frame(&mut waiter, &stamped).unwrap();
        let err = unwrap_response(read_frame(&mut waiter).unwrap().unwrap()).unwrap_err();
        assert!(matches!(err, ServeError::DeadlineExceeded { .. }), "{err}");
        assert_eq!(
            server
                .stats()
                .requests_deadline_exceeded
                .load(Ordering::Relaxed),
            1
        );
        assert_eq!(server.stats().requests_shed.load(Ordering::Relaxed), 0);
        server.shutdown();
    }

    #[test]
    fn idle_connections_are_reaped_with_a_deadline_frame() {
        let cfg = ServerConfig {
            workers: 1,
            read_timeout: Some(Duration::from_millis(10)),
            idle_timeout: Some(Duration::from_millis(30)),
            ..ServerConfig::default()
        };
        let mut server = PowerServer::start(cfg, Arc::new(ModelRegistry::default())).unwrap();
        let mut c = TcpStream::connect(server.addr()).unwrap();
        // Say nothing. The reaper must answer with a deadline error
        // frame and close the connection.
        let frame = read_frame(&mut c).unwrap().unwrap();
        let err = unwrap_response(frame).unwrap_err();
        assert!(err.to_string().contains("deadline"), "{err}");
        assert!(matches!(read_frame(&mut c), Ok(None) | Err(_)));
        assert_eq!(server.stats().connections_reaped.load(Ordering::Relaxed), 1);
        // The server is free again for the next client.
        let mut c2 = TcpStream::connect(server.addr()).unwrap();
        assert!(request(&mut c2, &Request::Stats).is_ok());
        server.shutdown();
    }

    #[test]
    fn partial_frames_from_slow_peers_are_reaped() {
        let cfg = ServerConfig {
            workers: 1,
            read_timeout: Some(Duration::from_millis(40)),
            idle_timeout: Some(Duration::from_secs(10)),
            ..ServerConfig::default()
        };
        let mut server = PowerServer::start(cfg, Arc::new(ModelRegistry::default())).unwrap();
        let mut c = TcpStream::connect(server.addr()).unwrap();
        // Two bytes of a frame header, then silence: a slow loris.
        c.write_all(&[0, 0]).unwrap();
        let frame = read_frame(&mut c).unwrap().unwrap();
        let err = unwrap_response(frame).unwrap_err();
        assert!(err.to_string().contains("desynchronized"), "{err}");
        assert!(matches!(read_frame(&mut c), Ok(None) | Err(_)));
        assert_eq!(server.stats().connections_reaped.load(Ordering::Relaxed), 1);
        server.shutdown();
    }

    #[test]
    fn configurable_frame_cap_is_enforced_on_the_read_path() {
        let cfg = ServerConfig {
            workers: 1,
            max_frame_bytes: 64,
            ..ServerConfig::default()
        };
        let mut server = PowerServer::start(cfg, Arc::new(ModelRegistry::default())).unwrap();
        let mut c = TcpStream::connect(server.addr()).unwrap();
        // A stats request fits in 64 bytes…
        assert!(request(&mut c, &Request::Stats).is_ok());
        // …but a frame above the cap is rejected and the connection
        // dropped (the stream cannot be resynchronized).
        let big = vec![b' '; 65];
        c.write_all(&(big.len() as u32).to_be_bytes()).unwrap();
        c.write_all(&big).unwrap();
        let frame = read_frame(&mut c).unwrap().unwrap();
        assert!(unwrap_response(frame)
            .unwrap_err()
            .to_string()
            .contains("cap"));
        server.shutdown();
    }

    #[test]
    fn width_mismatch_falls_back_to_previous_model() {
        use crate::test_fixtures::{narrow_model, tiny_dataset};
        let mut server = started(1, 4);
        let mut c = TcpStream::connect(server.addr()).unwrap();

        // v1: the regular tiny model. v2: a model with fewer events.
        let m1 = tiny_model();
        let narrow = narrow_model();
        request(
            &mut c,
            &Request::LoadModel {
                name: "hsw".into(),
                model: m1.to_json_value(),
                activate: true,
            },
        )
        .unwrap();
        request(
            &mut c,
            &Request::LoadModel {
                name: "hsw".into(),
                model: narrow.to_json_value(),
                activate: true,
            },
        )
        .unwrap();

        // A client still streaming v1-width samples gets served by the
        // previous model, flagged as degraded with a stale_model token.
        let data = tiny_dataset(1);
        let row = &data.rows()[0];
        let avail = 24.0 * row.freq_mhz as f64 * 1e6 * row.duration_s;
        let sample = crate::engine::CounterSample {
            time_ns: 1,
            duration_s: row.duration_s,
            freq_mhz: row.freq_mhz,
            voltage: row.voltage,
            deltas: m1.events.iter().map(|e| row.rate(*e) * avail).collect(),
            missing: vec![],
        };
        let r = request(&mut c, &Request::Ingest(sample)).unwrap();
        let est = crate::engine::Estimate::from_json_value(&r).unwrap();
        assert!(est.degraded);
        assert!(est
            .degraded_reasons
            .iter()
            .any(|t| t.starts_with("stale_model:hsw@v1")));
        assert_eq!(est.version, 1);
        assert_eq!(
            server.stats().stale_model_fallbacks.load(Ordering::Relaxed),
            1
        );
        server.shutdown();
    }

    #[test]
    fn batch_pins_model_version_across_activate_and_rollback() {
        use crate::test_fixtures::{tiny_dataset, tiny_model};
        let registry = Arc::new(ModelRegistry::default());
        registry
            .load_and_activate(ModelArtifact::new("hsw", tiny_model()))
            .unwrap();
        let config = ServerConfig::default();
        let service = Service {
            registry: Arc::clone(&registry),
            engine: EstimatorEngine::new(config.engine),
            stats: Arc::new(ServerStats::default()),
            health: Arc::new(HealthState::default()),
            trainer: Arc::new(Trainer::new(config.trainer.clone())),
            config,
        };

        // Resolve the serving pair at assembly time, then churn the
        // registry the way a concurrent activate + rollback would
        // while the batch is in flight, leaving v2 active.
        let (active, previous) = registry.serving_pair();
        registry
            .load_and_activate(ModelArtifact::new("hsw", tiny_model()))
            .unwrap();
        registry.rollback().unwrap();
        registry.activate("hsw", 2).unwrap();

        let m = tiny_model();
        let data = tiny_dataset(4);
        let batch: Vec<(u64, u64, CounterSample)> = data
            .rows()
            .iter()
            .take(4)
            .enumerate()
            .map(|(i, row)| {
                let avail = 24.0 * row.freq_mhz as f64 * 1e6 * row.duration_s;
                let sample = CounterSample {
                    time_ns: (i as u64 + 1) * 1_000_000,
                    duration_s: row.duration_s,
                    freq_mhz: row.freq_mhz,
                    voltage: row.voltage,
                    deltas: m.events.iter().map(|e| row.rate(*e) * avail).collect(),
                    missing: vec![],
                };
                (i as u64 + 1, i as u64 + 1, sample)
            })
            .collect();

        // The in-flight batch is served entirely by the pinned v1
        // pair, untouched by the churn…
        let responses = service.run_pinned(batch.clone(), active, previous);
        assert_eq!(responses.len(), 4);
        for (_, resp) in responses {
            let est =
                crate::engine::Estimate::from_json_value(&unwrap_response(resp).unwrap()).unwrap();
            assert_eq!(est.version, 1, "pinned batch must not see the churn");
            assert!(!est.degraded, "pinned pair is coherent — no fallback");
        }
        // …while the next batch resolves freshly and sees v2.
        let (_, resp) = service
            .handle_ingest_batch(vec![batch.into_iter().next().unwrap()])
            .pop()
            .unwrap();
        let est =
            crate::engine::Estimate::from_json_value(&unwrap_response(resp).unwrap()).unwrap();
        assert_eq!(est.version, 2);
    }

    #[test]
    fn drain_finishes_inflight_work_and_notifies_clients() {
        let cfg = ServerConfig {
            workers: 1,
            ..ServerConfig::default()
        };
        let mut server = PowerServer::start(cfg, Arc::new(ModelRegistry::default())).unwrap();
        let mut c = TcpStream::connect(server.addr()).unwrap();
        // Put a request in flight, then drain while it runs.
        write_frame(&mut c, &Request::Ping { delay_ms: 100 }.to_json_value()).unwrap();
        std::thread::sleep(Duration::from_millis(30));
        server.shutdown(); // blocks through the drain
                           // The in-flight response arrives first…
        let pong = unwrap_response(read_frame(&mut c).unwrap().unwrap()).unwrap();
        assert!(pong.field("pong").unwrap().as_bool().unwrap());
        // …then the draining notice, then EOF.
        let notice = unwrap_response(read_frame(&mut c).unwrap().unwrap()).unwrap_err();
        assert!(matches!(notice, ServeError::Draining), "{notice}");
        assert!(matches!(read_frame(&mut c), Ok(None) | Err(_)));
        assert!(
            server.stats().drain_duration_ms.load(Ordering::Relaxed) >= 20,
            "drain should have waited for the in-flight ping"
        );
    }

    #[cfg(unix)]
    #[test]
    fn uds_listener_serves_the_same_protocol() {
        let path = std::env::temp_dir().join(format!("pmc-serve-test-{}.sock", std::process::id()));
        let path_str = path.to_string_lossy().into_owned();
        let cfg = ServerConfig {
            uds_path: Some(path_str.clone()),
            ..ServerConfig::default()
        };
        let mut server = PowerServer::start(cfg, Arc::new(ModelRegistry::default())).unwrap();
        assert_eq!(server.uds_path(), Some(path_str.as_str()));
        let mut c = std::os::unix::net::UnixStream::connect(&path).unwrap();
        let stats = request(&mut c, &Request::Stats).unwrap();
        assert!(stats.field("server").is_ok());
        server.shutdown();
        // The socket file is cleaned up on shutdown.
        assert!(!path.exists());
    }

    #[test]
    fn shutdown_is_graceful_and_idempotent() {
        let mut server = started(2, 4);
        let mut c = TcpStream::connect(server.addr()).unwrap();
        request(&mut c, &Request::Stats).unwrap();
        let addr = server.addr();
        server.shutdown();
        server.shutdown(); // idempotent
                           // Listener is gone: new connections fail or see immediate EOF.
        match TcpStream::connect(addr) {
            Err(_) => {}
            Ok(mut s) => assert!(matches!(read_frame(&mut s), Ok(None) | Err(_))),
        }
    }
}
