//! A blocking client for the pmc-serve wire protocol.
//!
//! With a [`RetryPolicy`] attached, transport-level failures — a
//! dropped socket, a short read that desynchronizes the
//! length-prefixed stream, a reaped idle connection — are retried
//! with jittered exponential backoff over a **fresh connection**
//! (reconnecting is the only reliable way to resynchronize a
//! length-prefixed stream after a short read). Server-reported errors
//! ([`ServeError::Server`]) are never retried: the request arrived
//! and was refused. Note a reconnect resets the server-side estimator
//! window for this client; under faults an occasional window restart
//! is the intended degradation, not data loss.

use crate::engine::{CounterSample, Estimate};
use crate::error::ServeError;
use crate::protocol::{read_frame, unwrap_response, write_frame, Request};
use pmc_json::Json;
use pmc_model::model::PowerModel;
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::time::Duration;

/// Jittered exponential backoff for transport-level retries.
#[derive(Debug, Clone)]
pub struct RetryPolicy {
    /// Retries after the first failed attempt (0 = fail fast).
    pub max_retries: u32,
    /// Backoff before the first retry; doubles each retry.
    pub base_delay: Duration,
    /// Ceiling on any single backoff.
    pub max_delay: Duration,
    /// Seed of the deterministic jitter stream.
    pub seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_retries: 3,
            base_delay: Duration::from_millis(10),
            max_delay: Duration::from_millis(500),
            seed: 0x706d_6373_6572_7665, // arbitrary fixed default
        }
    }
}

impl RetryPolicy {
    /// The jittered delay before retry number `attempt` (1-based):
    /// uniformly in `[d/2, d]` where `d = min(base·2^(attempt-1), max)`.
    fn delay(&self, attempt: u32, rng: &mut u64) -> Duration {
        let exp = self
            .base_delay
            .saturating_mul(1u32 << (attempt - 1).min(16));
        let capped = exp.min(self.max_delay);
        let jitter = splitmix_next(rng) as f64 / u64::MAX as f64; // [0, 1)
        capped.mul_f64(0.5 + 0.5 * jitter)
    }
}

/// One step of the splitmix64 sequence — the same generator the
/// simulator uses, inlined so the client crate stays dependency-light.
fn splitmix_next(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// One connection to a power server. Each client owns its own
/// estimator window on the server side; drop the client to release it.
#[derive(Debug)]
pub struct PowerClient {
    stream: TcpStream,
    addr: SocketAddr,
    retry: Option<RetryPolicy>,
    rng: u64,
}

impl PowerClient {
    /// Connects to a running server.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Self, ServeError> {
        let stream = TcpStream::connect(addr)?;
        let addr = stream.peer_addr()?;
        Ok(PowerClient {
            stream,
            addr,
            retry: None,
            rng: 0,
        })
    }

    /// Enables transport-level retries with the given policy.
    pub fn with_retry(mut self, policy: RetryPolicy) -> Self {
        self.rng = policy.seed;
        self.retry = Some(policy);
        self
    }

    /// True for failures worth retrying on a fresh connection: the
    /// transport broke before a response arrived. Server-reported
    /// errors and malformed payloads are not transport failures —
    /// except a reaped-idle-connection notice (the server's parting
    /// deadline frame), which just means "reconnect".
    fn is_transient(e: &ServeError) -> bool {
        match e {
            ServeError::Io(_) | ServeError::Protocol { .. } | ServeError::Deadline { .. } => true,
            ServeError::Server { message } => message.starts_with("deadline expired"),
            _ => false,
        }
    }

    /// Sends a request and returns the unwrapped `result` payload.
    /// With a [`RetryPolicy`], transient transport failures reconnect
    /// and retry with jittered backoff.
    pub fn call(&mut self, req: &Request) -> Result<Json, ServeError> {
        let payload = req.to_json_value();
        let mut attempt = 0u32;
        loop {
            let result = self.call_once(&payload);
            match result {
                Ok(r) => return Ok(r),
                Err(e) => {
                    let retries = match &self.retry {
                        Some(p) if Self::is_transient(&e) => p.max_retries,
                        _ => return Err(e),
                    };
                    attempt += 1;
                    if attempt > retries {
                        return Err(e);
                    }
                    let policy = self.retry.clone().expect("checked above");
                    std::thread::sleep(policy.delay(attempt, &mut self.rng));
                    // Resync by reconnecting: after a short read the
                    // length-prefixed stream cannot be re-aligned.
                    if let Ok(s) = TcpStream::connect(self.addr) {
                        self.stream = s;
                    }
                }
            }
        }
    }

    fn call_once(&mut self, payload: &Json) -> Result<Json, ServeError> {
        write_frame(&mut self.stream, payload)?;
        let frame = read_frame(&mut self.stream)?.ok_or(ServeError::Protocol {
            reason: "server closed the connection".into(),
        })?;
        unwrap_response(frame)
    }

    /// Loads a model under `name`; optionally activates it. Returns
    /// the assigned version.
    pub fn load_model(
        &mut self,
        name: &str,
        model: &PowerModel,
        activate: bool,
    ) -> Result<u32, ServeError> {
        let r = self.call(&Request::LoadModel {
            name: name.to_string(),
            model: model.to_json_value(),
            activate,
        })?;
        Ok(r.u32_field("version")?)
    }

    /// Activates a loaded model.
    pub fn activate(&mut self, name: &str, version: u32) -> Result<(), ServeError> {
        self.call(&Request::Activate {
            name: name.to_string(),
            version,
        })?;
        Ok(())
    }

    /// Rolls back to the previously active model; returns its id.
    pub fn rollback(&mut self) -> Result<(String, u32), ServeError> {
        let r = self.call(&Request::Rollback)?;
        Ok((r.str_field("name")?.to_string(), r.u32_field("version")?))
    }

    /// Streams one counter sample; returns the updated estimate.
    pub fn ingest(&mut self, sample: &CounterSample) -> Result<Estimate, ServeError> {
        let r = self.call(&Request::Ingest(sample.clone()))?;
        Estimate::from_json_value(&r)
    }

    /// Fetches the latest estimate (staleness judged against `now_ns`);
    /// `None` until a sample has been ingested on this connection.
    pub fn estimate(&mut self, now_ns: u64) -> Result<Option<Estimate>, ServeError> {
        let r = self.call(&Request::Estimate { now_ns })?;
        match r {
            Json::Null => Ok(None),
            v => Ok(Some(Estimate::from_json_value(&v)?)),
        }
    }

    /// Server statistics snapshot.
    pub fn stats(&mut self) -> Result<Json, ServeError> {
        self.call(&Request::Stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::ModelRegistry;
    use crate::server::{PowerServer, ServerConfig};
    use crate::test_fixtures::{tiny_dataset, tiny_model};
    use std::sync::Arc;

    #[test]
    fn full_client_session() {
        let mut server =
            PowerServer::start(ServerConfig::default(), Arc::new(ModelRegistry::default()))
                .unwrap();
        let mut c = PowerClient::connect(server.addr()).unwrap();

        let model = tiny_model();
        assert_eq!(c.load_model("hsw", &model, true).unwrap(), 1);
        assert_eq!(c.load_model("hsw", &model, false).unwrap(), 2);
        assert!(c.estimate(0).unwrap().is_none());

        // Stream a sample built from a training row.
        let data = tiny_dataset(4);
        let row = &data.rows()[0];
        let avail = 24.0 * row.freq_mhz as f64 * 1e6 * row.duration_s;
        let sample = CounterSample {
            time_ns: 10,
            duration_s: row.duration_s,
            freq_mhz: row.freq_mhz,
            voltage: row.voltage,
            deltas: model.events.iter().map(|e| row.rate(*e) * avail).collect(),
            missing: vec![],
        };
        let est = c.ingest(&sample).unwrap();
        assert!((est.power_w - model.predict_row(row)).abs() < 1e-9);
        assert_eq!(est.version, 1);

        // v2 activate + rollback restores v1.
        c.activate("hsw", 2).unwrap();
        assert_eq!(c.rollback().unwrap(), ("hsw".to_string(), 1));

        let stats = c.stats().unwrap();
        assert_eq!(
            stats
                .field("server")
                .unwrap()
                .u64_field("samples_ingested")
                .unwrap(),
            1
        );
        server.shutdown();
    }

    #[test]
    fn retry_reconnects_after_idle_reap() {
        let cfg = ServerConfig {
            read_timeout: Some(std::time::Duration::from_millis(5)),
            idle_timeout: Some(std::time::Duration::from_millis(10)),
            ..ServerConfig::default()
        };
        let mut server = PowerServer::start(cfg, Arc::new(ModelRegistry::default())).unwrap();
        let mut c = PowerClient::connect(server.addr())
            .unwrap()
            .with_retry(RetryPolicy::default());
        c.stats().unwrap();
        // Outlive the idle budget: the server reaps this connection.
        std::thread::sleep(std::time::Duration::from_millis(60));
        // The retry layer reconnects transparently.
        c.stats().unwrap();
        assert!(
            server
                .stats()
                .connections_reaped
                .load(std::sync::atomic::Ordering::Relaxed)
                >= 1
        );
        server.shutdown();
    }

    #[test]
    fn no_retry_means_reap_is_surfaced() {
        let cfg = ServerConfig {
            read_timeout: Some(std::time::Duration::from_millis(5)),
            idle_timeout: Some(std::time::Duration::from_millis(10)),
            ..ServerConfig::default()
        };
        let mut server = PowerServer::start(cfg, Arc::new(ModelRegistry::default())).unwrap();
        let mut c = PowerClient::connect(server.addr()).unwrap();
        std::thread::sleep(std::time::Duration::from_millis(60));
        assert!(c.stats().is_err());
        server.shutdown();
    }

    #[test]
    fn backoff_delays_are_jittered_and_capped() {
        let p = RetryPolicy {
            max_retries: 8,
            base_delay: std::time::Duration::from_millis(10),
            max_delay: std::time::Duration::from_millis(100),
            seed: 42,
        };
        let mut rng = p.seed;
        let mut prev = None;
        for attempt in 1..=8 {
            let d = p.delay(attempt, &mut rng);
            let exp = std::time::Duration::from_millis(10 * (1 << (attempt - 1)))
                .min(std::time::Duration::from_millis(100));
            assert!(d >= exp / 2 && d <= exp, "attempt {attempt}: {d:?}");
            if prev == Some(d) {
                panic!("jitter produced identical consecutive delays");
            }
            prev = Some(d);
        }
        // Deterministic for a fixed seed.
        let mut r1 = 7u64;
        let mut r2 = 7u64;
        assert_eq!(p.delay(3, &mut r1), p.delay(3, &mut r2));
    }
}
