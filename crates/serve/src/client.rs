//! A blocking client for the pmc-serve wire protocol.

use crate::engine::{CounterSample, Estimate};
use crate::error::ServeError;
use crate::protocol::{read_frame, unwrap_response, write_frame, Request};
use pmc_json::Json;
use pmc_model::model::PowerModel;
use std::net::{TcpStream, ToSocketAddrs};

/// One connection to a power server. Each client owns its own
/// estimator window on the server side; drop the client to release it.
#[derive(Debug)]
pub struct PowerClient {
    stream: TcpStream,
}

impl PowerClient {
    /// Connects to a running server.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Self, ServeError> {
        Ok(PowerClient {
            stream: TcpStream::connect(addr)?,
        })
    }

    /// Sends a request and returns the unwrapped `result` payload.
    pub fn call(&mut self, req: &Request) -> Result<Json, ServeError> {
        write_frame(&mut self.stream, &req.to_json_value())?;
        let frame = read_frame(&mut self.stream)?.ok_or(ServeError::Protocol {
            reason: "server closed the connection".into(),
        })?;
        unwrap_response(frame)
    }

    /// Loads a model under `name`; optionally activates it. Returns
    /// the assigned version.
    pub fn load_model(
        &mut self,
        name: &str,
        model: &PowerModel,
        activate: bool,
    ) -> Result<u32, ServeError> {
        let r = self.call(&Request::LoadModel {
            name: name.to_string(),
            model: model.to_json_value(),
            activate,
        })?;
        Ok(r.u32_field("version")?)
    }

    /// Activates a loaded model.
    pub fn activate(&mut self, name: &str, version: u32) -> Result<(), ServeError> {
        self.call(&Request::Activate {
            name: name.to_string(),
            version,
        })?;
        Ok(())
    }

    /// Rolls back to the previously active model; returns its id.
    pub fn rollback(&mut self) -> Result<(String, u32), ServeError> {
        let r = self.call(&Request::Rollback)?;
        Ok((r.str_field("name")?.to_string(), r.u32_field("version")?))
    }

    /// Streams one counter sample; returns the updated estimate.
    pub fn ingest(&mut self, sample: &CounterSample) -> Result<Estimate, ServeError> {
        let r = self.call(&Request::Ingest(sample.clone()))?;
        Estimate::from_json_value(&r)
    }

    /// Fetches the latest estimate (staleness judged against `now_ns`);
    /// `None` until a sample has been ingested on this connection.
    pub fn estimate(&mut self, now_ns: u64) -> Result<Option<Estimate>, ServeError> {
        let r = self.call(&Request::Estimate { now_ns })?;
        match r {
            Json::Null => Ok(None),
            v => Ok(Some(Estimate::from_json_value(&v)?)),
        }
    }

    /// Server statistics snapshot.
    pub fn stats(&mut self) -> Result<Json, ServeError> {
        self.call(&Request::Stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::ModelRegistry;
    use crate::server::{PowerServer, ServerConfig};
    use crate::test_fixtures::{tiny_dataset, tiny_model};
    use std::sync::Arc;

    #[test]
    fn full_client_session() {
        let mut server =
            PowerServer::start(ServerConfig::default(), Arc::new(ModelRegistry::default()))
                .unwrap();
        let mut c = PowerClient::connect(server.addr()).unwrap();

        let model = tiny_model();
        assert_eq!(c.load_model("hsw", &model, true).unwrap(), 1);
        assert_eq!(c.load_model("hsw", &model, false).unwrap(), 2);
        assert!(c.estimate(0).unwrap().is_none());

        // Stream a sample built from a training row.
        let data = tiny_dataset(4);
        let row = &data.rows()[0];
        let avail = 24.0 * row.freq_mhz as f64 * 1e6 * row.duration_s;
        let sample = CounterSample {
            time_ns: 10,
            duration_s: row.duration_s,
            freq_mhz: row.freq_mhz,
            voltage: row.voltage,
            deltas: model.events.iter().map(|e| row.rate(*e) * avail).collect(),
        };
        let est = c.ingest(&sample).unwrap();
        assert!((est.power_w - model.predict_row(row)).abs() < 1e-9);
        assert_eq!(est.version, 1);

        // v2 activate + rollback restores v1.
        c.activate("hsw", 2).unwrap();
        assert_eq!(c.rollback().unwrap(), ("hsw".to_string(), 1));

        let stats = c.stats().unwrap();
        assert_eq!(
            stats
                .field("server")
                .unwrap()
                .u64_field("samples_ingested")
                .unwrap(),
            1
        );
        server.shutdown();
    }
}
