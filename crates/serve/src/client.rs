//! A blocking client for the pmc-serve wire protocol.
//!
//! With a [`RetryPolicy`] attached, transport-level failures — a
//! dropped socket, a short read that desynchronizes the
//! length-prefixed stream, a reaped idle connection — are retried
//! with jittered exponential backoff over a **fresh connection**
//! (reconnecting is the only reliable way to resynchronize a
//! length-prefixed stream after a short read). Typed
//! [`ServeError::Overloaded`] responses are retried on the **same**
//! connection (the stream is still in sync) after at least the
//! server's `retry_after_ms` hint. Server-reported errors
//! ([`ServeError::Server`]) and [`ServeError::Draining`] are never
//! retried: the request arrived and was refused. Note a reconnect
//! resets the server-side estimator window for this client; under
//! faults an occasional window restart is the intended degradation,
//! not data loss.
//!
//! With a [`BreakerPolicy`] attached, consecutive overload/timeout
//! failures trip a **circuit breaker**: further calls fail fast with
//! [`ServeError::CircuitOpen`] (no network touch) until a jittered
//! cooldown elapses, then a single half-open probe decides whether to
//! close the breaker or re-open it with a doubled cooldown. The
//! breaker composes with the retry layer: retries that keep hitting
//! overload count as consecutive failures, so a persistently
//! overloaded server stops being hammered.
//!
//! Server-side batch coalescing is invisible at this layer: the wire
//! protocol is unchanged, every request still gets its own response,
//! and responses on one connection arrive in request order whether or
//! not the server batched the work.

use crate::engine::{CounterSample, Estimate};
use crate::error::ServeError;
use crate::protocol::{
    read_frame, unwrap_response, with_deadline_ms, write_frame_as, Encoding, Request,
};
use pmc_json::Json;
use pmc_model::model::PowerModel;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::time::{Duration, Instant};

/// Jittered exponential backoff for transport-level retries.
#[derive(Debug, Clone)]
pub struct RetryPolicy {
    /// Retries after the first failed attempt (0 = fail fast).
    pub max_retries: u32,
    /// Backoff before the first retry; doubles each retry.
    pub base_delay: Duration,
    /// Ceiling on any single backoff.
    pub max_delay: Duration,
    /// Seed of the deterministic jitter stream.
    pub seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_retries: 3,
            base_delay: Duration::from_millis(10),
            max_delay: Duration::from_millis(500),
            seed: 0x706d_6373_6572_7665, // arbitrary fixed default
        }
    }
}

impl RetryPolicy {
    /// The jittered delay before retry number `attempt` (1-based):
    /// uniformly in `[d/2, d]` where `d = min(base·2^(attempt-1), max)`.
    fn delay(&self, attempt: u32, rng: &mut u64) -> Duration {
        let exp = self
            .base_delay
            .saturating_mul(1u32 << (attempt - 1).min(16));
        let capped = exp.min(self.max_delay);
        let jitter = splitmix_next(rng) as f64 / u64::MAX as f64; // [0, 1)
        capped.mul_f64(0.5 + 0.5 * jitter)
    }
}

/// Circuit-breaker tuning: when to trip, how long to stay open.
#[derive(Debug, Clone)]
pub struct BreakerPolicy {
    /// Consecutive overload/timeout failures that trip the breaker.
    pub failure_threshold: u32,
    /// Open duration after the first trip; doubles on each re-trip.
    pub cooldown: Duration,
    /// Ceiling on the doubling cooldown.
    pub max_cooldown: Duration,
    /// Seed of the deterministic cooldown-jitter stream.
    pub seed: u64,
}

impl Default for BreakerPolicy {
    fn default() -> Self {
        BreakerPolicy {
            failure_threshold: 3,
            cooldown: Duration::from_millis(100),
            max_cooldown: Duration::from_secs(5),
            seed: 0x6272_6561_6b65_7231, // arbitrary fixed default
        }
    }
}

/// Closed → (threshold consecutive failures) → Open → (cooldown) →
/// HalfOpen probe → Closed on success, Open with doubled cooldown on
/// failure.
#[derive(Debug)]
struct Breaker {
    policy: BreakerPolicy,
    rng: u64,
    consecutive: u32,
    /// `Some(t)` while open: fail fast until `t`.
    open_until: Option<Instant>,
    /// Cooldown the *next* trip will apply (doubles while tripping).
    next_cooldown: Duration,
    /// The next attempt is the single half-open probe.
    half_open: bool,
}

impl Breaker {
    fn new(policy: BreakerPolicy) -> Self {
        Breaker {
            rng: policy.seed,
            next_cooldown: policy.cooldown,
            policy,
            consecutive: 0,
            open_until: None,
            half_open: false,
        }
    }

    /// Gate before an attempt: `Err(retry_in_ms)` while the breaker
    /// is open; flips to half-open when the cooldown has elapsed.
    fn admit(&mut self) -> Result<(), u64> {
        if let Some(until) = self.open_until {
            let now = Instant::now();
            if now < until {
                return Err((until - now).as_millis().max(1) as u64);
            }
            self.open_until = None;
            self.half_open = true;
        }
        Ok(())
    }

    fn on_success(&mut self) {
        self.consecutive = 0;
        self.half_open = false;
        self.next_cooldown = self.policy.cooldown;
    }

    /// Records a failure; only overload/timeout failures count toward
    /// tripping. A failed half-open probe re-opens immediately.
    /// `floor_ms` is the server's `retry_after_ms` hint, if the
    /// failure carried one: a router refusing a token with no usable
    /// owner (mid-failover) answers with exactly that hint, and a
    /// jittered cooldown shorter than it would send the half-open
    /// probe back before the server said there was any point.
    fn on_failure(&mut self, counts: bool, floor_ms: Option<u64>) {
        if !counts {
            return;
        }
        self.consecutive += 1;
        if self.half_open || self.consecutive >= self.policy.failure_threshold {
            // Jittered open window in [0.5, 1.5)·cooldown so a fleet
            // of breakers doesn't probe in lockstep — but never
            // shorter than the server's own retry hint.
            let jitter = splitmix_next(&mut self.rng) as f64 / u64::MAX as f64;
            let mut window = self.next_cooldown.mul_f64(0.5 + jitter);
            if let Some(ms) = floor_ms {
                window = window.max(Duration::from_millis(ms));
            }
            self.open_until = Some(Instant::now() + window);
            self.next_cooldown = (self.next_cooldown * 2).min(self.policy.max_cooldown);
            self.half_open = false;
        }
    }
}

/// One step of the splitmix64 sequence — the same generator the
/// simulator uses, inlined so the client crate stays dependency-light.
pub(crate) fn splitmix_next(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// What this client experienced across its calls — the client-side
/// view of shedding, retries and breaker behavior. Read it with
/// [`PowerClient::call_stats`].
#[derive(Debug, Default, Clone, PartialEq)]
pub struct ClientStats {
    /// Calls that ended with a typed `deadline_exceeded` — answered by
    /// the server/router, or failed locally because the budget was
    /// already spent before an attempt could even be made.
    pub deadline_exceeded: u64,
    /// Typed overload answers received (each counted, retried or not).
    pub overloaded: u64,
    /// Transport-level retries that reconnected a fresh stream.
    pub reconnect_retries: u64,
    /// Calls failed fast by the open circuit breaker (no network).
    pub breaker_fast_fails: u64,
}

/// Hedged-read outcomes scraped from a `pmc-router` metrics scrape —
/// typed access to the router-side counters a client cannot observe on
/// its own connection (hedges are resolved inside the router; the
/// winning answer is relayed verbatim). All zeros when the endpoint is
/// a bare `pmc-serve` (no router, no hedging).
#[derive(Debug, Default, Clone, PartialEq)]
pub struct HedgeStats {
    /// Hedges fired to a synced standby.
    pub fired: u64,
    /// Hedges whose standby answer won the race.
    pub won: u64,
    /// Hedges where both answers landed and disagreed bitwise.
    pub mismatches: u64,
    /// Hedges suppressed because the per-connection retry budget was
    /// exhausted.
    pub retry_budget_exhausted: u64,
}

/// Where the client (re)connects to.
#[derive(Debug, Clone)]
enum Endpoint {
    Tcp(SocketAddr),
    #[cfg(unix)]
    Unix(std::path::PathBuf),
}

/// The client's transport stream, TCP or Unix-domain.
#[derive(Debug)]
enum ClientStream {
    Tcp(TcpStream),
    #[cfg(unix)]
    Unix(std::os::unix::net::UnixStream),
}

impl Read for ClientStream {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        match self {
            ClientStream::Tcp(s) => s.read(buf),
            #[cfg(unix)]
            ClientStream::Unix(s) => s.read(buf),
        }
    }
}

impl Write for ClientStream {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        match self {
            ClientStream::Tcp(s) => s.write(buf),
            #[cfg(unix)]
            ClientStream::Unix(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> std::io::Result<()> {
        match self {
            ClientStream::Tcp(s) => s.flush(),
            #[cfg(unix)]
            ClientStream::Unix(s) => s.flush(),
        }
    }
}

/// One connection to a power server. Each client owns its own
/// estimator window on the server side; drop the client to release it.
#[derive(Debug)]
pub struct PowerClient {
    stream: ClientStream,
    endpoint: Endpoint,
    retry: Option<RetryPolicy>,
    breaker: Option<Breaker>,
    rng: u64,
    /// The durable identity bound with `resume`, replayed on every
    /// reconnect so a fresh connection (including one re-routed by
    /// `pmc-router` after a backend eviction) lands back on the same
    /// engine window instead of a cold ephemeral one.
    resume_token: Option<String>,
    /// Per-call patience: every call stamps its frames with the budget
    /// remaining (`deadline_ms`), and retries re-stamp the shrunken
    /// remainder — a retried request can never outlive the original
    /// patience, no matter how many hops or backoffs it crosses.
    deadline_budget: Option<Duration>,
    /// The payload encoding negotiated with [`Self::negotiate_encoding`]
    /// (JSON until then), replayed on every reconnect before the
    /// resume token so a re-route keeps the agreed wire format.
    encoding: Encoding,
    /// What this client has experienced (see [`ClientStats`]).
    stats_local: ClientStats,
}

/// How a failed call should be retried, if at all.
enum RetryMode {
    /// Transport broke: resync on a fresh connection.
    Reconnect,
    /// Typed overload: the stream is in sync; retry in place after at
    /// least the server's hint (milliseconds).
    SameConn(u64),
    /// Not retryable.
    No,
}

impl PowerClient {
    /// Connects to a running server over TCP.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Self, ServeError> {
        let stream = TcpStream::connect(addr)?;
        let addr = stream.peer_addr()?;
        Ok(PowerClient {
            stream: ClientStream::Tcp(stream),
            endpoint: Endpoint::Tcp(addr),
            retry: None,
            breaker: None,
            rng: 0,
            resume_token: None,
            deadline_budget: None,
            encoding: Encoding::Json,
            stats_local: ClientStats::default(),
        })
    }

    /// Connects to a running server over a Unix domain socket.
    #[cfg(unix)]
    pub fn connect_uds(path: impl AsRef<std::path::Path>) -> Result<Self, ServeError> {
        let path = path.as_ref().to_path_buf();
        let stream = std::os::unix::net::UnixStream::connect(&path)?;
        Ok(PowerClient {
            stream: ClientStream::Unix(stream),
            endpoint: Endpoint::Unix(path),
            retry: None,
            breaker: None,
            rng: 0,
            resume_token: None,
            deadline_budget: None,
            encoding: Encoding::Json,
            stats_local: ClientStats::default(),
        })
    }

    /// Enables transport-level retries with the given policy.
    pub fn with_retry(mut self, policy: RetryPolicy) -> Self {
        self.rng = policy.seed;
        self.retry = Some(policy);
        self
    }

    /// Enables the circuit breaker with the given policy.
    pub fn with_breaker(mut self, policy: BreakerPolicy) -> Self {
        self.breaker = Some(Breaker::new(policy));
        self
    }

    /// Gives every call a propagated deadline budget: frames carry the
    /// remaining patience as `deadline_ms`, downstream hops shed work
    /// the budget can no longer cover, and retries re-stamp what is
    /// left rather than restarting the clock.
    pub fn with_deadline(mut self, budget: Duration) -> Self {
        self.deadline_budget = Some(budget);
        self
    }

    /// Negotiates the connection's frame payload encoding via the
    /// `hello` op. Must run before any data frame (the server refuses
    /// a late hello with a typed error). Returns the encoding the
    /// server agreed to — a server that does not speak the requested
    /// name falls back to JSON with a typed notice, so the client
    /// simply keeps speaking what was agreed. The negotiation is
    /// sticky: every reconnect replays it before the resume token.
    pub fn negotiate_encoding(&mut self, encoding: Encoding) -> Result<Encoding, ServeError> {
        let payload = Request::Hello {
            encoding: encoding.as_str().to_string(),
        }
        .to_json_value();
        let r = self.call_once(&payload)?;
        let agreed = Encoding::from_name(r.str_field("encoding")?).unwrap_or(Encoding::Json);
        self.encoding = agreed;
        Ok(agreed)
    }

    /// The payload encoding this client currently speaks.
    pub fn encoding(&self) -> Encoding {
        self.encoding
    }

    /// The client-side counters: deadline exceedances, overloads,
    /// reconnect retries, breaker fast-fails.
    pub fn call_stats(&self) -> &ClientStats {
        &self.stats_local
    }

    /// True for failures worth retrying on a fresh connection: the
    /// transport broke before a response arrived. Server-reported
    /// errors and malformed payloads are not transport failures —
    /// except a reaped-idle-connection notice (the server's parting
    /// deadline frame), which just means "reconnect".
    fn is_transient(e: &ServeError) -> bool {
        match e {
            ServeError::Io(_) | ServeError::Protocol { .. } | ServeError::Deadline { .. } => true,
            ServeError::Server { message } => message.starts_with("deadline expired"),
            _ => false,
        }
    }

    /// True for the failures the circuit breaker counts: typed
    /// overload responses, deadline exceedances, and timeouts (socket
    /// deadlines included). A backend that keeps eating budgets is as
    /// unhealthy as one that keeps refusing admission — both deserve a
    /// tripped breaker, not a retry storm.
    fn counts_for_breaker(e: &ServeError) -> bool {
        match e {
            ServeError::Overloaded { .. }
            | ServeError::Deadline { .. }
            | ServeError::DeadlineExceeded { .. } => true,
            ServeError::Io(io) => matches!(
                io.kind(),
                std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
            ),
            _ => false,
        }
    }

    fn reconnect(&mut self) {
        let fresh = match &self.endpoint {
            Endpoint::Tcp(addr) => TcpStream::connect(addr).map(ClientStream::Tcp),
            #[cfg(unix)]
            Endpoint::Unix(path) => {
                std::os::unix::net::UnixStream::connect(path).map(ClientStream::Unix)
            }
        };
        if let Ok(s) = fresh {
            self.stream = s;
            // Replay the encoding negotiation first: hello must
            // precede every data frame on the fresh connection
            // (including the resume replay below). Best effort, like
            // resume — and harmless if it fails, since both peers
            // sniff payload encodings per frame.
            if self.encoding != Encoding::Json {
                let hello = Request::Hello {
                    encoding: self.encoding.as_str().to_string(),
                }
                .to_json_value();
                let _ = self.call_once(&hello);
            }
            // Re-bind the durable identity before the caller's request
            // is retried: resume is connection-scoped, so without the
            // replay a reconnect (or a router re-route to a different
            // backend) would silently ingest into a cold ephemeral
            // window. Best effort — a failure here surfaces as the
            // retried call's own transport error.
            if let Some(token) = self.resume_token.clone() {
                let payload = Request::Resume { token }.to_json_value();
                let _ = self.call_once(&payload);
            }
        }
    }

    /// Sends a request and returns the unwrapped `result` payload.
    /// With a [`RetryPolicy`], transient transport failures reconnect
    /// and retry with jittered backoff, and typed overloads retry in
    /// place after the server's `retry_after_ms` hint. With a
    /// [`BreakerPolicy`], consecutive overload/timeout failures make
    /// later calls fail fast with [`ServeError::CircuitOpen`].
    pub fn call(&mut self, req: &Request) -> Result<Json, ServeError> {
        let base = req.to_json_value();
        // The budget is per *call*, not per attempt: retries below
        // re-stamp whatever patience is left, never a fresh budget.
        let deadline = self.deadline_budget.map(|b| Instant::now() + b);
        let mut attempt = 0u32;
        loop {
            if let Some(b) = self.breaker.as_mut() {
                if let Err(retry_in_ms) = b.admit() {
                    self.stats_local.breaker_fast_fails += 1;
                    return Err(ServeError::CircuitOpen { retry_in_ms });
                }
            }
            let payload = match deadline {
                Some(d) => {
                    let remaining = d.saturating_duration_since(Instant::now());
                    if remaining.is_zero() {
                        // Spent before this attempt could even start:
                        // fail locally, no network touch, and no
                        // breaker bookkeeping — the endpoint did
                        // nothing wrong.
                        self.stats_local.deadline_exceeded += 1;
                        return Err(ServeError::DeadlineExceeded { remaining_ms: 0 });
                    }
                    with_deadline_ms(&base, remaining.as_millis().max(1) as u64)
                }
                None => base.clone(),
            };
            match self.call_once(&payload) {
                Ok(r) => {
                    if let Some(b) = self.breaker.as_mut() {
                        b.on_success();
                    }
                    return Ok(r);
                }
                Err(e) => {
                    match &e {
                        ServeError::DeadlineExceeded { .. } => {
                            self.stats_local.deadline_exceeded += 1
                        }
                        ServeError::Overloaded { .. } => self.stats_local.overloaded += 1,
                        _ => {}
                    }
                    let counts = Self::counts_for_breaker(&e);
                    if let Some(b) = self.breaker.as_mut() {
                        let hint = match &e {
                            ServeError::Overloaded { retry_after_ms } => Some(*retry_after_ms),
                            _ => None,
                        };
                        b.on_failure(counts, hint);
                    }
                    let mode = match &e {
                        ServeError::Overloaded { retry_after_ms } => {
                            RetryMode::SameConn(*retry_after_ms)
                        }
                        // A spent budget is never retried: the typed
                        // status means the client's patience is gone.
                        ServeError::DeadlineExceeded { .. } => RetryMode::No,
                        _ if Self::is_transient(&e) => RetryMode::Reconnect,
                        _ => RetryMode::No,
                    };
                    let retries = match (&self.retry, &mode) {
                        (Some(p), RetryMode::Reconnect | RetryMode::SameConn(_)) => p.max_retries,
                        _ => return Err(e),
                    };
                    attempt += 1;
                    if attempt > retries {
                        return Err(e);
                    }
                    let policy = self.retry.clone().expect("checked above");
                    let mut delay = policy.delay(attempt, &mut self.rng);
                    if let RetryMode::SameConn(hint_ms) = mode {
                        // Never retry sooner than the server asked.
                        delay = delay.max(Duration::from_millis(hint_ms));
                    }
                    std::thread::sleep(delay);
                    if matches!(mode, RetryMode::Reconnect) {
                        // Resync by reconnecting: after a short read
                        // the length-prefixed stream cannot be
                        // re-aligned.
                        self.stats_local.reconnect_retries += 1;
                        self.reconnect();
                    }
                }
            }
        }
    }

    fn call_once(&mut self, payload: &Json) -> Result<Json, ServeError> {
        write_frame_as(&mut self.stream, payload, self.encoding)?;
        let frame = read_frame(&mut self.stream)?.ok_or(ServeError::Protocol {
            reason: "server closed the connection".into(),
        })?;
        unwrap_response(frame)
    }

    /// Loads a model under `name`; optionally activates it. Returns
    /// the assigned version.
    pub fn load_model(
        &mut self,
        name: &str,
        model: &PowerModel,
        activate: bool,
    ) -> Result<u32, ServeError> {
        let r = self.call(&Request::LoadModel {
            name: name.to_string(),
            model: model.to_json_value(),
            activate,
        })?;
        Ok(r.u32_field("version")?)
    }

    /// Activates a loaded model.
    pub fn activate(&mut self, name: &str, version: u32) -> Result<(), ServeError> {
        self.call(&Request::Activate {
            name: name.to_string(),
            version,
        })?;
        Ok(())
    }

    /// Rolls back to the previously active model; returns its id.
    pub fn rollback(&mut self) -> Result<(String, u32), ServeError> {
        let r = self.call(&Request::Rollback)?;
        Ok((r.str_field("name")?.to_string(), r.u32_field("version")?))
    }

    /// Streams one counter sample; returns the updated estimate.
    pub fn ingest(&mut self, sample: &CounterSample) -> Result<Estimate, ServeError> {
        let r = self.call(&Request::Ingest(sample.clone()))?;
        Estimate::from_json_value(&r)
    }

    /// Fetches the latest estimate (staleness judged against `now_ns`);
    /// `None` until a sample has been ingested on this connection.
    pub fn estimate(&mut self, now_ns: u64) -> Result<Option<Estimate>, ServeError> {
        let r = self.call(&Request::Estimate { now_ns })?;
        match r {
            Json::Null => Ok(None),
            v => Ok(Some(Estimate::from_json_value(&v)?)),
        }
    }

    /// Server statistics snapshot.
    pub fn stats(&mut self) -> Result<Json, ServeError> {
        self.call(&Request::Stats)
    }

    /// Diagnostic round-trip holding a server worker for `delay_ms`
    /// (server-capped). Returns how long the server actually slept.
    pub fn ping(&mut self, delay_ms: u64) -> Result<u64, ServeError> {
        let r = self.call(&Request::Ping { delay_ms })?;
        Ok(r.u64_field("slept_ms")?)
    }

    /// Liveness probe, answered inline by the server's core thread
    /// (it works even when every worker is wedged).
    pub fn healthz(&mut self) -> Result<Json, ServeError> {
        self.call(&Request::Healthz)
    }

    /// Readiness probe: the full report, with `ready` plus every
    /// failing reason spelled out.
    pub fn readyz(&mut self) -> Result<Json, ServeError> {
        self.call(&Request::Readyz)
    }

    /// Prometheus text exposition of the server's operational stats.
    pub fn metrics(&mut self) -> Result<String, ServeError> {
        let r = self.call(&Request::Metrics)?;
        Ok(r.str_field("body")?.to_string())
    }

    /// Typed hedged-read outcomes, scraped from the endpoint's metrics
    /// exposition. Meaningful when the endpoint is a `pmc-router`
    /// (hedges are a router-side mechanism); against a bare server the
    /// series are absent and everything reads zero.
    pub fn hedge_stats(&mut self) -> Result<HedgeStats, ServeError> {
        let body = self.metrics()?;
        let scrape = |name: &str| -> u64 {
            body.lines()
                .find_map(|line| line.strip_prefix(name))
                .and_then(|rest| rest.trim().parse().ok())
                .unwrap_or(0)
        };
        Ok(HedgeStats {
            fired: scrape("pmc_router_hedges_fired "),
            won: scrape("pmc_router_hedges_won "),
            mismatches: scrape("pmc_router_hedge_mismatches "),
            retry_budget_exhausted: scrape("pmc_router_retry_budget_exhausted "),
        })
    }

    /// Binds this connection to a durable client identity. Samples
    /// ingested afterwards accumulate under a token-derived key that
    /// survives disconnects and (with server-side checkpointing)
    /// restarts. Returns whether a warm window already existed.
    pub fn resume(&mut self, token: &str) -> Result<bool, ServeError> {
        let r = self.call(&Request::Resume {
            token: token.to_string(),
        })?;
        // Remember the identity so reconnects (including router
        // re-routes) replay it before retrying the interrupted call.
        self.resume_token = Some(token.to_string());
        Ok(r.field("restored")?.as_bool().unwrap_or(false))
    }

    /// Forces an immediate engine checkpoint; returns the number of
    /// durable client windows written. Errors if the server was
    /// started without a checkpoint path.
    pub fn checkpoint_now(&mut self) -> Result<u64, ServeError> {
        let r = self.call(&Request::Checkpoint)?;
        Ok(r.u64_field("clients")?)
    }

    /// Drains the durable window keyed by `token` into a
    /// self-contained checkpoint record (`None` if the server holds no
    /// such window). With `keep` false the server forgets the window —
    /// the export half of a live migration.
    pub fn migrate_export(&mut self, token: &str, keep: bool) -> Result<Option<Json>, ServeError> {
        let r = self.call(&Request::MigrateExport {
            token: token.to_string(),
            keep,
        })?;
        match r.field("record")? {
            Json::Null => Ok(None),
            record => Ok(Some(record.clone())),
        }
    }

    /// Replays an exported client-window record into this server —
    /// the import half of a live migration. Returns the engine key
    /// (hex) the window landed under.
    pub fn migrate_import(&mut self, record: &Json) -> Result<String, ServeError> {
        let r = self.call(&Request::MigrateImport {
            record: record.clone(),
        })?;
        Ok(r.str_field("key")?.to_string())
    }

    /// Streams one labeled sample (counters + measured watts) into the
    /// online-learning loop. Returns the server's full training report:
    /// `accepted`, typed quarantine `reasons`, rolling MAPEs, and any
    /// auto-activation or rollback this label triggered.
    pub fn train(&mut self, sample: &CounterSample, power_w: f64) -> Result<Json, ServeError> {
        self.call(&Request::Train {
            sample: sample.clone(),
            power_w,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::ModelRegistry;
    use crate::server::{PowerServer, ServerConfig};
    use crate::test_fixtures::{tiny_dataset, tiny_model};
    use std::sync::Arc;

    #[test]
    fn full_client_session() {
        let mut server =
            PowerServer::start(ServerConfig::default(), Arc::new(ModelRegistry::default()))
                .unwrap();
        let mut c = PowerClient::connect(server.addr()).unwrap();

        let model = tiny_model();
        assert_eq!(c.load_model("hsw", &model, true).unwrap(), 1);
        assert_eq!(c.load_model("hsw", &model, false).unwrap(), 2);
        assert!(c.estimate(0).unwrap().is_none());
        assert_eq!(c.ping(0).unwrap(), 0);

        // Stream a sample built from a training row.
        let data = tiny_dataset(4);
        let row = &data.rows()[0];
        let avail = 24.0 * row.freq_mhz as f64 * 1e6 * row.duration_s;
        let sample = CounterSample {
            time_ns: 10,
            duration_s: row.duration_s,
            freq_mhz: row.freq_mhz,
            voltage: row.voltage,
            deltas: model.events.iter().map(|e| row.rate(*e) * avail).collect(),
            missing: vec![],
        };
        let est = c.ingest(&sample).unwrap();
        assert!((est.power_w - model.predict_row(row)).abs() < 1e-9);
        assert_eq!(est.version, 1);

        // v2 activate + rollback restores v1.
        c.activate("hsw", 2).unwrap();
        assert_eq!(c.rollback().unwrap(), ("hsw".to_string(), 1));

        let stats = c.stats().unwrap();
        assert_eq!(
            stats
                .field("server")
                .unwrap()
                .u64_field("samples_ingested")
                .unwrap(),
            1
        );
        server.shutdown();
    }

    #[test]
    fn retry_reconnects_after_idle_reap() {
        let cfg = ServerConfig {
            read_timeout: Some(std::time::Duration::from_millis(5)),
            idle_timeout: Some(std::time::Duration::from_millis(10)),
            ..ServerConfig::default()
        };
        let mut server = PowerServer::start(cfg, Arc::new(ModelRegistry::default())).unwrap();
        let mut c = PowerClient::connect(server.addr())
            .unwrap()
            .with_retry(RetryPolicy::default());
        c.stats().unwrap();
        // Outlive the idle budget: the server reaps this connection.
        std::thread::sleep(std::time::Duration::from_millis(60));
        // The retry layer reconnects transparently.
        c.stats().unwrap();
        assert!(
            server
                .stats()
                .connections_reaped
                .load(std::sync::atomic::Ordering::Relaxed)
                >= 1
        );
        server.shutdown();
    }

    #[test]
    fn no_retry_means_reap_is_surfaced() {
        let cfg = ServerConfig {
            read_timeout: Some(std::time::Duration::from_millis(5)),
            idle_timeout: Some(std::time::Duration::from_millis(10)),
            ..ServerConfig::default()
        };
        let mut server = PowerServer::start(cfg, Arc::new(ModelRegistry::default())).unwrap();
        let mut c = PowerClient::connect(server.addr()).unwrap();
        std::thread::sleep(std::time::Duration::from_millis(60));
        assert!(c.stats().is_err());
        server.shutdown();
    }

    #[test]
    fn backoff_delays_are_jittered_and_capped() {
        let p = RetryPolicy {
            max_retries: 8,
            base_delay: std::time::Duration::from_millis(10),
            max_delay: std::time::Duration::from_millis(100),
            seed: 42,
        };
        let mut rng = p.seed;
        let mut prev = None;
        for attempt in 1..=8 {
            let d = p.delay(attempt, &mut rng);
            let exp = std::time::Duration::from_millis(10 * (1 << (attempt - 1)))
                .min(std::time::Duration::from_millis(100));
            assert!(d >= exp / 2 && d <= exp, "attempt {attempt}: {d:?}");
            if prev == Some(d) {
                panic!("jitter produced identical consecutive delays");
            }
            prev = Some(d);
        }
        // Deterministic for a fixed seed.
        let mut r1 = 7u64;
        let mut r2 = 7u64;
        assert_eq!(p.delay(3, &mut r1), p.delay(3, &mut r2));
    }

    #[test]
    fn breaker_state_machine_trips_half_opens_and_recovers() {
        let mut b = Breaker::new(BreakerPolicy {
            failure_threshold: 2,
            cooldown: Duration::from_millis(20),
            max_cooldown: Duration::from_millis(100),
            seed: 7,
        });
        // Non-counting failures never trip.
        b.on_failure(false, None);
        b.on_failure(false, None);
        assert!(b.admit().is_ok());
        // Two counting failures trip it.
        b.on_failure(true, None);
        b.on_failure(true, None);
        let retry_in = b.admit().unwrap_err();
        assert!(retry_in >= 1);
        // After the cooldown it half-opens (admits one probe)…
        std::thread::sleep(Duration::from_millis(40));
        assert!(b.admit().is_ok());
        assert!(b.half_open);
        // …and a failed probe re-opens with a doubled cooldown.
        b.on_failure(true, None);
        assert!(b.admit().is_err());
        assert_eq!(b.next_cooldown, Duration::from_millis(80));
        // A successful probe closes and resets.
        std::thread::sleep(Duration::from_millis(70));
        assert!(b.admit().is_ok());
        b.on_success();
        assert!(b.admit().is_ok());
        assert_eq!(b.next_cooldown, Duration::from_millis(20));
        assert_eq!(b.consecutive, 0);
    }

    #[test]
    fn breaker_open_window_honors_the_overload_hint_floor() {
        // A 2ms cooldown with jitter in [0.5, 1.5) opens for at most
        // 3ms — but the overload frame said 60ms. The breaker must
        // stay open at least that long.
        let mut b = Breaker::new(BreakerPolicy {
            failure_threshold: 1,
            cooldown: Duration::from_millis(2),
            max_cooldown: Duration::from_millis(100),
            seed: 11,
        });
        b.on_failure(true, Some(60));
        let retry_in = b.admit().unwrap_err();
        assert!(
            retry_in >= 40,
            "open window {retry_in}ms ignored the 60ms hint"
        );
        std::thread::sleep(Duration::from_millis(10));
        assert!(
            b.admit().is_err(),
            "probed before the server's hint elapsed"
        );
        std::thread::sleep(Duration::from_millis(60));
        assert!(b.admit().is_ok());
        // Without a hint the short cooldown is honored as-is.
        let mut b2 = Breaker::new(BreakerPolicy {
            failure_threshold: 1,
            cooldown: Duration::from_millis(2),
            max_cooldown: Duration::from_millis(100),
            seed: 11,
        });
        b2.on_failure(true, None);
        std::thread::sleep(Duration::from_millis(5));
        assert!(b2.admit().is_ok());
    }

    #[test]
    fn deadline_exceedances_count_toward_the_breaker() {
        // The typed status is a countable failure…
        assert!(PowerClient::counts_for_breaker(
            &ServeError::DeadlineExceeded { remaining_ms: 0 }
        ));
        // …and consecutive ones trip the breaker like overloads do.
        let mut b = Breaker::new(BreakerPolicy {
            failure_threshold: 2,
            cooldown: Duration::from_millis(50),
            max_cooldown: Duration::from_millis(100),
            seed: 5,
        });
        for _ in 0..2 {
            b.on_failure(
                PowerClient::counts_for_breaker(&ServeError::DeadlineExceeded { remaining_ms: 0 }),
                None,
            );
        }
        assert!(b.admit().is_err(), "deadline exceedances must trip");
    }

    #[test]
    fn spent_budget_fails_locally_and_server_sheds_stamped_frames() {
        let mut server =
            PowerServer::start(ServerConfig::default(), Arc::new(ModelRegistry::default()))
                .unwrap();
        // A zero budget is spent before any attempt: the call fails
        // fast locally, typed, without touching the network.
        let mut c = PowerClient::connect(server.addr())
            .unwrap()
            .with_deadline(Duration::ZERO);
        match c.ping(0).unwrap_err() {
            ServeError::DeadlineExceeded { remaining_ms } => assert_eq!(remaining_ms, 0),
            other => panic!("expected deadline_exceeded, got {other}"),
        }
        assert_eq!(c.call_stats().deadline_exceeded, 1);
        let ord = std::sync::atomic::Ordering::Relaxed;
        let before = server.stats().frames_received.load(ord);
        // A generous budget stamps the frame and succeeds end to end.
        let mut c = PowerClient::connect(server.addr())
            .unwrap()
            .with_deadline(Duration::from_secs(5));
        assert_eq!(c.ping(0).unwrap(), 0);
        assert_eq!(c.call_stats().deadline_exceeded, 0);
        assert!(server.stats().frames_received.load(ord) > before);
        server.shutdown();
    }

    #[test]
    fn hedge_stats_read_zero_against_a_bare_server() {
        let mut server =
            PowerServer::start(ServerConfig::default(), Arc::new(ModelRegistry::default()))
                .unwrap();
        let mut c = PowerClient::connect(server.addr()).unwrap();
        // No router in the path: the series are absent, typed zeros.
        assert_eq!(c.hedge_stats().unwrap(), HedgeStats::default());
        server.shutdown();
    }

    #[test]
    fn breaker_fails_fast_against_an_overloaded_server() {
        // max_inflight 0: every request is answered with a typed
        // overload, so the breaker sees consecutive countable failures.
        let cfg = ServerConfig {
            max_inflight: 0,
            ..ServerConfig::default()
        };
        let mut server = PowerServer::start(cfg, Arc::new(ModelRegistry::default())).unwrap();
        let mut c = PowerClient::connect(server.addr())
            .unwrap()
            .with_breaker(BreakerPolicy {
                failure_threshold: 2,
                cooldown: Duration::from_secs(5),
                max_cooldown: Duration::from_secs(5),
                seed: 3,
            });
        assert!(matches!(
            c.ping(0).unwrap_err(),
            ServeError::Overloaded { .. }
        ));
        assert!(matches!(
            c.ping(0).unwrap_err(),
            ServeError::Overloaded { .. }
        ));
        // Tripped: the next call never touches the network.
        match c.ping(0).unwrap_err() {
            ServeError::CircuitOpen { retry_in_ms } => assert!(retry_in_ms > 0),
            other => panic!("expected circuit open, got {other}"),
        }
        server.shutdown();
    }

    #[test]
    fn overload_retry_waits_at_least_the_server_hint() {
        let cfg = ServerConfig {
            max_inflight: 0,
            retry_after_ms: 80,
            ..ServerConfig::default()
        };
        let mut server = PowerServer::start(cfg, Arc::new(ModelRegistry::default())).unwrap();
        let mut c = PowerClient::connect(server.addr())
            .unwrap()
            .with_retry(RetryPolicy {
                max_retries: 1,
                base_delay: Duration::from_millis(1),
                max_delay: Duration::from_millis(2),
                seed: 9,
            });
        let t0 = Instant::now();
        let err = c.ping(0).unwrap_err();
        assert!(matches!(err, ServeError::Overloaded { .. }), "{err}");
        // One retry happened, and it waited for the 80 ms hint even
        // though the backoff policy alone would retry in ~1 ms.
        assert!(t0.elapsed() >= Duration::from_millis(80));
        server.shutdown();
    }

    #[test]
    fn migrate_export_import_moves_a_window_bitwise() {
        let model = tiny_model();
        let mut a = PowerServer::start(ServerConfig::default(), Arc::new(ModelRegistry::default()))
            .unwrap();
        let mut b = PowerServer::start(ServerConfig::default(), Arc::new(ModelRegistry::default()))
            .unwrap();
        let mut ca = PowerClient::connect(a.addr()).unwrap();
        let mut cb = PowerClient::connect(b.addr()).unwrap();
        ca.load_model("hsw", &model, true).unwrap();
        cb.load_model("hsw", &model, true).unwrap();

        // Build a durable window on A.
        ca.resume("mover").unwrap();
        let data = tiny_dataset(6);
        let mut last = None;
        for (i, row) in data.rows().iter().enumerate().take(6) {
            let avail = 24.0 * row.freq_mhz as f64 * 1e6 * row.duration_s;
            let sample = CounterSample {
                time_ns: (i as u64 + 1) * 1_000_000,
                duration_s: row.duration_s,
                freq_mhz: row.freq_mhz,
                voltage: row.voltage,
                deltas: model.events.iter().map(|e| row.rate(*e) * avail).collect(),
                missing: vec![],
            };
            last = Some(ca.ingest(&sample).unwrap());
        }
        let last = last.unwrap();

        // Export drains the window off A…
        let record = ca.migrate_export("mover", false).unwrap().unwrap();
        assert!(ca.migrate_export("mover", false).unwrap().is_none());
        // …and replaying it on B restores the estimate bitwise.
        cb.migrate_import(&record).unwrap();
        cb.resume("mover").unwrap();
        let moved = cb.estimate(last.time_ns).unwrap().unwrap();
        assert_eq!(moved.power_w.to_bits(), last.power_w.to_bits());
        assert_eq!(
            moved.window_power_w.to_bits(),
            last.window_power_w.to_bits()
        );
        assert_eq!(moved.samples_in_window, last.samples_in_window);

        // A cold record without the durable bit is refused.
        let bogus = Json::parse(&record.to_string().replacen("\"key\":\"8", "\"key\":\"0", 1));
        if let Ok(bogus) = bogus {
            if bogus != record {
                assert!(cb.migrate_import(&bogus).is_err());
            }
        }
        a.shutdown();
        b.shutdown();
    }

    #[cfg(unix)]
    #[test]
    fn client_speaks_uds() {
        let path =
            std::env::temp_dir().join(format!("pmc-client-test-{}.sock", std::process::id()));
        let cfg = ServerConfig {
            uds_path: Some(path.to_string_lossy().into_owned()),
            ..ServerConfig::default()
        };
        let mut server = PowerServer::start(cfg, Arc::new(ModelRegistry::default())).unwrap();
        let mut c = PowerClient::connect_uds(&path).unwrap();
        assert_eq!(c.ping(0).unwrap(), 0);
        assert!(c.stats().is_ok());
        server.shutdown();
    }
}
