//! `pmc-serve` — run the power-telemetry server or poke one.
//!
//! ```text
//! pmc-serve serve  [--addr A] [--workers N] [--queue N] [--cores N] [--model FILE…]
//! pmc-serve client --addr A (stats | load NAME FILE [--activate] | activate NAME VER | rollback)
//! ```
//!
//! `serve` binds (default `127.0.0.1:7717`), optionally pre-loads and
//! activates model artifacts from JSON files, prints the bound
//! address, and runs until stdin closes (pipe `/dev/null` to run until
//! killed; an orchestrator holds the pipe open).

use pmc_serve::registry::ModelRegistry;
use pmc_serve::server::{PowerServer, ServerConfig};
use pmc_serve::{ModelArtifact, PowerClient};
use std::io::Read;
use std::process::ExitCode;
use std::sync::Arc;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("serve") => serve(&args[1..]),
        Some("client") => client(&args[1..]),
        _ => {
            eprintln!("usage: pmc-serve serve [--addr A] [--workers N] [--queue N] [--cores N] [--model FILE…]");
            eprintln!("       pmc-serve client --addr A (stats | load NAME FILE [--activate] | activate NAME VER | rollback)");
            return ExitCode::from(2);
        }
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("pmc-serve: {e}");
            ExitCode::FAILURE
        }
    }
}

fn flag_value<'a>(args: &'a [String], flag: &str) -> Option<&'a str> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
}

fn serve(args: &[String]) -> Result<(), Box<dyn std::error::Error>> {
    let mut config = ServerConfig {
        addr: flag_value(args, "--addr")
            .unwrap_or("127.0.0.1:7717")
            .into(),
        ..ServerConfig::default()
    };
    if let Some(w) = flag_value(args, "--workers") {
        config.workers = w.parse()?;
    }
    if let Some(q) = flag_value(args, "--queue") {
        config.queue_depth = q.parse()?;
    }
    if let Some(c) = flag_value(args, "--cores") {
        config.engine.total_cores = c.parse()?;
    }

    let registry = Arc::new(ModelRegistry::default());
    let mut i = 0;
    while i < args.len() {
        if args[i] == "--model" {
            let path = args.get(i + 1).ok_or("--model needs a file path")?;
            let text = std::fs::read_to_string(path)?;
            let artifact = ModelArtifact::from_json(&text)?;
            let name = artifact.name.clone();
            let (_, version) = registry.load_and_activate(artifact)?;
            eprintln!("loaded and activated {name} v{version} from {path}");
            i += 2;
        } else {
            i += 1;
        }
    }

    let mut server = PowerServer::start(config, registry)?;
    println!("listening on {}", server.addr());
    // Serve until stdin closes — the conventional "run me under a
    // supervisor" lifetime without needing signal handling.
    let mut sink = Vec::new();
    let _ = std::io::stdin().read_to_end(&mut sink);
    eprintln!("stdin closed — shutting down");
    server.shutdown();
    Ok(())
}

fn client(args: &[String]) -> Result<(), Box<dyn std::error::Error>> {
    let addr = flag_value(args, "--addr").unwrap_or("127.0.0.1:7717");
    let mut c = PowerClient::connect(addr)?;
    // The verb is the first arg that isn't the --addr pair.
    let mut verb_args: Vec<&String> = Vec::new();
    let mut i = 0;
    while i < args.len() {
        if args[i] == "--addr" {
            i += 2;
        } else {
            verb_args.push(&args[i]);
            i += 1;
        }
    }
    match verb_args.first().map(|s| s.as_str()) {
        Some("stats") => {
            println!("{}", c.stats()?.to_string_pretty());
        }
        Some("load") => {
            let name = verb_args.get(1).ok_or("load needs NAME FILE")?;
            let path = verb_args.get(2).ok_or("load needs NAME FILE")?;
            let activate = verb_args.iter().any(|a| *a == "--activate");
            // Accept either a bare PowerModel JSON (what `to_json`
            // writes) or a full artifact file as used by `serve --model`.
            let text = std::fs::read_to_string(path)?;
            let model = match pmc_model::model::PowerModel::from_json(&text) {
                Ok(m) => m,
                Err(_) => ModelArtifact::from_json(&text)?.model,
            };
            let version = c.load_model(name, &model, activate)?;
            println!(
                "loaded {name} v{version}{}",
                if activate { " (active)" } else { "" }
            );
        }
        Some("activate") => {
            let name = verb_args.get(1).ok_or("activate needs NAME VERSION")?;
            let version: u32 = verb_args
                .get(2)
                .ok_or("activate needs NAME VERSION")?
                .parse()?;
            c.activate(name, version)?;
            println!("activated {name} v{version}");
        }
        Some("rollback") => {
            let (name, version) = c.rollback()?;
            println!("rolled back to {name} v{version}");
        }
        other => {
            return Err(format!("unknown client verb {other:?}").into());
        }
    }
    Ok(())
}
