//! `pmc-serve` — run the power-telemetry server or poke one.
//!
//! ```text
//! pmc-serve serve  [--addr A] [--uds PATH] [--workers N] [--queue N] [--cores N]
//!                  [--model FILE…] [--persist DIR] [--read-timeout-ms N]
//!                  [--write-timeout-ms N] [--idle-timeout-ms N] [--max-frame-bytes N]
//!                  [--max-conns N] [--max-inflight N] [--queue-deadline-ms N]
//!                  [--drain-deadline-ms N] [--retry-after-ms N]
//!                  [--batch-max N] [--batch-linger-us T]
//!                  [--checkpoint PATH] [--checkpoint-interval-ms N]
//!                  [--flap-cap N] [--respawn-backoff-ms N] [--stuck-bound-ms N]
//! pmc-serve client --addr A (stats | load NAME FILE [--activate] | activate NAME VER | rollback
//!                            | healthz | readyz | metrics | checkpoint)
//! pmc-serve chaos  [--seed N] [--fault-seed N] [--rate P] [--phases N]
//! ```
//!
//! Queued ingests are coalesced into batched model dispatches:
//! `--batch-max` caps how many ride in one dispatch (default 16,
//! 1 disables coalescing) and `--batch-linger-us` lets the scheduler
//! hold a non-full batch open until the oldest request has waited that
//! many microseconds (default 0: purely opportunistic — a solo request
//! is never delayed).
//!
//! `serve` binds (default `127.0.0.1:7717`), optionally pre-loads and
//! activates model artifacts from JSON files, prints the bound
//! address, and runs until stdin closes (pipe `/dev/null` to run until
//! killed; an orchestrator holds the pipe open). With `--persist DIR`
//! the registry survives restarts: models and the active pointer are
//! written atomically and recovered on startup. With `--checkpoint
//! PATH` the engine's durable (resumed-token) client windows survive
//! crashes too: they are snapshotted every `--checkpoint-interval-ms`
//! (default 5000; 0 = only on drain; each wait is jittered ±20% so a
//! co-started fleet doesn't snapshot in lockstep) and restored warm on
//! the next start — a torn or corrupt checkpoint is quarantined and
//! reported, never fatal.
//!
//! `chaos` is a self-contained fault-tolerance demo: it trains a model
//! on the simulated machine, serves it on an ephemeral port, streams
//! phases through a seeded fault injector at the given `--rate`, and
//! reports injected-fault counts, degraded estimates, and estimation
//! error during and after the fault storm.

use pmc_serve::registry::ModelRegistry;
use pmc_serve::server::{PowerServer, ServerConfig};
use pmc_serve::{ModelArtifact, PowerClient};
use std::io::Read;
use std::process::ExitCode;
use std::sync::Arc;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("serve") => serve(&args[1..]),
        Some("client") => client(&args[1..]),
        Some("chaos") => chaos(&args[1..]),
        _ => {
            eprintln!("usage: pmc-serve serve [--addr A] [--uds PATH] [--workers N] [--queue N] [--cores N]");
            eprintln!(
                "                       [--model FILE…] [--persist DIR] [--read-timeout-ms N]"
            );
            eprintln!("                       [--write-timeout-ms N] [--idle-timeout-ms N] [--max-frame-bytes N]");
            eprintln!(
                "                       [--max-conns N] [--max-inflight N] [--queue-deadline-ms N]"
            );
            eprintln!("                       [--drain-deadline-ms N] [--retry-after-ms N]");
            eprintln!("                       [--batch-max N] [--batch-linger-us T]");
            eprintln!("                       [--checkpoint PATH] [--checkpoint-interval-ms N]");
            eprintln!(
                "                       [--flap-cap N] [--respawn-backoff-ms N] [--stuck-bound-ms N]"
            );
            eprintln!("       pmc-serve client --addr A (stats | load NAME FILE [--activate] | activate NAME VER | rollback");
            eprintln!(
                "                                  | healthz | readyz | metrics | checkpoint)"
            );
            eprintln!("       pmc-serve chaos [--seed N] [--fault-seed N] [--rate P] [--phases N]");
            return ExitCode::from(2);
        }
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("pmc-serve: {e}");
            ExitCode::FAILURE
        }
    }
}

fn flag_value<'a>(args: &'a [String], flag: &str) -> Option<&'a str> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
}

fn serve(args: &[String]) -> Result<(), Box<dyn std::error::Error>> {
    let mut config = ServerConfig {
        addr: flag_value(args, "--addr")
            .unwrap_or("127.0.0.1:7717")
            .into(),
        ..ServerConfig::default()
    };
    if let Some(w) = flag_value(args, "--workers") {
        config.workers = w.parse()?;
    }
    if let Some(q) = flag_value(args, "--queue") {
        config.queue_depth = q.parse()?;
    }
    if let Some(c) = flag_value(args, "--cores") {
        config.engine.total_cores = c.parse()?;
    }
    // Deadline knobs: 0 disables.
    let ms_flag =
        |flag: &str| -> Result<Option<Option<std::time::Duration>>, std::num::ParseIntError> {
            match flag_value(args, flag) {
                Some(v) => {
                    let ms: u64 = v.parse()?;
                    Ok(Some((ms > 0).then(|| std::time::Duration::from_millis(ms))))
                }
                None => Ok(None),
            }
        };
    if let Some(t) = ms_flag("--read-timeout-ms")? {
        config.read_timeout = t;
    }
    if let Some(t) = ms_flag("--write-timeout-ms")? {
        config.write_timeout = t;
    }
    if let Some(t) = ms_flag("--idle-timeout-ms")? {
        config.idle_timeout = t;
    }
    if let Some(b) = flag_value(args, "--max-frame-bytes") {
        config.max_frame_bytes = b.parse()?;
    }
    if let Some(p) = flag_value(args, "--uds") {
        config.uds_path = Some(p.to_string());
    }
    if let Some(n) = flag_value(args, "--max-conns") {
        config.max_connections = n.parse()?;
    }
    if let Some(n) = flag_value(args, "--max-inflight") {
        config.max_inflight = n.parse()?;
    }
    if let Some(t) = ms_flag("--queue-deadline-ms")? {
        config.queue_deadline = t;
    }
    if let Some(ms) = flag_value(args, "--drain-deadline-ms") {
        config.drain_deadline = std::time::Duration::from_millis(ms.parse()?);
    }
    if let Some(ms) = flag_value(args, "--retry-after-ms") {
        config.retry_after_ms = ms.parse()?;
    }
    if let Some(n) = flag_value(args, "--batch-max") {
        config.batch_max = n.parse()?;
    }
    if let Some(us) = flag_value(args, "--batch-linger-us") {
        config.batch_linger = std::time::Duration::from_micros(us.parse()?);
    }
    if let Some(path) = flag_value(args, "--checkpoint") {
        config.checkpoint_path = Some(path.into());
    }
    if let Some(ms) = flag_value(args, "--checkpoint-interval-ms") {
        config.checkpoint_interval = std::time::Duration::from_millis(ms.parse()?);
    }
    if let Some(n) = flag_value(args, "--flap-cap") {
        config.flap_cap = n.parse()?;
    }
    if let Some(ms) = flag_value(args, "--respawn-backoff-ms") {
        config.respawn_backoff = std::time::Duration::from_millis(ms.parse()?);
    }
    if let Some(ms) = flag_value(args, "--stuck-bound-ms") {
        config.stuck_job_bound = std::time::Duration::from_millis(ms.parse()?);
    }

    let registry = match flag_value(args, "--persist") {
        Some(dir) => {
            let (registry, report) = ModelRegistry::with_persistence(
                pmc_events::scheduler::CounterScheduler::haswell_default(),
                dir,
            )?;
            for (name, version) in &report.loaded {
                eprintln!("recovered {name} v{version} from {dir}");
            }
            for (file, why) in &report.skipped {
                eprintln!("skipped {file}: {why}");
            }
            if let Some((name, version)) = &report.active_restored {
                eprintln!("restored active model {name} v{version}");
            }
            if let Some((name, version)) = &report.previous_restored {
                eprintln!("restored rollback target {name} v{version}");
            }
            Arc::new(registry)
        }
        None => Arc::new(ModelRegistry::default()),
    };
    let mut i = 0;
    while i < args.len() {
        if args[i] == "--model" {
            let path = args.get(i + 1).ok_or("--model needs a file path")?;
            let text = std::fs::read_to_string(path)?;
            let artifact = ModelArtifact::from_json(&text)?;
            let name = artifact.name.clone();
            let (_, version) = registry.load_and_activate(artifact)?;
            eprintln!("loaded and activated {name} v{version} from {path}");
            i += 2;
        } else {
            i += 1;
        }
    }

    let mut server = PowerServer::start(config, registry)?;
    match server.checkpoint_restore() {
        Some(pmc_serve::server::CheckpointRestore::Restored { clients, active }) => {
            eprintln!("checkpoint restored: {clients} client window(s) warm");
            if let Some((name, version)) = active {
                eprintln!("checkpoint active-model pin: {name} v{version}");
            }
        }
        Some(pmc_serve::server::CheckpointRestore::Quarantined {
            reason,
            quarantined_to,
        }) => {
            eprintln!("checkpoint rejected ({reason}) — cold start");
            match quarantined_to {
                Some(path) => eprintln!("bad checkpoint quarantined to {}", path.display()),
                None => eprintln!("bad checkpoint left in place; next write overwrites it"),
            }
        }
        None => {}
    }
    println!("listening on {}", server.addr());
    if let Some(path) = server.uds_path() {
        println!("listening on uds {path}");
    }
    // Serve until stdin closes — the conventional "run me under a
    // supervisor" lifetime without needing signal handling.
    let mut sink = Vec::new();
    let _ = std::io::stdin().read_to_end(&mut sink);
    eprintln!("stdin closed — shutting down");
    server.shutdown();
    Ok(())
}

fn client(args: &[String]) -> Result<(), Box<dyn std::error::Error>> {
    let addr = flag_value(args, "--addr").unwrap_or("127.0.0.1:7717");
    let mut c = PowerClient::connect(addr)?;
    // The verb is the first arg that isn't the --addr pair.
    let mut verb_args: Vec<&String> = Vec::new();
    let mut i = 0;
    while i < args.len() {
        if args[i] == "--addr" {
            i += 2;
        } else {
            verb_args.push(&args[i]);
            i += 1;
        }
    }
    match verb_args.first().map(|s| s.as_str()) {
        Some("stats") => {
            println!("{}", c.stats()?.to_string_pretty());
        }
        Some("load") => {
            let name = verb_args.get(1).ok_or("load needs NAME FILE")?;
            let path = verb_args.get(2).ok_or("load needs NAME FILE")?;
            let activate = verb_args.iter().any(|a| *a == "--activate");
            // Accept either a bare PowerModel JSON (what `to_json`
            // writes) or a full artifact file as used by `serve --model`.
            let text = std::fs::read_to_string(path)?;
            let model = match pmc_model::model::PowerModel::from_json(&text) {
                Ok(m) => m,
                Err(_) => ModelArtifact::from_json(&text)?.model,
            };
            let version = c.load_model(name, &model, activate)?;
            println!(
                "loaded {name} v{version}{}",
                if activate { " (active)" } else { "" }
            );
        }
        Some("activate") => {
            let name = verb_args.get(1).ok_or("activate needs NAME VERSION")?;
            let version: u32 = verb_args
                .get(2)
                .ok_or("activate needs NAME VERSION")?
                .parse()?;
            c.activate(name, version)?;
            println!("activated {name} v{version}");
        }
        Some("rollback") => {
            let (name, version) = c.rollback()?;
            println!("rolled back to {name} v{version}");
        }
        Some("healthz") => {
            println!("{}", c.healthz()?.to_string_pretty());
        }
        Some("readyz") => {
            let r = c.readyz()?;
            let ready = r.field("ready").and_then(|v| v.as_bool()).unwrap_or(false);
            println!("{}", r.to_string_pretty());
            if !ready {
                return Err("server not ready".into());
            }
        }
        Some("metrics") => {
            print!("{}", c.metrics()?);
        }
        Some("checkpoint") => {
            let clients = c.checkpoint_now()?;
            println!("checkpoint written: {clients} client window(s)");
        }
        other => {
            return Err(format!("unknown client verb {other:?}").into());
        }
    }
    Ok(())
}

/// Self-contained fault-tolerance demo: train → serve → stream phases
/// through a seeded fault injector → report degradation and recovery.
fn chaos(args: &[String]) -> Result<(), Box<dyn std::error::Error>> {
    use pmc_cpusim::{Machine, MachineConfig, PhaseContext, PhaseObserver};
    use pmc_events::PapiEvent;
    use pmc_faults::{FaultRates, FaultyMachine};
    use pmc_model::acquisition::{Campaign, ExperimentPlan};
    use pmc_model::dataset::Dataset;
    use pmc_model::model::PowerModel;
    use pmc_serve::{CounterSample, EngineConfig, RetryPolicy};

    let seed: u64 = flag_value(args, "--seed").unwrap_or("6").parse()?;
    let fault_seed: u64 = flag_value(args, "--fault-seed").unwrap_or("1").parse()?;
    let rate: f64 = flag_value(args, "--rate").unwrap_or("0.1").parse()?;
    let phases: usize = flag_value(args, "--phases").unwrap_or("120").parse()?;

    // --- Train on the clean simulated machine -----------------------
    let machine = Machine::new(MachineConfig::haswell_ep(seed));
    let total_cores = machine.config().total_cores();
    let mut training = pmc_workloads::roco2::kernels();
    training.extend(pmc_workloads::roco2::extended_kernels());
    let set = pmc_workloads::WorkloadSet::from_workloads(training);
    let plan = ExperimentPlan::quick_plan(set, vec![1200, 1600, 2000, 2400]);
    let profiles = Campaign::new(&machine, plan).run()?;
    let data = Dataset::from_profiles(&profiles, total_cores)?;
    let events = vec![
        PapiEvent::PRF_DM,
        PapiEvent::REF_CYC,
        PapiEvent::TOT_CYC,
        PapiEvent::STL_ICY,
        PapiEvent::TLB_IM,
        PapiEvent::FUL_CCY,
    ];
    let model = PowerModel::fit(&data, &events)?;
    eprintln!("trained 6-event model: R² = {:.4}", model.fit_r_squared);

    // --- Serve on an ephemeral port ---------------------------------
    let config = ServerConfig {
        addr: "127.0.0.1:0".into(),
        engine: EngineConfig {
            window: 8,
            total_cores,
            staleness_ns: 5_000_000_000,
        },
        ..ServerConfig::default()
    };
    let mut server = PowerServer::start(config, Arc::new(ModelRegistry::default()))?;
    let mut c = PowerClient::connect(server.addr())?.with_retry(RetryPolicy::default());
    c.load_model("chaos", &model, true)?;

    // --- Stream: a fault storm, then a fault-free recovery tail -----
    let faulty = FaultyMachine::new(machine.clone(), fault_seed, FaultRates::uniform(rate));
    let mut kernels = pmc_workloads::roco2::kernels();
    kernels.extend(pmc_workloads::roco2::extended_kernels());
    let freqs = [1200u32, 1600, 2000, 2400];
    let mut degraded = 0usize;
    let (mut storm_ape, mut tail_ape) = (Vec::new(), Vec::new());
    for i in 0..2 * phases {
        let storming = i < phases;
        let w = &kernels[i % kernels.len()];
        let phase = &w.phases(24)[0];
        let ctx = PhaseContext {
            workload_id: w.id,
            phase_id: 0,
            run_id: 9000 + i as u32,
            threads: 24,
            freq_mhz: freqs[i % freqs.len()],
            duration_s: 0.25,
        };
        // Clean reference first (deterministic per coordinates), then
        // the possibly-corrupted view the collector actually sees.
        let clean = machine.observe(&phase.activity, &ctx);
        let obs = if storming {
            PhaseObserver::observe(&faulty, &phase.activity, &ctx)
        } else {
            clean.clone()
        };
        // A real collector cannot send NaN over JSON: non-finite
        // deltas are declared in `missing`, a bad voltage becomes 0.0
        // (the engine substitutes the last good readout).
        let mut deltas: Vec<f64> = events.iter().map(|e| obs.counters[e.index()]).collect();
        let mut missing = Vec::new();
        for (j, d) in deltas.iter_mut().enumerate() {
            if !d.is_finite() {
                *d = 0.0;
                missing.push(j);
            }
        }
        let sample = CounterSample {
            time_ns: (i as u64 + 1) * 250_000_000,
            duration_s: obs.duration_s,
            freq_mhz: ctx.freq_mhz,
            voltage: if obs.voltage.is_finite() {
                obs.voltage
            } else {
                0.0
            },
            deltas,
            missing,
        };
        let est = c.ingest(&sample)?;
        if !est.power_w.is_finite() {
            return Err(format!("non-finite estimate at phase {i}").into());
        }
        if est.degraded {
            degraded += 1;
        }
        let ape = (est.power_w - clean.power_measured).abs() / clean.power_measured;
        if storming {
            storm_ape.push(ape);
        } else {
            tail_ape.push(ape);
        }
    }
    let mape = |v: &[f64]| 100.0 * v.iter().sum::<f64>() / v.len().max(1) as f64;
    println!("injected: {}", faulty.injector().log());
    println!(
        "phases: {} under faults (rate {rate}), {} fault-free; degraded estimates: {degraded}",
        phases, phases
    );
    println!(
        "MAPE vs true power: {:.2}% under faults, {:.2}% after recovery",
        mape(&storm_ape),
        mape(&tail_ape)
    );
    server.shutdown();
    Ok(())
}
