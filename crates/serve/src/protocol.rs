//! The wire protocol: length-prefixed JSON frames over a byte stream.
//!
//! Every frame is a 4-byte big-endian payload length followed by that
//! many bytes of UTF-8 JSON (one object). Requests carry an `"op"`
//! field; responses carry `"status": "ok"` with a `"result"` payload
//! or `"status": "error"` with an `"error"` message. Frames larger
//! than [`MAX_FRAME_BYTES`] are rejected without being read — a
//! malformed or hostile length prefix must not make the server
//! allocate gigabytes.

use crate::engine::CounterSample;
use crate::error::ServeError;
use pmc_json::Json;
use std::io::{Read, Write};

/// Default cap on a frame payload (1 MiB) — far above any legitimate
/// model artifact, far below an allocation attack. The server's read
/// path can tighten this per deployment via
/// [`read_frame_limited`].
pub const MAX_FRAME_BYTES: u32 = 1 << 20;

/// True for the error kinds a socket read returns when its read
/// timeout expires (platform-dependent: `WouldBlock` or `TimedOut`).
fn is_timeout(e: &std::io::Error) -> bool {
    matches!(
        e.kind(),
        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
    )
}

/// Writes one frame: 4-byte big-endian length, then the JSON text.
pub fn write_frame(w: &mut impl Write, payload: &Json) -> Result<(), ServeError> {
    let bytes = encode_frame(payload)?;
    w.write_all(&bytes)?;
    w.flush()?;
    Ok(())
}

/// Serializes one frame (length prefix + JSON text) into a byte
/// vector — the building block for buffered non-blocking writers that
/// cannot use [`write_frame`]'s all-or-nothing `write_all`.
pub fn encode_frame(payload: &Json) -> Result<Vec<u8>, ServeError> {
    let text = payload.to_string();
    let bytes = text.as_bytes();
    if bytes.len() as u64 > MAX_FRAME_BYTES as u64 {
        return Err(ServeError::Protocol {
            reason: format!("outgoing frame of {} bytes exceeds cap", bytes.len()),
        });
    }
    let mut out = Vec::with_capacity(4 + bytes.len());
    out.extend_from_slice(&(bytes.len() as u32).to_be_bytes());
    out.extend_from_slice(bytes);
    Ok(out)
}

/// Attempts to parse one frame from the front of an accumulation
/// buffer (the readiness-loop read path: bytes arrive in arbitrary
/// fragments and pile up per connection).
///
/// Returns `Ok(Some((frame, consumed)))` when a complete frame is
/// available — the caller must drain `consumed` bytes. `Ok(None)`
/// means the buffer holds only a partial frame; read more. An
/// oversized length prefix is a [`ServeError::Protocol`] error (the
/// connection must be dropped: the stream cannot be resynchronized),
/// while a complete frame whose payload is not UTF-8 JSON is a
/// [`ServeError::Json`]/[`ServeError::Protocol`] error *after* the
/// frame was consumed from the buffer — the caller learns how many
/// bytes to drop via the error path below, so the stream stays in
/// sync. To keep that distinction simple, payload-level failures are
/// reported through [`FrameError::Payload`] with the consumed length.
pub fn parse_frame(
    buf: &[u8],
    max_bytes: u32,
) -> std::result::Result<Option<(Json, usize)>, FrameError> {
    if buf.len() < 4 {
        return Ok(None);
    }
    let len = u32::from_be_bytes([buf[0], buf[1], buf[2], buf[3]]);
    if len > max_bytes {
        return Err(FrameError::Fatal(ServeError::Protocol {
            reason: format!("frame of {len} bytes exceeds {max_bytes}-byte cap"),
        }));
    }
    let total = 4 + len as usize;
    if buf.len() < total {
        return Ok(None);
    }
    let payload = &buf[4..total];
    let text = match std::str::from_utf8(payload) {
        Ok(t) => t,
        Err(_) => {
            return Err(FrameError::Payload {
                consumed: total,
                error: ServeError::Protocol {
                    reason: "frame payload is not UTF-8".into(),
                },
            })
        }
    };
    match Json::parse(text) {
        Ok(v) => Ok(Some((v, total))),
        Err(e) => Err(FrameError::Payload {
            consumed: total,
            error: ServeError::Json(e),
        }),
    }
}

/// How buffer-based frame parsing fails.
#[derive(Debug)]
pub enum FrameError {
    /// The stream is desynchronized (hostile length prefix); the
    /// connection must be dropped.
    Fatal(ServeError),
    /// The frame was well-delimited but its payload was garbage. The
    /// stream is still in sync: drop `consumed` bytes, answer with the
    /// error, keep serving.
    Payload {
        /// Bytes of the offending frame to drain from the buffer.
        consumed: usize,
        /// What was wrong with the payload.
        error: ServeError,
    },
}

/// Reads one frame under the default [`MAX_FRAME_BYTES`] cap.
pub fn read_frame(r: &mut impl Read) -> Result<Option<Json>, ServeError> {
    read_frame_limited(r, MAX_FRAME_BYTES)
}

/// Reads one frame with a caller-chosen payload cap. Returns
/// `Ok(None)` on clean end-of-stream (EOF at a frame boundary);
/// mid-frame EOF, an oversized length prefix, or malformed JSON are
/// errors.
///
/// When the underlying stream has a read timeout, its expiry maps to
/// [`ServeError::Deadline`]: `mid_frame: false` if it hit before any
/// byte of the frame arrived (an idle poll — the stream is still in
/// sync and the caller may retry), `mid_frame: true` if it hit with a
/// frame partially read (the stream is desynchronized and must be
/// dropped).
pub fn read_frame_limited(r: &mut impl Read, max_bytes: u32) -> Result<Option<Json>, ServeError> {
    let mut len_buf = [0u8; 4];
    // Clean EOF only if the very first length byte is missing.
    match r.read(&mut len_buf) {
        Err(e) if is_timeout(&e) => return Err(ServeError::Deadline { mid_frame: false }),
        Err(e) => return Err(ServeError::Io(e)),
        Ok(0) => return Ok(None),
        Ok(mut n) => {
            while n < 4 {
                match r.read(&mut len_buf[n..]) {
                    Err(e) if is_timeout(&e) => {
                        return Err(ServeError::Deadline { mid_frame: true })
                    }
                    Err(e) => return Err(ServeError::Io(e)),
                    Ok(0) => {
                        return Err(ServeError::Protocol {
                            reason: "stream truncated inside a frame header".into(),
                        })
                    }
                    Ok(got) => n += got,
                }
            }
        }
    }
    let len = u32::from_be_bytes(len_buf);
    if len > max_bytes {
        return Err(ServeError::Protocol {
            reason: format!("frame of {len} bytes exceeds {max_bytes}-byte cap"),
        });
    }
    let mut payload = vec![0u8; len as usize];
    r.read_exact(&mut payload).map_err(|e| {
        if e.kind() == std::io::ErrorKind::UnexpectedEof {
            ServeError::Protocol {
                reason: "stream truncated inside a frame payload".into(),
            }
        } else if is_timeout(&e) {
            ServeError::Deadline { mid_frame: true }
        } else {
            ServeError::Io(e)
        }
    })?;
    let text = std::str::from_utf8(&payload).map_err(|_| ServeError::Protocol {
        reason: "frame payload is not UTF-8".into(),
    })?;
    Ok(Some(Json::parse(text)?))
}

/// A client request.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Stream one counter sample into this connection's estimator.
    Ingest(CounterSample),
    /// Fetch the latest estimate; `now_ns` drives the staleness flag.
    Estimate {
        /// The client's current clock, nanoseconds.
        now_ns: u64,
    },
    /// Load a model artifact into the registry.
    LoadModel {
        /// Deployment name to load under.
        name: String,
        /// The serialized model (a [`pmc_model::model::PowerModel`] value).
        model: Json,
        /// Activate immediately after loading.
        activate: bool,
    },
    /// Activate a loaded model.
    Activate {
        /// Deployment name.
        name: String,
        /// Version under that name.
        version: u32,
    },
    /// Restore the previously active model.
    Rollback,
    /// Server and registry statistics.
    Stats,
    /// Diagnostic echo that holds a worker for `delay_ms` (the server
    /// caps the delay). Exists so overload, shedding and drain paths
    /// can be exercised deterministically in tests and drills.
    Ping {
        /// Requested worker hold time, milliseconds (server-capped).
        delay_ms: u64,
    },
    /// Liveness probe: answered inline by the server core (never
    /// queued behind workers), so it succeeds as long as the event
    /// loop turns — even with the whole pool wedged.
    Healthz,
    /// Readiness probe: like [`Request::Healthz`] answered inline, but
    /// reports whether the server should receive traffic (not
    /// draining, a model active, supervisor not flapping) plus
    /// checkpoint age and stuck-worker diagnostics.
    Readyz,
    /// Prometheus-style plaintext scrape of the server counters.
    Metrics,
    /// Bind this connection to a durable client identity. Engine state
    /// keyed by the token survives disconnects and — with
    /// checkpointing on — server restarts, so a reconnecting client
    /// resumes its sliding window instead of cold-starting.
    Resume {
        /// Stable client-chosen identity token (non-empty).
        token: String,
    },
    /// Force an immediate engine checkpoint (ops/test hook). Errors
    /// if the server was started without `--checkpoint`.
    Checkpoint,
    /// Drain one durable (token-keyed) client window into a
    /// self-contained checkpoint record (the PR 5 on-disk client
    /// format) — the export half of live migration. With `keep` false
    /// (the default) the window is forgotten after export, so the old
    /// owner stops serving it; `keep: true` is a non-destructive copy
    /// for inspection.
    MigrateExport {
        /// The resume token whose window to export.
        token: String,
        /// Keep the window after exporting instead of forgetting it.
        keep: bool,
    },
    /// Replay an exported client-window checkpoint record into this
    /// server's engine — the import half of live migration. The record
    /// must be keyed in the durable (resume-token) namespace.
    MigrateImport {
        /// The checkpoint record produced by a `migrate_export`.
        record: Json,
    },
    /// `(key, dirty_seq)` for every durable (token-keyed) window on
    /// this server. The replication anti-entropy poll: a router
    /// compares sequence numbers against its last drain and exports
    /// only the windows that moved, instead of copying every window
    /// every round.
    WindowSeqs,
}

impl Request {
    /// Serializes to the wire JSON shape.
    pub fn to_json_value(&self) -> Json {
        match self {
            Request::Ingest(s) => Json::obj(vec![
                ("op", Json::from("ingest")),
                ("sample", s.to_json_value()),
            ]),
            Request::Estimate { now_ns } => Json::obj(vec![
                ("op", Json::from("estimate")),
                ("now_ns", Json::from(*now_ns)),
            ]),
            Request::LoadModel {
                name,
                model,
                activate,
            } => Json::obj(vec![
                ("op", Json::from("load_model")),
                ("name", Json::from(name.as_str())),
                ("model", model.clone()),
                ("activate", Json::Bool(*activate)),
            ]),
            Request::Activate { name, version } => Json::obj(vec![
                ("op", Json::from("activate")),
                ("name", Json::from(name.as_str())),
                ("version", Json::from(*version)),
            ]),
            Request::Rollback => Json::obj(vec![("op", Json::from("rollback"))]),
            Request::Stats => Json::obj(vec![("op", Json::from("stats"))]),
            Request::Ping { delay_ms } => Json::obj(vec![
                ("op", Json::from("ping")),
                ("delay_ms", Json::from(*delay_ms)),
            ]),
            Request::Healthz => Json::obj(vec![("op", Json::from("healthz"))]),
            Request::Readyz => Json::obj(vec![("op", Json::from("readyz"))]),
            Request::Metrics => Json::obj(vec![("op", Json::from("metrics"))]),
            Request::Resume { token } => Json::obj(vec![
                ("op", Json::from("resume")),
                ("token", Json::from(token.as_str())),
            ]),
            Request::Checkpoint => Json::obj(vec![("op", Json::from("checkpoint"))]),
            Request::MigrateExport { token, keep } => Json::obj(vec![
                ("op", Json::from("migrate_export")),
                ("token", Json::from(token.as_str())),
                ("keep", Json::Bool(*keep)),
            ]),
            Request::MigrateImport { record } => Json::obj(vec![
                ("op", Json::from("migrate_import")),
                ("record", record.clone()),
            ]),
            Request::WindowSeqs => Json::obj(vec![("op", Json::from("window_seqs"))]),
        }
    }

    /// Parses a request frame.
    pub fn from_json_value(v: &Json) -> Result<Self, ServeError> {
        let op = v.str_field("op")?;
        match op {
            "ingest" => Ok(Request::Ingest(CounterSample::from_json_value(
                v.field("sample")?,
            )?)),
            "estimate" => Ok(Request::Estimate {
                now_ns: v.u64_field("now_ns")?,
            }),
            "load_model" => Ok(Request::LoadModel {
                name: v.str_field("name")?.to_string(),
                model: v.field("model")?.clone(),
                activate: v.field("activate")?.as_bool()?,
            }),
            "activate" => Ok(Request::Activate {
                name: v.str_field("name")?.to_string(),
                version: v.u32_field("version")?,
            }),
            "rollback" => Ok(Request::Rollback),
            "stats" => Ok(Request::Stats),
            "ping" => Ok(Request::Ping {
                delay_ms: v.u64_field("delay_ms").unwrap_or(0),
            }),
            "healthz" => Ok(Request::Healthz),
            "readyz" => Ok(Request::Readyz),
            "metrics" => Ok(Request::Metrics),
            "resume" => {
                let token = v.str_field("token")?.to_string();
                if token.is_empty() {
                    return Err(ServeError::Protocol {
                        reason: "resume token must be non-empty".into(),
                    });
                }
                Ok(Request::Resume { token })
            }
            "checkpoint" => Ok(Request::Checkpoint),
            "migrate_export" => {
                let token = v.str_field("token")?.to_string();
                if token.is_empty() {
                    return Err(ServeError::Protocol {
                        reason: "migrate_export token must be non-empty".into(),
                    });
                }
                Ok(Request::MigrateExport {
                    token,
                    keep: v
                        .field("keep")
                        .ok()
                        .and_then(|k| k.as_bool().ok())
                        .unwrap_or(false),
                })
            }
            "migrate_import" => Ok(Request::MigrateImport {
                record: v.field("record")?.clone(),
            }),
            "window_seqs" => Ok(Request::WindowSeqs),
            other => Err(ServeError::Protocol {
                reason: format!("unknown op {other:?}"),
            }),
        }
    }
}

/// Reads the optional propagated deadline budget off a raw request
/// frame. `deadline_ms` is a top-level field carrying the client's
/// **remaining patience** in milliseconds — each hop converts it to an
/// absolute deadline on arrival, and a relay decrements it by its own
/// elapsed time before forwarding, so a budget can only shrink on its
/// way downstream (retries never exceed the client's original
/// patience). Absent or malformed means "no deadline"; old peers
/// ignore the field entirely, so it is additive on the wire.
pub fn frame_deadline_ms(frame: &Json) -> Option<u64> {
    frame.get("deadline_ms").and_then(|v| v.as_u64().ok())
}

/// Returns `frame` with its `deadline_ms` budget set to `ms`,
/// replacing any prior value — the client-side stamp and the router's
/// decrement-before-relay re-encode. Non-object frames pass through
/// unchanged (request parsing reports its own error for those).
pub fn with_deadline_ms(frame: &Json, ms: u64) -> Json {
    match frame {
        Json::Obj(fields) => {
            let mut out: Vec<(String, Json)> = fields
                .iter()
                .filter(|(k, _)| k != "deadline_ms")
                .cloned()
                .collect();
            out.push(("deadline_ms".to_string(), Json::from(ms)));
            Json::Obj(out)
        }
        other => other.clone(),
    }
}

/// True if a raw request frame is an `ingest` — the only op the batch
/// scheduler lingers for. A cheap field peek; full request parsing
/// (and its error reporting) still happens at execution time.
pub(crate) fn is_ingest_frame(frame: &Json) -> bool {
    matches!(frame.str_field("op"), Ok("ingest"))
}

/// True if a raw request frame is an op the server core answers
/// inline, without a worker: health/readiness probes, metrics
/// scrapes, and connection identity binding. These must keep working
/// when the worker pool is saturated, wedged, or flapping — that is
/// the whole point of a liveness probe.
pub(crate) fn is_core_inline_frame(frame: &Json) -> bool {
    matches!(
        frame.str_field("op"),
        Ok("healthz") | Ok("readyz") | Ok("metrics") | Ok("resume")
    )
}

/// Wraps a result payload in an ok-response frame.
pub fn ok_response(result: Json) -> Json {
    Json::obj(vec![("status", Json::from("ok")), ("result", result)])
}

/// Wraps an error in an error-response frame. Overload and drain are
/// **typed statuses** on the wire (not flattened into a message
/// string) so clients can machine-read the backoff hint and tell a
/// shedding server from a broken request.
pub fn error_response(err: &ServeError) -> Json {
    match err {
        ServeError::Overloaded { retry_after_ms } => Json::obj(vec![
            ("status", Json::from("overloaded")),
            ("retry_after_ms", Json::from(*retry_after_ms)),
        ]),
        ServeError::Draining => Json::obj(vec![("status", Json::from("draining"))]),
        ServeError::DeadlineExceeded { remaining_ms } => Json::obj(vec![
            ("status", Json::from("deadline_exceeded")),
            ("remaining_ms", Json::from(*remaining_ms)),
        ]),
        ServeError::Internal { reason } => Json::obj(vec![
            ("status", Json::from("internal_error")),
            ("error", Json::from(reason.as_str())),
        ]),
        _ => Json::obj(vec![
            ("status", Json::from("error")),
            ("error", Json::from(err.to_string())),
        ]),
    }
}

/// Unwraps a response frame: the `result` payload, or the server's
/// error surfaced as a typed error — [`ServeError::Overloaded`] with
/// its backoff hint, [`ServeError::Draining`], or the catch-all
/// [`ServeError::Server`] carrying the message verbatim (so callers —
/// and retry loops — can tell a server-reported failure from a local
/// transport one).
pub fn unwrap_response(v: Json) -> Result<Json, ServeError> {
    match v.str_field("status")? {
        "ok" => Ok(v.field("result")?.clone()),
        "overloaded" => Err(ServeError::Overloaded {
            retry_after_ms: v.u64_field("retry_after_ms").unwrap_or(0),
        }),
        "draining" => Err(ServeError::Draining),
        "deadline_exceeded" => Err(ServeError::DeadlineExceeded {
            remaining_ms: v.u64_field("remaining_ms").unwrap_or(0),
        }),
        "internal_error" => Err(ServeError::Internal {
            reason: v
                .str_field("error")
                .map(|s| s.to_string())
                .unwrap_or_else(|_| "unspecified".into()),
        }),
        "error" => Err(ServeError::Server {
            message: v.str_field("error")?.to_string(),
        }),
        other => Err(ServeError::Protocol {
            reason: format!("unknown response status {other:?}"),
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn roundtrip(req: Request) {
        let mut buf = Vec::new();
        write_frame(&mut buf, &req.to_json_value()).unwrap();
        let got = read_frame(&mut Cursor::new(&buf)).unwrap().unwrap();
        assert_eq!(Request::from_json_value(&got).unwrap(), req);
    }

    #[test]
    fn requests_roundtrip() {
        roundtrip(Request::Ingest(CounterSample {
            time_ns: 5,
            duration_s: 0.5,
            freq_mhz: 2400,
            voltage: 1.0,
            deltas: vec![1.0, 2.0],
            missing: vec![1],
        }));
        roundtrip(Request::Estimate { now_ns: 77 });
        roundtrip(Request::Activate {
            name: "hsw".into(),
            version: 2,
        });
        roundtrip(Request::Rollback);
        roundtrip(Request::Stats);
        roundtrip(Request::Ping { delay_ms: 12 });
        roundtrip(Request::LoadModel {
            name: "hsw".into(),
            model: Json::obj(vec![("k", Json::from(1.0))]),
            activate: true,
        });
        roundtrip(Request::Healthz);
        roundtrip(Request::Readyz);
        roundtrip(Request::Metrics);
        roundtrip(Request::Resume {
            token: "client-7".into(),
        });
        roundtrip(Request::Checkpoint);
        roundtrip(Request::MigrateExport {
            token: "client-7".into(),
            keep: true,
        });
        roundtrip(Request::MigrateImport {
            record: Json::obj(vec![("key", Json::from("8000000000000001"))]),
        });
        roundtrip(Request::WindowSeqs);
    }

    #[test]
    fn migrate_export_defaults_to_drain_semantics() {
        let v = Json::obj(vec![
            ("op", Json::from("migrate_export")),
            ("token", Json::from("client-7")),
        ]);
        match Request::from_json_value(&v).unwrap() {
            Request::MigrateExport { keep, .. } => assert!(!keep),
            other => panic!("expected migrate_export, got {other:?}"),
        }
        let empty = Json::obj(vec![
            ("op", Json::from("migrate_export")),
            ("token", Json::from("")),
        ]);
        assert!(Request::from_json_value(&empty).is_err());
    }

    #[test]
    fn empty_resume_token_rejected() {
        let v = Json::obj(vec![
            ("op", Json::from("resume")),
            ("token", Json::from("")),
        ]);
        assert!(matches!(
            Request::from_json_value(&v),
            Err(ServeError::Protocol { .. })
        ));
    }

    #[test]
    fn core_inline_ops_are_recognized() {
        for op in ["healthz", "readyz", "metrics", "resume"] {
            assert!(is_core_inline_frame(&Json::obj(vec![(
                "op",
                Json::from(op)
            )])));
        }
        for op in ["ingest", "stats", "ping", "checkpoint"] {
            assert!(!is_core_inline_frame(&Json::obj(vec![(
                "op",
                Json::from(op)
            )])));
        }
    }

    #[test]
    fn internal_error_is_a_typed_status() {
        let err = error_response(&ServeError::Internal {
            reason: "worker panicked".into(),
        });
        assert_eq!(err.str_field("status").unwrap(), "internal_error");
        match unwrap_response(err).unwrap_err() {
            ServeError::Internal { reason } => assert!(reason.contains("panicked")),
            other => panic!("expected internal error, got {other:?}"),
        }
    }

    #[test]
    fn clean_eof_is_none() {
        assert!(read_frame(&mut Cursor::new(&[])).unwrap().is_none());
    }

    #[test]
    fn truncated_header_and_payload_are_errors() {
        let mut buf = Vec::new();
        write_frame(&mut buf, &Json::obj(vec![("op", Json::from("stats"))])).unwrap();
        // Cut inside the header.
        assert!(read_frame(&mut Cursor::new(&buf[..2])).is_err());
        // Cut inside the payload.
        assert!(read_frame(&mut Cursor::new(&buf[..buf.len() - 3])).is_err());
    }

    #[test]
    fn oversized_length_prefix_rejected_without_allocation() {
        let buf = u32::MAX.to_be_bytes();
        let err = read_frame(&mut Cursor::new(&buf)).unwrap_err();
        assert!(matches!(err, ServeError::Protocol { .. }));
    }

    #[test]
    fn non_json_payload_is_typed_error() {
        let payload = b"not json";
        let mut buf = Vec::new();
        buf.extend_from_slice(&(payload.len() as u32).to_be_bytes());
        buf.extend_from_slice(payload);
        assert!(matches!(
            read_frame(&mut Cursor::new(&buf)),
            Err(ServeError::Json(_))
        ));
    }

    #[test]
    fn tightened_cap_rejects_what_the_default_allows() {
        let mut buf = Vec::new();
        write_frame(&mut buf, &Json::obj(vec![("op", Json::from("stats"))])).unwrap();
        assert!(read_frame_limited(&mut Cursor::new(&buf), 4).is_err());
        assert!(read_frame_limited(&mut Cursor::new(&buf), MAX_FRAME_BYTES)
            .unwrap()
            .is_some());
    }

    /// A reader that yields `n` bytes, then times out forever.
    struct TimesOutAfter {
        data: Vec<u8>,
        pos: usize,
    }

    impl Read for TimesOutAfter {
        fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
            if self.pos >= self.data.len() {
                return Err(std::io::Error::from(std::io::ErrorKind::WouldBlock));
            }
            let n = buf.len().min(self.data.len() - self.pos);
            buf[..n].copy_from_slice(&self.data[self.pos..self.pos + n]);
            self.pos += n;
            Ok(n)
        }
    }

    #[test]
    fn timeout_between_frames_is_a_recoverable_deadline() {
        let mut r = TimesOutAfter {
            data: vec![],
            pos: 0,
        };
        assert!(matches!(
            read_frame(&mut r),
            Err(ServeError::Deadline { mid_frame: false })
        ));
    }

    #[test]
    fn timeout_mid_frame_is_a_fatal_deadline() {
        let mut buf = Vec::new();
        write_frame(&mut buf, &Json::obj(vec![("op", Json::from("stats"))])).unwrap();
        // Cut inside the header and inside the payload.
        for cut in [2, buf.len() - 3] {
            let mut r = TimesOutAfter {
                data: buf[..cut].to_vec(),
                pos: 0,
            };
            assert!(matches!(
                read_frame(&mut r),
                Err(ServeError::Deadline { mid_frame: true })
            ));
        }
    }

    #[test]
    fn unknown_op_rejected() {
        let v = Json::obj(vec![("op", Json::from("dance"))]);
        assert!(Request::from_json_value(&v).is_err());
    }

    #[test]
    fn response_wrappers() {
        let ok = ok_response(Json::from(1.0));
        assert_eq!(unwrap_response(ok).unwrap(), Json::from(1.0));
        // Overload round-trips as a typed status with its backoff hint.
        let err = error_response(&ServeError::Overloaded { retry_after_ms: 40 });
        assert_eq!(err.str_field("status").unwrap(), "overloaded");
        let e = unwrap_response(err).unwrap_err();
        assert!(matches!(e, ServeError::Overloaded { retry_after_ms: 40 }));
        // So does draining.
        let err = error_response(&ServeError::Draining);
        assert_eq!(err.str_field("status").unwrap(), "draining");
        assert!(matches!(
            unwrap_response(err).unwrap_err(),
            ServeError::Draining
        ));
        // Everything else stays a message-carrying error status.
        let err = error_response(&ServeError::Protocol {
            reason: "bad".into(),
        });
        assert!(matches!(
            unwrap_response(err).unwrap_err(),
            ServeError::Server { .. }
        ));
    }

    #[test]
    fn deadline_budget_is_additive_and_restampable() {
        // No budget by default.
        let frame = Request::Stats.to_json_value();
        assert_eq!(frame_deadline_ms(&frame), None);
        // Stamping adds the field; restamping replaces it (no dupes).
        let stamped = with_deadline_ms(&frame, 250);
        assert_eq!(frame_deadline_ms(&stamped), Some(250));
        let restamped = with_deadline_ms(&stamped, 100);
        assert_eq!(frame_deadline_ms(&restamped), Some(100));
        let fields = restamped.as_obj().unwrap();
        assert_eq!(fields.iter().filter(|(k, _)| k == "deadline_ms").count(), 1);
        // The field is invisible to request parsing — old servers
        // that don't know deadlines parse the frame unchanged.
        assert_eq!(
            Request::from_json_value(&restamped).unwrap(),
            Request::Stats
        );
        // Malformed budgets read as "no deadline", not an error.
        let bad = Json::obj(vec![
            ("op", Json::from("stats")),
            ("deadline_ms", Json::from("soon")),
        ]);
        assert_eq!(frame_deadline_ms(&bad), None);
        // Non-object frames pass through the stamp untouched.
        assert_eq!(with_deadline_ms(&Json::Null, 5), Json::Null);
    }

    #[test]
    fn deadline_exceeded_is_a_typed_status() {
        let err = error_response(&ServeError::DeadlineExceeded { remaining_ms: 7 });
        assert_eq!(err.str_field("status").unwrap(), "deadline_exceeded");
        match unwrap_response(err).unwrap_err() {
            ServeError::DeadlineExceeded { remaining_ms } => assert_eq!(remaining_ms, 7),
            other => panic!("expected deadline_exceeded, got {other:?}"),
        }
    }

    #[test]
    fn parse_frame_handles_fragments_and_garbage() {
        let mut buf = Vec::new();
        write_frame(&mut buf, &Json::obj(vec![("op", Json::from("stats"))])).unwrap();
        // Every strict prefix is "incomplete", never an error.
        for cut in 0..buf.len() {
            assert!(matches!(
                parse_frame(&buf[..cut], MAX_FRAME_BYTES),
                Ok(None)
            ));
        }
        // The full buffer parses and reports its consumed length.
        let (v, consumed) = parse_frame(&buf, MAX_FRAME_BYTES).unwrap().unwrap();
        assert_eq!(consumed, buf.len());
        assert_eq!(v.str_field("op").unwrap(), "stats");
        // Two concatenated frames parse one at a time.
        let mut two = buf.clone();
        two.extend_from_slice(&buf);
        let (_, consumed) = parse_frame(&two, MAX_FRAME_BYTES).unwrap().unwrap();
        assert!(parse_frame(&two[consumed..], MAX_FRAME_BYTES)
            .unwrap()
            .is_some());
        // An oversized prefix is fatal; garbage JSON is a payload
        // error that still reports how much to drain.
        assert!(matches!(
            parse_frame(&u32::MAX.to_be_bytes(), MAX_FRAME_BYTES),
            Err(FrameError::Fatal(_))
        ));
        let mut bad = Vec::new();
        bad.extend_from_slice(&4u32.to_be_bytes());
        bad.extend_from_slice(b"nope");
        match parse_frame(&bad, MAX_FRAME_BYTES) {
            Err(FrameError::Payload { consumed, .. }) => assert_eq!(consumed, 8),
            other => panic!("expected payload error, got {other:?}"),
        }
    }

    #[test]
    fn encode_frame_matches_write_frame() {
        let v = Json::obj(vec![("op", Json::from("stats"))]);
        let mut via_writer = Vec::new();
        write_frame(&mut via_writer, &v).unwrap();
        assert_eq!(encode_frame(&v).unwrap(), via_writer);
    }
}
