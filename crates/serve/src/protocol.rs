//! The wire protocol: length-prefixed frames over a byte stream.
//!
//! Every frame is a 4-byte big-endian payload length followed by that
//! many payload bytes in one of two negotiable encodings. The default
//! is UTF-8 JSON (one object); a connection may negotiate the `PMCB1`
//! tagged binary encoding via a `hello {"encoding": "binary"}` op (see
//! [`Encoding`]). Binary payloads are self-describing — they start
//! with the 5-byte magic `PMCB1`, which no valid JSON payload can —
//! so the parse path accepts either encoding on any frame without
//! per-connection decode state. Requests carry an `"op"` field;
//! responses carry `"status": "ok"` with a `"result"` payload or
//! `"status": "error"` with an `"error"` message. Frames larger than
//! [`MAX_FRAME_BYTES`] are rejected without being read — a malformed
//! or hostile length prefix must not make the server allocate
//! gigabytes.
//!
//! ## The `PMCB1` binary payload
//!
//! After the magic, one tagged value, recursively:
//!
//! | tag | value | layout after the tag |
//! |-----|-------|----------------------|
//! | `0x00` | null | — |
//! | `0x01` | false | — |
//! | `0x02` | true | — |
//! | `0x03` | number | 8-byte little-endian IEEE-754 bit pattern |
//! | `0x04` | string | u32 LE byte length + UTF-8 bytes |
//! | `0x05` | array | u32 LE count + that many tagged values |
//! | `0x06` | object | u32 LE count + (u32 LE key length + key UTF-8 + tagged value) each |
//! | `0x07` | f64 array | u32 LE count + count × 8-byte LE bit patterns |
//!
//! Tag `0x07` is an encoder fast path for all-number arrays (counter
//! deltas are the hot payload); decoders treat it as an array of
//! numbers. Floats travel as raw bit patterns, so round-trips are
//! exact by construction — no shortest-float printing involved. The
//! JSON encoding serializes non-finite floats as `null`; the binary
//! encoder mirrors that (and the decoder rejects non-finite bit
//! patterns), so both encodings agree on every payload.

use crate::engine::CounterSample;
use crate::error::ServeError;
use pmc_json::Json;
use std::io::{Read, Write};

/// Default cap on a frame payload (1 MiB) — far above any legitimate
/// model artifact, far below an allocation attack. The server's read
/// path can tighten this per deployment via
/// [`read_frame_limited`].
pub const MAX_FRAME_BYTES: u32 = 1 << 20;

/// Magic prefix of a `PMCB1` binary frame payload. A JSON payload can
/// never start with these bytes (`P` begins no JSON value), so the
/// payload encoding is sniffable per frame.
pub const BINARY_MAGIC: &[u8; 5] = b"PMCB1";

/// Nesting cap for binary payload decoding, matching
/// [`pmc_json::MAX_DEPTH`] so neither encoding can recurse deeper
/// than the other.
const MAX_BINARY_DEPTH: usize = pmc_json::MAX_DEPTH;

const TAG_NULL: u8 = 0x00;
const TAG_FALSE: u8 = 0x01;
const TAG_TRUE: u8 = 0x02;
const TAG_NUM: u8 = 0x03;
const TAG_STR: u8 = 0x04;
const TAG_ARR: u8 = 0x05;
const TAG_OBJ: u8 = 0x06;
const TAG_F64S: u8 = 0x07;

/// A frame payload encoding, negotiated per connection via the
/// `hello` op. JSON is the default: every peer speaks it, and a
/// connection that never sends `hello` is a JSON connection.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Encoding {
    /// UTF-8 JSON text — the default and the interoperable baseline.
    #[default]
    Json,
    /// `PMCB1` tagged binary: floats as raw little-endian bit
    /// patterns, no per-frame text parse on the hot path.
    Binary,
}

impl Encoding {
    /// The wire name used in `hello` negotiation.
    pub fn as_str(self) -> &'static str {
        match self {
            Encoding::Json => "json",
            Encoding::Binary => "binary",
        }
    }

    /// Parses a wire name; `None` for encodings this build does not
    /// speak (the server's negotiation falls back to JSON for those).
    pub fn from_name(name: &str) -> Option<Encoding> {
        match name {
            "json" => Some(Encoding::Json),
            "binary" => Some(Encoding::Binary),
            _ => None,
        }
    }
}

/// True for the error kinds a socket read returns when its read
/// timeout expires (platform-dependent: `WouldBlock` or `TimedOut`).
fn is_timeout(e: &std::io::Error) -> bool {
    matches!(
        e.kind(),
        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
    )
}

/// Writes one frame: 4-byte big-endian length, then the JSON text.
pub fn write_frame(w: &mut impl Write, payload: &Json) -> Result<(), ServeError> {
    let bytes = encode_frame(payload)?;
    w.write_all(&bytes)?;
    w.flush()?;
    Ok(())
}

/// Writes one frame in the given payload encoding.
pub fn write_frame_as(
    w: &mut impl Write,
    payload: &Json,
    encoding: Encoding,
) -> Result<(), ServeError> {
    let bytes = encode_frame_as(payload, encoding)?;
    w.write_all(&bytes)?;
    w.flush()?;
    Ok(())
}

/// Serializes one value as a tagged `PMCB1` binary body (no magic, no
/// length prefix — [`encode_frame_as`] adds both).
fn encode_binary_value(v: &Json, out: &mut Vec<u8>) {
    match v {
        Json::Null => out.push(TAG_NULL),
        Json::Bool(false) => out.push(TAG_FALSE),
        Json::Bool(true) => out.push(TAG_TRUE),
        Json::Num(x) => {
            if x.is_finite() {
                out.push(TAG_NUM);
                out.extend_from_slice(&x.to_bits().to_le_bytes());
            } else {
                // The JSON encoding serializes non-finite floats as
                // null; mirror it so both encodings agree.
                out.push(TAG_NULL);
            }
        }
        Json::Str(s) => {
            out.push(TAG_STR);
            out.extend_from_slice(&(s.len() as u32).to_le_bytes());
            out.extend_from_slice(s.as_bytes());
        }
        Json::Arr(items) => {
            let all_finite_nums = !items.is_empty()
                && items
                    .iter()
                    .all(|i| matches!(i, Json::Num(x) if x.is_finite()));
            if all_finite_nums {
                // Packed fast path: counter-delta arrays are the hot
                // payload, one tag + contiguous bit patterns.
                out.push(TAG_F64S);
                out.extend_from_slice(&(items.len() as u32).to_le_bytes());
                for i in items {
                    if let Json::Num(x) = i {
                        out.extend_from_slice(&x.to_bits().to_le_bytes());
                    }
                }
            } else {
                out.push(TAG_ARR);
                out.extend_from_slice(&(items.len() as u32).to_le_bytes());
                for i in items {
                    encode_binary_value(i, out);
                }
            }
        }
        Json::Obj(fields) => {
            out.push(TAG_OBJ);
            out.extend_from_slice(&(fields.len() as u32).to_le_bytes());
            for (k, val) in fields {
                out.extend_from_slice(&(k.len() as u32).to_le_bytes());
                out.extend_from_slice(k.as_bytes());
                encode_binary_value(val, out);
            }
        }
    }
}

fn binary_error(reason: impl Into<String>) -> ServeError {
    ServeError::Protocol {
        reason: format!("binary payload: {}", reason.into()),
    }
}

fn take<'a>(buf: &'a [u8], pos: &mut usize, n: usize) -> Result<&'a [u8], ServeError> {
    let end = pos
        .checked_add(n)
        .filter(|&e| e <= buf.len())
        .ok_or_else(|| binary_error("truncated value"))?;
    let slice = &buf[*pos..end];
    *pos = end;
    Ok(slice)
}

fn take_u32(buf: &[u8], pos: &mut usize) -> Result<u32, ServeError> {
    let b = take(buf, pos, 4)?;
    Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
}

fn take_f64(buf: &[u8], pos: &mut usize) -> Result<f64, ServeError> {
    let b = take(buf, pos, 8)?;
    let x = f64::from_bits(u64::from_le_bytes([
        b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
    ]));
    if !x.is_finite() {
        return Err(binary_error("non-finite float bit pattern"));
    }
    Ok(x)
}

fn take_str(buf: &[u8], pos: &mut usize) -> Result<String, ServeError> {
    let len = take_u32(buf, pos)? as usize;
    let bytes = take(buf, pos, len).map_err(|_| binary_error("truncated string"))?;
    std::str::from_utf8(bytes)
        .map(str::to_string)
        .map_err(|_| binary_error("string is not UTF-8"))
}

fn decode_binary_value(buf: &[u8], pos: &mut usize, depth: usize) -> Result<Json, ServeError> {
    if depth > MAX_BINARY_DEPTH {
        return Err(binary_error(format!(
            "nesting exceeds {MAX_BINARY_DEPTH} levels"
        )));
    }
    let tag = take(buf, pos, 1)?[0];
    match tag {
        TAG_NULL => Ok(Json::Null),
        TAG_FALSE => Ok(Json::Bool(false)),
        TAG_TRUE => Ok(Json::Bool(true)),
        TAG_NUM => Ok(Json::Num(take_f64(buf, pos)?)),
        TAG_STR => Ok(Json::Str(take_str(buf, pos)?)),
        TAG_ARR => {
            let count = take_u32(buf, pos)? as usize;
            // Each element needs at least its tag byte, so a count
            // beyond the remaining bytes is a lie — reject before
            // allocating for it.
            if count > buf.len() - *pos {
                return Err(binary_error("array count exceeds payload"));
            }
            let mut items = Vec::with_capacity(count);
            for _ in 0..count {
                items.push(decode_binary_value(buf, pos, depth + 1)?);
            }
            Ok(Json::Arr(items))
        }
        TAG_F64S => {
            let count = take_u32(buf, pos)? as usize;
            if count.saturating_mul(8) > buf.len() - *pos {
                return Err(binary_error("f64 array count exceeds payload"));
            }
            let mut items = Vec::with_capacity(count);
            for _ in 0..count {
                items.push(Json::Num(take_f64(buf, pos)?));
            }
            Ok(Json::Arr(items))
        }
        TAG_OBJ => {
            let count = take_u32(buf, pos)? as usize;
            // Each field needs at least a key length and a value tag.
            if count.saturating_mul(5) > buf.len() - *pos {
                return Err(binary_error("object count exceeds payload"));
            }
            let mut fields = Vec::with_capacity(count);
            for _ in 0..count {
                let key = take_str(buf, pos)?;
                let val = decode_binary_value(buf, pos, depth + 1)?;
                fields.push((key, val));
            }
            Ok(Json::Obj(fields))
        }
        other => Err(binary_error(format!("unknown tag 0x{other:02x}"))),
    }
}

/// Decodes one complete `PMCB1` binary payload (magic included).
/// Rejects missing magic, truncation, unknown tags, non-finite float
/// bit patterns, lying counts, over-deep nesting, and trailing bytes —
/// all as in-sync payload errors (the frame was well-delimited).
pub fn decode_binary_payload(payload: &[u8]) -> Result<Json, ServeError> {
    let body = payload
        .strip_prefix(BINARY_MAGIC.as_slice())
        .ok_or_else(|| binary_error("missing PMCB1 magic"))?;
    let mut pos = 0;
    let v = decode_binary_value(body, &mut pos, 0)?;
    if pos != body.len() {
        return Err(binary_error(format!(
            "{} trailing bytes after value",
            body.len() - pos
        )));
    }
    Ok(v)
}

/// Serializes one frame in the given payload encoding (length prefix
/// included) — the encoding-aware sibling of [`encode_frame`].
pub fn encode_frame_as(payload: &Json, encoding: Encoding) -> Result<Vec<u8>, ServeError> {
    match encoding {
        Encoding::Json => encode_frame(payload),
        Encoding::Binary => {
            let mut body = Vec::with_capacity(64);
            body.extend_from_slice(BINARY_MAGIC);
            encode_binary_value(payload, &mut body);
            if body.len() as u64 > MAX_FRAME_BYTES as u64 {
                return Err(ServeError::Protocol {
                    reason: format!("outgoing frame of {} bytes exceeds cap", body.len()),
                });
            }
            let mut out = Vec::with_capacity(4 + body.len());
            out.extend_from_slice(&(body.len() as u32).to_be_bytes());
            out.extend_from_slice(&body);
            Ok(out)
        }
    }
}

/// Sniffs the payload encoding of one complete raw frame (length
/// prefix included) — how a relay knows which encoding to re-encode
/// in when it must rewrite a frame it otherwise copies verbatim.
pub fn raw_frame_encoding(raw: &[u8]) -> Encoding {
    if raw.len() >= 4 + BINARY_MAGIC.len() && &raw[4..4 + BINARY_MAGIC.len()] == BINARY_MAGIC {
        Encoding::Binary
    } else {
        Encoding::Json
    }
}

/// Serializes one frame (length prefix + JSON text) into a byte
/// vector — the building block for buffered non-blocking writers that
/// cannot use [`write_frame`]'s all-or-nothing `write_all`.
pub fn encode_frame(payload: &Json) -> Result<Vec<u8>, ServeError> {
    let text = payload.to_string();
    let bytes = text.as_bytes();
    if bytes.len() as u64 > MAX_FRAME_BYTES as u64 {
        return Err(ServeError::Protocol {
            reason: format!("outgoing frame of {} bytes exceeds cap", bytes.len()),
        });
    }
    let mut out = Vec::with_capacity(4 + bytes.len());
    out.extend_from_slice(&(bytes.len() as u32).to_be_bytes());
    out.extend_from_slice(bytes);
    Ok(out)
}

/// Attempts to parse one frame from the front of an accumulation
/// buffer (the readiness-loop read path: bytes arrive in arbitrary
/// fragments and pile up per connection).
///
/// Returns `Ok(Some((frame, consumed)))` when a complete frame is
/// available — the caller must drain `consumed` bytes. `Ok(None)`
/// means the buffer holds only a partial frame; read more. An
/// oversized length prefix is a [`ServeError::Protocol`] error (the
/// connection must be dropped: the stream cannot be resynchronized),
/// while a complete frame whose payload is not UTF-8 JSON is a
/// [`ServeError::Json`]/[`ServeError::Protocol`] error *after* the
/// frame was consumed from the buffer — the caller learns how many
/// bytes to drop via the error path below, so the stream stays in
/// sync. To keep that distinction simple, payload-level failures are
/// reported through [`FrameError::Payload`] with the consumed length.
pub fn parse_frame(
    buf: &[u8],
    max_bytes: u32,
) -> std::result::Result<Option<(Json, usize)>, FrameError> {
    if buf.len() < 4 {
        return Ok(None);
    }
    let len = u32::from_be_bytes([buf[0], buf[1], buf[2], buf[3]]);
    if len > max_bytes {
        return Err(FrameError::Fatal(ServeError::Protocol {
            reason: format!("frame of {len} bytes exceeds {max_bytes}-byte cap"),
        }));
    }
    let total = 4 + len as usize;
    if buf.len() < total {
        return Ok(None);
    }
    let payload = &buf[4..total];
    if payload.starts_with(BINARY_MAGIC) {
        return match decode_binary_payload(payload) {
            Ok(v) => Ok(Some((v, total))),
            Err(error) => Err(FrameError::Payload {
                consumed: total,
                error,
            }),
        };
    }
    let text = match std::str::from_utf8(payload) {
        Ok(t) => t,
        Err(_) => {
            return Err(FrameError::Payload {
                consumed: total,
                error: ServeError::Protocol {
                    reason: "frame payload is not UTF-8".into(),
                },
            })
        }
    };
    match Json::parse(text) {
        Ok(v) => Ok(Some((v, total))),
        Err(e) => Err(FrameError::Payload {
            consumed: total,
            error: ServeError::Json(e),
        }),
    }
}

/// How buffer-based frame parsing fails.
#[derive(Debug)]
pub enum FrameError {
    /// The stream is desynchronized (hostile length prefix); the
    /// connection must be dropped.
    Fatal(ServeError),
    /// The frame was well-delimited but its payload was garbage. The
    /// stream is still in sync: drop `consumed` bytes, answer with the
    /// error, keep serving.
    Payload {
        /// Bytes of the offending frame to drain from the buffer.
        consumed: usize,
        /// What was wrong with the payload.
        error: ServeError,
    },
}

/// Reads one frame under the default [`MAX_FRAME_BYTES`] cap.
pub fn read_frame(r: &mut impl Read) -> Result<Option<Json>, ServeError> {
    read_frame_limited(r, MAX_FRAME_BYTES)
}

/// Reads one frame with a caller-chosen payload cap. Returns
/// `Ok(None)` on clean end-of-stream (EOF at a frame boundary);
/// mid-frame EOF, an oversized length prefix, or malformed JSON are
/// errors.
///
/// When the underlying stream has a read timeout, its expiry maps to
/// [`ServeError::Deadline`]: `mid_frame: false` if it hit before any
/// byte of the frame arrived (an idle poll — the stream is still in
/// sync and the caller may retry), `mid_frame: true` if it hit with a
/// frame partially read (the stream is desynchronized and must be
/// dropped).
pub fn read_frame_limited(r: &mut impl Read, max_bytes: u32) -> Result<Option<Json>, ServeError> {
    let mut len_buf = [0u8; 4];
    // Clean EOF only if the very first length byte is missing.
    match r.read(&mut len_buf) {
        Err(e) if is_timeout(&e) => return Err(ServeError::Deadline { mid_frame: false }),
        Err(e) => return Err(ServeError::Io(e)),
        Ok(0) => return Ok(None),
        Ok(mut n) => {
            while n < 4 {
                match r.read(&mut len_buf[n..]) {
                    Err(e) if is_timeout(&e) => {
                        return Err(ServeError::Deadline { mid_frame: true })
                    }
                    Err(e) => return Err(ServeError::Io(e)),
                    Ok(0) => {
                        return Err(ServeError::Protocol {
                            reason: "stream truncated inside a frame header".into(),
                        })
                    }
                    Ok(got) => n += got,
                }
            }
        }
    }
    let len = u32::from_be_bytes(len_buf);
    if len > max_bytes {
        return Err(ServeError::Protocol {
            reason: format!("frame of {len} bytes exceeds {max_bytes}-byte cap"),
        });
    }
    let mut payload = vec![0u8; len as usize];
    r.read_exact(&mut payload).map_err(|e| {
        if e.kind() == std::io::ErrorKind::UnexpectedEof {
            ServeError::Protocol {
                reason: "stream truncated inside a frame payload".into(),
            }
        } else if is_timeout(&e) {
            ServeError::Deadline { mid_frame: true }
        } else {
            ServeError::Io(e)
        }
    })?;
    if payload.starts_with(BINARY_MAGIC) {
        return Ok(Some(decode_binary_payload(&payload)?));
    }
    let text = std::str::from_utf8(&payload).map_err(|_| ServeError::Protocol {
        reason: "frame payload is not UTF-8".into(),
    })?;
    Ok(Some(Json::parse(text)?))
}

/// A client request.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Stream one counter sample into this connection's estimator.
    Ingest(CounterSample),
    /// Fetch the latest estimate; `now_ns` drives the staleness flag.
    Estimate {
        /// The client's current clock, nanoseconds.
        now_ns: u64,
    },
    /// Load a model artifact into the registry.
    LoadModel {
        /// Deployment name to load under.
        name: String,
        /// The serialized model (a [`pmc_model::model::PowerModel`] value).
        model: Json,
        /// Activate immediately after loading.
        activate: bool,
    },
    /// Activate a loaded model.
    Activate {
        /// Deployment name.
        name: String,
        /// Version under that name.
        version: u32,
    },
    /// Restore the previously active model.
    Rollback,
    /// Server and registry statistics.
    Stats,
    /// Diagnostic echo that holds a worker for `delay_ms` (the server
    /// caps the delay). Exists so overload, shedding and drain paths
    /// can be exercised deterministically in tests and drills.
    Ping {
        /// Requested worker hold time, milliseconds (server-capped).
        delay_ms: u64,
    },
    /// Liveness probe: answered inline by the server core (never
    /// queued behind workers), so it succeeds as long as the event
    /// loop turns — even with the whole pool wedged.
    Healthz,
    /// Readiness probe: like [`Request::Healthz`] answered inline, but
    /// reports whether the server should receive traffic (not
    /// draining, a model active, supervisor not flapping) plus
    /// checkpoint age and stuck-worker diagnostics.
    Readyz,
    /// Prometheus-style plaintext scrape of the server counters.
    Metrics,
    /// Bind this connection to a durable client identity. Engine state
    /// keyed by the token survives disconnects and — with
    /// checkpointing on — server restarts, so a reconnecting client
    /// resumes its sliding window instead of cold-starting.
    Resume {
        /// Stable client-chosen identity token (non-empty).
        token: String,
    },
    /// Force an immediate engine checkpoint (ops/test hook). Errors
    /// if the server was started without `--checkpoint`.
    Checkpoint,
    /// Drain one durable (token-keyed) client window into a
    /// self-contained checkpoint record (the PR 5 on-disk client
    /// format) — the export half of live migration. With `keep` false
    /// (the default) the window is forgotten after export, so the old
    /// owner stops serving it; `keep: true` is a non-destructive copy
    /// for inspection.
    MigrateExport {
        /// The resume token whose window to export.
        token: String,
        /// Keep the window after exporting instead of forgetting it.
        keep: bool,
    },
    /// Replay an exported client-window checkpoint record into this
    /// server's engine — the import half of live migration. The record
    /// must be keyed in the durable (resume-token) namespace.
    MigrateImport {
        /// The checkpoint record produced by a `migrate_export`.
        record: Json,
    },
    /// Negotiate the connection's frame payload encoding. Must be the
    /// first frame on a connection (a `hello` after any data frame is
    /// a typed error); an unknown encoding name falls back to JSON
    /// with a typed notice in the ok response. The response travels in
    /// the newly agreed encoding.
    Hello {
        /// Requested encoding name (`"json"` or `"binary"`).
        encoding: String,
    },
    /// `(key, dirty_seq)` for every durable (token-keyed) window on
    /// this server. The replication anti-entropy poll: a router
    /// compares sequence numbers against its last drain and exports
    /// only the windows that moved, instead of copying every window
    /// every round.
    WindowSeqs,
    /// Stream one **labeled** sample — a counter vector plus measured
    /// watts — into the online-learning loop. The sample passes the
    /// quarantine gate (typed rejection reasons), feeds the incremental
    /// fit, and scores the shadow candidate against the active model.
    Train {
        /// The counter sample (same shape as `ingest`).
        sample: CounterSample,
        /// Measured power label, watts. Non-finite labels travel as
        /// JSON/binary null and decode back to NaN, so the quarantine
        /// gate — not the codec — rejects them with a typed reason.
        power_w: f64,
    },
}

impl Request {
    /// Serializes to the wire JSON shape.
    pub fn to_json_value(&self) -> Json {
        match self {
            Request::Ingest(s) => Json::obj(vec![
                ("op", Json::from("ingest")),
                ("sample", s.to_json_value()),
            ]),
            Request::Estimate { now_ns } => Json::obj(vec![
                ("op", Json::from("estimate")),
                ("now_ns", Json::from(*now_ns)),
            ]),
            Request::LoadModel {
                name,
                model,
                activate,
            } => Json::obj(vec![
                ("op", Json::from("load_model")),
                ("name", Json::from(name.as_str())),
                ("model", model.clone()),
                ("activate", Json::Bool(*activate)),
            ]),
            Request::Activate { name, version } => Json::obj(vec![
                ("op", Json::from("activate")),
                ("name", Json::from(name.as_str())),
                ("version", Json::from(*version)),
            ]),
            Request::Rollback => Json::obj(vec![("op", Json::from("rollback"))]),
            Request::Stats => Json::obj(vec![("op", Json::from("stats"))]),
            Request::Ping { delay_ms } => Json::obj(vec![
                ("op", Json::from("ping")),
                ("delay_ms", Json::from(*delay_ms)),
            ]),
            Request::Healthz => Json::obj(vec![("op", Json::from("healthz"))]),
            Request::Readyz => Json::obj(vec![("op", Json::from("readyz"))]),
            Request::Metrics => Json::obj(vec![("op", Json::from("metrics"))]),
            Request::Resume { token } => Json::obj(vec![
                ("op", Json::from("resume")),
                ("token", Json::from(token.as_str())),
            ]),
            Request::Checkpoint => Json::obj(vec![("op", Json::from("checkpoint"))]),
            Request::MigrateExport { token, keep } => Json::obj(vec![
                ("op", Json::from("migrate_export")),
                ("token", Json::from(token.as_str())),
                ("keep", Json::Bool(*keep)),
            ]),
            Request::MigrateImport { record } => Json::obj(vec![
                ("op", Json::from("migrate_import")),
                ("record", record.clone()),
            ]),
            Request::Hello { encoding } => Json::obj(vec![
                ("op", Json::from("hello")),
                ("encoding", Json::from(encoding.as_str())),
            ]),
            Request::WindowSeqs => Json::obj(vec![("op", Json::from("window_seqs"))]),
            Request::Train { sample, power_w } => Json::obj(vec![
                ("op", Json::from("train")),
                ("sample", sample.to_json_value()),
                ("power_w", Json::from(*power_w)),
            ]),
        }
    }

    /// Parses a request frame.
    pub fn from_json_value(v: &Json) -> Result<Self, ServeError> {
        let op = v.str_field("op")?;
        match op {
            "ingest" => Ok(Request::Ingest(CounterSample::from_json_value(
                v.field("sample")?,
            )?)),
            "estimate" => Ok(Request::Estimate {
                now_ns: v.u64_field("now_ns")?,
            }),
            "load_model" => Ok(Request::LoadModel {
                name: v.str_field("name")?.to_string(),
                model: v.field("model")?.clone(),
                activate: v.field("activate")?.as_bool()?,
            }),
            "activate" => Ok(Request::Activate {
                name: v.str_field("name")?.to_string(),
                version: v.u32_field("version")?,
            }),
            "rollback" => Ok(Request::Rollback),
            "stats" => Ok(Request::Stats),
            "ping" => Ok(Request::Ping {
                delay_ms: v.u64_field("delay_ms").unwrap_or(0),
            }),
            "healthz" => Ok(Request::Healthz),
            "readyz" => Ok(Request::Readyz),
            "metrics" => Ok(Request::Metrics),
            "resume" => {
                let token = v.str_field("token")?.to_string();
                if token.is_empty() {
                    return Err(ServeError::Protocol {
                        reason: "resume token must be non-empty".into(),
                    });
                }
                Ok(Request::Resume { token })
            }
            "checkpoint" => Ok(Request::Checkpoint),
            "migrate_export" => {
                let token = v.str_field("token")?.to_string();
                if token.is_empty() {
                    return Err(ServeError::Protocol {
                        reason: "migrate_export token must be non-empty".into(),
                    });
                }
                Ok(Request::MigrateExport {
                    token,
                    keep: v
                        .field("keep")
                        .ok()
                        .and_then(|k| k.as_bool().ok())
                        .unwrap_or(false),
                })
            }
            "migrate_import" => Ok(Request::MigrateImport {
                record: v.field("record")?.clone(),
            }),
            "hello" => Ok(Request::Hello {
                // An absent name negotiates the default explicitly.
                encoding: v
                    .str_field("encoding")
                    .unwrap_or(Encoding::Json.as_str())
                    .to_string(),
            }),
            "window_seqs" => Ok(Request::WindowSeqs),
            "train" => Ok(Request::Train {
                sample: CounterSample::from_json_value(v.field("sample")?)?,
                // Non-finite labels encode as null; surface them as NaN
                // so the training gate quarantines with a typed reason
                // instead of the codec dropping the sample.
                power_w: v.f64_field("power_w").unwrap_or(f64::NAN),
            }),
            other => Err(ServeError::Protocol {
                reason: format!("unknown op {other:?}"),
            }),
        }
    }
}

/// Reads the optional propagated deadline budget off a raw request
/// frame. `deadline_ms` is a top-level field carrying the client's
/// **remaining patience** in milliseconds — each hop converts it to an
/// absolute deadline on arrival, and a relay decrements it by its own
/// elapsed time before forwarding, so a budget can only shrink on its
/// way downstream (retries never exceed the client's original
/// patience). Absent or malformed means "no deadline"; old peers
/// ignore the field entirely, so it is additive on the wire.
pub fn frame_deadline_ms(frame: &Json) -> Option<u64> {
    frame.get("deadline_ms").and_then(|v| v.as_u64().ok())
}

/// Returns `frame` with its `deadline_ms` budget set to `ms`,
/// replacing any prior value — the client-side stamp and the router's
/// decrement-before-relay re-encode. Non-object frames pass through
/// unchanged (request parsing reports its own error for those).
pub fn with_deadline_ms(frame: &Json, ms: u64) -> Json {
    match frame {
        Json::Obj(fields) => {
            let mut out: Vec<(String, Json)> = fields
                .iter()
                .filter(|(k, _)| k != "deadline_ms")
                .cloned()
                .collect();
            out.push(("deadline_ms".to_string(), Json::from(ms)));
            Json::Obj(out)
        }
        other => other.clone(),
    }
}

/// True if a raw request frame is an `ingest` — the only op the batch
/// scheduler lingers for. A cheap field peek; full request parsing
/// (and its error reporting) still happens at execution time.
pub(crate) fn is_ingest_frame(frame: &Json) -> bool {
    matches!(frame.str_field("op"), Ok("ingest"))
}

/// True if a raw request frame is an op the server core answers
/// inline, without a worker: health/readiness probes, metrics
/// scrapes, connection identity binding, and encoding negotiation.
/// These must keep working when the worker pool is saturated, wedged,
/// or flapping — that is the whole point of a liveness probe (and
/// `hello` must mutate per-connection encoding state only the core
/// owns).
pub(crate) fn is_core_inline_frame(frame: &Json) -> bool {
    matches!(
        frame.str_field("op"),
        Ok("healthz") | Ok("readyz") | Ok("metrics") | Ok("resume") | Ok("hello")
    )
}

/// True if a raw request frame is a `hello` — the one op that does
/// not count as a data frame for negotiation ordering.
pub(crate) fn is_hello_frame(frame: &Json) -> bool {
    matches!(frame.str_field("op"), Ok("hello"))
}

/// Wraps a result payload in an ok-response frame.
pub fn ok_response(result: Json) -> Json {
    Json::obj(vec![("status", Json::from("ok")), ("result", result)])
}

/// Wraps an error in an error-response frame. Overload and drain are
/// **typed statuses** on the wire (not flattened into a message
/// string) so clients can machine-read the backoff hint and tell a
/// shedding server from a broken request.
pub fn error_response(err: &ServeError) -> Json {
    match err {
        ServeError::Overloaded { retry_after_ms } => Json::obj(vec![
            ("status", Json::from("overloaded")),
            ("retry_after_ms", Json::from(*retry_after_ms)),
        ]),
        ServeError::Draining => Json::obj(vec![("status", Json::from("draining"))]),
        ServeError::DeadlineExceeded { remaining_ms } => Json::obj(vec![
            ("status", Json::from("deadline_exceeded")),
            ("remaining_ms", Json::from(*remaining_ms)),
        ]),
        ServeError::Internal { reason } => Json::obj(vec![
            ("status", Json::from("internal_error")),
            ("error", Json::from(reason.as_str())),
        ]),
        _ => Json::obj(vec![
            ("status", Json::from("error")),
            ("error", Json::from(err.to_string())),
        ]),
    }
}

/// Unwraps a response frame: the `result` payload, or the server's
/// error surfaced as a typed error — [`ServeError::Overloaded`] with
/// its backoff hint, [`ServeError::Draining`], or the catch-all
/// [`ServeError::Server`] carrying the message verbatim (so callers —
/// and retry loops — can tell a server-reported failure from a local
/// transport one).
pub fn unwrap_response(v: Json) -> Result<Json, ServeError> {
    match v.str_field("status")? {
        "ok" => Ok(v.field("result")?.clone()),
        "overloaded" => Err(ServeError::Overloaded {
            retry_after_ms: v.u64_field("retry_after_ms").unwrap_or(0),
        }),
        "draining" => Err(ServeError::Draining),
        "deadline_exceeded" => Err(ServeError::DeadlineExceeded {
            remaining_ms: v.u64_field("remaining_ms").unwrap_or(0),
        }),
        "internal_error" => Err(ServeError::Internal {
            reason: v
                .str_field("error")
                .map(|s| s.to_string())
                .unwrap_or_else(|_| "unspecified".into()),
        }),
        "error" => Err(ServeError::Server {
            message: v.str_field("error")?.to_string(),
        }),
        other => Err(ServeError::Protocol {
            reason: format!("unknown response status {other:?}"),
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn roundtrip(req: Request) {
        let mut buf = Vec::new();
        write_frame(&mut buf, &req.to_json_value()).unwrap();
        let got = read_frame(&mut Cursor::new(&buf)).unwrap().unwrap();
        assert_eq!(Request::from_json_value(&got).unwrap(), req);
    }

    #[test]
    fn requests_roundtrip() {
        roundtrip(Request::Ingest(CounterSample {
            time_ns: 5,
            duration_s: 0.5,
            freq_mhz: 2400,
            voltage: 1.0,
            deltas: vec![1.0, 2.0],
            missing: vec![1],
        }));
        roundtrip(Request::Estimate { now_ns: 77 });
        roundtrip(Request::Activate {
            name: "hsw".into(),
            version: 2,
        });
        roundtrip(Request::Rollback);
        roundtrip(Request::Stats);
        roundtrip(Request::Ping { delay_ms: 12 });
        roundtrip(Request::LoadModel {
            name: "hsw".into(),
            model: Json::obj(vec![("k", Json::from(1.0))]),
            activate: true,
        });
        roundtrip(Request::Healthz);
        roundtrip(Request::Readyz);
        roundtrip(Request::Metrics);
        roundtrip(Request::Resume {
            token: "client-7".into(),
        });
        roundtrip(Request::Checkpoint);
        roundtrip(Request::MigrateExport {
            token: "client-7".into(),
            keep: true,
        });
        roundtrip(Request::MigrateImport {
            record: Json::obj(vec![("key", Json::from("8000000000000001"))]),
        });
        roundtrip(Request::WindowSeqs);
        roundtrip(Request::Hello {
            encoding: "binary".into(),
        });
        // Finite labels only: NaN breaks PartialEq, and non-finite
        // labels intentionally decode differently (see test below).
        roundtrip(Request::Train {
            sample: CounterSample {
                time_ns: 9,
                duration_s: 0.25,
                freq_mhz: 2600,
                voltage: 1.05,
                deltas: vec![3.0, 4.0],
                missing: vec![],
            },
            power_w: 142.5,
        });
    }

    #[test]
    fn train_nonfinite_label_decodes_as_nan() {
        // A NaN label encodes as null on the wire (both codecs); the
        // decoder must hand the gate a NaN, not a protocol error.
        let req = Request::Train {
            sample: CounterSample {
                time_ns: 1,
                duration_s: 0.5,
                freq_mhz: 2400,
                voltage: 1.0,
                deltas: vec![1.0],
                missing: vec![],
            },
            power_w: f64::NAN,
        };
        let mut buf = Vec::new();
        write_frame(&mut buf, &req.to_json_value()).unwrap();
        let got = read_frame(&mut Cursor::new(&buf)).unwrap().unwrap();
        match Request::from_json_value(&got).unwrap() {
            Request::Train { power_w, .. } => assert!(power_w.is_nan()),
            other => panic!("expected train, got {other:?}"),
        }
    }

    #[test]
    fn hello_without_encoding_defaults_to_json() {
        let v = Json::obj(vec![("op", Json::from("hello"))]);
        match Request::from_json_value(&v).unwrap() {
            Request::Hello { encoding } => assert_eq!(encoding, "json"),
            other => panic!("expected hello, got {other:?}"),
        }
    }

    #[test]
    fn migrate_export_defaults_to_drain_semantics() {
        let v = Json::obj(vec![
            ("op", Json::from("migrate_export")),
            ("token", Json::from("client-7")),
        ]);
        match Request::from_json_value(&v).unwrap() {
            Request::MigrateExport { keep, .. } => assert!(!keep),
            other => panic!("expected migrate_export, got {other:?}"),
        }
        let empty = Json::obj(vec![
            ("op", Json::from("migrate_export")),
            ("token", Json::from("")),
        ]);
        assert!(Request::from_json_value(&empty).is_err());
    }

    #[test]
    fn empty_resume_token_rejected() {
        let v = Json::obj(vec![
            ("op", Json::from("resume")),
            ("token", Json::from("")),
        ]);
        assert!(matches!(
            Request::from_json_value(&v),
            Err(ServeError::Protocol { .. })
        ));
    }

    #[test]
    fn core_inline_ops_are_recognized() {
        for op in ["healthz", "readyz", "metrics", "resume", "hello"] {
            assert!(is_core_inline_frame(&Json::obj(vec![(
                "op",
                Json::from(op)
            )])));
        }
        for op in ["ingest", "stats", "ping", "checkpoint"] {
            assert!(!is_core_inline_frame(&Json::obj(vec![(
                "op",
                Json::from(op)
            )])));
        }
    }

    #[test]
    fn internal_error_is_a_typed_status() {
        let err = error_response(&ServeError::Internal {
            reason: "worker panicked".into(),
        });
        assert_eq!(err.str_field("status").unwrap(), "internal_error");
        match unwrap_response(err).unwrap_err() {
            ServeError::Internal { reason } => assert!(reason.contains("panicked")),
            other => panic!("expected internal error, got {other:?}"),
        }
    }

    #[test]
    fn clean_eof_is_none() {
        assert!(read_frame(&mut Cursor::new(&[])).unwrap().is_none());
    }

    #[test]
    fn truncated_header_and_payload_are_errors() {
        let mut buf = Vec::new();
        write_frame(&mut buf, &Json::obj(vec![("op", Json::from("stats"))])).unwrap();
        // Cut inside the header.
        assert!(read_frame(&mut Cursor::new(&buf[..2])).is_err());
        // Cut inside the payload.
        assert!(read_frame(&mut Cursor::new(&buf[..buf.len() - 3])).is_err());
    }

    #[test]
    fn oversized_length_prefix_rejected_without_allocation() {
        let buf = u32::MAX.to_be_bytes();
        let err = read_frame(&mut Cursor::new(&buf)).unwrap_err();
        assert!(matches!(err, ServeError::Protocol { .. }));
    }

    #[test]
    fn non_json_payload_is_typed_error() {
        let payload = b"not json";
        let mut buf = Vec::new();
        buf.extend_from_slice(&(payload.len() as u32).to_be_bytes());
        buf.extend_from_slice(payload);
        assert!(matches!(
            read_frame(&mut Cursor::new(&buf)),
            Err(ServeError::Json(_))
        ));
    }

    #[test]
    fn tightened_cap_rejects_what_the_default_allows() {
        let mut buf = Vec::new();
        write_frame(&mut buf, &Json::obj(vec![("op", Json::from("stats"))])).unwrap();
        assert!(read_frame_limited(&mut Cursor::new(&buf), 4).is_err());
        assert!(read_frame_limited(&mut Cursor::new(&buf), MAX_FRAME_BYTES)
            .unwrap()
            .is_some());
    }

    /// A reader that yields `n` bytes, then times out forever.
    struct TimesOutAfter {
        data: Vec<u8>,
        pos: usize,
    }

    impl Read for TimesOutAfter {
        fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
            if self.pos >= self.data.len() {
                return Err(std::io::Error::from(std::io::ErrorKind::WouldBlock));
            }
            let n = buf.len().min(self.data.len() - self.pos);
            buf[..n].copy_from_slice(&self.data[self.pos..self.pos + n]);
            self.pos += n;
            Ok(n)
        }
    }

    #[test]
    fn timeout_between_frames_is_a_recoverable_deadline() {
        let mut r = TimesOutAfter {
            data: vec![],
            pos: 0,
        };
        assert!(matches!(
            read_frame(&mut r),
            Err(ServeError::Deadline { mid_frame: false })
        ));
    }

    #[test]
    fn timeout_mid_frame_is_a_fatal_deadline() {
        let mut buf = Vec::new();
        write_frame(&mut buf, &Json::obj(vec![("op", Json::from("stats"))])).unwrap();
        // Cut inside the header and inside the payload.
        for cut in [2, buf.len() - 3] {
            let mut r = TimesOutAfter {
                data: buf[..cut].to_vec(),
                pos: 0,
            };
            assert!(matches!(
                read_frame(&mut r),
                Err(ServeError::Deadline { mid_frame: true })
            ));
        }
    }

    #[test]
    fn unknown_op_rejected() {
        let v = Json::obj(vec![("op", Json::from("dance"))]);
        assert!(Request::from_json_value(&v).is_err());
    }

    #[test]
    fn response_wrappers() {
        let ok = ok_response(Json::from(1.0));
        assert_eq!(unwrap_response(ok).unwrap(), Json::from(1.0));
        // Overload round-trips as a typed status with its backoff hint.
        let err = error_response(&ServeError::Overloaded { retry_after_ms: 40 });
        assert_eq!(err.str_field("status").unwrap(), "overloaded");
        let e = unwrap_response(err).unwrap_err();
        assert!(matches!(e, ServeError::Overloaded { retry_after_ms: 40 }));
        // So does draining.
        let err = error_response(&ServeError::Draining);
        assert_eq!(err.str_field("status").unwrap(), "draining");
        assert!(matches!(
            unwrap_response(err).unwrap_err(),
            ServeError::Draining
        ));
        // Everything else stays a message-carrying error status.
        let err = error_response(&ServeError::Protocol {
            reason: "bad".into(),
        });
        assert!(matches!(
            unwrap_response(err).unwrap_err(),
            ServeError::Server { .. }
        ));
    }

    #[test]
    fn deadline_budget_is_additive_and_restampable() {
        // No budget by default.
        let frame = Request::Stats.to_json_value();
        assert_eq!(frame_deadline_ms(&frame), None);
        // Stamping adds the field; restamping replaces it (no dupes).
        let stamped = with_deadline_ms(&frame, 250);
        assert_eq!(frame_deadline_ms(&stamped), Some(250));
        let restamped = with_deadline_ms(&stamped, 100);
        assert_eq!(frame_deadline_ms(&restamped), Some(100));
        let fields = restamped.as_obj().unwrap();
        assert_eq!(fields.iter().filter(|(k, _)| k == "deadline_ms").count(), 1);
        // The field is invisible to request parsing — old servers
        // that don't know deadlines parse the frame unchanged.
        assert_eq!(
            Request::from_json_value(&restamped).unwrap(),
            Request::Stats
        );
        // Malformed budgets read as "no deadline", not an error.
        let bad = Json::obj(vec![
            ("op", Json::from("stats")),
            ("deadline_ms", Json::from("soon")),
        ]);
        assert_eq!(frame_deadline_ms(&bad), None);
        // Non-object frames pass through the stamp untouched.
        assert_eq!(with_deadline_ms(&Json::Null, 5), Json::Null);
    }

    #[test]
    fn deadline_exceeded_is_a_typed_status() {
        let err = error_response(&ServeError::DeadlineExceeded { remaining_ms: 7 });
        assert_eq!(err.str_field("status").unwrap(), "deadline_exceeded");
        match unwrap_response(err).unwrap_err() {
            ServeError::DeadlineExceeded { remaining_ms } => assert_eq!(remaining_ms, 7),
            other => panic!("expected deadline_exceeded, got {other:?}"),
        }
    }

    #[test]
    fn parse_frame_handles_fragments_and_garbage() {
        let mut buf = Vec::new();
        write_frame(&mut buf, &Json::obj(vec![("op", Json::from("stats"))])).unwrap();
        // Every strict prefix is "incomplete", never an error.
        for cut in 0..buf.len() {
            assert!(matches!(
                parse_frame(&buf[..cut], MAX_FRAME_BYTES),
                Ok(None)
            ));
        }
        // The full buffer parses and reports its consumed length.
        let (v, consumed) = parse_frame(&buf, MAX_FRAME_BYTES).unwrap().unwrap();
        assert_eq!(consumed, buf.len());
        assert_eq!(v.str_field("op").unwrap(), "stats");
        // Two concatenated frames parse one at a time.
        let mut two = buf.clone();
        two.extend_from_slice(&buf);
        let (_, consumed) = parse_frame(&two, MAX_FRAME_BYTES).unwrap().unwrap();
        assert!(parse_frame(&two[consumed..], MAX_FRAME_BYTES)
            .unwrap()
            .is_some());
        // An oversized prefix is fatal; garbage JSON is a payload
        // error that still reports how much to drain.
        assert!(matches!(
            parse_frame(&u32::MAX.to_be_bytes(), MAX_FRAME_BYTES),
            Err(FrameError::Fatal(_))
        ));
        let mut bad = Vec::new();
        bad.extend_from_slice(&4u32.to_be_bytes());
        bad.extend_from_slice(b"nope");
        match parse_frame(&bad, MAX_FRAME_BYTES) {
            Err(FrameError::Payload { consumed, .. }) => assert_eq!(consumed, 8),
            other => panic!("expected payload error, got {other:?}"),
        }
    }

    fn roundtrip_binary(req: Request) {
        let v = req.to_json_value();
        let bytes = encode_frame_as(&v, Encoding::Binary).unwrap();
        assert_eq!(raw_frame_encoding(&bytes), Encoding::Binary);
        let (got, consumed) = parse_frame(&bytes, MAX_FRAME_BYTES).unwrap().unwrap();
        assert_eq!(consumed, bytes.len());
        assert_eq!(got, v, "binary decode disagrees with the source value");
        assert_eq!(Request::from_json_value(&got).unwrap(), req);
        // The blocking reader takes the same bytes.
        let via_reader = read_frame(&mut Cursor::new(&bytes)).unwrap().unwrap();
        assert_eq!(via_reader, v);
    }

    #[test]
    fn binary_requests_roundtrip() {
        roundtrip_binary(Request::Ingest(CounterSample {
            time_ns: 5,
            duration_s: 0.5,
            freq_mhz: 2400,
            voltage: 1.0,
            deltas: vec![1.0, 2.125, 1e-17, 4503599627370497.0],
            missing: vec![1],
        }));
        roundtrip_binary(Request::Estimate { now_ns: 77 });
        roundtrip_binary(Request::LoadModel {
            name: "hsw".into(),
            model: Json::obj(vec![("k", Json::from(1.0)), ("s", Json::from("x"))]),
            activate: true,
        });
        roundtrip_binary(Request::Resume {
            token: "client-7".into(),
        });
        roundtrip_binary(Request::Hello {
            encoding: "binary".into(),
        });
        roundtrip_binary(Request::WindowSeqs);
        roundtrip_binary(Request::Train {
            sample: CounterSample {
                time_ns: 9,
                duration_s: 0.25,
                freq_mhz: 2600,
                voltage: 1.05,
                deltas: vec![3.0, 4.0],
                missing: vec![],
            },
            power_w: 142.5,
        });
    }

    #[test]
    fn binary_floats_roundtrip_bitwise() {
        // Bit patterns that shortest-float JSON printing also handles,
        // plus awkward ones: subnormals, -0.0, and maximal-precision
        // values travel as raw bits in binary.
        for bits in [
            0u64,
            (-0.0f64).to_bits(),
            f64::MIN_POSITIVE.to_bits() >> 3, // subnormal
            1.0f64.to_bits() + 1,
            f64::MAX.to_bits(),
        ] {
            let x = f64::from_bits(bits);
            let v = Json::obj(vec![("x", Json::Num(x))]);
            let bytes = encode_frame_as(&v, Encoding::Binary).unwrap();
            let (got, _) = parse_frame(&bytes, MAX_FRAME_BYTES).unwrap().unwrap();
            match got.field("x").unwrap() {
                Json::Num(y) => assert_eq!(y.to_bits(), bits),
                other => panic!("expected number, got {other:?}"),
            }
        }
    }

    #[test]
    fn binary_nonfinite_encodes_as_null_like_json() {
        let v = Json::Arr(vec![
            Json::Num(f64::NAN),
            Json::Num(f64::INFINITY),
            Json::Num(1.0),
        ]);
        let bytes = encode_frame_as(&v, Encoding::Binary).unwrap();
        let (got, _) = parse_frame(&bytes, MAX_FRAME_BYTES).unwrap().unwrap();
        assert_eq!(got, Json::Arr(vec![Json::Null, Json::Null, Json::Num(1.0)]));
    }

    #[test]
    fn binary_decode_rejects_garbage_in_sync() {
        // Helper: wrap a raw binary body (after the magic) in a frame.
        let framed = |body: &[u8]| {
            let mut payload = BINARY_MAGIC.to_vec();
            payload.extend_from_slice(body);
            let mut out = (payload.len() as u32).to_be_bytes().to_vec();
            out.extend_from_slice(&payload);
            out
        };
        let cases: Vec<(&str, Vec<u8>)> = vec![
            ("empty body", framed(&[])),
            ("unknown tag", framed(&[0x42])),
            ("truncated num", framed(&[TAG_NUM, 1, 2, 3])),
            (
                "nan bit pattern",
                framed(&[&[TAG_NUM][..], &f64::NAN.to_bits().to_le_bytes()[..]].concat()),
            ),
            (
                "inf bit pattern",
                framed(
                    &[
                        &[TAG_F64S, 1, 0, 0, 0][..],
                        &f64::INFINITY.to_bits().to_le_bytes()[..],
                    ]
                    .concat(),
                ),
            ),
            ("lying array count", framed(&[TAG_ARR, 255, 255, 255, 255])),
            ("lying f64s count", framed(&[TAG_F64S, 255, 255, 255, 255])),
            ("lying obj count", framed(&[TAG_OBJ, 255, 255, 255, 255])),
            ("truncated string", framed(&[TAG_STR, 9, 0, 0, 0, b'a'])),
            (
                "non-utf8 string",
                framed(&[TAG_STR, 2, 0, 0, 0, 0xFF, 0xFE]),
            ),
            ("trailing bytes", framed(&[TAG_NULL, TAG_NULL])),
        ];
        for (what, bytes) in cases {
            match parse_frame(&bytes, MAX_FRAME_BYTES) {
                Err(FrameError::Payload { consumed, .. }) => {
                    assert_eq!(consumed, bytes.len(), "{what}: wrong drain length")
                }
                other => panic!("{what}: expected payload error, got {other:?}"),
            }
        }
        // Deep nesting is rejected, not a stack overflow.
        let mut body = vec![];
        for _ in 0..(MAX_BINARY_DEPTH + 2) {
            body.extend_from_slice(&[TAG_ARR, 1, 0, 0, 0]);
        }
        body.push(TAG_NULL);
        let bytes = framed(&body);
        assert!(matches!(
            parse_frame(&bytes, MAX_FRAME_BYTES),
            Err(FrameError::Payload { .. })
        ));
    }

    #[test]
    fn binary_frame_split_at_every_byte_is_incomplete_never_error() {
        let v = Request::Ingest(CounterSample {
            time_ns: 1,
            duration_s: 0.5,
            freq_mhz: 2000,
            voltage: 1.0,
            deltas: vec![1.0, 2.0, 3.0],
            missing: vec![],
        })
        .to_json_value();
        let bytes = encode_frame_as(&v, Encoding::Binary).unwrap();
        for cut in 0..bytes.len() {
            assert!(
                matches!(parse_frame(&bytes[..cut], MAX_FRAME_BYTES), Ok(None)),
                "prefix of {cut} bytes must parse as incomplete"
            );
        }
        // Mixed-encoding back-to-back frames on one stream parse
        // independently: binary then JSON.
        let mut two = bytes.clone();
        let json_bytes = encode_frame(&Json::obj(vec![("op", Json::from("stats"))])).unwrap();
        two.extend_from_slice(&json_bytes);
        let (first, consumed) = parse_frame(&two, MAX_FRAME_BYTES).unwrap().unwrap();
        assert_eq!(first, v);
        let (second, _) = parse_frame(&two[consumed..], MAX_FRAME_BYTES)
            .unwrap()
            .unwrap();
        assert_eq!(second.str_field("op").unwrap(), "stats");
    }

    #[test]
    fn encoding_names_roundtrip() {
        assert_eq!(Encoding::from_name("json"), Some(Encoding::Json));
        assert_eq!(Encoding::from_name("binary"), Some(Encoding::Binary));
        assert_eq!(Encoding::from_name("msgpack"), None);
        assert_eq!(Encoding::default(), Encoding::Json);
        // A JSON frame sniffs as JSON.
        let bytes = encode_frame(&Json::obj(vec![("op", Json::from("stats"))])).unwrap();
        assert_eq!(raw_frame_encoding(&bytes), Encoding::Json);
    }

    #[test]
    fn encode_frame_matches_write_frame() {
        let v = Json::obj(vec![("op", Json::from("stats"))]);
        let mut via_writer = Vec::new();
        write_frame(&mut via_writer, &v).unwrap();
        assert_eq!(encode_frame(&v).unwrap(), via_writer);
    }
}
