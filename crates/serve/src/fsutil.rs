//! Durable filesystem primitives shared by the registry and the
//! engine checkpoint writer.
//!
//! The load-bearing function is [`write_atomic_durable`]: write to a
//! `.tmp` sibling, fsync the file, rename into place, then **fsync
//! the parent directory**. The last step is the one naive atomic
//! writers skip — `rename(2)` updates the directory entry in memory,
//! and on many filesystems that entry is not on stable storage until
//! the directory itself is synced, so a power cut after the rename
//! can still resurrect the old file (or no file at all). With the
//! directory fsync, a successful return means the new content
//! survives power loss.
//!
//! [`crc32`] is the checksum the checkpoint format uses to detect
//! torn payloads; it lives here so format code stays dependency-free.

use crate::error::ServeError;
use std::io::Write;
use std::path::{Path, PathBuf};

/// CRC-32 (IEEE 802.3, reflected polynomial `0xEDB8_8320`) of `bytes`.
/// Bitwise-compatible with zlib's `crc32()`, computed with a small
/// runtime-built table.
pub fn crc32(bytes: &[u8]) -> u32 {
    // The table is tiny (1 KiB) and cheap to build; recomputing it per
    // call keeps this allocation- and static-free. Checkpoint payloads
    // dwarf the 256-iteration setup cost.
    let mut table = [0u32; 256];
    for (i, slot) in table.iter_mut().enumerate() {
        let mut c = i as u32;
        for _ in 0..8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
        }
        *slot = c;
    }
    let mut crc = 0xFFFF_FFFFu32;
    for &b in bytes {
        crc = table[((crc ^ b as u32) & 0xFF) as usize] ^ (crc >> 8);
    }
    crc ^ 0xFFFF_FFFF
}

/// Fsyncs the directory containing `path`, making a just-renamed
/// entry durable. No-op on platforms where directories cannot be
/// opened for sync (non-unix).
fn sync_parent_dir(path: &Path) -> Result<(), ServeError> {
    #[cfg(unix)]
    {
        let parent = match path.parent() {
            Some(p) if !p.as_os_str().is_empty() => p.to_path_buf(),
            _ => PathBuf::from("."),
        };
        std::fs::File::open(parent)?.sync_all()?;
    }
    #[cfg(not(unix))]
    {
        let _ = path;
    }
    Ok(())
}

/// Writes `contents` to `path` atomically **and durably**: the bytes
/// go to a `.tmp` sibling, are fsynced, the sibling is renamed into
/// place, and the parent directory is fsynced so the rename itself
/// survives power loss. A crash at any instant leaves either the
/// previous file or the new one — never a prefix, and (after a
/// successful return) never the old content resurrected.
pub fn write_atomic_durable(path: &Path, contents: &str) -> Result<(), ServeError> {
    let mut tmp_name = path.as_os_str().to_os_string();
    tmp_name.push(".tmp");
    let tmp = PathBuf::from(tmp_name);
    let mut f = std::fs::File::create(&tmp)?;
    f.write_all(contents.as_bytes())?;
    f.sync_all()?;
    drop(f);
    std::fs::rename(&tmp, path)?;
    sync_parent_dir(path)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_matches_known_vectors() {
        // Reference values from the zlib/IEEE CRC-32.
        assert_eq!(crc32(b""), 0x0000_0000);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn crc32_detects_single_byte_flips() {
        let base = b"checkpoint payload with meaningful content".to_vec();
        let reference = crc32(&base);
        for i in 0..base.len() {
            let mut flipped = base.clone();
            flipped[i] ^= 0x01;
            assert_ne!(crc32(&flipped), reference, "flip at byte {i} undetected");
        }
    }

    #[test]
    fn write_atomic_durable_replaces_and_leaves_no_tmp() {
        let dir = std::env::temp_dir().join(format!("pmc-fsutil-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("target.json");
        write_atomic_durable(&path, "first").unwrap();
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "first");
        write_atomic_durable(&path, "second").unwrap();
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "second");
        let leftovers: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.path().extension().is_some_and(|x| x == "tmp"))
            .collect();
        assert!(leftovers.is_empty(), "tmp sibling not consumed");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
