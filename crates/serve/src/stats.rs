//! Lock-free server counters, surfaced through the `stats` op.

use pmc_json::Json;
use std::sync::atomic::{AtomicU64, Ordering};

/// Monotonic operational counters. All counters are relaxed — they are
/// observability, not synchronization.
#[derive(Debug, Default)]
pub struct ServerStats {
    /// Connections accepted and handed to a worker.
    pub connections_accepted: AtomicU64,
    /// Connections shed because the pending queue was full.
    pub connections_shed: AtomicU64,
    /// Request frames successfully parsed.
    pub frames_received: AtomicU64,
    /// Frames answered with an error response.
    pub frames_errored: AtomicU64,
    /// Samples ingested into the estimator engine.
    pub samples_ingested: AtomicU64,
    /// Estimates served (via `ingest` or `estimate`).
    pub estimates_served: AtomicU64,
    /// Models loaded into the registry.
    pub models_loaded: AtomicU64,
    /// Estimates served in degraded mode (substituted inputs or a
    /// fallback model).
    pub degraded_estimates: AtomicU64,
    /// Ingests answered by the previous model because the active one
    /// could not read the sample (width mismatch after activation).
    pub stale_model_fallbacks: AtomicU64,
    /// Connections closed by the idle/slow-peer reaper.
    pub connections_reaped: AtomicU64,
    /// Currently open connections (a gauge, not a monotone counter).
    pub connections_open: AtomicU64,
    /// Requests shed because they outlived their queue deadline
    /// before a worker could start them.
    pub requests_shed: AtomicU64,
    /// Requests refused at admission because the in-flight budget (or
    /// the worker queue) was full.
    pub requests_rejected_overload: AtomicU64,
    /// Requests shed because their propagated `deadline_ms` budget was
    /// spent — at ingress (arrived already expired) or while queued.
    pub requests_deadline_exceeded: AtomicU64,
    /// Wall-clock duration of the last graceful drain, milliseconds.
    /// Zero until a drain has completed.
    pub drain_duration_ms: AtomicU64,
    /// Coalesced ingest batches dispatched to the model (each is one
    /// batched prediction call, whatever its size).
    pub batches_dispatched: AtomicU64,
    /// Ingest requests that went through the batch path (equals
    /// `samples_ingested` + per-request ingest errors).
    pub batched_requests: AtomicU64,
    /// Batches dispatched because the oldest request's linger budget
    /// ran out before the batch filled to `batch_max`.
    pub batch_linger_timeouts: AtomicU64,
    /// Batch-size histogram: how many batches landed in each fill
    /// bucket — 1, 2–3, 4–7, 8–15, 16–31, and 32+ requests.
    pub batch_fill: [AtomicU64; 6],
    /// Worker threads that died to a panic while running a job (each
    /// in-flight request got a typed `internal_error` response).
    pub worker_panics: AtomicU64,
    /// Workers respawned by the supervisor after a panic.
    pub worker_respawns: AtomicU64,
    /// Gauge: 1 while the supervisor has given up respawning a
    /// flapping worker slot (readiness reports not-ready).
    pub supervisor_flapping: AtomicU64,
    /// Gauge: workers currently stuck — running one job longer than
    /// the configured wall-clock bound, per the watchdog.
    pub workers_stuck: AtomicU64,
    /// Engine checkpoints written successfully.
    pub checkpoints_written: AtomicU64,
    /// Engine checkpoint writes that failed (I/O or injected tear).
    pub checkpoint_write_failures: AtomicU64,
    /// Per-client windows restored from a checkpoint at startup.
    pub checkpoint_clients_restored: AtomicU64,
    /// Checkpoints quarantined at startup (torn/corrupt; server
    /// cold-started).
    pub checkpoints_quarantined: AtomicU64,
    /// Connections that bound a durable identity via `resume`.
    pub resumed_clients: AtomicU64,
    /// Connections that negotiated the `PMCB1` binary encoding via
    /// `hello` (JSON connections are the remainder).
    pub binary_conns: AtomicU64,
    /// Durable windows drained out of this server by `migrate_export`.
    pub windows_migrated_out: AtomicU64,
    /// Durable windows replayed into this server by `migrate_import`.
    pub windows_migrated_in: AtomicU64,
    /// Labeled training samples accepted by the quarantine gate into
    /// the incremental fit.
    pub train_samples_accepted: AtomicU64,
    /// Labeled training samples rejected by the quarantine gate
    /// (poisoned labels, implausible counters, leverage outliers, …).
    pub train_samples_quarantined: AtomicU64,
    /// Shadow candidates auto-activated after winning the rolling-MAPE
    /// race by the configured margin.
    pub auto_activations: AtomicU64,
    /// Automatic rollbacks after a post-activation MAPE regression
    /// beyond the guard threshold.
    pub auto_rollbacks: AtomicU64,
    /// Gauge: 1 while the most recent activation regressed past the
    /// guard and was rolled back (cleared by the next healthy
    /// activation verdict). Mirrored as a readiness reason.
    pub shadow_regressed: AtomicU64,
    /// Gauge: rolling shadow-model MAPE (percent) against live labels,
    /// stored as raw `f64` bits (scalars are u64; the exposition
    /// layers decode).
    pub shadow_mape_bits: AtomicU64,
}

/// Upper-exclusive bucket bounds of [`ServerStats::batch_fill`]; the
/// last bucket is unbounded.
const BATCH_FILL_BOUNDS: [u64; 5] = [2, 4, 8, 16, 32];
/// Snapshot keys for [`ServerStats::batch_fill`], aligned with
/// [`BATCH_FILL_BOUNDS`].
const BATCH_FILL_KEYS: [&str; 6] = ["1", "2-3", "4-7", "8-15", "16-31", "32+"];

impl ServerStats {
    /// Bumps a counter by one.
    pub fn bump(counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }

    /// Decrements a gauge by one (saturating at zero).
    pub fn dec(gauge: &AtomicU64) {
        let _ = gauge.fetch_update(Ordering::Relaxed, Ordering::Relaxed, |v| {
            Some(v.saturating_sub(1))
        });
    }

    /// Records one dispatched batch of `fill` requests in the fill
    /// histogram.
    pub fn record_batch_fill(&self, fill: usize) {
        let bucket = BATCH_FILL_BOUNDS
            .iter()
            .position(|&bound| (fill as u64) < bound)
            .unwrap_or(BATCH_FILL_BOUNDS.len());
        Self::bump(&self.batch_fill[bucket]);
    }

    /// Every scalar counter as `(name, value)`, in a stable order.
    /// The single source of truth behind both [`ServerStats::snapshot`]
    /// and [`ServerStats::prometheus`] — adding a counter here surfaces
    /// it on both the JSON `stats` op and the `metrics` scrape.
    fn scalars(&self) -> Vec<(&'static str, u64)> {
        let read = |c: &AtomicU64| c.load(Ordering::Relaxed);
        vec![
            ("connections_accepted", read(&self.connections_accepted)),
            ("connections_shed", read(&self.connections_shed)),
            ("frames_received", read(&self.frames_received)),
            ("frames_errored", read(&self.frames_errored)),
            ("samples_ingested", read(&self.samples_ingested)),
            ("estimates_served", read(&self.estimates_served)),
            ("models_loaded", read(&self.models_loaded)),
            ("degraded_estimates", read(&self.degraded_estimates)),
            ("stale_model_fallbacks", read(&self.stale_model_fallbacks)),
            ("connections_reaped", read(&self.connections_reaped)),
            ("connections_open", read(&self.connections_open)),
            ("requests_shed", read(&self.requests_shed)),
            (
                "requests_rejected_overload",
                read(&self.requests_rejected_overload),
            ),
            (
                "requests_deadline_exceeded",
                read(&self.requests_deadline_exceeded),
            ),
            ("drain_duration_ms", read(&self.drain_duration_ms)),
            ("batches_dispatched", read(&self.batches_dispatched)),
            ("batched_requests", read(&self.batched_requests)),
            ("batch_linger_timeouts", read(&self.batch_linger_timeouts)),
            ("worker_panics", read(&self.worker_panics)),
            ("worker_respawns", read(&self.worker_respawns)),
            ("supervisor_flapping", read(&self.supervisor_flapping)),
            ("workers_stuck", read(&self.workers_stuck)),
            ("checkpoints_written", read(&self.checkpoints_written)),
            (
                "checkpoint_write_failures",
                read(&self.checkpoint_write_failures),
            ),
            (
                "checkpoint_clients_restored",
                read(&self.checkpoint_clients_restored),
            ),
            (
                "checkpoints_quarantined",
                read(&self.checkpoints_quarantined),
            ),
            ("resumed_clients", read(&self.resumed_clients)),
            ("binary_conns", read(&self.binary_conns)),
            ("windows_migrated_out", read(&self.windows_migrated_out)),
            ("windows_migrated_in", read(&self.windows_migrated_in)),
            ("train_samples_accepted", read(&self.train_samples_accepted)),
            (
                "train_samples_quarantined",
                read(&self.train_samples_quarantined),
            ),
            ("auto_activations", read(&self.auto_activations)),
            ("auto_rollbacks", read(&self.auto_rollbacks)),
            ("shadow_regressed", read(&self.shadow_regressed)),
        ]
    }

    /// Rolling shadow MAPE (percent) decoded from its bit-store.
    pub fn shadow_mape(&self) -> f64 {
        f64::from_bits(self.shadow_mape_bits.load(Ordering::Relaxed))
    }

    /// A point-in-time JSON snapshot.
    pub fn snapshot(&self) -> Json {
        let mut fields: Vec<(String, Json)> = self
            .scalars()
            .into_iter()
            .map(|(k, v)| (k.to_string(), Json::from(v)))
            .collect();
        fields.push(("shadow_mape".into(), Json::Num(self.shadow_mape())));
        fields.push((
            "batch_fill".into(),
            Json::Obj(
                BATCH_FILL_KEYS
                    .iter()
                    .zip(&self.batch_fill)
                    .map(|(k, c)| (k.to_string(), Json::from(c.load(Ordering::Relaxed))))
                    .collect(),
            ),
        ));
        Json::Obj(fields)
    }

    /// Prometheus text exposition of every counter: one
    /// `# TYPE`-annotated `pmc_serve_<name>` sample per scalar, plus
    /// the batch-fill histogram as a cumulative
    /// `pmc_serve_batch_fill_bucket{le="..."}` series with `+Inf` and
    /// `_count`. Scraped via the `metrics` op.
    pub fn prometheus(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for (name, value) in self.scalars() {
            // The two gauges are annotated as such; everything else is
            // a monotone counter.
            let kind = match name {
                "connections_open"
                | "supervisor_flapping"
                | "workers_stuck"
                | "shadow_regressed" => "gauge",
                _ => "counter",
            };
            let _ = writeln!(out, "# TYPE pmc_serve_{name} {kind}");
            let _ = writeln!(out, "pmc_serve_{name} {value}");
        }
        let _ = writeln!(out, "# TYPE pmc_serve_shadow_mape gauge");
        let _ = writeln!(out, "pmc_serve_shadow_mape {}", self.shadow_mape());
        let _ = writeln!(out, "# TYPE pmc_serve_batch_fill histogram");
        let mut cumulative = 0u64;
        for (bound, cell) in BATCH_FILL_BOUNDS.iter().zip(&self.batch_fill) {
            cumulative += cell.load(Ordering::Relaxed);
            // Buckets are upper-exclusive internally; Prometheus `le`
            // is inclusive, hence bound - 1.
            let _ = writeln!(
                out,
                "pmc_serve_batch_fill_bucket{{le=\"{}\"}} {cumulative}",
                bound - 1
            );
        }
        cumulative += self.batch_fill[BATCH_FILL_BOUNDS.len()].load(Ordering::Relaxed);
        let _ = writeln!(
            out,
            "pmc_serve_batch_fill_bucket{{le=\"+Inf\"}} {cumulative}"
        );
        let _ = writeln!(out, "pmc_serve_batch_fill_count {cumulative}");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_reflects_bumps() {
        let s = ServerStats::default();
        ServerStats::bump(&s.frames_received);
        ServerStats::bump(&s.frames_received);
        ServerStats::bump(&s.models_loaded);
        let snap = s.snapshot();
        assert_eq!(snap.u64_field("frames_received").unwrap(), 2);
        assert_eq!(snap.u64_field("models_loaded").unwrap(), 1);
        assert_eq!(snap.u64_field("connections_shed").unwrap(), 0);
        assert_eq!(snap.u64_field("requests_shed").unwrap(), 0);
        assert_eq!(snap.u64_field("drain_duration_ms").unwrap(), 0);
    }

    #[test]
    fn batch_fill_buckets_cover_all_sizes() {
        let s = ServerStats::default();
        for fill in [1, 2, 3, 4, 7, 8, 15, 16, 31, 32, 500] {
            s.record_batch_fill(fill);
        }
        let snap = s.snapshot();
        let hist = snap.field("batch_fill").unwrap();
        for (key, expected) in [
            ("1", 1),
            ("2-3", 2),
            ("4-7", 2),
            ("8-15", 2),
            ("16-31", 2),
            ("32+", 2),
        ] {
            assert_eq!(hist.u64_field(key).unwrap(), expected, "bucket {key}");
        }
    }

    #[test]
    fn prometheus_exposes_every_scalar_and_the_histogram() {
        let s = ServerStats::default();
        ServerStats::bump(&s.worker_panics);
        ServerStats::bump(&s.checkpoints_written);
        ServerStats::bump(&s.checkpoints_written);
        s.record_batch_fill(1);
        s.record_batch_fill(5);
        s.record_batch_fill(100);
        let text = s.prometheus();
        assert!(text.contains("pmc_serve_worker_panics 1\n"));
        assert!(text.contains("pmc_serve_checkpoints_written 2\n"));
        assert!(text.contains("# TYPE pmc_serve_worker_panics counter\n"));
        assert!(text.contains("# TYPE pmc_serve_connections_open gauge\n"));
        // Histogram buckets are cumulative and end with +Inf == count.
        assert!(text.contains("pmc_serve_batch_fill_bucket{le=\"1\"} 1\n"));
        assert!(text.contains("pmc_serve_batch_fill_bucket{le=\"7\"} 2\n"));
        assert!(text.contains("pmc_serve_batch_fill_bucket{le=\"+Inf\"} 3\n"));
        assert!(text.contains("pmc_serve_batch_fill_count 3\n"));
        // Every scalar in the JSON snapshot has a Prometheus sample.
        if let Json::Obj(fields) = s.snapshot() {
            for (name, _) in fields.iter().filter(|(n, _)| n != "batch_fill") {
                assert!(
                    text.contains(&format!("pmc_serve_{name} ")),
                    "{name} missing from scrape"
                );
            }
        } else {
            panic!("snapshot not an object");
        }
    }

    #[test]
    fn gauge_decrements_and_saturates() {
        let s = ServerStats::default();
        ServerStats::bump(&s.connections_open);
        ServerStats::bump(&s.connections_open);
        ServerStats::dec(&s.connections_open);
        assert_eq!(s.connections_open.load(Ordering::Relaxed), 1);
        ServerStats::dec(&s.connections_open);
        ServerStats::dec(&s.connections_open); // saturates, no wrap
        assert_eq!(s.connections_open.load(Ordering::Relaxed), 0);
    }
}
