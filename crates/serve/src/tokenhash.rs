//! The shared resume-token hash.
//!
//! Both `pmc-serve` (to key durable engine windows) and `pmc-router`
//! (to place tokens on the consistent-hash ring) derive a 64-bit key
//! from a client's `resume` token. The two sides **must** agree — a
//! router that hashed differently would checkpoint-migrate a window
//! under one key and route subsequent traffic under another, silently
//! cold-starting the client. Keeping the function in one module makes
//! that drift impossible, and the pinned-vector test below makes any
//! accidental change to the on-disk checkpoint keying loud.

/// Durable-client key namespace: engine keys with this bit set come
/// from a `resume` token (stable across restarts and checkpointed);
/// keys without it are ephemeral per-connection ids.
pub const RESUME_KEY_BIT: u64 = 1 << 63;

/// Plain FNV-1a over a byte string (64-bit, standard offset basis and
/// prime). The router also uses this to place virtual nodes on the
/// hash ring.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in bytes {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// FNV-1a over the resume token, forced into the durable namespace.
/// Deterministic across processes — the same token always lands on the
/// same engine key, which is what makes checkpointed windows findable
/// after a restart, and what lets the router know which backend owns a
/// token without asking anyone.
pub fn resume_key(token: &str) -> u64 {
    fnv1a(token.as_bytes()) | RESUME_KEY_BIT
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Pinned token→key pairs: these values are baked into every
    /// checkpoint file ever written. If this test fails, the change
    /// breaks restore of existing checkpoints and router/serve
    /// agreement — do not "fix" the constants, fix the code.
    #[test]
    fn resume_key_is_pinned() {
        for (token, key) in [
            ("", 0xcbf2_9ce4_8422_2325_u64),
            ("a", 0xaf63_dc4c_8601_ec8c),
            ("proc-sensor", 0xc0f8_bae3_55fd_a9da),
            ("client-7", 0xb61d_e8d2_08d3_783a),
            ("node-0/sensor-42", 0x8d4f_aeec_04c3_a038),
        ] {
            assert_eq!(resume_key(token), key, "token {token:?}");
            assert_ne!(resume_key(token) & RESUME_KEY_BIT, 0);
        }
    }

    #[test]
    fn fnv1a_matches_reference_vectors() {
        // Canonical FNV-1a 64 test vectors.
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn distinct_tokens_get_distinct_keys() {
        let keys: Vec<u64> = (0..64).map(|i| resume_key(&format!("tok-{i}"))).collect();
        let mut dedup = keys.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), keys.len());
    }
}
