//! # pmc-router
//!
//! The sharded serving tier: a consistent-hash router in front of a
//! fleet of `pmc-serve` backends, speaking the same 4-byte
//! length-prefixed JSON frame protocol on both sides.
//!
//! Four pieces:
//!
//! 1. **[`ring`]** — a weighted consistent-hash ring over backend
//!    names. Placement is deterministic (stable across router
//!    restarts) and minimal-remap (membership changes move only the
//!    affected token share).
//! 2. **[`proxy`]** — the readiness-based core: one non-blocking
//!    thread relays frames **verbatim** between clients and the
//!    backend owning their `resume` token, while a prober thread
//!    polls backend `readyz` and evicts/restores ring members.
//!    `healthz`/`readyz`/`metrics` are answered inline — including
//!    the typed `no_backends` readiness reason when the whole fleet
//!    is down.
//! 3. **[`migrate`]** (internal) — live migration: when the ring
//!    changes shape, re-owned windows are drained from their old
//!    backend as self-contained checkpoint records (live over
//!    `migrate_export`, from the dead backend's checkpoint file, or
//!    from the standby replica), replayed on the new owner, and
//!    verified bitwise. Unrecoverable windows cold-start with a
//!    machine-readable degradation reason instead of wedging.
//! 4. **[`sync`]** (internal) — the anti-entropy loop: periodically
//!    drains dirty windows from each primary and replays them onto
//!    the window's ring standby, so failover works without shared
//!    disk. Per-backend replication lag and standby coverage surface
//!    through `readyz` and the metrics scrape.
//! 5. **[`stats`]** — router counters with a Prometheus exposition
//!    carrying per-backend `{backend="…"}` series.
//!
//! The `pmc-router` binary wires this up behind `route`, `readyz` and
//! `metrics` verbs; see the README's *Fleet* section for topology and
//! the migration runbook.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod backend;
mod error;
mod migrate;
pub mod proxy;
pub mod ring;
pub mod stats;
mod sync;

pub use backend::{Backend, BackendSpec};
pub use error::RouterError;
pub use proxy::{PowerRouter, RouterConfig};
pub use ring::HashRing;
pub use stats::RouterStats;

/// Convenience result alias.
pub type Result<T> = std::result::Result<T, RouterError>;
