//! Router error type.

use std::fmt;

/// Everything that can go wrong inside the router.
#[derive(Debug)]
pub enum RouterError {
    /// Invalid configuration (bad backend spec, no backends, …).
    Config {
        /// What was wrong.
        reason: String,
    },
    /// A transport-level failure.
    Io(std::io::Error),
    /// A failure reported by (or while talking to) a backend.
    Serve(pmc_serve::ServeError),
    /// A window migration that could not be completed or verified.
    Migration {
        /// The resume token whose window was being moved.
        token: String,
        /// Why the migration failed.
        reason: String,
    },
}

impl fmt::Display for RouterError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RouterError::Config { reason } => write!(f, "config error: {reason}"),
            RouterError::Io(e) => write!(f, "io error: {e}"),
            RouterError::Serve(e) => write!(f, "backend error: {e}"),
            RouterError::Migration { token, reason } => {
                write!(f, "migration of token {token:?} failed: {reason}")
            }
        }
    }
}

impl std::error::Error for RouterError {}

impl From<std::io::Error> for RouterError {
    fn from(e: std::io::Error) -> Self {
        RouterError::Io(e)
    }
}

impl From<pmc_serve::ServeError> for RouterError {
    fn from(e: pmc_serve::ServeError) -> Self {
        RouterError::Serve(e)
    }
}
