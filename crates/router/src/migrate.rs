//! Live window migration: the rebalancing half of the serving tier.
//!
//! When the ring changes shape (a backend evicted or restored), every
//! routed token whose ring owner no longer matches its table owner is
//! migrated: its window leaves the old owner as a self-contained
//! checkpoint record, replays on the new owner, and the move is
//! verified by comparing the replayed window's estimate **bitwise**
//! against the estimate embedded in the record. Only after a token's
//! migration settles does the routing table flip — clients retrying
//! against a typed overload land on the new owner with their window
//! already warm.
//!
//! The record comes from one of two places:
//!
//! - a live old owner (up but leaving the token's shard): drained over
//!   the wire with `migrate_export`, which atomically forgets the
//!   window on the exporter;
//! - a dead old owner with a configured checkpoint file: read straight
//!   from the file the backend was writing (`ckpt=` in the backend
//!   spec) — the crash-recovery path exercised by the fleet test.
//!
//! A token with no recoverable record (dead backend, no checkpoint,
//! or never checkpointed) still flips owners — the window is lost and
//! the client cold-starts, which is honest degradation, not a wedge.

use crate::proxy::Shared;
use crate::stats::RouterStats;
use pmc_json::Json;
use pmc_serve::checkpoint::{encode_client_record, load_checkpoint, CheckpointOutcome};
use pmc_serve::protocol::{read_frame, unwrap_response, write_frame, Request};
use pmc_serve::tokenhash::resume_key;
use pmc_serve::ServeError;
use std::net::{TcpStream, ToSocketAddrs};
use std::sync::atomic::Ordering;
use std::time::{Duration, Instant};

/// A deadline-bounded control connection to one backend, used only by
/// the prober thread for migrations (never by the core, which must
/// stay non-blocking).
struct Control {
    stream: TcpStream,
}

impl Control {
    fn connect(addr: &str, timeout: Duration) -> Result<Self, ServeError> {
        let sock = addr
            .to_socket_addrs()?
            .next()
            .ok_or_else(|| ServeError::Protocol {
                reason: format!("backend address {addr:?} resolves to nothing"),
            })?;
        let stream = TcpStream::connect_timeout(&sock, timeout)?;
        stream.set_read_timeout(Some(timeout))?;
        stream.set_write_timeout(Some(timeout))?;
        Ok(Control { stream })
    }

    fn call(&mut self, req: &Request) -> Result<Json, ServeError> {
        write_frame(&mut self.stream, &req.to_json_value())?;
        let frame = read_frame(&mut self.stream)?.ok_or(ServeError::Protocol {
            reason: "backend closed during migration".into(),
        })?;
        unwrap_response(frame)
    }
}

/// How one token's migration went.
enum Moved {
    /// Window replayed on the new owner and verified bitwise.
    Verified,
    /// Window replayed; verification impossible (no embedded estimate)
    /// or mismatched.
    Unverified,
    /// No record was recoverable; the token cold-starts on its new
    /// owner.
    Lost,
}

/// Recovers the checkpoint record for `token` from its old owner.
fn export_record(shared: &Shared, token: &str, old: usize) -> Result<Option<Json>, ServeError> {
    let backend = &shared.backends[old];
    if backend.is_up() {
        let mut ctl = Control::connect(&backend.spec.addr, shared.config.probe_timeout)?;
        let r = ctl.call(&Request::MigrateExport {
            token: token.to_string(),
            keep: false,
        })?;
        return match r.field("record")? {
            Json::Null => Ok(None),
            record => Ok(Some(record.clone())),
        };
    }
    let Some(path) = &backend.spec.checkpoint else {
        return Ok(None);
    };
    match load_checkpoint(path) {
        CheckpointOutcome::Restored(data) => {
            let key = resume_key(token);
            Ok(data
                .clients
                .iter()
                .find(|snap| snap.client == key)
                .map(encode_client_record))
        }
        CheckpointOutcome::NotFound | CheckpointOutcome::Quarantined { .. } => Ok(None),
    }
}

/// Replays `record` on the new owner and verifies the move bitwise:
/// the new owner's estimate at the record's own timestamp must equal
/// the estimate the old owner embedded in the record, bit for bit.
fn import_record(
    shared: &Shared,
    token: &str,
    new: usize,
    record: &Json,
) -> Result<Moved, ServeError> {
    let addr = &shared.backends[new].spec.addr;
    let mut ctl = Control::connect(addr, shared.config.probe_timeout)?;
    ctl.call(&Request::MigrateImport {
        record: record.clone(),
    })?;
    let Ok(last) = record.field("last") else {
        return Ok(Moved::Unverified);
    };
    let (Ok(want_time), Ok(want_power), Ok(want_window)) = (
        last.u64_field("time_ns"),
        last.f64_field("power_w"),
        last.f64_field("window_power_w"),
    ) else {
        // A window that never produced an estimate has nothing to
        // verify against; the hex-encoded samples still replayed.
        return Ok(Moved::Unverified);
    };
    ctl.call(&Request::Resume {
        token: token.to_string(),
    })?;
    let got = ctl.call(&Request::Estimate { now_ns: want_time })?;
    let verified = got.u64_field("time_ns").ok() == Some(want_time)
        && got.f64_field("power_w").map(f64::to_bits).ok() == Some(want_power.to_bits())
        && got.f64_field("window_power_w").map(f64::to_bits).ok() == Some(want_window.to_bits());
    Ok(if verified {
        Moved::Verified
    } else {
        Moved::Unverified
    })
}

/// Migrates every token whose table owner disagrees with the current
/// ring, then flips the table. Runs on the prober thread after each
/// membership change; holds the table lock only to snapshot and to
/// flip entries, never across network I/O.
pub(crate) fn rebalance(shared: &Shared) {
    let started = Instant::now();
    let ring = shared.ring.lock().expect("ring lock").clone();
    let entries: Vec<(String, usize)> = shared
        .table
        .lock()
        .expect("table lock")
        .iter()
        .map(|(t, &o)| (t.clone(), o))
        .collect();

    for (token, old) in entries {
        let Some(new) = ring.owner(resume_key(&token)) else {
            // No usable backends: leave the entry; routing answers
            // typed overloads until the fleet comes back.
            continue;
        };
        if new == old && shared.backends[old].is_up() {
            continue;
        }
        let moved = match export_record(shared, &token, old) {
            Ok(Some(record)) => import_record(shared, &token, new, &record).unwrap_or(Moved::Lost),
            Ok(None) => Moved::Lost,
            Err(_) => Moved::Lost,
        };
        match moved {
            Moved::Verified => RouterStats::bump(&shared.stats.migrations_completed),
            Moved::Unverified => {
                RouterStats::bump(&shared.stats.migrations_completed);
                RouterStats::bump(&shared.stats.migrations_unverified);
            }
            Moved::Lost => RouterStats::bump(&shared.stats.migrations_failed),
        }
        // Flip the table either way: pointing at a gone window would
        // wedge the token behind typed overloads forever, while a
        // cold start on the new owner is visible and recoverable.
        shared.table.lock().expect("table lock").insert(token, new);
    }

    let elapsed = u64::try_from(started.elapsed().as_millis()).unwrap_or(u64::MAX);
    shared
        .stats
        .migration_duration_ms
        .store(elapsed, Ordering::Relaxed);
}
