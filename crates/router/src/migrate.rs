//! Live window migration: the rebalancing half of the serving tier.
//!
//! When the ring changes shape (a backend evicted or restored), every
//! routed token whose ring owner no longer matches its table owner is
//! migrated: its window leaves the old owner as a self-contained
//! checkpoint record, replays on the new owner, and the move is
//! verified by comparing the replayed window's estimate **bitwise**
//! against the estimate embedded in the record. Only after a token's
//! migration settles does the routing table flip — clients retrying
//! against a typed overload land on the new owner with their window
//! already warm.
//!
//! The record comes from the freshest of three places:
//!
//! - a live old owner (up but leaving the token's shard): copied over
//!   the wire with `migrate_export keep:true`, forgotten on the old
//!   owner only after the copy verified on the new one — so a failed
//!   or retried move never strands the window in transit;
//! - the dead owner's checkpoint file (`ckpt=` in the backend spec),
//!   if it ran with one — the shared-disk recovery path;
//! - the standby replica the anti-entropy loop maintains on another
//!   backend (`crate::sync`) — recovery **without** shared disk.
//!
//! When both a checkpoint record and a replica exist, the per-window
//! dirty sequence number embedded in each record picks the fresher
//! copy. A token with no recoverable record still flips owners — the
//! window is lost and the client cold-starts with a machine-readable
//! degradation reason (`PowerRouter::degraded_tokens`, readyz), which
//! is honest degradation, not a wedge. Every network step retries a
//! few times: migration runs exactly when the fleet is unhealthy, and
//! a transient reset must not turn a recoverable window into a loss.

use crate::proxy::Shared;
use crate::stats::RouterStats;
use pmc_json::Json;
use pmc_serve::checkpoint::{encode_client_record, load_checkpoint, record_seq, CheckpointOutcome};
use pmc_serve::protocol::{read_frame, unwrap_response, write_frame, Request};
use pmc_serve::tokenhash::resume_key;
use pmc_serve::ServeError;
use std::net::{TcpStream, ToSocketAddrs};
use std::sync::atomic::Ordering;
use std::time::{Duration, Instant};

/// Attempts per network step of one token's migration. Chaos-sized:
/// a reset mid-export or mid-import is retried on a fresh connection
/// rather than counted as a lost window.
const ATTEMPTS: u32 = 4;

/// A deadline-bounded control connection to one backend, used by the
/// prober thread for migrations and by the sync thread for
/// replication (never by the core, which must stay non-blocking).
pub(crate) struct Control {
    stream: TcpStream,
}

impl Control {
    pub(crate) fn connect(addr: &str, timeout: Duration) -> Result<Self, ServeError> {
        let sock = addr
            .to_socket_addrs()?
            .next()
            .ok_or_else(|| ServeError::Protocol {
                reason: format!("backend address {addr:?} resolves to nothing"),
            })?;
        let stream = TcpStream::connect_timeout(&sock, timeout)?;
        stream.set_read_timeout(Some(timeout))?;
        stream.set_write_timeout(Some(timeout))?;
        Ok(Control { stream })
    }

    pub(crate) fn call(&mut self, req: &Request) -> Result<Json, ServeError> {
        write_frame(&mut self.stream, &req.to_json_value())?;
        let frame = read_frame(&mut self.stream)?.ok_or(ServeError::Protocol {
            reason: "backend closed during migration".into(),
        })?;
        unwrap_response(frame)
    }
}

/// Exports `token`'s record from backend `idx` over the wire.
/// `keep` false drains (the exporter forgets the window).
pub(crate) fn wire_export(
    shared: &Shared,
    token: &str,
    idx: usize,
    keep: bool,
) -> Result<Option<Json>, ServeError> {
    let mut ctl = Control::connect(&shared.backends[idx].spec.addr, shared.config.probe_timeout)?;
    let r = ctl.call(&Request::MigrateExport {
        token: token.to_string(),
        keep,
    })?;
    match r.field("record")? {
        Json::Null => Ok(None),
        record => Ok(Some(record.clone())),
    }
}

/// How one token's migration went.
enum Moved {
    /// Window replayed on the new owner and verified bitwise.
    Verified,
    /// Window replayed; verification impossible (no embedded estimate)
    /// or mismatched.
    Unverified,
    /// No record was recoverable; the token cold-starts on its new
    /// owner.
    Lost,
}

/// Where a recovered record came from (decides post-move bookkeeping).
enum Source {
    /// Drained from the live old owner (`keep:true`; forget after).
    Live,
    /// Read from the dead owner's checkpoint file.
    Checkpoint,
    /// Fetched from the standby replica at this backend index.
    Replica(usize),
}

/// A recovered record plus everything rebalance needs to judge it.
struct Recovered {
    record: Json,
    source: Source,
    /// The record's dirty sequence number.
    seq: u64,
    /// True when the anti-entropy loop had observed the primary ahead
    /// of this record: samples newer than the last sync are lost.
    stale: bool,
}

/// Recovers the freshest available record for `token` from its old
/// owner — live drain, checkpoint file, or standby replica.
fn recover_record(
    shared: &Shared,
    token: &str,
    old: usize,
) -> Result<Option<Recovered>, ServeError> {
    let backend = &shared.backends[old];
    if backend.is_up() {
        return Ok(wire_export(shared, token, old, true)?.map(|record| {
            let seq = record_seq(&record);
            Recovered {
                record,
                source: Source::Live,
                seq,
                stale: false,
            }
        }));
    }

    // Dead owner: gather every candidate copy and keep the freshest.
    let mut best: Option<Recovered> = None;
    if let Some(path) = &backend.spec.checkpoint {
        if let CheckpointOutcome::Restored(data) = load_checkpoint(path) {
            let key = resume_key(token);
            if let Some(snap) = data.clients.iter().find(|snap| snap.client == key) {
                best = Some(Recovered {
                    record: encode_client_record(snap),
                    source: Source::Checkpoint,
                    seq: snap.dirty_seq,
                    stale: false,
                });
            }
        }
    }
    let replica = shared
        .repl
        .lock()
        .expect("repl lock")
        .get(token)
        .map(|r| (r.replicated_seq, r.primary_seq, r.standby));
    let mut last_observed = 0u64;
    if let Some((replicated_seq, primary_seq, standby)) = replica {
        last_observed = primary_seq;
        let usable = replicated_seq > 0
            && standby < shared.backends.len()
            && shared.backends[standby].is_up()
            && best
                .as_ref()
                .map(|b| b.seq < replicated_seq)
                .unwrap_or(true);
        if usable {
            // The replica is (by its bookkeeping) fresher than the
            // checkpoint; fetch it. A failed fetch falls back to
            // whatever the checkpoint gave us.
            if let Ok(Some(record)) = fetch_replica(shared, token, standby) {
                let seq = record_seq(&record);
                if best.as_ref().map(|b| b.seq < seq).unwrap_or(true) {
                    best = Some(Recovered {
                        record,
                        source: Source::Replica(standby),
                        seq,
                        stale: false,
                    });
                }
            }
        }
    }
    if let Some(b) = best.as_mut() {
        b.stale = b.seq < last_observed;
    }
    Ok(best)
}

/// Fetches the replica copy from the standby, retrying transport
/// failures (non-destructive, so retries are always safe).
fn fetch_replica(shared: &Shared, token: &str, standby: usize) -> Result<Option<Json>, ServeError> {
    let mut last = None;
    for _ in 0..ATTEMPTS {
        match wire_export(shared, token, standby, true) {
            Ok(r) => return Ok(r),
            Err(e) => last = Some(e),
        }
    }
    Err(last.unwrap_or(ServeError::Protocol {
        reason: "replica fetch failed".into(),
    }))
}

/// Replays `record` on the new owner and verifies the move bitwise:
/// the new owner's estimate at the record's own timestamp must equal
/// the estimate the old owner embedded in the record, bit for bit.
fn import_record(
    shared: &Shared,
    token: &str,
    new: usize,
    record: &Json,
) -> Result<Moved, ServeError> {
    let addr = &shared.backends[new].spec.addr;
    let mut ctl = Control::connect(addr, shared.config.probe_timeout)?;
    ctl.call(&Request::MigrateImport {
        record: record.clone(),
    })?;
    let Ok(last) = record.field("last") else {
        return Ok(Moved::Unverified);
    };
    let (Ok(want_time), Ok(want_power), Ok(want_window)) = (
        last.u64_field("time_ns"),
        last.f64_field("power_w"),
        last.f64_field("window_power_w"),
    ) else {
        // A window that never produced an estimate has nothing to
        // verify against; the hex-encoded samples still replayed.
        return Ok(Moved::Unverified);
    };
    ctl.call(&Request::Resume {
        token: token.to_string(),
    })?;
    let got = ctl.call(&Request::Estimate { now_ns: want_time })?;
    let verified = got.u64_field("time_ns").ok() == Some(want_time)
        && got.f64_field("power_w").map(f64::to_bits).ok() == Some(want_power.to_bits())
        && got.f64_field("window_power_w").map(f64::to_bits).ok() == Some(want_window.to_bits());
    Ok(if verified {
        Moved::Verified
    } else {
        Moved::Unverified
    })
}

/// Moves one token old → new with per-step retries. Returns the
/// outcome plus the staleness flag of whatever record moved.
fn move_token(shared: &Shared, token: &str, old: usize, new: usize) -> (Moved, bool) {
    for _ in 0..ATTEMPTS {
        let recovered = match recover_record(shared, token, old) {
            Ok(Some(r)) => r,
            // Definitive: no copy exists anywhere.
            Ok(None) => return (Moved::Lost, false),
            // Transport: the copy may exist; try again.
            Err(_) => continue,
        };
        let mut imported = None;
        for _ in 0..ATTEMPTS {
            match import_record(shared, token, new, &recovered.record) {
                Ok(m) => {
                    imported = Some(m);
                    break;
                }
                Err(_) => continue,
            }
        }
        let Some(moved) = imported else { continue };
        // The copy now lives on the new owner; bookkeeping by source.
        match recovered.source {
            Source::Live => {
                // Two-phase drain: only forget on the old owner once
                // the import landed. Best-effort — a stale copy left
                // behind is overwritten by the next sync round or
                // replaced wholesale if the token ever migrates back.
                let _ = wire_export(shared, token, old, false);
                shared.repl.lock().expect("repl lock").remove(token);
            }
            Source::Checkpoint => {
                shared.repl.lock().expect("repl lock").remove(token);
            }
            Source::Replica(standby) if standby == new => {
                // The standby became the primary; its copy is now the
                // single live copy until the next sync round.
                shared.repl.lock().expect("repl lock").remove(token);
            }
            Source::Replica(standby) => {
                // The standby still holds a valid copy alongside the
                // new owner; keep pointing at it so a second failure
                // before the next sync round can still recover.
                let mut repl = shared.repl.lock().expect("repl lock");
                if let Some(entry) = repl.get_mut(token) {
                    entry.replicated_seq = recovered.seq;
                    entry.standby = standby;
                }
            }
        }
        return (moved, recovered.stale);
    }
    (Moved::Lost, false)
}

/// Migrates every token whose table owner disagrees with the current
/// ring, then flips the table. Runs on the prober thread after each
/// membership change; holds the table lock only to snapshot and to
/// flip entries, never across network I/O.
pub(crate) fn rebalance(shared: &Shared) {
    let started = Instant::now();
    let ring = shared.ring.lock().expect("ring lock").clone();
    let entries: Vec<(String, usize)> = shared
        .table
        .lock()
        .expect("table lock")
        .iter()
        .map(|(t, &o)| (t.clone(), o))
        .collect();

    for (token, old) in entries {
        let Some(new) = ring.owner(resume_key(&token)) else {
            // No usable backends: leave the entry; routing answers
            // typed overloads until the fleet comes back.
            continue;
        };
        if new == old && shared.backends[old].is_up() {
            continue;
        }
        let (moved, stale) = move_token(shared, &token, old, new);
        match moved {
            Moved::Verified => RouterStats::bump(&shared.stats.migrations_completed),
            Moved::Unverified => {
                RouterStats::bump(&shared.stats.migrations_completed);
                RouterStats::bump(&shared.stats.migrations_unverified);
            }
            Moved::Lost => {
                RouterStats::bump(&shared.stats.migrations_failed);
                RouterStats::bump(&shared.stats.windows_lost);
                // Machine-readable degradation: the token cold-starts
                // on its new owner because its window was never
                // replicated (or its copies are unreachable). Cleared
                // once the (fresh) window replicates again.
                shared
                    .degraded
                    .lock()
                    .expect("degraded lock")
                    .insert(token.clone(), "cold_start:window_not_replicated".into());
            }
        }
        if stale && !matches!(moved, Moved::Lost) {
            // Warm failover from a copy older than the primary's last
            // observed state: samples since the last sync are gone.
            shared.degraded.lock().expect("degraded lock").insert(
                token.clone(),
                "stale_replica:samples_since_last_sync_lost".into(),
            );
        }
        // Flip the table either way: pointing at a gone window would
        // wedge the token behind typed overloads forever, while a
        // cold start on the new owner is visible and recoverable.
        shared.table.lock().expect("table lock").insert(token, new);
    }

    let elapsed = u64::try_from(started.elapsed().as_millis()).unwrap_or(u64::MAX);
    shared
        .stats
        .migration_duration_ms
        .store(elapsed, Ordering::Relaxed);
    // Membership changed: refresh the lag/coverage gauges.
    let _ = shared.replication_health();
}
