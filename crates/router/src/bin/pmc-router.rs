//! `pmc-router` — front a fleet of `pmc-serve` backends.
//!
//! ```text
//! pmc-router route   [--addr A] --backend SPEC [--backend SPEC…]
//!                    [--probe-interval-ms N] [--probe-timeout-ms N]
//!                    [--evict-after N] [--max-conns N] [--retry-after-ms N]
//!                    [--read-timeout-ms N] [--write-timeout-ms N] [--idle-timeout-ms N]
//!                    [--sync-interval-ms N]
//!                    [--no-hedge] [--hedge-after-ms N]
//!                    [--outlier-factor F] [--outlier-min-samples N] [--readmit-after N]
//!                    [--retry-budget-ratio F] [--retry-budget-burst N]
//! pmc-router readyz  --addr A
//! pmc-router metrics --addr A
//! ```
//!
//! A backend SPEC is `ADDR[,name=NAME][,weight=N][,ckpt=PATH]`; give
//! `ckpt=` the same path as that backend's `--checkpoint` so the
//! router can migrate its durable windows out of the file if it dies
//! without draining.
//!
//! `route` binds (default `127.0.0.1:7720`), prints the bound address,
//! and runs until stdin closes — the same supervised lifetime as
//! `pmc-serve serve`. `--sync-interval-ms` paces the anti-entropy
//! loop replicating dirty windows to their ring standby (default 200;
//! 0 disables replication). `readyz` prints the router's readiness
//! report and exits nonzero when it is not ready — including the
//! typed `no_backends` reason when every backend is down,
//! `no_standby:<name>` when a backend's windows have no live second
//! copy, and `gray_degraded:<name>` when the outlier detector has
//! soft-ejected a browned-out backend. `metrics` prints the
//! Prometheus exposition.
//!
//! Gray-failure knobs: `--no-hedge` turns hedged reads off;
//! `--hedge-after-ms` fixes the hedge delay (default: derived from
//! the primary's latency EWMA). `--outlier-factor` is the multiple of
//! the fleet-median latency EWMA past which a backend is soft-ejected
//! (judged only after `--outlier-min-samples` relay samples);
//! `--readmit-after` healthy passes re-admit it.
//! `--retry-budget-ratio`/`--retry-budget-burst` bound hedge
//! amplification per client connection.

use pmc_router::{BackendSpec, PowerRouter, RouterConfig};
use pmc_serve::protocol::{read_frame, unwrap_response, write_frame, Request};
use pmc_serve::ServeError;
use std::io::Read;
use std::net::TcpStream;
use std::process::ExitCode;
use std::time::Duration;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("route") => route(&args[1..]),
        Some("readyz") => readyz(&args[1..]),
        Some("metrics") => metrics(&args[1..]),
        _ => {
            eprintln!("usage: pmc-router route   [--addr A] --backend SPEC [--backend SPEC…]");
            eprintln!("                          [--probe-interval-ms N] [--probe-timeout-ms N]");
            eprintln!(
                "                          [--evict-after N] [--max-conns N] [--retry-after-ms N]"
            );
            eprintln!("                          [--read-timeout-ms N] [--write-timeout-ms N] [--idle-timeout-ms N]");
            eprintln!("                          [--sync-interval-ms N]");
            eprintln!("                          [--no-hedge] [--hedge-after-ms N]");
            eprintln!("                          [--outlier-factor F] [--outlier-min-samples N] [--readmit-after N]");
            eprintln!(
                "                          [--retry-budget-ratio F] [--retry-budget-burst N]"
            );
            eprintln!("       pmc-router readyz  --addr A");
            eprintln!("       pmc-router metrics --addr A");
            eprintln!();
            eprintln!("backend SPEC: ADDR[,name=NAME][,weight=N][,ckpt=PATH]");
            return ExitCode::from(2);
        }
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("pmc-router: {e}");
            ExitCode::FAILURE
        }
    }
}

fn flag_value<'a>(args: &'a [String], flag: &str) -> Option<&'a str> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
}

fn route(args: &[String]) -> Result<(), Box<dyn std::error::Error>> {
    let mut config = RouterConfig {
        addr: flag_value(args, "--addr")
            .unwrap_or("127.0.0.1:7720")
            .into(),
        ..RouterConfig::default()
    };
    let mut i = 0;
    while i < args.len() {
        if args[i] == "--backend" {
            let spec = args.get(i + 1).ok_or("--backend needs a spec")?;
            config.backends.push(BackendSpec::parse(spec)?);
            i += 2;
        } else {
            i += 1;
        }
    }
    if config.backends.is_empty() {
        return Err("route needs at least one --backend SPEC".into());
    }
    if let Some(ms) = flag_value(args, "--probe-interval-ms") {
        config.probe_interval = Duration::from_millis(ms.parse()?);
    }
    if let Some(ms) = flag_value(args, "--probe-timeout-ms") {
        config.probe_timeout = Duration::from_millis(ms.parse()?);
    }
    if let Some(n) = flag_value(args, "--evict-after") {
        config.evict_after = n.parse()?;
    }
    if let Some(n) = flag_value(args, "--max-conns") {
        config.max_connections = n.parse()?;
    }
    if let Some(ms) = flag_value(args, "--retry-after-ms") {
        config.retry_after_ms = ms.parse()?;
    }
    // 0 disables the background anti-entropy loop.
    if let Some(ms) = flag_value(args, "--sync-interval-ms") {
        config.sync_interval = Duration::from_millis(ms.parse()?);
    }
    // Deadline knobs: 0 disables, same convention as pmc-serve.
    let ms_flag = |flag: &str| -> Result<Option<Option<Duration>>, std::num::ParseIntError> {
        match flag_value(args, flag) {
            Some(v) => {
                let ms: u64 = v.parse()?;
                Ok(Some((ms > 0).then(|| Duration::from_millis(ms))))
            }
            None => Ok(None),
        }
    };
    if let Some(t) = ms_flag("--read-timeout-ms")? {
        config.read_timeout = t;
    }
    if let Some(t) = ms_flag("--write-timeout-ms")? {
        config.write_timeout = t;
    }
    if let Some(t) = ms_flag("--idle-timeout-ms")? {
        config.idle_timeout = t;
    }
    // Gray-failure defense knobs.
    if args.iter().any(|a| a == "--no-hedge") {
        config.hedge_reads = false;
    }
    // 0 restores the dynamic (EWMA-derived) hedge delay.
    if let Some(ms) = flag_value(args, "--hedge-after-ms") {
        let ms: u64 = ms.parse()?;
        config.hedge_after = (ms > 0).then(|| Duration::from_millis(ms));
    }
    if let Some(f) = flag_value(args, "--outlier-factor") {
        config.outlier_factor = f.parse()?;
    }
    if let Some(n) = flag_value(args, "--outlier-min-samples") {
        config.outlier_min_samples = n.parse()?;
    }
    if let Some(n) = flag_value(args, "--readmit-after") {
        config.readmit_after = n.parse()?;
    }
    if let Some(f) = flag_value(args, "--retry-budget-ratio") {
        config.retry_budget_ratio = f.parse()?;
    }
    if let Some(n) = flag_value(args, "--retry-budget-burst") {
        config.retry_budget_burst = n.parse()?;
    }

    let mut router = PowerRouter::start(config)?;
    println!("listening on {}", router.addr());
    // Route until stdin closes — same supervised lifetime as pmc-serve.
    let mut sink = Vec::new();
    let _ = std::io::stdin().read_to_end(&mut sink);
    eprintln!("stdin closed — shutting down");
    router.shutdown();
    Ok(())
}

/// One inline request against a running router.
fn call(addr: &str, req: &Request) -> Result<pmc_json::Json, Box<dyn std::error::Error>> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(Duration::from_secs(5)))?;
    stream.set_write_timeout(Some(Duration::from_secs(5)))?;
    write_frame(&mut stream, &req.to_json_value())?;
    let frame = read_frame(&mut stream)?.ok_or(ServeError::Protocol {
        reason: "router closed without answering".into(),
    })?;
    Ok(unwrap_response(frame)?)
}

fn readyz(args: &[String]) -> Result<(), Box<dyn std::error::Error>> {
    let addr = flag_value(args, "--addr").unwrap_or("127.0.0.1:7720");
    let r = call(addr, &Request::Readyz)?;
    let ready = r.field("ready").and_then(|v| v.as_bool()).unwrap_or(false);
    println!("{}", r.to_string_pretty());
    if !ready {
        return Err("router not ready".into());
    }
    Ok(())
}

fn metrics(args: &[String]) -> Result<(), Box<dyn std::error::Error>> {
    let addr = flag_value(args, "--addr").unwrap_or("127.0.0.1:7720");
    let r = call(addr, &Request::Metrics)?;
    print!("{}", r.str_field("body")?);
    Ok(())
}
