//! The weighted consistent-hash ring.
//!
//! Each backend contributes `weight × VNODES_PER_WEIGHT` virtual
//! nodes, placed on the 64-bit ring at `fnv1a("name#replica")`. A
//! token lands on the first virtual node clockwise of its resume key
//! (binary search with wraparound). Two properties carry the whole
//! serving tier:
//!
//! 1. **Determinism.** Placement depends only on backend names and
//!    weights — never on insertion order, process identity, or time —
//!    so a restarted router rebuilds the exact same mapping and
//!    traffic does not churn across restarts.
//! 2. **Minimal remap.** Removing a backend only moves the tokens it
//!    owned (they fall through to the next node clockwise); adding
//!    one only steals roughly its fair share. Both are pinned by the
//!    property tests in `tests/ring_property.rs`.

use pmc_serve::tokenhash::fnv1a;

/// Virtual nodes per unit of backend weight. 40 gives a coefficient
/// of variation of a few percent across shards at 3–10 backends —
/// plenty for a tier whose shards are interchangeable processes.
const VNODES_PER_WEIGHT: u32 = 40;

/// Finalizer (splitmix64's) applied to every ring position. FNV-1a's
/// high bits carry little entropy for short, similar inputs — vnode
/// labels and resume keys both are — and resume keys additionally
/// have bit 63 forced, which would confine every lookup to the upper
/// half-ring. Mixing both sides restores uniform placement while
/// staying fully deterministic (same inputs, same ring, forever).
fn spread(x: u64) -> u64 {
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A weighted consistent-hash ring over backend indices.
#[derive(Debug, Clone, Default)]
pub struct HashRing {
    /// `(position, backend index)` sorted by position (ties broken by
    /// index so equal-hash vnodes — astronomically unlikely — still
    /// order deterministically).
    vnodes: Vec<(u64, usize)>,
}

impl HashRing {
    /// Builds a ring from `(name, weight)` members; `usable` filters
    /// which indices participate (an evicted backend keeps its index
    /// but leaves the ring). Zero-weight members contribute nothing.
    pub fn build<'a>(
        members: impl Iterator<Item = (&'a str, u32)>,
        usable: impl Fn(usize) -> bool,
    ) -> Self {
        let mut vnodes = Vec::new();
        for (idx, (name, weight)) in members.enumerate() {
            if !usable(idx) {
                continue;
            }
            for replica in 0..weight.saturating_mul(VNODES_PER_WEIGHT) {
                let label = format!("{name}#{replica}");
                vnodes.push((spread(fnv1a(label.as_bytes())), idx));
            }
        }
        vnodes.sort_unstable();
        HashRing { vnodes }
    }

    /// The backend index owning `key`: the first virtual node at or
    /// clockwise of the key, wrapping to the lowest position. `None`
    /// on an empty ring (no usable backends).
    pub fn owner(&self, key: u64) -> Option<usize> {
        if self.vnodes.is_empty() {
            return None;
        }
        let key = spread(key);
        let at = self.vnodes.partition_point(|&(pos, _)| pos < key);
        let (_, idx) = self.vnodes[at % self.vnodes.len()];
        Some(idx)
    }

    /// The replica set for `key`: `(primary, standby)`. The primary
    /// is [`HashRing::owner`]; the standby is the first virtual node
    /// clockwise of the primary's owned by a *different* backend —
    /// i.e. exactly where ownership falls if the primary leaves the
    /// ring. Replicating to the standby therefore places the copy on
    /// the very backend failover will route to, so recovery finds the
    /// window already warm. The standby is `None` when fewer than two
    /// backends are usable.
    pub fn replicas(&self, key: u64) -> (Option<usize>, Option<usize>) {
        if self.vnodes.is_empty() {
            return (None, None);
        }
        let key = spread(key);
        let at = self.vnodes.partition_point(|&(pos, _)| pos < key);
        let n = self.vnodes.len();
        let (_, primary) = self.vnodes[at % n];
        let standby = (1..n)
            .map(|step| self.vnodes[(at + step) % n].1)
            .find(|&idx| idx != primary);
        (Some(primary), standby)
    }

    /// The standby backend for `key` (see [`HashRing::replicas`]).
    pub fn standby(&self, key: u64) -> Option<usize> {
        self.replicas(key).1
    }

    /// True when no backend is usable.
    pub fn is_empty(&self) -> bool {
        self.vnodes.is_empty()
    }

    /// Distinct backend indices present on the ring.
    pub fn members(&self) -> Vec<usize> {
        let mut m: Vec<usize> = self.vnodes.iter().map(|&(_, idx)| idx).collect();
        m.sort_unstable();
        m.dedup();
        m
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmc_serve::tokenhash::resume_key;

    fn names(n: usize) -> Vec<String> {
        (0..n).map(|i| format!("b{i}")).collect()
    }

    fn ring_of(names: &[String], usable: impl Fn(usize) -> bool) -> HashRing {
        HashRing::build(names.iter().map(|n| (n.as_str(), 1)), usable)
    }

    #[test]
    fn empty_ring_owns_nothing() {
        let ring = HashRing::build(std::iter::empty(), |_| true);
        assert!(ring.is_empty());
        assert_eq!(ring.owner(7), None);
    }

    #[test]
    fn single_backend_owns_everything() {
        let names = names(1);
        let ring = ring_of(&names, |_| true);
        for t in 0..100u32 {
            assert_eq!(ring.owner(resume_key(&format!("t{t}"))), Some(0));
        }
    }

    #[test]
    fn rebuild_is_deterministic() {
        let names = names(5);
        let a = ring_of(&names, |_| true);
        let b = ring_of(&names, |_| true);
        for t in 0..500u32 {
            let key = resume_key(&format!("tok-{t}"));
            assert_eq!(a.owner(key), b.owner(key));
        }
    }

    #[test]
    fn weights_bias_ownership() {
        let members = [("small", 1u32), ("big", 4u32)];
        let ring = HashRing::build(members.iter().map(|&(n, w)| (n, w)), |_| true);
        let big_share = (0..4000)
            .filter(|t| ring.owner(resume_key(&format!("t{t}"))) == Some(1))
            .count();
        // Expectation is 4/5 = 3200; accept a generous band.
        assert!(
            (2600..=3700).contains(&big_share),
            "weight-4 backend owns {big_share}/4000"
        );
    }

    #[test]
    fn standby_is_where_failover_routes() {
        // The defining property: remove the primary from the ring and
        // ownership lands exactly on what replicas() called standby.
        let names = names(4);
        let full = ring_of(&names, |_| true);
        for t in 0..500u32 {
            let key = resume_key(&format!("tok-{t}"));
            let (primary, standby) = full.replicas(key);
            let primary = primary.unwrap();
            let after_loss = ring_of(&names, |idx| idx != primary);
            assert_eq!(after_loss.owner(key), standby, "token tok-{t}");
        }
    }

    #[test]
    fn single_backend_has_no_standby() {
        let names = names(1);
        let ring = ring_of(&names, |_| true);
        let key = resume_key("solo");
        assert_eq!(ring.replicas(key), (Some(0), None));
        let empty = HashRing::build(std::iter::empty(), |_| true);
        assert_eq!(empty.replicas(key), (None, None));
    }

    #[test]
    fn eviction_filter_removes_a_member() {
        let names = names(3);
        let full = ring_of(&names, |_| true);
        let without_1 = ring_of(&names, |idx| idx != 1);
        assert_eq!(full.members(), vec![0, 1, 2]);
        assert_eq!(without_1.members(), vec![0, 2]);
        for t in 0..300u32 {
            let key = resume_key(&format!("tok-{t}"));
            assert_ne!(without_1.owner(key), Some(1));
        }
    }
}
