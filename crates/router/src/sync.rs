//! Anti-entropy replication: standby copies without shared disk.
//!
//! Per-backend checkpoint files only help when the replacement owner
//! can read the dead owner's disk. This loop removes that assumption:
//! it periodically polls each up primary for its per-window dirty
//! sequence numbers (`window_seqs`, one cheap frame per backend),
//! drains every window that advanced since the last round
//! (`migrate_export keep:true` — the primary keeps serving), and
//! replays the record into the window's **ring standby** — the first
//! distinct backend clockwise of the primary's vnode. That placement
//! is the load-bearing trick: when the primary is evicted, the ring's
//! new owner for its tokens *is* the standby, so failover finds the
//! replica exactly where routing already points (proven by the ring
//! property tests).
//!
//! Replication is asynchronous by design — ingest latency never waits
//! on a second copy. The window between a sample landing and the next
//! sync round is honestly unprotected: failover from a replica older
//! than the primary's last observed state flags the token with a
//! machine-readable staleness reason instead of pretending the tail
//! survived. The idempotent duplicate-timestamp re-ingest on the
//! serve side keeps replica replay bitwise identical to the original
//! window, which is what lets failover verify copies with
//! `f64::to_bits` equality rather than tolerances.

use crate::migrate;
use crate::proxy::Shared;
use crate::stats::RouterStats;
use pmc_serve::checkpoint::record_seq;
use pmc_serve::protocol::Request;
use pmc_serve::tokenhash::resume_key;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::{Duration, SystemTime, UNIX_EPOCH};

/// Replication state of one routed token.
#[derive(Debug, Clone)]
pub(crate) struct Repl {
    /// Dirty sequence number of the copy sitting on the standby
    /// (zero: no copy exists yet).
    pub(crate) replicated_seq: u64,
    /// Highest dirty sequence number ever observed on the primary.
    /// When failover recovers a copy older than this, samples newer
    /// than the last sync were lost and the token is flagged stale.
    pub(crate) primary_seq: u64,
    /// Backend index holding the copy.
    pub(crate) standby: usize,
}

/// Wall-clock Unix milliseconds (lag gauges are cross-process, so
/// monotonic clocks don't apply).
pub(crate) fn unix_ms() -> u64 {
    SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| u64::try_from(d.as_millis()).unwrap_or(u64::MAX))
        .unwrap_or(0)
}

/// Background anti-entropy thread: one round per `sync_interval`,
/// interruptible nap in between. A zero interval disables the loop
/// (rounds then only run through [`crate::PowerRouter::sync_now`]).
pub(crate) fn sync_loop(shared: &Shared, stop: &AtomicBool) {
    let interval = shared.config.sync_interval;
    if interval.is_zero() {
        return;
    }
    let mut jitter = crate::proxy::jitter_seed();
    while !stop.load(Ordering::SeqCst) {
        sync_round(shared);
        // Jittered (±20%) so sync rounds don't phase-lock with the
        // prober — or with a sibling router's sync loop.
        let nap = crate::proxy::jittered_interval(interval, &mut jitter);
        let mut slept = Duration::ZERO;
        while slept < nap && !stop.load(Ordering::SeqCst) {
            let step = Duration::from_millis(10).min(nap - slept);
            std::thread::sleep(step);
            slept += step;
        }
    }
}

/// One full anti-entropy round over every routed token. Returns true
/// when the round left every routed token's window replicated to its
/// current ring standby (the "all clean" signal tests key off).
pub(crate) fn sync_round(shared: &Shared) -> bool {
    RouterStats::bump(&shared.stats.replication_rounds);
    let ring = shared.ring.lock().expect("ring lock").clone();
    let entries: Vec<(String, usize)> = shared
        .table
        .lock()
        .expect("table lock")
        .iter()
        .map(|(t, &o)| (t.clone(), o))
        .collect();
    let mut by_owner: HashMap<usize, Vec<String>> = HashMap::new();
    for (token, owner) in entries {
        by_owner.entry(owner).or_default().push(token);
    }

    let mut all_clean = true;
    for (owner, tokens) in by_owner {
        if owner >= shared.backends.len() || !shared.backends[owner].is_up() {
            all_clean = false;
            continue;
        }
        let seqs = match poll_seqs(shared, owner) {
            Ok(seqs) => seqs,
            Err(_) => {
                RouterStats::bump(&shared.stats.replication_errors);
                all_clean = false;
                continue;
            }
        };
        let mut backend_clean = true;
        for token in tokens {
            let key = resume_key(&token);
            // A routed token with no durable window yet (resumed but
            // never ingested) has nothing to replicate.
            let Some(&primary_seq) = seqs.get(&key) else {
                continue;
            };
            let Some(standby) = ring.standby(key) else {
                // Single-backend fleet: nothing to replicate onto.
                backend_clean = false;
                continue;
            };
            let dirty = {
                let repl = shared.repl.lock().expect("repl lock");
                repl.get(&token)
                    .map(|r| r.replicated_seq < primary_seq || r.standby != standby)
                    .unwrap_or(true)
            };
            if !dirty {
                continue;
            }
            if standby == owner || !shared.backends[standby].is_up() {
                backend_clean = false;
                continue;
            }
            match replicate_one(shared, &token, owner, standby) {
                Ok(copied_seq) => {
                    let prev = shared.repl.lock().expect("repl lock").insert(
                        token.clone(),
                        Repl {
                            replicated_seq: copied_seq,
                            primary_seq: primary_seq.max(copied_seq),
                            standby,
                        },
                    );
                    RouterStats::bump(&shared.stats.windows_replicated);
                    // A fresh copy exists again; the token is no
                    // longer running on degraded (cold or stale) state
                    // it can't recover from.
                    shared
                        .degraded
                        .lock()
                        .expect("degraded lock")
                        .remove(&token);
                    if let Some(prev) = prev {
                        retire_stale_copy(shared, &token, &prev, standby, owner);
                    }
                }
                Err(_) => {
                    RouterStats::bump(&shared.stats.replication_errors);
                    // Remember how far ahead the primary got even
                    // though the copy failed — failover uses this to
                    // flag staleness honestly.
                    let mut repl = shared.repl.lock().expect("repl lock");
                    repl.entry(token.clone())
                        .and_modify(|r| r.primary_seq = r.primary_seq.max(primary_seq))
                        .or_insert(Repl {
                            replicated_seq: 0,
                            primary_seq,
                            standby,
                        });
                    backend_clean = false;
                }
            }
        }
        if backend_clean {
            shared.backends[owner]
                .replicated_at_ms
                .store(unix_ms(), Ordering::Relaxed);
        } else {
            all_clean = false;
        }
    }
    // Refresh the lag/coverage gauges with this round's outcome.
    let _ = shared.replication_health();
    all_clean
}

/// Polls one backend's `window_seqs`: resume-key → dirty sequence
/// number for every durable window it holds.
fn poll_seqs(shared: &Shared, idx: usize) -> Result<HashMap<u64, u64>, ()> {
    let addr = &shared.backends[idx].spec.addr;
    let mut ctl = migrate::Control::connect(addr, shared.config.probe_timeout).map_err(|_| ())?;
    let reply = ctl.call(&Request::WindowSeqs).map_err(|_| ())?;
    let windows = match reply.field("windows").map_err(|_| ())? {
        pmc_json::Json::Arr(rows) => rows,
        _ => return Err(()),
    };
    let mut out = HashMap::with_capacity(windows.len());
    for row in windows {
        let pmc_json::Json::Arr(pair) = row else {
            return Err(());
        };
        let (Some(pmc_json::Json::Str(key)), Some(pmc_json::Json::Str(seq))) =
            (pair.first(), pair.get(1))
        else {
            return Err(());
        };
        let key = u64::from_str_radix(key, 16).map_err(|_| ())?;
        let seq = u64::from_str_radix(seq, 16).map_err(|_| ())?;
        out.insert(key, seq);
    }
    Ok(out)
}

/// Copies one token's window primary → standby: export with
/// `keep:true` (the primary keeps serving), import on the standby.
/// Returns the dirty sequence number of the copied record.
fn replicate_one(shared: &Shared, token: &str, owner: usize, standby: usize) -> Result<u64, ()> {
    let record = migrate::wire_export(shared, token, owner, true)
        .map_err(|_| ())?
        .ok_or(())?;
    let seq = record_seq(&record);
    let mut ctl = migrate::Control::connect(
        &shared.backends[standby].spec.addr,
        shared.config.probe_timeout,
    )
    .map_err(|_| ())?;
    ctl.call(&Request::MigrateImport { record })
        .map_err(|_| ())?;
    Ok(seq)
}

/// Best-effort cleanup of the copy left on a previous standby after
/// the ring moved the token's standby elsewhere. Guarded so it can
/// never touch the live primary or the fresh copy; a failure just
/// leaves a stale record that the ring will never route to.
fn retire_stale_copy(shared: &Shared, token: &str, prev: &Repl, standby: usize, owner: usize) {
    if prev.replicated_seq == 0
        || prev.standby == standby
        || prev.standby == owner
        || prev.standby >= shared.backends.len()
        || !shared.backends[prev.standby].is_up()
    {
        return;
    }
    let _ = migrate::wire_export(shared, token, prev.standby, false);
}
