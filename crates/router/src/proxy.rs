//! The router core: a readiness-based proxy in the same
//! single-thread non-blocking style as the `pmc-serve` server.
//!
//! One **core thread** owns the listener and every client connection;
//! each connection holds at most one **upstream** connection to the
//! backend that owns its traffic. Frames are parsed only to find
//! their boundaries and classify the op — the bytes themselves are
//! relayed **verbatim** in both directions, so the router can never
//! perturb a backend's response (float formatting included: bitwise
//! estimate identity survives proxying by construction).
//!
//! ## Routing
//!
//! A `resume TOKEN` frame pins its connection to the backend owning
//! the token: first by the routing table (which live migration keeps
//! current), else by the consistent-hash ring over
//! [`pmc_serve::tokenhash::resume_key`]. Connections that never
//! resume are placed once by hashing their connection id — stable for
//! the connection's life, ephemeral like their server-side window.
//! When a routed backend is down and its tokens have not finished
//! migrating, the router answers a typed `overloaded` frame (with the
//! configured `retry_after_ms` hint) instead of silently cold-routing
//! — a retrying client lands on the new owner with its window intact.
//!
//! ## Health and eviction
//!
//! A **prober thread** polls every backend's `readyz` on an interval.
//! [`RouterConfig::evict_after`] consecutive failures evict the
//! backend: it leaves the ring, its tokens are remapped, and their
//! windows are migrated from its checkpoint file (crash) or drained
//! live over `migrate_export` (still answering but not ready). A
//! recovered backend rejoins the ring and the token share it regains
//! is migrated back the same way. `healthz`/`readyz`/`metrics` are
//! answered inline by the router core — they work with zero usable
//! backends, which is exactly when you need them.

use crate::backend::{Backend, BackendSpec};
use crate::error::RouterError;
use crate::migrate;
use crate::ring::HashRing;
use crate::stats::RouterStats;
use crate::sync::{self, Repl};
use pmc_json::Json;
use pmc_serve::protocol::{
    encode_frame, error_response, ok_response, parse_frame, read_frame, unwrap_response,
    write_frame, FrameError, Request, MAX_FRAME_BYTES,
};
use pmc_serve::tokenhash::{fnv1a, resume_key};
use pmc_serve::ServeError;
use std::collections::HashMap;
use std::io::{Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Router tuning knobs.
#[derive(Debug, Clone)]
pub struct RouterConfig {
    /// TCP listen address; use port 0 for an ephemeral port.
    pub addr: String,
    /// The backend fleet. May be empty (the router starts, reports
    /// `no_backends`, and refuses traffic until a prober restore).
    pub backends: Vec<BackendSpec>,
    /// How often the prober polls each backend's `readyz`.
    pub probe_interval: Duration,
    /// Connect/read/write deadline of one probe (and of migration
    /// control connections).
    pub probe_timeout: Duration,
    /// Consecutive failed probes before a backend is evicted.
    pub evict_after: u32,
    /// Largest accepted frame payload, bytes (both directions).
    pub max_frame_bytes: u32,
    /// Client-connection admission budget.
    pub max_connections: usize,
    /// Backoff hint carried by typed overload refusals, milliseconds.
    pub retry_after_ms: u64,
    /// Maximum age of a partial client frame (slow-loris defense).
    pub read_timeout: Option<Duration>,
    /// Maximum stall of an unflushed client response.
    pub write_timeout: Option<Duration>,
    /// Client connections silent for this long are reaped.
    pub idle_timeout: Option<Duration>,
    /// Cadence of the anti-entropy loop replicating dirty windows
    /// from each primary to its ring standby. Zero disables the
    /// background loop (replication then only happens through
    /// [`PowerRouter::sync_now`]).
    pub sync_interval: Duration,
}

impl Default for RouterConfig {
    fn default() -> Self {
        RouterConfig {
            addr: "127.0.0.1:0".into(),
            backends: Vec::new(),
            probe_interval: Duration::from_millis(100),
            probe_timeout: Duration::from_millis(500),
            evict_after: 3,
            max_frame_bytes: MAX_FRAME_BYTES,
            max_connections: 256,
            retry_after_ms: 50,
            read_timeout: Some(Duration::from_secs(2)),
            write_timeout: Some(Duration::from_secs(10)),
            idle_timeout: Some(Duration::from_secs(60)),
            sync_interval: Duration::from_millis(200),
        }
    }
}

/// State shared between the core thread, the prober and metrics.
pub(crate) struct Shared {
    pub(crate) config: RouterConfig,
    pub(crate) backends: Vec<Backend>,
    /// The current ring over usable (up) backends.
    pub(crate) ring: Mutex<HashRing>,
    /// Token → owning backend index. Live migration is the only thing
    /// that moves an existing entry; routing always believes it.
    pub(crate) table: Mutex<HashMap<String, usize>>,
    /// Token → replication state (what the anti-entropy loop last
    /// drained, and where it put the copy).
    pub(crate) repl: Mutex<HashMap<String, Repl>>,
    /// Token → machine-readable degradation reason, set when failover
    /// could not recover the token's window (cold start) and cleared
    /// once the window is replicated again.
    pub(crate) degraded: Mutex<HashMap<String, String>>,
    pub(crate) stats: Arc<RouterStats>,
    /// Unix milliseconds at router start — the floor for replication
    /// lag on backends that have never completed a sync round.
    pub(crate) started_ms: u64,
}

impl Shared {
    /// Rebuilds the ring from the backends' current up/down state.
    pub(crate) fn rebuild_ring(&self) {
        let ring = HashRing::build(
            self.backends
                .iter()
                .map(|b| (b.spec.name.as_str(), b.spec.weight)),
            |idx| self.backends[idx].is_up(),
        );
        *self.ring.lock().expect("ring lock") = ring;
    }

    /// Tokens currently routed to each backend index.
    fn tokens_owned(&self) -> Vec<u64> {
        let mut counts = vec![0u64; self.backends.len()];
        for &owner in self.table.lock().expect("table lock").values() {
            if owner < counts.len() {
                counts[owner] += 1;
            }
        }
        counts
    }

    fn healthz_json(&self) -> Json {
        Json::obj(vec![
            ("alive", Json::Bool(true)),
            ("router", Json::Bool(true)),
        ])
    }

    /// Per-backend `(replication_lag_ms, has_standby)`, and refreshes
    /// the aggregate lag / standby-coverage gauges as a side effect so
    /// every scrape and readyz reads current values.
    ///
    /// A backend "has a standby" when it is up and at least one other
    /// backend is up — every weight is ≥ 1, so a second up backend
    /// always contributes distinct ring coverage. Lag is the time
    /// since the backend's last *complete* anti-entropy round (router
    /// start for never-synced backends); down backends report zero —
    /// their windows are the failover path's problem, not the sync
    /// loop's. With the sync loop disabled (zero interval and no
    /// manual rounds yet) lag is also reported as zero rather than as
    /// an ever-growing alarm for a feature that is switched off.
    pub(crate) fn replication_health(&self) -> Vec<(u64, bool)> {
        let up_count = self.backends.iter().filter(|b| b.is_up()).count();
        let sync_enabled = !self.config.sync_interval.is_zero()
            || self
                .backends
                .iter()
                .any(|b| b.replicated_at_ms.load(Ordering::Relaxed) != 0);
        let now = sync::unix_ms();
        let rows: Vec<(u64, bool)> = self
            .backends
            .iter()
            .map(|b| {
                let has_standby = b.is_up() && up_count >= 2;
                let lag = if !b.is_up() || !sync_enabled {
                    0
                } else {
                    let synced_at = b
                        .replicated_at_ms
                        .load(Ordering::Relaxed)
                        .max(self.started_ms);
                    now.saturating_sub(synced_at)
                };
                (lag, has_standby)
            })
            .collect();
        let max_lag = rows.iter().map(|&(lag, _)| lag).max().unwrap_or(0);
        let uncovered = self
            .backends
            .iter()
            .zip(&rows)
            .filter(|(b, &(_, has))| b.is_up() && !has)
            .count() as u64;
        self.stats
            .replication_lag_ms
            .store(max_lag, Ordering::Relaxed);
        self.stats
            .backends_without_standby
            .store(uncovered, Ordering::Relaxed);
        rows
    }

    /// Router readiness: whether any usable backend exists and every
    /// up backend has a live standby, with typed reasons
    /// (`no_backends`, `no_standby:<name>`) when not.
    pub(crate) fn readyz_json(&self) -> Json {
        let mut reasons: Vec<String> = Vec::new();
        let usable = self.backends.iter().filter(|b| b.is_up()).count();
        if usable == 0 {
            reasons.push("no_backends".to_string());
        }
        let repl = self.replication_health();
        for (b, &(_, has_standby)) in self.backends.iter().zip(&repl) {
            if b.is_up() && !has_standby {
                // A single live copy of every window this backend
                // owns: losing it means cold starts. Not ready until
                // the fleet regains redundancy.
                reasons.push(format!("no_standby:{}", b.spec.name));
            }
        }
        let owned = self.tokens_owned();
        let backends: Vec<Json> = self
            .backends
            .iter()
            .zip(&owned)
            .zip(&repl)
            .map(|((b, &tokens), &(lag, has_standby))| {
                Json::obj(vec![
                    ("name", Json::from(b.spec.name.as_str())),
                    ("addr", Json::from(b.spec.addr.as_str())),
                    ("up", Json::Bool(b.is_up())),
                    ("inflight", Json::from(b.inflight.load(Ordering::Relaxed))),
                    ("tokens_owned", Json::from(tokens)),
                    ("replication_lag_ms", Json::from(lag)),
                    ("has_standby", Json::Bool(has_standby)),
                ])
            })
            .collect();
        let degraded: Vec<Json> = {
            let mut marks: Vec<(String, String)> = self
                .degraded
                .lock()
                .expect("degraded lock")
                .iter()
                .map(|(t, r)| (t.clone(), r.clone()))
                .collect();
            marks.sort();
            marks
                .into_iter()
                .map(|(token, reason)| {
                    Json::obj(vec![
                        ("token", Json::from(token.as_str())),
                        ("reason", Json::from(reason.as_str())),
                    ])
                })
                .collect()
        };
        Json::obj(vec![
            ("ready", Json::Bool(reasons.is_empty())),
            (
                "reasons",
                Json::Arr(
                    reasons
                        .into_iter()
                        .map(|r| Json::from(r.as_str()))
                        .collect(),
                ),
            ),
            ("backends", Json::Arr(backends)),
            (
                "tokens",
                Json::from(self.table.lock().expect("table lock").len()),
            ),
            (
                "migrations_failed",
                Json::from(self.stats.migrations_failed.load(Ordering::Relaxed)),
            ),
            (
                "replication_lag_ms",
                Json::from(self.stats.replication_lag_ms.load(Ordering::Relaxed)),
            ),
            ("degraded_tokens", Json::Arr(degraded)),
        ])
    }

    fn metrics_json(&self) -> Json {
        let owned = self.tokens_owned();
        let repl = self.replication_health();
        let rows: Vec<crate::stats::BackendRow> = self
            .backends
            .iter()
            .zip(&owned)
            .zip(&repl)
            .map(|((b, &tokens), &(lag, has_standby))| {
                (
                    b.spec.name.clone(),
                    b.is_up(),
                    b.inflight.load(Ordering::Relaxed),
                    b.evictions.load(Ordering::Relaxed),
                    b.upstream_failures.load(Ordering::Relaxed),
                    tokens,
                    lag,
                    has_standby,
                )
            })
            .collect();
        Json::obj(vec![
            ("content_type", Json::from("text/plain; version=0.0.4")),
            ("body", Json::from(self.stats.prometheus(&rows).as_str())),
        ])
    }
}

/// One relay connection to a backend, owned by a client connection.
struct Upstream {
    stream: TcpStream,
    backend: usize,
    read_buf: Vec<u8>,
    write_buf: Vec<u8>,
    write_pos: usize,
    /// Responses to discard before relaying to the client — one per
    /// router-injected `resume` frame (re-binding a re-routed
    /// connection to its durable identity).
    swallow: u32,
}

/// Per-client-connection state owned by the core thread.
struct Conn {
    stream: TcpStream,
    id: u64,
    /// The durable identity this connection bound with `resume`.
    token: Option<String>,
    upstream: Option<Upstream>,
    /// Backend index charged for the in-flight request (for the
    /// per-backend in-flight gauge).
    inflight_backend: Option<usize>,
    read_buf: Vec<u8>,
    write_buf: Vec<u8>,
    write_pos: usize,
    last_activity: Instant,
    partial_since: Option<Instant>,
    write_since: Option<Instant>,
    inflight: bool,
    closing: bool,
    eof: bool,
}

impl Conn {
    fn new(stream: TcpStream, id: u64, now: Instant) -> Self {
        Conn {
            stream,
            id,
            token: None,
            upstream: None,
            inflight_backend: None,
            read_buf: Vec::new(),
            write_buf: Vec::new(),
            write_pos: 0,
            last_activity: now,
            partial_since: None,
            write_since: None,
            inflight: false,
            closing: false,
            eof: false,
        }
    }

    fn flushed(&self) -> bool {
        self.write_pos == self.write_buf.len()
    }

    fn queue(&mut self, payload: &Json) {
        match encode_frame(payload) {
            Ok(bytes) => self.write_buf.extend_from_slice(&bytes),
            Err(_) => self.closing = true,
        }
    }
}

/// Handle to a running router; dropping it shuts the router down.
pub struct PowerRouter {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    core: Option<JoinHandle<()>>,
    prober: Option<JoinHandle<()>>,
    syncer: Option<JoinHandle<()>>,
    shared: Arc<Shared>,
}

impl PowerRouter {
    /// Binds the listener and starts the core and prober threads.
    pub fn start(config: RouterConfig) -> Result<Self, RouterError> {
        let listener = TcpListener::bind(&config.addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let backends: Vec<Backend> = config.backends.iter().cloned().map(Backend::new).collect();
        let shared = Arc::new(Shared {
            config,
            backends,
            ring: Mutex::new(HashRing::default()),
            table: Mutex::new(HashMap::new()),
            repl: Mutex::new(HashMap::new()),
            degraded: Mutex::new(HashMap::new()),
            stats: Arc::new(RouterStats::default()),
            started_ms: sync::unix_ms(),
        });
        shared.rebuild_ring();
        let stop = Arc::new(AtomicBool::new(false));

        let core = {
            let shared = Arc::clone(&shared);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || core_loop(listener, &shared, &stop))
        };
        let prober = {
            let shared = Arc::clone(&shared);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || prober_loop(&shared, &stop))
        };
        let syncer = {
            let shared = Arc::clone(&shared);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || sync::sync_loop(&shared, &stop))
        };
        Ok(PowerRouter {
            addr,
            stop,
            core: Some(core),
            prober: Some(prober),
            syncer: Some(syncer),
            shared,
        })
    }

    /// The bound TCP address (resolves the ephemeral port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Live router counters.
    pub fn stats(&self) -> Arc<RouterStats> {
        Arc::clone(&self.shared.stats)
    }

    /// The backend index currently owning `token`, if it has been
    /// routed (test/ops introspection).
    pub fn owner_of(&self, token: &str) -> Option<usize> {
        self.shared
            .table
            .lock()
            .expect("table lock")
            .get(token)
            .copied()
    }

    /// Runs one anti-entropy round right now, on the caller's thread.
    /// Returns true when the round left every routed token's window
    /// replicated to its standby (tests and ops use this to reach a
    /// known-replicated state without waiting out the interval).
    pub fn sync_now(&self) -> bool {
        sync::sync_round(&self.shared)
    }

    /// `(replicated_seq, primary_seq)` for `token`, if the
    /// anti-entropy loop has seen it (test/ops introspection).
    pub fn replication_of(&self, token: &str) -> Option<(u64, u64)> {
        self.shared
            .repl
            .lock()
            .expect("repl lock")
            .get(token)
            .map(|r| (r.replicated_seq, r.primary_seq))
    }

    /// Tokens whose windows failover could not fully recover, with
    /// their machine-readable degradation reason. Cleared per token
    /// once its (fresh) window is replicated again.
    pub fn degraded_tokens(&self) -> Vec<(String, String)> {
        let mut out: Vec<(String, String)> = self
            .shared
            .degraded
            .lock()
            .expect("degraded lock")
            .iter()
            .map(|(t, r)| (t.clone(), r.clone()))
            .collect();
        out.sort();
        out
    }

    /// Stops accepting, notifies clients with a `draining` frame,
    /// closes every connection and joins both threads. Idempotent.
    pub fn shutdown(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(core) = self.core.take() {
            let _ = core.join();
        }
        if let Some(prober) = self.prober.take() {
            let _ = prober.join();
        }
        if let Some(syncer) = self.syncer.take() {
            let _ = syncer.join();
        }
    }
}

impl Drop for PowerRouter {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// The core readiness loop: accept, sweep, nap.
fn core_loop(listener: TcpListener, shared: &Shared, stop: &AtomicBool) {
    let mut conns: HashMap<u64, Conn> = HashMap::new();
    let mut next_id = 1u64;
    // Fast-poll iterations left before the core may take the long
    // idle nap; recharged by any activity.
    let mut cooldown = 0u32;
    loop {
        if stop.load(Ordering::SeqCst) {
            drop(listener);
            for (_, mut conn) in conns.drain() {
                // Best-effort parting notice; the socket close is the
                // real signal.
                if let Ok(bytes) = encode_frame(&error_response(&ServeError::Draining)) {
                    let _ = conn.stream.write(&bytes);
                }
                let _ = conn.stream.shutdown(Shutdown::Both);
                if let Some(b) = conn.inflight_backend.take() {
                    RouterStats::dec(&shared.backends[b].inflight);
                }
                RouterStats::dec(&shared.stats.connections_open);
            }
            return;
        }

        let mut progress = accept(&listener, &mut conns, &mut next_id, shared);

        let now = Instant::now();
        let mut to_close = Vec::new();
        for (&id, conn) in conns.iter_mut() {
            let (p, close) = sweep_conn(conn, shared, now);
            progress |= p;
            if close {
                to_close.push(id);
            }
        }
        for id in to_close {
            if let Some(mut conn) = conns.remove(&id) {
                let _ = conn.stream.shutdown(Shutdown::Both);
                if let Some(b) = conn.inflight_backend.take() {
                    RouterStats::dec(&shared.backends[b].inflight);
                }
                RouterStats::dec(&shared.stats.connections_open);
            }
            progress = true;
        }

        // Nap discipline. The serve core gets woken by its workers'
        // completion channel; a relay has no such signal — responses
        // arrive on upstream sockets — so the core must poll. Three
        // regimes:
        //  - a relay is awaiting its response (or bytes are pending):
        //    yield the scheduler slot — on a shared CPU that hands
        //    the slice straight to the backend producing the answer,
        //    and avoids the ~100 µs the kernel pads onto tiny sleeps;
        //  - recently active: short naps for a while, so the gap
        //    between a delivered response and the client's next
        //    request doesn't eat the long nap (that tail is worth
        //    ~2 ms per occurrence at p99);
        //  - genuinely quiet: the long nap.
        let awaiting = conns
            .values()
            .any(|c| c.inflight || !c.flushed() || !c.read_buf.is_empty());
        if progress || awaiting {
            cooldown = 64;
        }
        if awaiting {
            std::thread::yield_now();
        } else if cooldown > 0 {
            cooldown -= 1;
            std::thread::sleep(Duration::from_micros(20));
        } else {
            std::thread::sleep(Duration::from_millis(2));
        }
    }
}

/// Accepts pending connections up to the admission budget.
fn accept(
    listener: &TcpListener,
    conns: &mut HashMap<u64, Conn>,
    next_id: &mut u64,
    shared: &Shared,
) -> bool {
    let mut progress = false;
    let now = Instant::now();
    loop {
        match listener.accept() {
            Ok((stream, _)) => {
                progress = true;
                if conns.len() >= shared.config.max_connections {
                    if let Ok(bytes) = encode_frame(&error_response(&ServeError::Overloaded {
                        retry_after_ms: shared.config.retry_after_ms,
                    })) {
                        let mut stream = stream;
                        let _ = stream.write(&bytes);
                        let _ = stream.shutdown(Shutdown::Both);
                    }
                    continue;
                }
                if stream.set_nonblocking(true).is_err() {
                    continue;
                }
                let _ = stream.set_nodelay(true);
                let id = *next_id;
                *next_id += 1;
                conns.insert(id, Conn::new(stream, id, now));
                RouterStats::bump(&shared.stats.connections_accepted);
                RouterStats::bump(&shared.stats.connections_open);
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
            Err(_) => break,
        }
    }
    progress
}

/// How a parsed client frame was dispatched.
enum Dispatch {
    /// Answered by the router; keep parsing.
    Inline,
    /// Relayed upstream; one request is now in flight.
    Relayed,
}

/// One readiness sweep over a client connection and its upstream.
/// Returns (made progress, close now).
fn sweep_conn(conn: &mut Conn, shared: &Shared, now: Instant) -> (bool, bool) {
    let cfg = &shared.config;
    let mut progress = false;
    let mut close = false;

    // Client read phase.
    if !conn.closing && !conn.eof {
        let cap = 4 + cfg.max_frame_bytes as usize;
        let mut chunk = [0u8; 16 * 1024];
        while conn.read_buf.len() < cap {
            match conn.stream.read(&mut chunk) {
                Ok(0) => {
                    conn.eof = true;
                    break;
                }
                Ok(n) => {
                    conn.read_buf.extend_from_slice(&chunk[..n]);
                    conn.last_activity = now;
                    progress = true;
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    conn.eof = true;
                    break;
                }
            }
        }
    }

    // Parse/dispatch phase: at most one relayed request in flight.
    while !conn.closing && !conn.inflight {
        match parse_frame(&conn.read_buf, cfg.max_frame_bytes) {
            Ok(None) => {
                if conn.read_buf.is_empty() {
                    conn.partial_since = None;
                } else if conn.partial_since.is_none() {
                    conn.partial_since = Some(now);
                }
                break;
            }
            Ok(Some((frame, consumed))) => {
                let raw: Vec<u8> = conn.read_buf[..consumed].to_vec();
                conn.read_buf.drain(..consumed);
                conn.partial_since = None;
                progress = true;
                match dispatch(conn, raw, &frame, shared) {
                    Dispatch::Inline => continue,
                    Dispatch::Relayed => break,
                }
            }
            Err(FrameError::Fatal(e)) => {
                conn.queue(&error_response(&e));
                conn.closing = true;
            }
            Err(FrameError::Payload { consumed, error }) => {
                conn.read_buf.drain(..consumed);
                conn.partial_since = None;
                progress = true;
                conn.queue(&error_response(&error));
            }
        }
    }

    // Upstream sweep: flush our relayed bytes, read responses, relay
    // them back verbatim (minus swallowed router-injected resumes).
    let mut upstream_broke = false;
    if let Some(up) = conn.upstream.as_mut() {
        // Flush.
        while up.write_pos < up.write_buf.len() {
            match up.stream.write(&up.write_buf[up.write_pos..]) {
                Ok(0) => {
                    upstream_broke = true;
                    break;
                }
                Ok(n) => {
                    up.write_pos += n;
                    progress = true;
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    upstream_broke = true;
                    break;
                }
            }
        }
        if up.write_pos == up.write_buf.len() {
            up.write_buf.clear();
            up.write_pos = 0;
        }
        // Read.
        if !upstream_broke {
            let cap = 4 + cfg.max_frame_bytes as usize;
            let mut chunk = [0u8; 16 * 1024];
            while up.read_buf.len() < cap {
                match up.stream.read(&mut chunk) {
                    Ok(0) => {
                        upstream_broke = true;
                        break;
                    }
                    Ok(n) => {
                        up.read_buf.extend_from_slice(&chunk[..n]);
                        progress = true;
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                    Err(_) => {
                        upstream_broke = true;
                        break;
                    }
                }
            }
        }
        // Relay complete response frames.
        loop {
            match parse_frame(&up.read_buf, cfg.max_frame_bytes) {
                Ok(Some((_, consumed))) => {
                    if up.swallow > 0 {
                        up.swallow -= 1;
                        up.read_buf.drain(..consumed);
                        continue;
                    }
                    conn.write_buf.extend_from_slice(&up.read_buf[..consumed]);
                    up.read_buf.drain(..consumed);
                    conn.inflight = false;
                    if let Some(b) = conn.inflight_backend.take() {
                        RouterStats::dec(&shared.backends[b].inflight);
                    }
                    progress = true;
                }
                Ok(None) => break,
                // A backend speaking garbage is as broken as one that
                // hung up; the client restarts on a fresh connection.
                Err(_) => {
                    upstream_broke = true;
                    break;
                }
            }
        }
    }
    if upstream_broke {
        let pending = conn.inflight || conn.upstream.as_ref().is_some_and(|u| u.swallow > 0);
        if let Some(up) = conn.upstream.take() {
            let _ = up.stream.shutdown(Shutdown::Both);
            RouterStats::bump(&shared.backends[up.backend].upstream_failures);
        }
        if pending {
            // The response is unrecoverable mid-stream: drop the
            // client connection so its retry layer reconnects and
            // resumes — by then routing points at the new owner.
            RouterStats::bump(&shared.stats.upstream_drops);
            close = true;
        }
    }

    // Client flush phase.
    if !conn.flushed() {
        let mut wrote = false;
        loop {
            match conn.stream.write(&conn.write_buf[conn.write_pos..]) {
                Ok(0) => {
                    close = true;
                    break;
                }
                Ok(n) => {
                    conn.write_pos += n;
                    wrote = true;
                    progress = true;
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    close = true;
                    break;
                }
            }
            if conn.flushed() {
                break;
            }
        }
        if conn.flushed() {
            conn.write_buf.clear();
            conn.write_pos = 0;
            conn.write_since = None;
        } else if wrote || conn.write_since.is_none() {
            conn.write_since = Some(now);
        }
    }

    // Deadline phase — same discipline as the serve core.
    if !close {
        if let (Some(limit), Some(since)) = (cfg.read_timeout, conn.partial_since) {
            if !conn.closing && now.duration_since(since) >= limit {
                conn.queue(&error_response(&ServeError::Deadline { mid_frame: true }));
                conn.closing = true;
            }
        }
        if let (Some(limit), Some(since)) = (cfg.write_timeout, conn.write_since) {
            if now.duration_since(since) >= limit {
                close = true;
            }
        }
        if let Some(limit) = cfg.idle_timeout {
            if !conn.inflight
                && !conn.closing
                && conn.read_buf.is_empty()
                && conn.flushed()
                && now.duration_since(conn.last_activity) >= limit
            {
                conn.queue(&error_response(&ServeError::Deadline { mid_frame: false }));
                conn.closing = true;
            }
        }
    }

    if conn.closing && conn.flushed() {
        close = true;
    }
    if conn.eof && !conn.inflight && !conn.closing && conn.flushed() {
        close = true;
    }
    (progress, close)
}

/// Classifies one client frame and either answers it inline or relays
/// it (verbatim) to the owning backend.
fn dispatch(conn: &mut Conn, raw: Vec<u8>, frame: &Json, shared: &Shared) -> Dispatch {
    let op = frame.str_field("op").unwrap_or("");
    match op {
        // The router's own health surface: answered even with every
        // backend down.
        "healthz" => {
            RouterStats::bump(&shared.stats.frames_inline);
            conn.queue(&ok_response(shared.healthz_json()));
            Dispatch::Inline
        }
        "readyz" => {
            RouterStats::bump(&shared.stats.frames_inline);
            conn.queue(&ok_response(shared.readyz_json()));
            Dispatch::Inline
        }
        "metrics" => {
            RouterStats::bump(&shared.stats.frames_inline);
            conn.queue(&ok_response(shared.metrics_json()));
            Dispatch::Inline
        }
        "resume" => {
            let token = match frame.str_field("token") {
                Ok(t) if !t.is_empty() => t.to_string(),
                // Malformed resume: relay it so the backend answers
                // the protocol error with its own words.
                _ => return forward(conn, raw, shared, false),
            };
            let owner = {
                let mut table = shared.table.lock().expect("table lock");
                match table.get(&token) {
                    Some(&idx) => Some(idx),
                    None => {
                        let owner = shared
                            .ring
                            .lock()
                            .expect("ring lock")
                            .owner(resume_key(&token));
                        if let Some(idx) = owner {
                            table.insert(token.clone(), idx);
                        }
                        owner
                    }
                }
            };
            conn.token = Some(token);
            match owner {
                Some(idx) if shared.backends[idx].is_up() => {
                    forward_to(conn, raw, shared, idx, true)
                }
                _ => refuse(conn, shared),
            }
        }
        _ => forward(conn, raw, shared, false),
    }
}

/// Relays a frame to the backend owning this connection's traffic.
fn forward(conn: &mut Conn, raw: Vec<u8>, shared: &Shared, is_resume: bool) -> Dispatch {
    let owner = match &conn.token {
        Some(token) => {
            let table = shared.table.lock().expect("table lock");
            match table.get(token) {
                Some(&idx) => Some(idx),
                None => shared
                    .ring
                    .lock()
                    .expect("ring lock")
                    .owner(resume_key(token)),
            }
        }
        None => {
            // Ephemeral placement: stable for this connection's life,
            // re-resolved only if the placed backend went down.
            match conn.upstream.as_ref() {
                Some(up) if shared.backends[up.backend].is_up() => Some(up.backend),
                _ => shared
                    .ring
                    .lock()
                    .expect("ring lock")
                    .owner(fnv1a(&conn.id.to_le_bytes())),
            }
        }
    };
    match owner {
        Some(idx) if shared.backends[idx].is_up() => forward_to(conn, raw, shared, idx, is_resume),
        _ => refuse(conn, shared),
    }
}

/// Ensures an upstream to backend `idx` and relays the raw frame.
fn forward_to(
    conn: &mut Conn,
    raw: Vec<u8>,
    shared: &Shared,
    idx: usize,
    is_resume: bool,
) -> Dispatch {
    let reconnect = match conn.upstream.as_ref() {
        Some(up) => up.backend != idx,
        None => true,
    };
    if reconnect {
        if let Some(up) = conn.upstream.take() {
            let _ = up.stream.shutdown(Shutdown::Both);
        }
        let stream = TcpStream::connect(&shared.backends[idx].spec.addr).and_then(|s| {
            s.set_nonblocking(true)?;
            let _ = s.set_nodelay(true);
            Ok(s)
        });
        let stream = match stream {
            Ok(s) => s,
            Err(_) => {
                RouterStats::bump(&shared.backends[idx].upstream_failures);
                return refuse(conn, shared);
            }
        };
        let mut up = Upstream {
            stream,
            backend: idx,
            read_buf: Vec::new(),
            write_buf: Vec::new(),
            write_pos: 0,
            swallow: 0,
        };
        // A re-routed connection with a bound identity must re-bind
        // before its next request, or the backend would file samples
        // under a cold ephemeral window. The injected resume's
        // response is the router's business, not the client's.
        if !is_resume {
            if let Some(token) = &conn.token {
                let payload = Request::Resume {
                    token: token.clone(),
                }
                .to_json_value();
                match encode_frame(&payload) {
                    Ok(bytes) => {
                        up.write_buf.extend_from_slice(&bytes);
                        up.swallow += 1;
                    }
                    Err(_) => {
                        conn.closing = true;
                        return Dispatch::Inline;
                    }
                }
            }
        }
        conn.upstream = Some(up);
    }
    let up = conn.upstream.as_mut().expect("upstream just ensured");
    up.write_buf.extend_from_slice(&raw);
    conn.inflight = true;
    conn.inflight_backend = Some(idx);
    RouterStats::bump(&shared.stats.frames_routed);
    RouterStats::bump(&shared.backends[idx].inflight);
    Dispatch::Relayed
}

/// Answers a typed overload refusal: no usable backend can take this
/// frame right now (none configured, all evicted, or the owner is
/// down pending migration). A retrying client comes back after the
/// hint — usually to a freshly migrated owner.
fn refuse(conn: &mut Conn, shared: &Shared) -> Dispatch {
    RouterStats::bump(&shared.stats.no_backend_rejects);
    RouterStats::bump(&shared.stats.frames_inline);
    conn.queue(&error_response(&ServeError::Overloaded {
        retry_after_ms: shared.config.retry_after_ms,
    }));
    Dispatch::Inline
}

/// One readyz probe against a backend address.
fn probe_once(addr: &str, timeout: Duration) -> Result<bool, RouterError> {
    let sock = addr
        .to_socket_addrs()?
        .next()
        .ok_or_else(|| RouterError::Config {
            reason: format!("backend address {addr:?} resolves to nothing"),
        })?;
    let mut stream = TcpStream::connect_timeout(&sock, timeout)?;
    stream.set_read_timeout(Some(timeout))?;
    stream.set_write_timeout(Some(timeout))?;
    write_frame(&mut stream, &Request::Readyz.to_json_value())?;
    let frame = read_frame(&mut stream)?.ok_or(ServeError::Protocol {
        reason: "backend closed during probe".into(),
    })?;
    let r = unwrap_response(frame)?;
    Ok(r.field("ready")
        .ok()
        .and_then(|v| v.as_bool().ok())
        .unwrap_or(false))
}

/// The health prober: polls every backend's readyz, evicts after
/// consecutive failures, restores on recovery, and triggers the
/// migration rebalance on every membership change.
fn prober_loop(shared: &Shared, stop: &AtomicBool) {
    let cfg = &shared.config;
    let mut consecutive = vec![0u32; shared.backends.len()];
    while !stop.load(Ordering::SeqCst) {
        for (idx, backend) in shared.backends.iter().enumerate() {
            if stop.load(Ordering::SeqCst) {
                return;
            }
            let healthy = matches!(probe_once(&backend.spec.addr, cfg.probe_timeout), Ok(true));
            if healthy {
                consecutive[idx] = 0;
                if !backend.is_up() {
                    backend.up.store(true, Ordering::Relaxed);
                    RouterStats::bump(&shared.stats.restores);
                    shared.rebuild_ring();
                    migrate::rebalance(shared);
                }
            } else {
                consecutive[idx] = consecutive[idx].saturating_add(1);
                if backend.is_up() && consecutive[idx] >= cfg.evict_after.max(1) {
                    backend.up.store(false, Ordering::Relaxed);
                    RouterStats::bump(&backend.evictions);
                    RouterStats::bump(&shared.stats.evictions);
                    shared.rebuild_ring();
                    migrate::rebalance(shared);
                }
            }
        }
        // Interruptible nap so shutdown stays snappy.
        let mut slept = Duration::ZERO;
        while slept < cfg.probe_interval && !stop.load(Ordering::SeqCst) {
            let step = Duration::from_millis(10).min(cfg.probe_interval - slept);
            std::thread::sleep(step);
            slept += step;
        }
    }
}
