//! The router core: a readiness-based proxy in the same
//! single-thread non-blocking style as the `pmc-serve` server.
//!
//! One **core thread** owns the listener and every client connection;
//! each connection holds at most one **upstream** connection to the
//! backend that owns its traffic. Frames are parsed only to find
//! their boundaries and classify the op — the bytes themselves are
//! relayed **verbatim** in both directions, so the router can never
//! perturb a backend's response (float formatting included: bitwise
//! estimate identity survives proxying by construction).
//!
//! ## Routing
//!
//! A `resume TOKEN` frame pins its connection to the backend owning
//! the token: first by the routing table (which live migration keeps
//! current), else by the consistent-hash ring over
//! [`pmc_serve::tokenhash::resume_key`]. Connections that never
//! resume are placed once by hashing their connection id — stable for
//! the connection's life, ephemeral like their server-side window.
//! When a routed backend is down and its tokens have not finished
//! migrating, the router answers a typed `overloaded` frame (with the
//! configured `retry_after_ms` hint) instead of silently cold-routing
//! — a retrying client lands on the new owner with its window intact.
//!
//! ## Health and eviction
//!
//! A **prober thread** polls every backend's `readyz` on a jittered
//! interval. [`RouterConfig::evict_after`] consecutive failures evict
//! the backend: it leaves the ring, its tokens are remapped, and their
//! windows are migrated from its checkpoint file (crash) or drained
//! live over `migrate_export` (still answering but not ready). A
//! recovered backend rejoins the ring and the token share it regains
//! is migrated back the same way. `healthz`/`readyz`/`metrics` are
//! answered inline by the router core — they work with zero usable
//! backends, which is exactly when you need them.
//!
//! ## Gray-failure defense
//!
//! Probes only catch backends that *admit* to being sick. A browned-
//! out backend — slow on the data path but answering `readyz` in
//! time — passes every probe while wrecking tail latency. Three
//! mechanisms close that gap:
//!
//! * **Deadline propagation.** A client-stamped `deadline_ms` budget
//!   is decremented by the router's hop cost before relaying; frames
//!   whose budget cannot survive the hop are refused inline with a
//!   typed `deadline_exceeded`, so retries never exceed the caller's
//!   original patience and doomed work never reaches a backend.
//! * **Outlier ejection.** The relay path feeds per-backend latency
//!   and error EWMAs; each prober round compares every scored backend
//!   against the fleet median and **soft-ejects** outliers
//!   ([`RouterConfig::outlier_factor`]). Soft ejection is a distinct
//!   ring state from the prober's hard eviction: the backend keeps
//!   its ring share and its writes (no migration churn), but estimate
//!   reads on tokens whose standby replica is fully synced are served
//!   from the standby instead. Sustained recovery re-admits it.
//! * **Hedged reads with a retry budget.** An estimate on a synced
//!   token that has waited past the hedge delay (fixed, or dynamic
//!   from the primary's latency EWMA) fires a second copy to the ring
//!   standby; the first answer wins and is relayed, and when both
//!   land they are compared bitwise (a mismatch bumps a counter — the
//!   primary stays authoritative). Hedges spend from a per-connection
//!   token bucket refilled by completed requests
//!   ([`RouterConfig::retry_budget_ratio`]), so a brownout can never
//!   amplify load by more than the configured fraction.

use crate::backend::{Backend, BackendSpec};
use crate::error::RouterError;
use crate::migrate;
use crate::ring::HashRing;
use crate::stats::RouterStats;
use crate::sync::{self, Repl};
use pmc_json::Json;
use pmc_serve::protocol::{
    encode_frame, encode_frame_as, error_response, frame_deadline_ms, ok_response, parse_frame,
    raw_frame_encoding, read_frame, unwrap_response, with_deadline_ms, write_frame, Encoding,
    FrameError, Request, MAX_FRAME_BYTES,
};
use pmc_serve::tokenhash::{fnv1a, resume_key};
use pmc_serve::ServeError;
use std::collections::{HashMap, VecDeque};
use std::io::{Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Router tuning knobs.
#[derive(Debug, Clone)]
pub struct RouterConfig {
    /// TCP listen address; use port 0 for an ephemeral port.
    pub addr: String,
    /// The backend fleet. May be empty (the router starts, reports
    /// `no_backends`, and refuses traffic until a prober restore).
    pub backends: Vec<BackendSpec>,
    /// How often the prober polls each backend's `readyz`.
    pub probe_interval: Duration,
    /// Connect/read/write deadline of one probe (and of migration
    /// control connections).
    pub probe_timeout: Duration,
    /// Consecutive failed probes before a backend is evicted.
    pub evict_after: u32,
    /// Largest accepted frame payload, bytes (both directions).
    pub max_frame_bytes: u32,
    /// Client-connection admission budget.
    pub max_connections: usize,
    /// Backoff hint carried by typed overload refusals, milliseconds.
    pub retry_after_ms: u64,
    /// Maximum age of a partial client frame (slow-loris defense).
    pub read_timeout: Option<Duration>,
    /// Maximum stall of an unflushed client response.
    pub write_timeout: Option<Duration>,
    /// Client connections silent for this long are reaped.
    pub idle_timeout: Option<Duration>,
    /// Cadence of the anti-entropy loop replicating dirty windows
    /// from each primary to its ring standby. Zero disables the
    /// background loop (replication then only happens through
    /// [`PowerRouter::sync_now`]).
    pub sync_interval: Duration,
    /// Whether estimate reads on fully-synced tokens may hedge to the
    /// ring standby.
    pub hedge_reads: bool,
    /// Fixed delay before an estimate read hedges to the standby.
    /// `None` derives the delay dynamically from the primary's
    /// latency EWMA (≈ p95: three times the mean, clamped to
    /// [2 ms, 250 ms]).
    pub hedge_after: Option<Duration>,
    /// A scored backend whose latency EWMA exceeds the fleet median
    /// by this factor (or whose error-rate EWMA crosses one half) is
    /// soft-ejected.
    pub outlier_factor: f64,
    /// Latency samples a backend must accumulate before the outlier
    /// detector will judge it — no ejections on thin evidence.
    pub outlier_min_samples: u64,
    /// Consecutive healthy outlier passes before a soft-ejected
    /// backend is re-admitted.
    pub readmit_after: u32,
    /// Retry-budget earn rate: fraction of a hedge earned back per
    /// completed request on the connection (0.1 caps sustained hedge
    /// amplification at 10%).
    pub retry_budget_ratio: f64,
    /// Retry-budget burst: whole hedges a fresh connection may fire
    /// before the earn rate becomes the binding constraint.
    pub retry_budget_burst: u32,
}

impl Default for RouterConfig {
    fn default() -> Self {
        RouterConfig {
            addr: "127.0.0.1:0".into(),
            backends: Vec::new(),
            probe_interval: Duration::from_millis(100),
            probe_timeout: Duration::from_millis(500),
            evict_after: 3,
            max_frame_bytes: MAX_FRAME_BYTES,
            max_connections: 256,
            retry_after_ms: 50,
            read_timeout: Some(Duration::from_secs(2)),
            write_timeout: Some(Duration::from_secs(10)),
            idle_timeout: Some(Duration::from_secs(60)),
            sync_interval: Duration::from_millis(200),
            hedge_reads: true,
            hedge_after: None,
            outlier_factor: 3.0,
            outlier_min_samples: 16,
            readmit_after: 3,
            retry_budget_ratio: 0.1,
            retry_budget_burst: 3,
        }
    }
}

/// Milliseconds the router charges a relayed frame's deadline budget
/// for its own hop: a conservative floor (dispatch itself runs in
/// microseconds) so a budget the hop would consume is refused at the
/// router instead of wasting a backend round trip on a reply the
/// client has already given up on.
const ROUTER_HOP_COST_MS: u64 = 1;

/// Most answered-but-unresolved hedge races a connection may carry
/// (late loser copies still draining). The cap bounds router memory
/// against a primary that answers arbitrarily slower than the
/// standby; past it, the next request waits for the primary.
const MAX_PENDING_RACES: usize = 8;

/// State shared between the core thread, the prober and metrics.
pub(crate) struct Shared {
    pub(crate) config: RouterConfig,
    pub(crate) backends: Vec<Backend>,
    /// The current ring over usable (up) backends.
    pub(crate) ring: Mutex<HashRing>,
    /// Token → owning backend index. Live migration is the only thing
    /// that moves an existing entry; routing always believes it.
    pub(crate) table: Mutex<HashMap<String, usize>>,
    /// Token → replication state (what the anti-entropy loop last
    /// drained, and where it put the copy).
    pub(crate) repl: Mutex<HashMap<String, Repl>>,
    /// Token → machine-readable degradation reason, set when failover
    /// could not recover the token's window (cold start) and cleared
    /// once the window is replicated again.
    pub(crate) degraded: Mutex<HashMap<String, String>>,
    pub(crate) stats: Arc<RouterStats>,
    /// Unix milliseconds at router start — the floor for replication
    /// lag on backends that have never completed a sync round.
    pub(crate) started_ms: u64,
}

impl Shared {
    /// Rebuilds the ring from the backends' current up/down state.
    pub(crate) fn rebuild_ring(&self) {
        let ring = HashRing::build(
            self.backends
                .iter()
                .map(|b| (b.spec.name.as_str(), b.spec.weight)),
            |idx| self.backends[idx].is_up(),
        );
        *self.ring.lock().expect("ring lock") = ring;
    }

    /// Tokens currently routed to each backend index.
    fn tokens_owned(&self) -> Vec<u64> {
        let mut counts = vec![0u64; self.backends.len()];
        for &owner in self.table.lock().expect("table lock").values() {
            if owner < counts.len() {
                counts[owner] += 1;
            }
        }
        counts
    }

    fn healthz_json(&self) -> Json {
        Json::obj(vec![
            ("alive", Json::Bool(true)),
            ("router", Json::Bool(true)),
        ])
    }

    /// Per-backend `(replication_lag_ms, has_standby)`, and refreshes
    /// the aggregate lag / standby-coverage gauges as a side effect so
    /// every scrape and readyz reads current values.
    ///
    /// A backend "has a standby" when it is up and at least one other
    /// backend is up — every weight is ≥ 1, so a second up backend
    /// always contributes distinct ring coverage. Lag is the time
    /// since the backend's last *complete* anti-entropy round (router
    /// start for never-synced backends); down backends report zero —
    /// their windows are the failover path's problem, not the sync
    /// loop's. With the sync loop disabled (zero interval and no
    /// manual rounds yet) lag is also reported as zero rather than as
    /// an ever-growing alarm for a feature that is switched off.
    pub(crate) fn replication_health(&self) -> Vec<(u64, bool)> {
        let up_count = self.backends.iter().filter(|b| b.is_up()).count();
        let sync_enabled = !self.config.sync_interval.is_zero()
            || self
                .backends
                .iter()
                .any(|b| b.replicated_at_ms.load(Ordering::Relaxed) != 0);
        let now = sync::unix_ms();
        let rows: Vec<(u64, bool)> = self
            .backends
            .iter()
            .map(|b| {
                let has_standby = b.is_up() && up_count >= 2;
                let lag = if !b.is_up() || !sync_enabled {
                    0
                } else {
                    let synced_at = b
                        .replicated_at_ms
                        .load(Ordering::Relaxed)
                        .max(self.started_ms);
                    now.saturating_sub(synced_at)
                };
                (lag, has_standby)
            })
            .collect();
        let max_lag = rows.iter().map(|&(lag, _)| lag).max().unwrap_or(0);
        let uncovered = self
            .backends
            .iter()
            .zip(&rows)
            .filter(|(b, &(_, has))| b.is_up() && !has)
            .count() as u64;
        self.stats
            .replication_lag_ms
            .store(max_lag, Ordering::Relaxed);
        self.stats
            .backends_without_standby
            .store(uncovered, Ordering::Relaxed);
        rows
    }

    /// Router readiness: whether any usable backend exists and every
    /// up backend has a live standby, with typed reasons
    /// (`no_backends`, `no_standby:<name>`) when not.
    pub(crate) fn readyz_json(&self) -> Json {
        let mut reasons: Vec<String> = Vec::new();
        let usable = self.backends.iter().filter(|b| b.is_up()).count();
        if usable == 0 {
            reasons.push("no_backends".to_string());
        }
        let repl = self.replication_health();
        for (b, &(_, has_standby)) in self.backends.iter().zip(&repl) {
            if b.is_up() && !has_standby {
                // A single live copy of every window this backend
                // owns: losing it means cold starts. Not ready until
                // the fleet regains redundancy.
                reasons.push(format!("no_standby:{}", b.spec.name));
            }
            if b.is_up() && b.is_ejected() {
                // Gray failure in progress: the backend passes probes
                // but the outlier detector has its reads on the
                // standby. Traffic still flows — degraded, not down.
                reasons.push(format!("gray_degraded:{}", b.spec.name));
            }
        }
        let owned = self.tokens_owned();
        let backends: Vec<Json> = self
            .backends
            .iter()
            .zip(&owned)
            .zip(&repl)
            .map(|((b, &tokens), &(lag, has_standby))| {
                Json::obj(vec![
                    ("name", Json::from(b.spec.name.as_str())),
                    ("addr", Json::from(b.spec.addr.as_str())),
                    ("up", Json::Bool(b.is_up())),
                    ("inflight", Json::from(b.inflight.load(Ordering::Relaxed))),
                    ("tokens_owned", Json::from(tokens)),
                    ("replication_lag_ms", Json::from(lag)),
                    ("has_standby", Json::Bool(has_standby)),
                    ("gray_degraded", Json::Bool(b.is_ejected())),
                ])
            })
            .collect();
        let degraded: Vec<Json> = {
            let mut marks: Vec<(String, String)> = self
                .degraded
                .lock()
                .expect("degraded lock")
                .iter()
                .map(|(t, r)| (t.clone(), r.clone()))
                .collect();
            marks.sort();
            marks
                .into_iter()
                .map(|(token, reason)| {
                    Json::obj(vec![
                        ("token", Json::from(token.as_str())),
                        ("reason", Json::from(reason.as_str())),
                    ])
                })
                .collect()
        };
        Json::obj(vec![
            ("ready", Json::Bool(reasons.is_empty())),
            (
                "reasons",
                Json::Arr(
                    reasons
                        .into_iter()
                        .map(|r| Json::from(r.as_str()))
                        .collect(),
                ),
            ),
            ("backends", Json::Arr(backends)),
            (
                "tokens",
                Json::from(self.table.lock().expect("table lock").len()),
            ),
            (
                "migrations_failed",
                Json::from(self.stats.migrations_failed.load(Ordering::Relaxed)),
            ),
            (
                "replication_lag_ms",
                Json::from(self.stats.replication_lag_ms.load(Ordering::Relaxed)),
            ),
            ("degraded_tokens", Json::Arr(degraded)),
        ])
    }

    fn metrics_json(&self) -> Json {
        let owned = self.tokens_owned();
        let repl = self.replication_health();
        let rows: Vec<crate::stats::BackendRow> = self
            .backends
            .iter()
            .zip(&owned)
            .zip(&repl)
            .map(|((b, &tokens), &(lag, has_standby))| {
                (
                    b.spec.name.clone(),
                    b.is_up(),
                    b.inflight.load(Ordering::Relaxed),
                    b.evictions.load(Ordering::Relaxed),
                    b.upstream_failures.load(Ordering::Relaxed),
                    tokens,
                    lag,
                    has_standby,
                    b.latency_ewma_us().round() as u64,
                    b.is_ejected(),
                )
            })
            .collect();
        Json::obj(vec![
            ("content_type", Json::from("text/plain; version=0.0.4")),
            ("body", Json::from(self.stats.prometheus(&rows).as_str())),
        ])
    }
}

/// One relay connection to a backend, owned by a client connection.
struct Upstream {
    stream: TcpStream,
    backend: usize,
    read_buf: Vec<u8>,
    write_buf: Vec<u8>,
    write_pos: usize,
    /// Responses to discard before relaying to the client — one per
    /// router-injected `resume` frame (re-binding a re-routed
    /// connection to its durable identity).
    swallow: u32,
}

/// One relayed request's lifecycle, kept until every copy of its
/// response has landed — the late loser of a hedge race included, so
/// the two answers can be compared bitwise.
struct Pending {
    /// Backend index the primary relay went to.
    primary: usize,
    /// Relay start: the latency-EWMA sample and the hedge timer.
    started: Instant,
    /// The exact bytes relayed to the primary, retained only while a
    /// hedge may re-send them verbatim to the standby.
    raw: Vec<u8>,
    /// Standby eligible for a hedged copy (estimate on a synced
    /// token), decided at dispatch time.
    hedge_to: Option<usize>,
    /// The hedge decision has been made — fired, budget-denied, or
    /// never eligible. Either way, stop re-arming the timer.
    hedge_decided: bool,
    /// When the hedged copy was actually sent: the standby's latency
    /// sample starts here, not at `started` — the hedge delay is the
    /// primary's slowness, and must never be scored against the
    /// standby that bailed the request out.
    hedge_fired: Option<Instant>,
    /// The fired hedge's one-shot upstream to the standby.
    hedge_up: Option<Upstream>,
    /// First complete answer, already relayed to the client; retained
    /// to cross-check the late copy bitwise.
    answered: Option<Vec<u8>>,
    /// The primary upstream still owes this request a response frame.
    primary_owes: bool,
}

impl Pending {
    /// Every copy landed (or was abandoned): safe to forget.
    fn resolved(&self) -> bool {
        self.answered.is_some() && !self.primary_owes && self.hedge_up.is_none()
    }

    /// Unanswered with no upstream left to answer it: the client's
    /// request is unrecoverable on this connection.
    fn doomed(&self) -> bool {
        self.answered.is_none() && !self.primary_owes && self.hedge_up.is_none()
    }
}

/// Per-client-connection state owned by the core thread.
struct Conn {
    stream: TcpStream,
    id: u64,
    /// The durable identity this connection bound with `resume`.
    token: Option<String>,
    upstream: Option<Upstream>,
    /// Relayed requests not yet fully resolved, FIFO. At most the
    /// last one is unanswered; the rest are hedge races draining
    /// their late copies.
    pendings: VecDeque<Pending>,
    /// Retry-budget token bucket, millitokens: hedges spend 1000,
    /// completed requests earn `retry_budget_ratio * 1000`.
    budget_mtokens: u64,
    read_buf: Vec<u8>,
    write_buf: Vec<u8>,
    write_pos: usize,
    last_activity: Instant,
    partial_since: Option<Instant>,
    write_since: Option<Instant>,
    inflight: bool,
    closing: bool,
    eof: bool,
    /// Wire encoding negotiated by this client's `hello` — answered
    /// inline by the router (never relayed) so the router is the one
    /// authority; every upstream is brought into agreement by a
    /// router-injected hello on (re)connect.
    encoding: Encoding,
    /// A non-`hello` frame has been dispatched: the negotiation
    /// window is closed, same rule the backend core applies.
    saw_data: bool,
}

impl Conn {
    fn new(stream: TcpStream, id: u64, now: Instant, budget_burst: u32) -> Self {
        Conn {
            stream,
            id,
            token: None,
            upstream: None,
            pendings: VecDeque::new(),
            budget_mtokens: u64::from(budget_burst) * 1000,
            read_buf: Vec::new(),
            write_buf: Vec::new(),
            write_pos: 0,
            last_activity: now,
            partial_since: None,
            write_since: None,
            inflight: false,
            closing: false,
            eof: false,
            encoding: Encoding::Json,
            saw_data: false,
        }
    }

    fn flushed(&self) -> bool {
        self.write_pos == self.write_buf.len()
    }

    fn queue(&mut self, payload: &Json) {
        match encode_frame_as(payload, self.encoding) {
            Ok(bytes) => self.write_buf.extend_from_slice(&bytes),
            Err(_) => self.closing = true,
        }
    }

    /// Earns the per-request retry-budget refill, capped at the burst.
    fn earn_budget(&mut self, cfg: &RouterConfig) {
        let earn = (cfg.retry_budget_ratio.clamp(0.0, 1.0) * 1000.0) as u64;
        let cap = u64::from(cfg.retry_budget_burst) * 1000;
        self.budget_mtokens = (self.budget_mtokens + earn).min(cap.max(earn));
    }

    /// Drops every pending's gauges and sockets — connection teardown.
    fn release_pendings(&mut self, shared: &Shared) {
        for p in self.pendings.drain(..) {
            if p.primary_owes {
                RouterStats::dec(&shared.backends[p.primary].inflight);
            }
            if let Some(h) = p.hedge_up {
                let _ = h.stream.shutdown(Shutdown::Both);
                RouterStats::dec(&shared.backends[h.backend].inflight);
            }
        }
    }
}

/// Handle to a running router; dropping it shuts the router down.
pub struct PowerRouter {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    core: Option<JoinHandle<()>>,
    prober: Option<JoinHandle<()>>,
    syncer: Option<JoinHandle<()>>,
    shared: Arc<Shared>,
}

impl PowerRouter {
    /// Binds the listener and starts the core and prober threads.
    pub fn start(config: RouterConfig) -> Result<Self, RouterError> {
        let listener = TcpListener::bind(&config.addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let backends: Vec<Backend> = config.backends.iter().cloned().map(Backend::new).collect();
        let shared = Arc::new(Shared {
            config,
            backends,
            ring: Mutex::new(HashRing::default()),
            table: Mutex::new(HashMap::new()),
            repl: Mutex::new(HashMap::new()),
            degraded: Mutex::new(HashMap::new()),
            stats: Arc::new(RouterStats::default()),
            started_ms: sync::unix_ms(),
        });
        shared.rebuild_ring();
        let stop = Arc::new(AtomicBool::new(false));

        let core = {
            let shared = Arc::clone(&shared);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || core_loop(listener, &shared, &stop))
        };
        let prober = {
            let shared = Arc::clone(&shared);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || prober_loop(&shared, &stop))
        };
        let syncer = {
            let shared = Arc::clone(&shared);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || sync::sync_loop(&shared, &stop))
        };
        Ok(PowerRouter {
            addr,
            stop,
            core: Some(core),
            prober: Some(prober),
            syncer: Some(syncer),
            shared,
        })
    }

    /// The bound TCP address (resolves the ephemeral port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Live router counters.
    pub fn stats(&self) -> Arc<RouterStats> {
        Arc::clone(&self.shared.stats)
    }

    /// The backend index currently owning `token`, if it has been
    /// routed (test/ops introspection).
    pub fn owner_of(&self, token: &str) -> Option<usize> {
        self.shared
            .table
            .lock()
            .expect("table lock")
            .get(token)
            .copied()
    }

    /// Runs one anti-entropy round right now, on the caller's thread.
    /// Returns true when the round left every routed token's window
    /// replicated to its standby (tests and ops use this to reach a
    /// known-replicated state without waiting out the interval).
    pub fn sync_now(&self) -> bool {
        sync::sync_round(&self.shared)
    }

    /// `(replicated_seq, primary_seq)` for `token`, if the
    /// anti-entropy loop has seen it (test/ops introspection).
    pub fn replication_of(&self, token: &str) -> Option<(u64, u64)> {
        self.shared
            .repl
            .lock()
            .expect("repl lock")
            .get(token)
            .map(|r| (r.replicated_seq, r.primary_seq))
    }

    /// Tokens whose windows failover could not fully recover, with
    /// their machine-readable degradation reason. Cleared per token
    /// once its (fresh) window is replicated again.
    pub fn degraded_tokens(&self) -> Vec<(String, String)> {
        let mut out: Vec<(String, String)> = self
            .shared
            .degraded
            .lock()
            .expect("degraded lock")
            .iter()
            .map(|(t, r)| (t.clone(), r.clone()))
            .collect();
        out.sort();
        out
    }

    /// Stops accepting, notifies clients with a `draining` frame,
    /// closes every connection and joins both threads. Idempotent.
    pub fn shutdown(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(core) = self.core.take() {
            let _ = core.join();
        }
        if let Some(prober) = self.prober.take() {
            let _ = prober.join();
        }
        if let Some(syncer) = self.syncer.take() {
            let _ = syncer.join();
        }
    }
}

impl Drop for PowerRouter {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// The core readiness loop: accept, sweep, nap.
fn core_loop(listener: TcpListener, shared: &Shared, stop: &AtomicBool) {
    let mut conns: HashMap<u64, Conn> = HashMap::new();
    let mut next_id = 1u64;
    // Fast-poll iterations left before the core may take the long
    // idle nap; recharged by any activity.
    let mut cooldown = 0u32;
    loop {
        if stop.load(Ordering::SeqCst) {
            drop(listener);
            for (_, mut conn) in conns.drain() {
                // Best-effort parting notice; the socket close is the
                // real signal.
                if let Ok(bytes) =
                    encode_frame_as(&error_response(&ServeError::Draining), conn.encoding)
                {
                    let _ = conn.stream.write(&bytes);
                }
                let _ = conn.stream.shutdown(Shutdown::Both);
                conn.release_pendings(shared);
                RouterStats::dec(&shared.stats.connections_open);
            }
            return;
        }

        let mut progress = accept(&listener, &mut conns, &mut next_id, shared);

        let now = Instant::now();
        let mut to_close = Vec::new();
        for (&id, conn) in conns.iter_mut() {
            let (p, close) = sweep_conn(conn, shared, now);
            progress |= p;
            if close {
                to_close.push(id);
            }
        }
        for id in to_close {
            if let Some(mut conn) = conns.remove(&id) {
                let _ = conn.stream.shutdown(Shutdown::Both);
                conn.release_pendings(shared);
                RouterStats::dec(&shared.stats.connections_open);
            }
            progress = true;
        }

        // Nap discipline. The serve core gets woken by its workers'
        // completion channel; a relay has no such signal — responses
        // arrive on upstream sockets — so the core must poll. Three
        // regimes:
        //  - a relay is awaiting its response (or bytes are pending):
        //    yield the scheduler slot — on a shared CPU that hands
        //    the slice straight to the backend producing the answer,
        //    and avoids the ~100 µs the kernel pads onto tiny sleeps;
        //  - recently active: short naps for a while, so the gap
        //    between a delivered response and the client's next
        //    request doesn't eat the long nap (that tail is worth
        //    ~2 ms per occurrence at p99);
        //  - genuinely quiet: the long nap.
        let awaiting = conns.values().any(|c| {
            c.inflight || !c.pendings.is_empty() || !c.flushed() || !c.read_buf.is_empty()
        });
        if progress || awaiting {
            cooldown = 64;
        }
        if awaiting {
            std::thread::yield_now();
        } else if cooldown > 0 {
            cooldown -= 1;
            std::thread::sleep(Duration::from_micros(20));
        } else {
            std::thread::sleep(Duration::from_millis(2));
        }
    }
}

/// Accepts pending connections up to the admission budget.
fn accept(
    listener: &TcpListener,
    conns: &mut HashMap<u64, Conn>,
    next_id: &mut u64,
    shared: &Shared,
) -> bool {
    let mut progress = false;
    let now = Instant::now();
    loop {
        match listener.accept() {
            Ok((stream, _)) => {
                progress = true;
                if conns.len() >= shared.config.max_connections {
                    if let Ok(bytes) = encode_frame(&error_response(&ServeError::Overloaded {
                        retry_after_ms: shared.config.retry_after_ms,
                    })) {
                        let mut stream = stream;
                        let _ = stream.write(&bytes);
                        let _ = stream.shutdown(Shutdown::Both);
                    }
                    continue;
                }
                if stream.set_nonblocking(true).is_err() {
                    continue;
                }
                let _ = stream.set_nodelay(true);
                let id = *next_id;
                *next_id += 1;
                let budget_burst = shared.config.retry_budget_burst;
                conns.insert(id, Conn::new(stream, id, now, budget_burst));
                RouterStats::bump(&shared.stats.connections_accepted);
                RouterStats::bump(&shared.stats.connections_open);
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
            Err(_) => break,
        }
    }
    progress
}

/// How a parsed client frame was dispatched.
enum Dispatch {
    /// Answered by the router; keep parsing.
    Inline,
    /// Relayed upstream; one request is now in flight.
    Relayed,
}

/// One readiness sweep over a client connection and its upstream.
/// Returns (made progress, close now).
fn sweep_conn(conn: &mut Conn, shared: &Shared, now: Instant) -> (bool, bool) {
    let cfg = &shared.config;
    let mut progress = false;
    let mut close = false;

    // Client read phase.
    if !conn.closing && !conn.eof {
        let cap = 4 + cfg.max_frame_bytes as usize;
        let mut chunk = [0u8; 16 * 1024];
        while conn.read_buf.len() < cap {
            match conn.stream.read(&mut chunk) {
                Ok(0) => {
                    conn.eof = true;
                    break;
                }
                Ok(n) => {
                    conn.read_buf.extend_from_slice(&chunk[..n]);
                    conn.last_activity = now;
                    progress = true;
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    conn.eof = true;
                    break;
                }
            }
        }
    }

    // Parse/dispatch phase: at most one relayed request unanswered,
    // and a bounded backlog of answered hedge races still draining
    // their late copies.
    while !conn.closing && !conn.inflight && conn.pendings.len() < MAX_PENDING_RACES {
        match parse_frame(&conn.read_buf, cfg.max_frame_bytes) {
            Ok(None) => {
                if conn.read_buf.is_empty() {
                    conn.partial_since = None;
                } else if conn.partial_since.is_none() {
                    conn.partial_since = Some(now);
                }
                break;
            }
            Ok(Some((frame, consumed))) => {
                let raw: Vec<u8> = conn.read_buf[..consumed].to_vec();
                conn.read_buf.drain(..consumed);
                conn.partial_since = None;
                progress = true;
                match dispatch(conn, raw, &frame, shared) {
                    Dispatch::Inline => continue,
                    Dispatch::Relayed => break,
                }
            }
            Err(FrameError::Fatal(e)) => {
                conn.queue(&error_response(&e));
                conn.closing = true;
            }
            Err(FrameError::Payload { consumed, error }) => {
                conn.read_buf.drain(..consumed);
                conn.partial_since = None;
                progress = true;
                conn.queue(&error_response(&error));
            }
        }
    }

    // Upstream sweep: flush our relayed bytes, read responses, relay
    // them back verbatim (minus swallowed router-injected resumes).
    let mut upstream_broke = false;
    let mut earned = 0u32;
    if let Some(up) = conn.upstream.as_mut() {
        // Flush.
        while up.write_pos < up.write_buf.len() {
            match up.stream.write(&up.write_buf[up.write_pos..]) {
                Ok(0) => {
                    upstream_broke = true;
                    break;
                }
                Ok(n) => {
                    up.write_pos += n;
                    progress = true;
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    upstream_broke = true;
                    break;
                }
            }
        }
        if up.write_pos == up.write_buf.len() {
            up.write_buf.clear();
            up.write_pos = 0;
        }
        // Read.
        if !upstream_broke {
            let cap = 4 + cfg.max_frame_bytes as usize;
            let mut chunk = [0u8; 16 * 1024];
            while up.read_buf.len() < cap {
                match up.stream.read(&mut chunk) {
                    Ok(0) => {
                        upstream_broke = true;
                        break;
                    }
                    Ok(n) => {
                        up.read_buf.extend_from_slice(&chunk[..n]);
                        progress = true;
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                    Err(_) => {
                        upstream_broke = true;
                        break;
                    }
                }
            }
        }
        // Relay complete response frames. Frames match, in order, the
        // pendings the primary still owes (FIFO — backends answer in
        // request order).
        loop {
            match parse_frame(&up.read_buf, cfg.max_frame_bytes) {
                Ok(Some((_, consumed))) => {
                    if up.swallow > 0 {
                        up.swallow -= 1;
                        up.read_buf.drain(..consumed);
                        continue;
                    }
                    let bytes: Vec<u8> = up.read_buf[..consumed].to_vec();
                    up.read_buf.drain(..consumed);
                    let Some(p) = conn.pendings.iter_mut().find(|p| p.primary_owes) else {
                        // An unsolicited frame: the backend lost frame
                        // sync — as broken as one that hung up.
                        upstream_broke = true;
                        break;
                    };
                    p.primary_owes = false;
                    RouterStats::dec(&shared.backends[p.primary].inflight);
                    // Score the primary's latency whether or not it won
                    // the race — a hedge-won brownout must still feed
                    // the outlier detector the slow samples.
                    let us = now.duration_since(p.started).as_secs_f64() * 1e6;
                    shared.backends[p.primary].record_latency_us(us);
                    match &p.answered {
                        None => {
                            // The primary answered first: relay verbatim.
                            conn.write_buf.extend_from_slice(&bytes);
                            conn.inflight = false;
                            earned += 1;
                            if p.hedge_up.is_some() {
                                p.answered = Some(bytes);
                            } else {
                                p.answered = Some(Vec::new());
                            }
                        }
                        Some(first) => {
                            // The late copy of a hedge-won race: the
                            // client already has the standby's answer;
                            // this one only gets the bitwise check.
                            if *first != bytes {
                                RouterStats::bump(&shared.stats.hedge_mismatches);
                            }
                        }
                    }
                    progress = true;
                }
                Ok(None) => break,
                // A backend speaking garbage is as broken as one that
                // hung up; the client restarts on a fresh connection.
                Err(_) => {
                    upstream_broke = true;
                    break;
                }
            }
        }
    }
    if upstream_broke {
        if let Some(up) = conn.upstream.take() {
            let _ = up.stream.shutdown(Shutdown::Both);
            RouterStats::bump(&shared.backends[up.backend].upstream_failures);
            shared.backends[up.backend].record_relay_error();
        }
        // Everything the primary still owed is gone. Answered races
        // just forfeit their bitwise check; the unanswered request
        // may still be saved by an in-flight hedge (`doomed()` below
        // decides once no copy remains).
        for p in conn.pendings.iter_mut().filter(|p| p.primary_owes) {
            p.primary_owes = false;
            RouterStats::dec(&shared.backends[p.primary].inflight);
        }
    }
    // Completed requests refill the token-bucket retry budget
    // (deferred out of the relay loop — `earn_budget` needs the whole
    // connection while the loop holds its upstream).
    for _ in 0..earned {
        conn.earn_budget(cfg);
    }

    // Hedge sweep: each fired hedge owns a one-shot upstream to the
    // standby; flush it, read it, and resolve its race.
    sweep_hedges(conn, shared, now, &mut progress);

    // Hedge trigger: the newest pending is the only possibly-
    // unanswered one; past its delay, race a copy to the standby.
    if !close && !conn.closing {
        fire_hedge_if_due(conn, shared, now);
    }

    // A request with no upstream left to answer it is unrecoverable
    // mid-stream: drop the client connection so its retry layer
    // reconnects and resumes — by then routing points at the new
    // owner. Injected-resume replies still owed by a broken upstream
    // are covered by `primary_owes` on the pending that forced the
    // injection.
    if conn.pendings.iter().any(Pending::doomed) {
        RouterStats::bump(&shared.stats.upstream_drops);
        close = true;
    }
    conn.pendings.retain(|p| !p.resolved());

    // Client flush phase.
    if !conn.flushed() {
        let mut wrote = false;
        loop {
            match conn.stream.write(&conn.write_buf[conn.write_pos..]) {
                Ok(0) => {
                    close = true;
                    break;
                }
                Ok(n) => {
                    conn.write_pos += n;
                    wrote = true;
                    progress = true;
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    close = true;
                    break;
                }
            }
            if conn.flushed() {
                break;
            }
        }
        if conn.flushed() {
            conn.write_buf.clear();
            conn.write_pos = 0;
            conn.write_since = None;
        } else if wrote || conn.write_since.is_none() {
            conn.write_since = Some(now);
        }
    }

    // Deadline phase — same discipline as the serve core.
    if !close {
        if let (Some(limit), Some(since)) = (cfg.read_timeout, conn.partial_since) {
            if !conn.closing && now.duration_since(since) >= limit {
                conn.queue(&error_response(&ServeError::Deadline { mid_frame: true }));
                conn.closing = true;
            }
        }
        if let (Some(limit), Some(since)) = (cfg.write_timeout, conn.write_since) {
            if now.duration_since(since) >= limit {
                close = true;
            }
        }
        if let Some(limit) = cfg.idle_timeout {
            if !conn.inflight
                && !conn.closing
                && conn.read_buf.is_empty()
                && conn.flushed()
                && now.duration_since(conn.last_activity) >= limit
            {
                conn.queue(&error_response(&ServeError::Deadline { mid_frame: false }));
                conn.closing = true;
            }
        }
    }

    if conn.closing && conn.flushed() {
        close = true;
    }
    if conn.eof && !conn.inflight && !conn.closing && conn.flushed() {
        close = true;
    }
    (progress, close)
}

/// Sweeps every fired hedge: flush its one-shot upstream, read it,
/// and resolve its race. The standby's answer is relayed if the
/// primary hasn't landed yet; otherwise it is only compared bitwise
/// against the already-relayed copy (the primary stays
/// authoritative — a disagreement is counted, not served).
fn sweep_hedges(conn: &mut Conn, shared: &Shared, now: Instant, progress: &mut bool) {
    let cfg = &shared.config;
    let mut earned = 0u32;
    for p in conn.pendings.iter_mut() {
        let Some(mut up) = p.hedge_up.take() else {
            continue;
        };
        let mut broke = false;
        while up.write_pos < up.write_buf.len() {
            match up.stream.write(&up.write_buf[up.write_pos..]) {
                Ok(0) => {
                    broke = true;
                    break;
                }
                Ok(n) => {
                    up.write_pos += n;
                    *progress = true;
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    broke = true;
                    break;
                }
            }
        }
        if up.write_pos == up.write_buf.len() {
            up.write_buf.clear();
            up.write_pos = 0;
        }
        if !broke {
            let cap = 4 + cfg.max_frame_bytes as usize;
            let mut chunk = [0u8; 16 * 1024];
            while up.read_buf.len() < cap {
                match up.stream.read(&mut chunk) {
                    Ok(0) => {
                        broke = true;
                        break;
                    }
                    Ok(n) => {
                        up.read_buf.extend_from_slice(&chunk[..n]);
                        *progress = true;
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                    Err(_) => {
                        broke = true;
                        break;
                    }
                }
            }
        }
        // The injected resume's reply first (swallowed), then the one
        // response this upstream exists for.
        let mut answer: Option<Vec<u8>> = None;
        while answer.is_none() && !broke {
            match parse_frame(&up.read_buf, cfg.max_frame_bytes) {
                Ok(Some((_, consumed))) => {
                    if up.swallow > 0 {
                        up.swallow -= 1;
                        up.read_buf.drain(..consumed);
                        continue;
                    }
                    answer = Some(up.read_buf[..consumed].to_vec());
                    up.read_buf.drain(..consumed);
                }
                Ok(None) => break,
                Err(_) => broke = true,
            }
        }
        if let Some(bytes) = answer {
            let standby = up.backend;
            let _ = up.stream.shutdown(Shutdown::Both);
            RouterStats::dec(&shared.backends[standby].inflight);
            let from = p.hedge_fired.unwrap_or(p.started);
            let us = now.duration_since(from).as_secs_f64() * 1e6;
            shared.backends[standby].record_latency_us(us);
            *progress = true;
            match &p.answered {
                None => {
                    RouterStats::bump(&shared.stats.hedges_won);
                    conn.write_buf.extend_from_slice(&bytes);
                    conn.inflight = false;
                    earned += 1;
                    p.answered = Some(bytes);
                }
                Some(first) => {
                    if *first != bytes {
                        RouterStats::bump(&shared.stats.hedge_mismatches);
                    }
                }
            }
        } else if broke {
            let standby = up.backend;
            let _ = up.stream.shutdown(Shutdown::Both);
            RouterStats::dec(&shared.backends[standby].inflight);
            shared.backends[standby].record_relay_error();
            // If the primary is gone too, the caller's `doomed()`
            // check drops the connection; otherwise the race simply
            // falls back to the primary.
        } else {
            p.hedge_up = Some(up);
        }
    }
    for _ in 0..earned {
        conn.earn_budget(cfg);
    }
}

/// The delay after which an eligible estimate read hedges: fixed from
/// config when set, else derived from the primary's latency EWMA
/// (three times the mean ≈ a p95 stand-in under exponential-ish
/// service times, clamped to [2 ms, 250 ms]). `None` — no hedging —
/// until the primary has enough samples to make the derivation mean
/// anything.
fn hedge_delay(cfg: &RouterConfig, primary: &Backend) -> Option<Duration> {
    if let Some(d) = cfg.hedge_after {
        return Some(d);
    }
    if primary.latency_samples.load(Ordering::Relaxed) < 4 {
        return None;
    }
    let us = (3.0 * primary.latency_ewma_us()).clamp(2_000.0, 250_000.0);
    Some(Duration::from_micros(us as u64))
}

/// Fires a hedged copy of the newest pending to its standby once the
/// hedge delay has passed unanswered — if the connection's retry
/// budget can pay for it. The decision is made at most once per
/// request.
fn fire_hedge_if_due(conn: &mut Conn, shared: &Shared, now: Instant) {
    let Some(p) = conn.pendings.back_mut() else {
        return;
    };
    if p.answered.is_some() || p.hedge_decided {
        return;
    }
    let Some(standby) = p.hedge_to else {
        p.hedge_decided = true;
        return;
    };
    let Some(delay) = hedge_delay(&shared.config, &shared.backends[p.primary]) else {
        return; // not enough signal yet; keep waiting on the primary
    };
    if now.duration_since(p.started) < delay {
        return;
    }
    p.hedge_decided = true;
    if !shared.backends[standby].is_up() || shared.backends[standby].is_ejected() {
        return;
    }
    let Some(token) = conn.token.clone() else {
        return; // hedges only exist for bound tokens
    };
    if conn.budget_mtokens < 1000 {
        RouterStats::bump(&shared.stats.retry_budget_exhausted);
        return;
    }
    let stream = TcpStream::connect(&shared.backends[standby].spec.addr).and_then(|s| {
        s.set_nonblocking(true)?;
        let _ = s.set_nodelay(true);
        Ok(s)
    });
    let stream = match stream {
        Ok(s) => s,
        Err(_) => {
            RouterStats::bump(&shared.backends[standby].upstream_failures);
            return;
        }
    };
    let mut up = Upstream {
        stream,
        backend: standby,
        read_buf: Vec::new(),
        write_buf: Vec::new(),
        write_pos: 0,
        swallow: 0,
    };
    // The standby must answer in the same encoding the primary does,
    // or the bitwise hedge comparison would flag every race as a
    // mismatch: replay the hello first on binary connections.
    if conn.encoding != Encoding::Json {
        let hello = Request::Hello {
            encoding: conn.encoding.as_str().to_string(),
        }
        .to_json_value();
        match encode_frame(&hello) {
            Ok(bytes) => {
                up.write_buf.extend_from_slice(&bytes);
                up.swallow += 1;
            }
            Err(_) => return,
        }
    }
    // The hedge copy must read the same durable window the primary
    // would: bind the one-shot connection to the token first.
    let payload = Request::Resume { token }.to_json_value();
    match encode_frame(&payload) {
        Ok(bytes) => {
            up.write_buf.extend_from_slice(&bytes);
            up.swallow += 1;
        }
        Err(_) => return,
    }
    up.write_buf.extend_from_slice(&p.raw);
    conn.budget_mtokens -= 1000;
    RouterStats::bump(&shared.stats.hedges_fired);
    RouterStats::bump(&shared.backends[standby].inflight);
    p.hedge_fired = Some(now);
    p.hedge_up = Some(up);
}

/// Classifies one client frame and either answers it inline or relays
/// it (verbatim) to the owning backend.
fn dispatch(conn: &mut Conn, raw: Vec<u8>, frame: &Json, shared: &Shared) -> Dispatch {
    let op = frame.str_field("op").unwrap_or("");
    // Any non-hello frame closes the negotiation window — the same
    // rule the backend core applies, so the router's inline verdict
    // on a late `hello` matches what a direct connection would say.
    if op != "hello" {
        conn.saw_data = true;
    }
    // Deadline propagation: charge the frame's budget the router's
    // hop cost before it goes anywhere. A budget the hop would
    // consume is refused here, typed — the backend round trip would
    // only produce an answer the client has already abandoned.
    let mut raw = raw;
    if let Some(ms) = frame_deadline_ms(frame) {
        if ms <= ROUTER_HOP_COST_MS {
            RouterStats::bump(&shared.stats.deadline_rejects);
            RouterStats::bump(&shared.stats.frames_inline);
            conn.queue(&error_response(&ServeError::DeadlineExceeded {
                remaining_ms: 0,
            }));
            return Dispatch::Inline;
        }
        // The restamped copy must keep the frame's own wire encoding:
        // a binary request hedged later is re-sent verbatim, and the
        // standby must see the same encoding the primary did.
        let restamped = with_deadline_ms(frame, ms - ROUTER_HOP_COST_MS);
        match encode_frame_as(&restamped, raw_frame_encoding(&raw)) {
            Ok(bytes) => raw = bytes,
            Err(_) => {
                conn.closing = true;
                return Dispatch::Inline;
            }
        }
    }
    match op {
        // Encoding negotiation is a connection property, and the
        // router owns the client connection: answer inline with the
        // exact verdict (and bytes) the backend core would produce,
        // then bring each upstream into agreement by injecting a
        // hello when it is (re)connected.
        "hello" => {
            RouterStats::bump(&shared.stats.frames_inline);
            if conn.saw_data {
                conn.queue(&error_response(&ServeError::Protocol {
                    reason: "hello must precede all data frames".into(),
                }));
                return Dispatch::Inline;
            }
            let name = frame.str_field("encoding").unwrap_or("json");
            let (agreed, notice) = match Encoding::from_name(name) {
                Some(e) => (e, None),
                None => (
                    Encoding::Json,
                    Some(format!("unknown encoding {name:?}, using json")),
                ),
            };
            conn.encoding = agreed;
            if agreed == Encoding::Binary {
                RouterStats::bump(&shared.stats.binary_conns);
            }
            let mut fields = vec![("encoding", Json::from(agreed.as_str()))];
            if let Some(n) = notice {
                fields.push(("notice", Json::from(n.as_str())));
            }
            conn.queue(&ok_response(Json::obj(fields)));
            Dispatch::Inline
        }
        // The router's own health surface: answered even with every
        // backend down.
        "healthz" => {
            RouterStats::bump(&shared.stats.frames_inline);
            conn.queue(&ok_response(shared.healthz_json()));
            Dispatch::Inline
        }
        "readyz" => {
            RouterStats::bump(&shared.stats.frames_inline);
            conn.queue(&ok_response(shared.readyz_json()));
            Dispatch::Inline
        }
        "metrics" => {
            RouterStats::bump(&shared.stats.frames_inline);
            conn.queue(&ok_response(shared.metrics_json()));
            Dispatch::Inline
        }
        "resume" => {
            let token = match frame.str_field("token") {
                Ok(t) if !t.is_empty() => t.to_string(),
                // Malformed resume: relay it so the backend answers
                // the protocol error with its own words.
                _ => return forward(conn, raw, shared, false),
            };
            let owner = {
                let mut table = shared.table.lock().expect("table lock");
                match table.get(&token) {
                    Some(&idx) => Some(idx),
                    None => {
                        let owner = shared
                            .ring
                            .lock()
                            .expect("ring lock")
                            .owner(resume_key(&token));
                        if let Some(idx) = owner {
                            table.insert(token.clone(), idx);
                        }
                        owner
                    }
                }
            };
            conn.token = Some(token);
            match owner {
                Some(idx) if shared.backends[idx].is_up() => {
                    forward_to(conn, raw, shared, idx, true, None)
                }
                _ => refuse(conn, shared),
            }
        }
        "ingest" => {
            // Conservative staleness guard: this write will advance
            // the primary's window past the standby's copy. Mark the
            // replica stale *now*, before the relay, so no hedge or
            // standby read can race the write and serve pre-write
            // state as if it were synced. The next anti-entropy round
            // restores synced-ness with the true sequence numbers.
            if let Some(token) = &conn.token {
                if let Some(r) = shared.repl.lock().expect("repl lock").get_mut(token) {
                    r.primary_seq = r.primary_seq.saturating_add(1);
                }
            }
            forward(conn, raw, shared, false)
        }
        "estimate" => forward_estimate(conn, raw, shared),
        // Labeled training samples go to the token's primary (or the
        // ephemeral placement) like any write, but touch only the
        // shard's shared model state — no client window advances, so
        // no replica-staleness bump.
        "train" => forward(conn, raw, shared, false),
        _ => forward(conn, raw, shared, false),
    }
}

/// Routes an estimate read. On a bound token whose standby replica is
/// fully synced, the read may leave the primary's queue: a
/// soft-ejected primary has it served from the standby outright
/// (routing, not a retry — no budget draw), and a healthy primary
/// gets it relayed normally but armed to hedge to the standby past
/// the hedge delay.
fn forward_estimate(conn: &mut Conn, raw: Vec<u8>, shared: &Shared) -> Dispatch {
    let Some(token) = conn.token.clone() else {
        // Ephemeral windows have no replica; nothing to hedge to.
        return forward(conn, raw, shared, false);
    };
    let owner = {
        let table = shared.table.lock().expect("table lock");
        match table.get(&token) {
            Some(&idx) => Some(idx),
            None => shared
                .ring
                .lock()
                .expect("ring lock")
                .owner(resume_key(&token)),
        }
    };
    let Some(idx) = owner.filter(|&idx| shared.backends[idx].is_up()) else {
        return refuse(conn, shared);
    };
    let standby = synced_standby(shared, &token).filter(|&s| s != idx);
    if shared.backends[idx].is_ejected() {
        if let Some(s) = standby {
            return forward_to(conn, raw, shared, s, false, None);
        }
    }
    let hedge_to = if shared.config.hedge_reads {
        standby
    } else {
        None
    };
    forward_to(conn, raw, shared, idx, false, hedge_to)
}

/// The ring standby holding a fully-synced copy of `token`'s window —
/// `None` unless a copy exists, it is as new as everything the
/// primary has observed, and the backend holding it is up and not
/// itself soft-ejected. Only such a standby may answer reads: bitwise
/// identity with the primary's answer is the contract.
fn synced_standby(shared: &Shared, token: &str) -> Option<usize> {
    let repl = shared.repl.lock().expect("repl lock");
    let r = repl.get(token)?;
    if r.replicated_seq == 0 || r.replicated_seq != r.primary_seq {
        return None;
    }
    let s = r.standby;
    (s < shared.backends.len() && shared.backends[s].is_up() && !shared.backends[s].is_ejected())
        .then_some(s)
}

/// Relays a frame to the backend owning this connection's traffic.
fn forward(conn: &mut Conn, raw: Vec<u8>, shared: &Shared, is_resume: bool) -> Dispatch {
    let owner = match &conn.token {
        Some(token) => {
            let table = shared.table.lock().expect("table lock");
            match table.get(token) {
                Some(&idx) => Some(idx),
                None => shared
                    .ring
                    .lock()
                    .expect("ring lock")
                    .owner(resume_key(token)),
            }
        }
        None => {
            // Ephemeral placement: stable for this connection's life,
            // re-resolved only if the placed backend went down.
            match conn.upstream.as_ref() {
                Some(up) if shared.backends[up.backend].is_up() => Some(up.backend),
                _ => shared
                    .ring
                    .lock()
                    .expect("ring lock")
                    .owner(fnv1a(&conn.id.to_le_bytes())),
            }
        }
    };
    match owner {
        Some(idx) if shared.backends[idx].is_up() => {
            forward_to(conn, raw, shared, idx, is_resume, None)
        }
        _ => refuse(conn, shared),
    }
}

/// Ensures an upstream to backend `idx` and relays the raw frame.
/// `hedge_to` arms the request to race a copy to that standby once
/// the hedge delay passes unanswered.
fn forward_to(
    conn: &mut Conn,
    raw: Vec<u8>,
    shared: &Shared,
    idx: usize,
    is_resume: bool,
    hedge_to: Option<usize>,
) -> Dispatch {
    let reconnect = match conn.upstream.as_ref() {
        Some(up) => up.backend != idx,
        None => true,
    };
    if reconnect {
        if let Some(up) = conn.upstream.take() {
            let _ = up.stream.shutdown(Shutdown::Both);
        }
        // Late loser copies still owed by the old upstream will never
        // arrive now; they forfeit their bitwise check. (The parse
        // gate guarantees no *unanswered* pending exists here.)
        for p in conn.pendings.iter_mut().filter(|p| p.primary_owes) {
            p.primary_owes = false;
            RouterStats::dec(&shared.backends[p.primary].inflight);
        }
        let stream = TcpStream::connect(&shared.backends[idx].spec.addr).and_then(|s| {
            s.set_nonblocking(true)?;
            let _ = s.set_nodelay(true);
            Ok(s)
        });
        let stream = match stream {
            Ok(s) => s,
            Err(_) => {
                RouterStats::bump(&shared.backends[idx].upstream_failures);
                return refuse(conn, shared);
            }
        };
        let mut up = Upstream {
            stream,
            backend: idx,
            read_buf: Vec::new(),
            write_buf: Vec::new(),
            write_pos: 0,
            swallow: 0,
        };
        // A binary-negotiated client must find every fresh upstream
        // speaking binary too — responses are relayed verbatim, and a
        // reconnect must not silently switch the wire encoding
        // mid-connection. Replay the hello before anything else (it
        // must precede the injected resume, which counts as data);
        // its reply is the router's business, not the client's.
        if conn.encoding != Encoding::Json {
            let hello = Request::Hello {
                encoding: conn.encoding.as_str().to_string(),
            }
            .to_json_value();
            match encode_frame(&hello) {
                Ok(bytes) => {
                    up.write_buf.extend_from_slice(&bytes);
                    up.swallow += 1;
                }
                Err(_) => {
                    conn.closing = true;
                    return Dispatch::Inline;
                }
            }
        }
        // A re-routed connection with a bound identity must re-bind
        // before its next request, or the backend would file samples
        // under a cold ephemeral window. The injected resume's
        // response is the router's business, not the client's.
        if !is_resume {
            if let Some(token) = &conn.token {
                let payload = Request::Resume {
                    token: token.clone(),
                }
                .to_json_value();
                match encode_frame(&payload) {
                    Ok(bytes) => {
                        up.write_buf.extend_from_slice(&bytes);
                        up.swallow += 1;
                    }
                    Err(_) => {
                        conn.closing = true;
                        return Dispatch::Inline;
                    }
                }
            }
        }
        conn.upstream = Some(up);
    }
    let up = conn.upstream.as_mut().expect("upstream just ensured");
    up.write_buf.extend_from_slice(&raw);
    conn.inflight = true;
    conn.pendings.push_back(Pending {
        primary: idx,
        started: Instant::now(),
        // The raw bytes are only retained while a hedge may re-send
        // them verbatim; unhedgeable requests keep nothing.
        raw: if hedge_to.is_some() { raw } else { Vec::new() },
        hedge_decided: hedge_to.is_none(),
        hedge_fired: None,
        hedge_to,
        hedge_up: None,
        answered: None,
        primary_owes: true,
    });
    RouterStats::bump(&shared.stats.frames_routed);
    RouterStats::bump(&shared.backends[idx].inflight);
    Dispatch::Relayed
}

/// Answers a typed overload refusal: no usable backend can take this
/// frame right now (none configured, all evicted, or the owner is
/// down pending migration). A retrying client comes back after the
/// hint — usually to a freshly migrated owner.
fn refuse(conn: &mut Conn, shared: &Shared) -> Dispatch {
    RouterStats::bump(&shared.stats.no_backend_rejects);
    RouterStats::bump(&shared.stats.frames_inline);
    conn.queue(&error_response(&ServeError::Overloaded {
        retry_after_ms: shared.config.retry_after_ms,
    }));
    Dispatch::Inline
}

/// One readyz probe against a backend address.
fn probe_once(addr: &str, timeout: Duration) -> Result<bool, RouterError> {
    let sock = addr
        .to_socket_addrs()?
        .next()
        .ok_or_else(|| RouterError::Config {
            reason: format!("backend address {addr:?} resolves to nothing"),
        })?;
    let mut stream = TcpStream::connect_timeout(&sock, timeout)?;
    stream.set_read_timeout(Some(timeout))?;
    stream.set_write_timeout(Some(timeout))?;
    write_frame(&mut stream, &Request::Readyz.to_json_value())?;
    let frame = read_frame(&mut stream)?.ok_or(ServeError::Protocol {
        reason: "backend closed during probe".into(),
    })?;
    let r = unwrap_response(frame)?;
    Ok(r.field("ready")
        .ok()
        .and_then(|v| v.as_bool().ok())
        .unwrap_or(false))
}

/// The health prober: polls every backend's readyz, evicts after
/// consecutive failures, restores on recovery, and triggers the
/// migration rebalance on every membership change. Each round also
/// runs the gray-failure outlier pass over the relay-path EWMAs —
/// catching exactly the backends these probes cannot.
fn prober_loop(shared: &Shared, stop: &AtomicBool) {
    let cfg = &shared.config;
    let mut consecutive = vec![0u32; shared.backends.len()];
    let mut healthy_streak = vec![0u32; shared.backends.len()];
    let mut jitter = jitter_seed();
    while !stop.load(Ordering::SeqCst) {
        for (idx, backend) in shared.backends.iter().enumerate() {
            if stop.load(Ordering::SeqCst) {
                return;
            }
            let healthy = matches!(probe_once(&backend.spec.addr, cfg.probe_timeout), Ok(true));
            if healthy {
                consecutive[idx] = 0;
                if !backend.is_up() {
                    backend.up.store(true, Ordering::Relaxed);
                    RouterStats::bump(&shared.stats.restores);
                    shared.rebuild_ring();
                    migrate::rebalance(shared);
                }
            } else {
                consecutive[idx] = consecutive[idx].saturating_add(1);
                if backend.is_up() && consecutive[idx] >= cfg.evict_after.max(1) {
                    backend.up.store(false, Ordering::Relaxed);
                    RouterStats::bump(&backend.evictions);
                    RouterStats::bump(&shared.stats.evictions);
                    // A hard-evicted backend sheds its gray score: if
                    // it comes back it must earn a fresh one, not
                    // inherit the EWMA that predated the outage.
                    backend.reset_gray_score();
                    healthy_streak[idx] = 0;
                    shared.rebuild_ring();
                    migrate::rebalance(shared);
                }
            }
        }
        outlier_pass(shared, &mut healthy_streak);
        // Interruptible, jittered nap: ±20% keeps a fleet of probers
        // (and this router's own loops) from phase-locking into
        // synchronized probe bursts; short steps keep shutdown snappy.
        let nap = jittered_interval(cfg.probe_interval, &mut jitter);
        let mut slept = Duration::ZERO;
        while slept < nap && !stop.load(Ordering::SeqCst) {
            let step = Duration::from_millis(10).min(nap - slept);
            std::thread::sleep(step);
            slept += step;
        }
    }
}

/// No backend is ever called a latency outlier below this EWMA. On a
/// fast fleet the median sits in the hundreds of microseconds, where
/// `factor * median` is so tight that one scheduler hiccup folded
/// into an EWMA would flap a healthy backend in and out of ejection.
/// Gray failures worth redirecting reads for are tens of milliseconds
/// — an absolute floor costs no detection and buys stability.
const OUTLIER_MIN_EWMA_US: f64 = 5_000.0;

/// One outlier-detection pass. Every up backend with at least
/// [`RouterConfig::outlier_min_samples`] relay samples is scored; a
/// scored backend whose latency EWMA exceeds both the fleet median by
/// [`RouterConfig::outlier_factor`] and the absolute
/// [`OUTLIER_MIN_EWMA_US`] floor (or whose error-rate EWMA crosses
/// one half) is soft-ejected. An ejected backend that scores healthy
/// for [`RouterConfig::readmit_after`] consecutive passes is
/// re-admitted. With fewer than two scored backends there is no fleet
/// to compare against and the pass does nothing.
fn outlier_pass(shared: &Shared, healthy_streak: &mut [u32]) {
    let cfg = &shared.config;
    let scored: Vec<(usize, f64, f64)> = shared
        .backends
        .iter()
        .enumerate()
        .filter(|(_, b)| {
            b.is_up() && b.latency_samples.load(Ordering::Relaxed) >= cfg.outlier_min_samples
        })
        .map(|(i, b)| (i, b.latency_ewma_us(), b.error_ewma()))
        .collect();
    if scored.len() < 2 {
        return;
    }
    let mut ewmas: Vec<f64> = scored.iter().map(|&(_, e, _)| e).collect();
    ewmas.sort_by(f64::total_cmp);
    let median = ewmas[ewmas.len() / 2];
    for &(idx, ewma, err) in &scored {
        let gray = (ewma > cfg.outlier_factor.max(1.0) * median && ewma > OUTLIER_MIN_EWMA_US)
            || err >= 0.5;
        let b = &shared.backends[idx];
        if gray {
            healthy_streak[idx] = 0;
            if !b.is_ejected() {
                b.ejected.store(true, Ordering::Relaxed);
                RouterStats::bump(&shared.stats.outlier_ejections);
            }
        } else if b.is_ejected() {
            healthy_streak[idx] = healthy_streak[idx].saturating_add(1);
            if healthy_streak[idx] >= cfg.readmit_after.max(1) {
                b.ejected.store(false, Ordering::Relaxed);
                healthy_streak[idx] = 0;
                RouterStats::bump(&shared.stats.outlier_readmissions);
            }
        }
    }
}

/// One step of the splitmix64 sequence — cheap, seedable, and plenty
/// for interval jitter.
pub(crate) fn splitmix_next(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// `base` scaled by a uniform factor in [0.8, 1.2): ±20% jitter on
/// the periodic loops (probe, anti-entropy) so co-started routers —
/// or a fleet of them — spread their rounds instead of stampeding the
/// backends in phase.
pub(crate) fn jittered_interval(base: Duration, state: &mut u64) -> Duration {
    let unit = (splitmix_next(state) >> 11) as f64 / (1u64 << 53) as f64;
    base.mul_f64(0.8 + 0.4 * unit)
}

/// Seeds loop jitter per process (pid ⊕ wall clock), so routers
/// started together still diverge.
pub(crate) fn jitter_seed() -> u64 {
    u64::from(std::process::id()) ^ sync::unix_ms() ^ 0x9E37_79B9_7F4A_7C15
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn jitter_stays_within_twenty_percent_and_varies() {
        let base = Duration::from_millis(100);
        let mut state = 7u64;
        let mut seen = std::collections::HashSet::new();
        for _ in 0..1000 {
            let d = jittered_interval(base, &mut state);
            assert!(d >= Duration::from_millis(80), "{d:?}");
            assert!(d < Duration::from_millis(120), "{d:?}");
            seen.insert(d);
        }
        assert!(seen.len() > 100, "jitter should spread, got {}", seen.len());
    }

    #[test]
    fn hedge_delay_needs_samples_then_tracks_ewma() {
        let cfg = RouterConfig::default();
        let b = Backend::new(BackendSpec::parse("127.0.0.1:1").unwrap());
        assert_eq!(hedge_delay(&cfg, &b), None, "no samples, no hedging");
        for _ in 0..8 {
            b.record_latency_us(10_000.0);
        }
        assert_eq!(
            hedge_delay(&cfg, &b),
            Some(Duration::from_micros(30_000)),
            "three times the EWMA"
        );
        let fixed = RouterConfig {
            hedge_after: Some(Duration::from_millis(5)),
            ..RouterConfig::default()
        };
        assert_eq!(hedge_delay(&fixed, &b), Some(Duration::from_millis(5)));
        let fast = Backend::new(BackendSpec::parse("127.0.0.1:1").unwrap());
        for _ in 0..8 {
            fast.record_latency_us(100.0);
        }
        assert_eq!(
            hedge_delay(&cfg, &fast),
            Some(Duration::from_millis(2)),
            "clamped at the 2 ms floor"
        );
    }
}
