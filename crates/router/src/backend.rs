//! Backend pool: static specs plus live health/traffic state.

use crate::error::RouterError;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

/// One configured `pmc-serve` backend, as given on the command line:
/// `ADDR[,name=NAME][,weight=N][,ckpt=PATH]`.
///
/// The checkpoint path is the router's recovery lever: when this
/// backend dies without draining, the router migrates its durable
/// windows out of that file instead of losing them.
#[derive(Debug, Clone, PartialEq)]
pub struct BackendSpec {
    /// TCP address of the backend (`host:port`).
    pub addr: String,
    /// Stable name; determines ring placement. Defaults to the addr.
    pub name: String,
    /// Relative ring weight (virtual-node multiplier), minimum 1.
    pub weight: u32,
    /// The backend's `--checkpoint` file, if it runs with one.
    pub checkpoint: Option<PathBuf>,
}

impl BackendSpec {
    /// Parses a `--backend` argument.
    pub fn parse(spec: &str) -> Result<Self, RouterError> {
        let mut parts = spec.split(',');
        let addr = parts
            .next()
            .filter(|a| !a.is_empty())
            .ok_or_else(|| RouterError::Config {
                reason: format!("backend spec {spec:?} has no address"),
            })?
            .to_string();
        let mut out = BackendSpec {
            name: addr.clone(),
            addr,
            weight: 1,
            checkpoint: None,
        };
        for part in parts {
            match part.split_once('=') {
                Some(("name", v)) if !v.is_empty() => out.name = v.to_string(),
                Some(("weight", v)) => {
                    out.weight = v.parse::<u32>().ok().filter(|&w| w >= 1).ok_or_else(|| {
                        RouterError::Config {
                            reason: format!("backend weight {v:?} is not a positive integer"),
                        }
                    })?;
                }
                Some(("ckpt", v)) if !v.is_empty() => out.checkpoint = Some(PathBuf::from(v)),
                _ => {
                    return Err(RouterError::Config {
                        reason: format!("unrecognized backend option {part:?} in {spec:?}"),
                    })
                }
            }
        }
        Ok(out)
    }
}

/// Smoothing factor of the per-backend latency/error EWMAs. 0.2
/// means ~16 samples to converge within 3% of a level shift — fast
/// enough to catch a brownout within one probe interval of normal
/// traffic, slow enough that one stray slow request can't eject a
/// healthy backend.
const EWMA_ALPHA: f64 = 0.2;

/// Live per-backend state shared between the core, the prober and
/// metrics. Counters are relaxed — observability, not synchronization.
#[derive(Debug)]
pub struct Backend {
    /// The static spec this slot was configured with.
    pub spec: BackendSpec,
    /// Whether the backend currently takes traffic. Starts true; the
    /// prober clears it after consecutive readyz failures and restores
    /// it on recovery.
    pub up: AtomicBool,
    /// Requests currently relayed through this backend (gauge).
    pub inflight: AtomicU64,
    /// Times this backend has been evicted from the ring.
    pub evictions: AtomicU64,
    /// Upstream connections that broke mid-request (each costs the
    /// affected client a reconnect-and-resume).
    pub upstream_failures: AtomicU64,
    /// Unix milliseconds of the last anti-entropy round that left
    /// every dirty window this backend owns replicated to its
    /// standby. Zero until the first complete round; the replication
    /// lag gauge is `now - replicated_at_ms`.
    pub replicated_at_ms: AtomicU64,
    /// EWMA of relayed-request latency in microseconds, stored as
    /// `f64` bits. Zero until the first sample. Fed by the core's
    /// relay path; read by the outlier detector and the scrape.
    pub ewma_latency_us: AtomicU64,
    /// EWMA of the per-relay error indicator (1 = the upstream broke
    /// mid-request, 0 = a response landed), stored as `f64` bits.
    pub ewma_error: AtomicU64,
    /// Latency samples folded into the EWMA so far — the outlier
    /// detector refuses to judge a backend on thin evidence.
    pub latency_samples: AtomicU64,
    /// Whether the outlier detector has soft-ejected this backend:
    /// it keeps its ring share (writes still land, ownership does not
    /// move — this is *not* the prober's hard eviction), but estimate
    /// reads on fully-synced tokens are served from the standby.
    pub ejected: AtomicBool,
}

impl Backend {
    /// Wraps a spec with fresh (up, idle) runtime state.
    pub fn new(spec: BackendSpec) -> Self {
        Backend {
            spec,
            up: AtomicBool::new(true),
            inflight: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            upstream_failures: AtomicU64::new(0),
            replicated_at_ms: AtomicU64::new(0),
            ewma_latency_us: AtomicU64::new(0),
            ewma_error: AtomicU64::new(0),
            latency_samples: AtomicU64::new(0),
            ejected: AtomicBool::new(false),
        }
    }

    /// Whether the backend currently takes traffic.
    pub fn is_up(&self) -> bool {
        self.up.load(Ordering::Relaxed)
    }

    /// Whether the outlier detector has soft-ejected this backend.
    pub fn is_ejected(&self) -> bool {
        self.ejected.load(Ordering::Relaxed)
    }

    /// Folds `x` into an `f64`-bits EWMA cell (first sample seeds it).
    fn fold(cell: &AtomicU64, x: f64) {
        let _ = cell.fetch_update(Ordering::Relaxed, Ordering::Relaxed, |bits| {
            let prev = f64::from_bits(bits);
            let next = if bits == 0 {
                x
            } else {
                prev + EWMA_ALPHA * (x - prev)
            };
            Some(next.to_bits())
        });
    }

    /// Records one completed relay through this backend: folds its
    /// latency into the EWMA and decays the error rate toward zero.
    pub fn record_latency_us(&self, us: f64) {
        Self::fold(&self.ewma_latency_us, us.max(1.0));
        Self::fold(&self.ewma_error, 0.0);
        self.latency_samples.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one relay that ended with the upstream breaking.
    pub fn record_relay_error(&self) {
        Self::fold(&self.ewma_error, 1.0);
    }

    /// Current latency EWMA, microseconds (0.0 = no samples yet).
    pub fn latency_ewma_us(&self) -> f64 {
        f64::from_bits(self.ewma_latency_us.load(Ordering::Relaxed))
    }

    /// Current error-rate EWMA in `[0, 1]`.
    pub fn error_ewma(&self) -> f64 {
        f64::from_bits(self.ewma_error.load(Ordering::Relaxed))
    }

    /// Clears the gray-failure score. Called on hard eviction: a
    /// restored backend must earn a fresh score, not inherit the one
    /// that predated its outage.
    pub fn reset_gray_score(&self) {
        self.ewma_latency_us.store(0, Ordering::Relaxed);
        self.ewma_error.store(0, Ordering::Relaxed);
        self.latency_samples.store(0, Ordering::Relaxed);
        self.ejected.store(false, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_bare_address() {
        let b = BackendSpec::parse("127.0.0.1:7717").unwrap();
        assert_eq!(b.addr, "127.0.0.1:7717");
        assert_eq!(b.name, "127.0.0.1:7717");
        assert_eq!(b.weight, 1);
        assert_eq!(b.checkpoint, None);
    }

    #[test]
    fn parses_full_spec() {
        let b = BackendSpec::parse("127.0.0.1:7717,name=b0,weight=3,ckpt=/tmp/b0.ckpt").unwrap();
        assert_eq!(b.name, "b0");
        assert_eq!(b.weight, 3);
        assert_eq!(b.checkpoint, Some(PathBuf::from("/tmp/b0.ckpt")));
    }

    #[test]
    fn ewma_tracks_latency_and_error_rate() {
        let b = Backend::new(BackendSpec::parse("127.0.0.1:7717").unwrap());
        assert_eq!(b.latency_ewma_us(), 0.0);
        b.record_latency_us(1000.0);
        assert_eq!(b.latency_ewma_us(), 1000.0, "first sample seeds the EWMA");
        for _ in 0..50 {
            b.record_latency_us(5000.0);
        }
        let e = b.latency_ewma_us();
        assert!(
            (4900.0..=5000.0).contains(&e),
            "EWMA should converge to the sustained level, got {e}"
        );
        assert_eq!(b.latency_samples.load(Ordering::Relaxed), 51);
        assert!(b.error_ewma() < 1e-4, "successes decay the error rate");
        b.record_relay_error();
        assert!(b.error_ewma() > 0.1, "an error moves the rate up");
        b.reset_gray_score();
        assert_eq!(b.latency_ewma_us(), 0.0);
        assert_eq!(b.latency_samples.load(Ordering::Relaxed), 0);
        assert!(!b.is_ejected());
    }

    #[test]
    fn rejects_bad_specs() {
        assert!(BackendSpec::parse("").is_err());
        assert!(BackendSpec::parse("127.0.0.1:1,weight=0").is_err());
        assert!(BackendSpec::parse("127.0.0.1:1,weight=x").is_err());
        assert!(BackendSpec::parse("127.0.0.1:1,color=red").is_err());
    }
}
