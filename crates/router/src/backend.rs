//! Backend pool: static specs plus live health/traffic state.

use crate::error::RouterError;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

/// One configured `pmc-serve` backend, as given on the command line:
/// `ADDR[,name=NAME][,weight=N][,ckpt=PATH]`.
///
/// The checkpoint path is the router's recovery lever: when this
/// backend dies without draining, the router migrates its durable
/// windows out of that file instead of losing them.
#[derive(Debug, Clone, PartialEq)]
pub struct BackendSpec {
    /// TCP address of the backend (`host:port`).
    pub addr: String,
    /// Stable name; determines ring placement. Defaults to the addr.
    pub name: String,
    /// Relative ring weight (virtual-node multiplier), minimum 1.
    pub weight: u32,
    /// The backend's `--checkpoint` file, if it runs with one.
    pub checkpoint: Option<PathBuf>,
}

impl BackendSpec {
    /// Parses a `--backend` argument.
    pub fn parse(spec: &str) -> Result<Self, RouterError> {
        let mut parts = spec.split(',');
        let addr = parts
            .next()
            .filter(|a| !a.is_empty())
            .ok_or_else(|| RouterError::Config {
                reason: format!("backend spec {spec:?} has no address"),
            })?
            .to_string();
        let mut out = BackendSpec {
            name: addr.clone(),
            addr,
            weight: 1,
            checkpoint: None,
        };
        for part in parts {
            match part.split_once('=') {
                Some(("name", v)) if !v.is_empty() => out.name = v.to_string(),
                Some(("weight", v)) => {
                    out.weight = v.parse::<u32>().ok().filter(|&w| w >= 1).ok_or_else(|| {
                        RouterError::Config {
                            reason: format!("backend weight {v:?} is not a positive integer"),
                        }
                    })?;
                }
                Some(("ckpt", v)) if !v.is_empty() => out.checkpoint = Some(PathBuf::from(v)),
                _ => {
                    return Err(RouterError::Config {
                        reason: format!("unrecognized backend option {part:?} in {spec:?}"),
                    })
                }
            }
        }
        Ok(out)
    }
}

/// Live per-backend state shared between the core, the prober and
/// metrics. Counters are relaxed — observability, not synchronization.
#[derive(Debug)]
pub struct Backend {
    /// The static spec this slot was configured with.
    pub spec: BackendSpec,
    /// Whether the backend currently takes traffic. Starts true; the
    /// prober clears it after consecutive readyz failures and restores
    /// it on recovery.
    pub up: AtomicBool,
    /// Requests currently relayed through this backend (gauge).
    pub inflight: AtomicU64,
    /// Times this backend has been evicted from the ring.
    pub evictions: AtomicU64,
    /// Upstream connections that broke mid-request (each costs the
    /// affected client a reconnect-and-resume).
    pub upstream_failures: AtomicU64,
    /// Unix milliseconds of the last anti-entropy round that left
    /// every dirty window this backend owns replicated to its
    /// standby. Zero until the first complete round; the replication
    /// lag gauge is `now - replicated_at_ms`.
    pub replicated_at_ms: AtomicU64,
}

impl Backend {
    /// Wraps a spec with fresh (up, idle) runtime state.
    pub fn new(spec: BackendSpec) -> Self {
        Backend {
            spec,
            up: AtomicBool::new(true),
            inflight: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            upstream_failures: AtomicU64::new(0),
            replicated_at_ms: AtomicU64::new(0),
        }
    }

    /// Whether the backend currently takes traffic.
    pub fn is_up(&self) -> bool {
        self.up.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_bare_address() {
        let b = BackendSpec::parse("127.0.0.1:7717").unwrap();
        assert_eq!(b.addr, "127.0.0.1:7717");
        assert_eq!(b.name, "127.0.0.1:7717");
        assert_eq!(b.weight, 1);
        assert_eq!(b.checkpoint, None);
    }

    #[test]
    fn parses_full_spec() {
        let b = BackendSpec::parse("127.0.0.1:7717,name=b0,weight=3,ckpt=/tmp/b0.ckpt").unwrap();
        assert_eq!(b.name, "b0");
        assert_eq!(b.weight, 3);
        assert_eq!(b.checkpoint, Some(PathBuf::from("/tmp/b0.ckpt")));
    }

    #[test]
    fn rejects_bad_specs() {
        assert!(BackendSpec::parse("").is_err());
        assert!(BackendSpec::parse("127.0.0.1:1,weight=0").is_err());
        assert!(BackendSpec::parse("127.0.0.1:1,weight=x").is_err());
        assert!(BackendSpec::parse("127.0.0.1:1,color=red").is_err());
    }
}
