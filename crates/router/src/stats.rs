//! Router-level counters and the inline health/metrics surface.
//!
//! Everything here is answered by the router core itself — never
//! proxied — so probes and scrapes keep working when every backend is
//! down. That is the whole point: the router's own health must be
//! observable exactly when the fleet behind it is in trouble.

use pmc_json::Json;
use std::sync::atomic::{AtomicU64, Ordering};

/// One backend's scrape row: `(name, up, inflight, evictions,
/// upstream_failures, tokens_owned, replication_lag_ms, has_standby,
/// ewma_latency_us, outlier_ejected)`.
pub type BackendRow = (String, bool, u64, u64, u64, u64, u64, bool, u64, bool);

/// Monotonic router counters (plus a few gauges), all relaxed.
#[derive(Debug, Default)]
pub struct RouterStats {
    /// Client connections accepted.
    pub connections_accepted: AtomicU64,
    /// Client connections currently open (gauge).
    pub connections_open: AtomicU64,
    /// Request frames relayed to a backend.
    pub frames_routed: AtomicU64,
    /// Requests answered inline by the router (health, metrics, and
    /// typed no-backend refusals).
    pub frames_inline: AtomicU64,
    /// Requests refused with a typed overload because no usable
    /// backend existed at dispatch time.
    pub no_backend_rejects: AtomicU64,
    /// Client connections dropped because their upstream broke
    /// mid-request (the client reconnects and resumes).
    pub upstream_drops: AtomicU64,
    /// Backend evictions performed by the health prober.
    pub evictions: AtomicU64,
    /// Backends restored to the ring after recovering.
    pub restores: AtomicU64,
    /// Durable windows migrated between backends.
    pub migrations_completed: AtomicU64,
    /// Migrations that failed outright (export, import, or transport).
    pub migrations_failed: AtomicU64,
    /// Migrations whose bitwise verification found a mismatch (counted
    /// besides `migrations_completed`; the window still moved).
    pub migrations_unverified: AtomicU64,
    /// Wall-clock duration of the last rebalance, milliseconds (gauge).
    pub migration_duration_ms: AtomicU64,
    /// Dirty windows copied primary → standby by the anti-entropy loop.
    pub windows_replicated: AtomicU64,
    /// Replication attempts that failed (poll, export, or import).
    pub replication_errors: AtomicU64,
    /// Anti-entropy rounds completed (clean or not).
    pub replication_rounds: AtomicU64,
    /// Evicted-owner windows that could be recovered from neither a
    /// checkpoint file nor a standby replica — the affected token
    /// cold-starts, flagged degraded.
    pub windows_lost: AtomicU64,
    /// Worst per-backend replication lag among up backends,
    /// milliseconds since the last complete sync of that backend
    /// (gauge; refreshed on every sync round and scrape).
    pub replication_lag_ms: AtomicU64,
    /// Up backends with no distinct up standby — windows they own
    /// have a single live copy (gauge; refreshed like the lag).
    pub backends_without_standby: AtomicU64,
    /// Frames refused inline with a typed `deadline_exceeded` because
    /// their budget could not survive the router hop.
    pub deadline_rejects: AtomicU64,
    /// Hedged reads fired to a token's synced ring standby.
    pub hedges_fired: AtomicU64,
    /// Hedged reads whose standby answer beat the primary's.
    pub hedges_won: AtomicU64,
    /// Hedge races where both answers landed and disagreed bitwise
    /// (the primary's copy stays authoritative).
    pub hedge_mismatches: AtomicU64,
    /// Hedges declined because the connection's token-bucket retry
    /// budget was spent — the brownout-amplification cap at work.
    pub retry_budget_exhausted: AtomicU64,
    /// Backends soft-ejected by the outlier detector (gray failures:
    /// slow but still passing readiness probes).
    pub outlier_ejections: AtomicU64,
    /// Soft-ejected backends re-admitted after sustained recovery.
    pub outlier_readmissions: AtomicU64,
    /// Client connections that negotiated the binary wire encoding.
    pub binary_conns: AtomicU64,
}

impl RouterStats {
    /// Bumps a counter by one.
    pub fn bump(counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }

    /// Decrements a gauge by one (saturating at zero).
    pub fn dec(gauge: &AtomicU64) {
        let _ = gauge.fetch_update(Ordering::Relaxed, Ordering::Relaxed, |v| {
            Some(v.saturating_sub(1))
        });
    }

    /// Every scalar as `(name, value, is_gauge)`, in a stable order —
    /// the single source of truth for both the JSON snapshot and the
    /// Prometheus scrape.
    fn scalars(&self) -> Vec<(&'static str, u64, bool)> {
        let read = |c: &AtomicU64| c.load(Ordering::Relaxed);
        vec![
            (
                "connections_accepted",
                read(&self.connections_accepted),
                false,
            ),
            ("connections_open", read(&self.connections_open), true),
            ("frames_routed", read(&self.frames_routed), false),
            ("frames_inline", read(&self.frames_inline), false),
            ("no_backend_rejects", read(&self.no_backend_rejects), false),
            ("upstream_drops", read(&self.upstream_drops), false),
            ("evictions", read(&self.evictions), false),
            ("restores", read(&self.restores), false),
            (
                "migrations_completed",
                read(&self.migrations_completed),
                false,
            ),
            ("migrations_failed", read(&self.migrations_failed), false),
            (
                "migrations_unverified",
                read(&self.migrations_unverified),
                false,
            ),
            (
                "migration_duration_ms",
                read(&self.migration_duration_ms),
                true,
            ),
            ("windows_replicated", read(&self.windows_replicated), false),
            ("replication_errors", read(&self.replication_errors), false),
            ("replication_rounds", read(&self.replication_rounds), false),
            ("windows_lost", read(&self.windows_lost), false),
            ("replication_lag_ms", read(&self.replication_lag_ms), true),
            (
                "backends_without_standby",
                read(&self.backends_without_standby),
                true,
            ),
            ("deadline_rejects", read(&self.deadline_rejects), false),
            ("hedges_fired", read(&self.hedges_fired), false),
            ("hedges_won", read(&self.hedges_won), false),
            ("hedge_mismatches", read(&self.hedge_mismatches), false),
            (
                "retry_budget_exhausted",
                read(&self.retry_budget_exhausted),
                false,
            ),
            ("outlier_ejections", read(&self.outlier_ejections), false),
            (
                "outlier_readmissions",
                read(&self.outlier_readmissions),
                false,
            ),
            ("binary_conns", read(&self.binary_conns), false),
        ]
    }

    /// A point-in-time JSON snapshot of the router scalars.
    pub fn snapshot(&self) -> Json {
        Json::Obj(
            self.scalars()
                .into_iter()
                .map(|(k, v, _)| (k.to_string(), Json::from(v)))
                .collect(),
        )
    }

    /// Prometheus text exposition: `pmc_router_<name>` per scalar,
    /// plus per-backend `{backend="..."}` series for in-flight,
    /// evictions, upstream failures, liveness and tokens owned.
    /// `per_backend` supplies one [`BackendRow`] per backend.
    pub fn prometheus(&self, per_backend: &[BackendRow]) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for (name, value, gauge) in self.scalars() {
            let kind = if gauge { "gauge" } else { "counter" };
            let _ = writeln!(out, "# TYPE pmc_router_{name} {kind}");
            let _ = writeln!(out, "pmc_router_{name} {value}");
        }
        type Read = fn(&BackendRow) -> u64;
        let series: [(&str, &str, Read); 9] = [
            ("backend_up", "gauge", |r| u64::from(r.1)),
            ("backend_inflight", "gauge", |r| r.2),
            ("backend_evictions", "counter", |r| r.3),
            ("backend_upstream_failures", "counter", |r| r.4),
            ("backend_tokens_owned", "gauge", |r| r.5),
            ("backend_replication_lag_ms", "gauge", |r| r.6),
            ("backend_has_standby", "gauge", |r| u64::from(r.7)),
            ("backend_ewma_latency_us", "gauge", |r| r.8),
            ("backend_outlier_ejected", "gauge", |r| u64::from(r.9)),
        ];
        for (name, kind, read) in series {
            let _ = writeln!(out, "# TYPE pmc_router_{name} {kind}");
            for row in per_backend {
                let _ = writeln!(
                    out,
                    "pmc_router_{name}{{backend=\"{}\"}} {}",
                    row.0,
                    read(row)
                );
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_reflects_bumps() {
        let s = RouterStats::default();
        RouterStats::bump(&s.frames_routed);
        RouterStats::bump(&s.frames_routed);
        RouterStats::bump(&s.evictions);
        let snap = s.snapshot();
        assert_eq!(snap.u64_field("frames_routed").unwrap(), 2);
        assert_eq!(snap.u64_field("evictions").unwrap(), 1);
        assert_eq!(snap.u64_field("migrations_completed").unwrap(), 0);
    }

    #[test]
    fn prometheus_has_scalars_and_backend_series() {
        let s = RouterStats::default();
        RouterStats::bump(&s.migrations_completed);
        RouterStats::bump(&s.windows_replicated);
        s.replication_lag_ms.store(120, Ordering::Relaxed);
        RouterStats::bump(&s.hedges_fired);
        let rows = vec![
            ("b0".to_string(), true, 2, 0, 0, 5, 120, true, 840, false),
            ("b1".to_string(), false, 0, 1, 3, 0, 0, false, 96000, true),
        ];
        let text = s.prometheus(&rows);
        assert!(text.contains("pmc_router_migrations_completed 1\n"));
        assert!(text.contains("# TYPE pmc_router_connections_open gauge\n"));
        assert!(text.contains("pmc_router_backend_up{backend=\"b0\"} 1\n"));
        assert!(text.contains("pmc_router_backend_up{backend=\"b1\"} 0\n"));
        assert!(text.contains("pmc_router_backend_inflight{backend=\"b0\"} 2\n"));
        assert!(text.contains("pmc_router_backend_evictions{backend=\"b1\"} 1\n"));
        assert!(text.contains("pmc_router_backend_upstream_failures{backend=\"b1\"} 3\n"));
        assert!(text.contains("pmc_router_backend_tokens_owned{backend=\"b0\"} 5\n"));
        assert!(text.contains("pmc_router_windows_replicated 1\n"));
        assert!(text.contains("# TYPE pmc_router_replication_lag_ms gauge\n"));
        assert!(text.contains("pmc_router_replication_lag_ms 120\n"));
        assert!(text.contains("pmc_router_backend_replication_lag_ms{backend=\"b0\"} 120\n"));
        assert!(text.contains("pmc_router_backend_has_standby{backend=\"b0\"} 1\n"));
        assert!(text.contains("pmc_router_backend_has_standby{backend=\"b1\"} 0\n"));
        assert!(text.contains("pmc_router_hedges_fired 1\n"));
        assert!(text.contains("pmc_router_hedges_won 0\n"));
        assert!(text.contains("pmc_router_hedge_mismatches 0\n"));
        assert!(text.contains("pmc_router_retry_budget_exhausted 0\n"));
        assert!(text.contains("pmc_router_backend_ewma_latency_us{backend=\"b0\"} 840\n"));
        assert!(text.contains("pmc_router_backend_outlier_ejected{backend=\"b1\"} 1\n"));
        // Every JSON scalar appears in the scrape.
        if let Json::Obj(fields) = s.snapshot() {
            for (name, _) in fields {
                assert!(text.contains(&format!("pmc_router_{name} ")), "{name}");
            }
        }
    }
}
