//! Property tests for the consistent-hash ring: the two guarantees
//! the serving tier leans on, checked over a seeded, deterministic
//! token population.
//!
//! 1. **Minimal remap.** Removing a backend moves only the tokens it
//!    owned; adding one steals only (roughly) its fair share, and
//!    every stolen token goes *to* the new backend — never between
//!    two incumbents.
//! 2. **Restart stability.** The mapping is a pure function of the
//!    member set: rebuilding the ring (a router restart) reproduces
//!    it exactly.

use pmc_router::HashRing;
use pmc_serve::tokenhash::resume_key;

/// Deterministic token population from a splitmix64 stream.
fn tokens(seed: u64, n: usize) -> Vec<String> {
    let mut state = seed;
    (0..n)
        .map(|_| {
            state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^= z >> 31;
            format!("node-{}/sensor-{}", z % 64, z >> 32)
        })
        .collect()
}

fn names(n: usize) -> Vec<String> {
    (0..n).map(|i| format!("backend-{i}")).collect()
}

fn ring(names: &[String], usable: impl Fn(usize) -> bool) -> HashRing {
    HashRing::build(names.iter().map(|n| (n.as_str(), 1)), usable)
}

fn owners(ring: &HashRing, toks: &[String]) -> Vec<Option<usize>> {
    toks.iter().map(|t| ring.owner(resume_key(t))).collect()
}

#[test]
fn removal_remaps_only_the_victims_tokens() {
    let backends = names(5);
    let toks = tokens(0xfeed, 2000);
    let full = ring(&backends, |_| true);
    let before = owners(&full, &toks);

    for victim in 0..backends.len() {
        let degraded = ring(&backends, |idx| idx != victim);
        let after = owners(&degraded, &toks);
        let mut moved = 0usize;
        for (b, a) in before.iter().zip(&after) {
            if *b == Some(victim) {
                // The victim's tokens must land somewhere else.
                assert_ne!(*a, Some(victim));
                moved += 1;
            } else {
                // Everyone else's tokens must not move at all.
                assert_eq!(a, b, "non-victim token moved on removal of {victim}");
            }
        }
        // The victim owned roughly its fair share (1/5 = 400).
        assert!(
            (200..=650).contains(&moved),
            "victim {victim} owned {moved}/2000 tokens"
        );
    }
}

#[test]
fn addition_steals_only_for_the_newcomer() {
    let toks = tokens(0xbeef, 2000);
    let five = names(5);
    let six = names(6);
    let before = owners(&ring(&five, |_| true), &toks);
    let after = owners(&ring(&six, |_| true), &toks);

    let mut stolen = 0usize;
    for (b, a) in before.iter().zip(&after) {
        if a == b {
            continue;
        }
        // Every moved token moved TO the new backend.
        assert_eq!(*a, Some(5), "token moved between incumbents on addition");
        stolen += 1;
    }
    // The newcomer takes roughly 1/6 of the population (≈ 333).
    assert!(
        (150..=550).contains(&stolen),
        "new backend stole {stolen}/2000 tokens"
    );
}

#[test]
fn routing_is_stable_across_restarts() {
    let backends = names(7);
    let toks = tokens(0xcafe, 2000);
    // Two independently built rings — a router restart — agree on
    // every token, including with a member evicted.
    for usable in [
        (|_: usize| true) as fn(usize) -> bool,
        (|idx: usize| idx != 3) as fn(usize) -> bool,
    ] {
        let a = ring(&backends, usable);
        let b = ring(&backends, usable);
        assert_eq!(owners(&a, &toks), owners(&b, &toks));
    }
}

fn replica_sets(ring: &HashRing, toks: &[String]) -> Vec<(Option<usize>, Option<usize>)> {
    toks.iter().map(|t| ring.replicas(resume_key(t))).collect()
}

#[test]
fn replica_sets_land_on_distinct_backends() {
    let toks = tokens(0xabad, 2000);
    for n in 2..=7 {
        let backends = names(n);
        let r = ring(&backends, |_| true);
        for (tok, (primary, standby)) in toks.iter().zip(replica_sets(&r, &toks)) {
            let primary = primary.expect("non-empty ring always has a primary");
            let standby = standby.expect("two usable backends always yield a standby");
            assert_ne!(
                primary, standby,
                "token {tok} replicated onto its own primary with {n} backends"
            );
        }
    }
}

#[test]
fn standby_assignment_is_restart_stable() {
    let backends = names(6);
    let toks = tokens(0x57a8, 2000);
    // Independently built rings — a router restart — agree on every
    // standby, including with a member evicted.
    for usable in [
        (|_: usize| true) as fn(usize) -> bool,
        (|idx: usize| idx != 2) as fn(usize) -> bool,
    ] {
        let a = ring(&backends, usable);
        let b = ring(&backends, usable);
        assert_eq!(replica_sets(&a, &toks), replica_sets(&b, &toks));
    }
}

#[test]
fn membership_change_remaps_minimal_standby_fraction() {
    let toks = tokens(0x5eed, 2000);
    let five = names(5);
    let six = names(6);
    let before = replica_sets(&ring(&five, |_| true), &toks);

    // Addition: a standby may move only to the newcomer (when it
    // lands between primary and old standby, or steals the primary
    // slot itself); standbys never shuffle between incumbents.
    let after = replica_sets(&ring(&six, |_| true), &toks);
    let mut standby_moved = 0usize;
    for ((pb, sb), (pa, sa)) in before.iter().zip(&after) {
        if sa == sb {
            continue;
        }
        standby_moved += 1;
        assert!(
            *pa == Some(5) || *sa == Some(5),
            "standby moved between incumbents on addition: {pb:?}/{sb:?} -> {pa:?}/{sa:?}"
        );
    }
    // Primary steals ≈ 1/6 and standby inserts ≈ 1/6; well under half
    // the population may change standby, most must not.
    assert!(
        (150..=900).contains(&standby_moved),
        "addition moved {standby_moved}/2000 standbys"
    );

    // Removal: tokens whose replica set didn't involve the victim
    // keep both assignments bitwise.
    let victim = 1usize;
    let degraded = replica_sets(&ring(&five, |idx| idx != victim), &toks);
    let mut touched = 0usize;
    for ((pb, sb), (pa, sa)) in before.iter().zip(&degraded) {
        if *pb == Some(victim) || *sb == Some(victim) {
            touched += 1;
            assert_ne!(*pa, Some(victim));
            assert_ne!(*sa, Some(victim));
        } else {
            assert_eq!((pb, sb), (pa, sa), "uninvolved token's replica set moved");
        }
    }
    // Victim appears in ≈ 2/5 of replica sets (primary or standby).
    assert!(
        (500..=1200).contains(&touched),
        "removal touched {touched}/2000 replica sets"
    );
}

#[test]
fn ownership_is_reasonably_balanced() {
    let backends = names(4);
    let toks = tokens(0xd00d, 2000);
    let r = ring(&backends, |_| true);
    let mut counts = vec![0usize; backends.len()];
    for owner in owners(&r, &toks).into_iter().flatten() {
        counts[owner] += 1;
    }
    // Fair share is 500; with 40 vnodes each, accept a wide band.
    for (idx, &c) in counts.iter().enumerate() {
        assert!(
            (250..=800).contains(&c),
            "backend {idx} owns {c}/2000 tokens"
        );
    }
}
