//! Fleet-level end-to-end: a real 3-backend `pmc-serve` fleet behind
//! an in-process router, with a SIGKILLed member.
//!
//! The contract under test is the tentpole of the serving tier:
//! clients stream half their samples through the router, every
//! backend checkpoints, one backend dies by `kill -9`, the prober
//! evicts it, its durable windows migrate to their new ring owners
//! out of the dead backend's checkpoint file, the clients stream the
//! other half — and every client's final estimate is **bitwise
//! identical** (`f64::to_bits`) to an uninterrupted single-backend
//! run of the same stream.
//!
//! `FLEET_SEED` (default 1; CI runs 1/7/42) varies the token
//! population and which backend gets killed, so different matrix legs
//! exercise different placements and migration sets.

use pmc_events::PapiEvent;
use pmc_model::dataset::{Dataset, SampleRow};
use pmc_model::model::PowerModel;
use pmc_router::{BackendSpec, PowerRouter, RouterConfig};
use pmc_serve::registry::ModelRegistry;
use pmc_serve::server::{PowerServer, ServerConfig};
use pmc_serve::{CounterSample, Estimate, ModelArtifact, PowerClient, RetryPolicy, ServeError};
use std::io::{BufRead, BufReader};
use std::path::{Path, PathBuf};
use std::process::{Child, ChildStdin, Command, Stdio};
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Same synthetic fixture as the serve crate's tests: power exactly
/// linear in three event rates, so estimates are reproducible to
/// machine epsilon across processes.
fn tiny_dataset(n: usize) -> Dataset {
    let mut rows = Vec::with_capacity(n);
    for i in 0..n {
        let freq_mhz = [1200u32, 1600, 2000, 2400, 2600][i % 5];
        let f = freq_mhz as f64 / 1000.0;
        let v = 0.492857 + 0.214286 * f;
        let mut rates: Vec<f64> = (0..PapiEvent::COUNT)
            .map(|j| ((31 * i + 17 * j + i * i * (j + 3)) % 97) as f64 / 9700.0)
            .collect();
        rates[PapiEvent::PRF_DM.index()] = 0.001 + 0.00002 * (i as f64);
        rates[PapiEvent::TOT_CYC.index()] = 0.2 + 0.01 * ((i * 7 % 13) as f64);
        rates[PapiEvent::TLB_IM.index()] = 0.0005 + 0.00001 * ((i * 5 % 11) as f64);
        let v2f = v * v * f;
        let power = 5000.0 * rates[PapiEvent::PRF_DM.index()] * v2f
            + 120.0 * rates[PapiEvent::TOT_CYC.index()] * v2f
            + 900.0 * rates[PapiEvent::TLB_IM.index()] * v2f
            + 20.0 * v2f
            + 40.0 * v
            + 70.0;
        rows.push(SampleRow {
            workload_id: (i % 8) as u32,
            workload: format!("w{}", i % 8),
            suite: "roco2".into(),
            phase: "main".into(),
            threads: 24,
            freq_mhz,
            duration_s: 1.0,
            voltage: v,
            power,
            rates,
        });
    }
    Dataset::from_rows(rows)
}

fn tiny_model() -> PowerModel {
    PowerModel::fit(
        &tiny_dataset(40),
        &[PapiEvent::PRF_DM, PapiEvent::TOT_CYC, PapiEvent::TLB_IM],
    )
    .expect("well-posed synthetic fit")
}

fn sample_for(model: &PowerModel, data: &Dataset, i: usize) -> CounterSample {
    let row = &data.rows()[i % data.rows().len()];
    let avail = 24.0 * row.freq_mhz as f64 * 1e6 * row.duration_s;
    CounterSample {
        time_ns: (i as u64 + 1) * 250_000_000,
        duration_s: row.duration_s,
        freq_mhz: row.freq_mhz,
        voltage: row.voltage,
        deltas: model.events.iter().map(|e| row.rate(*e) * avail).collect(),
        missing: vec![],
    }
}

/// `CARGO_BIN_EXE_*` only covers the defining package, so the serve
/// binary is found next to our own (same target dir), overridable
/// with `PMC_SERVE_BIN` — CI builds it explicitly first.
fn serve_bin() -> PathBuf {
    if let Ok(path) = std::env::var("PMC_SERVE_BIN") {
        return PathBuf::from(path);
    }
    let me = PathBuf::from(env!("CARGO_BIN_EXE_pmc-router"));
    let sibling = me
        .parent()
        .expect("binary has a parent dir")
        .join(format!("pmc-serve{}", std::env::consts::EXE_SUFFIX));
    assert!(
        sibling.exists(),
        "pmc-serve not found at {}; run `cargo build -p pmc-serve` first or set PMC_SERVE_BIN",
        sibling.display()
    );
    sibling
}

/// A running `pmc-serve serve` child plus the stdin handle keeping it
/// alive and the parsed ephemeral address it bound.
struct ServeProc {
    child: Child,
    stdin: Option<ChildStdin>,
    addr: String,
}

fn spawn_serve(model_path: &Path, ck_path: &Path) -> ServeProc {
    let mut child = Command::new(serve_bin())
        .args([
            "serve",
            "--addr",
            "127.0.0.1:0",
            "--model",
            model_path.to_str().unwrap(),
            "--checkpoint",
            ck_path.to_str().unwrap(),
            "--checkpoint-interval-ms",
            "0",
        ])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn pmc-serve");
    let stdin = child.stdin.take();
    let stdout = child.stdout.take().expect("stdout piped");
    let mut lines = BufReader::new(stdout).lines();
    let first = lines
        .next()
        .expect("server must print its address")
        .expect("readable stdout");
    let addr = first
        .strip_prefix("listening on ")
        .unwrap_or_else(|| panic!("unexpected banner: {first}"))
        .to_string();
    ServeProc { child, stdin, addr }
}

impl ServeProc {
    /// SIGKILL — no drain, no final checkpoint, the real crash.
    fn kill_hard(mut self) {
        self.child.kill().expect("kill -9");
        let _ = self.child.wait();
    }

    fn shutdown_clean(mut self) {
        drop(self.stdin.take());
        let _ = self.child.wait();
    }
}

fn fleet_seed() -> u64 {
    std::env::var("FLEET_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(1)
}

#[test]
fn sigkill_evict_migrate_keeps_every_estimate_bitwise() {
    let seed = fleet_seed();
    let model = tiny_model();
    let data = tiny_dataset(24);
    let total = 20usize;
    let split = 10usize;
    let tokens: Vec<String> = (0..6).map(|i| format!("fleet-{seed}-{i}")).collect();
    // Per-token deterministic stream offset so windows differ.
    let stream = |t: usize, i: usize| sample_for(&model, &data, t * 3 + i);

    let dir = std::env::temp_dir().join(format!("pmc-fleet-{seed}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let model_path = dir.join("model.json");
    std::fs::write(
        &model_path,
        ModelArtifact::new("hsw", tiny_model()).to_json().unwrap(),
    )
    .unwrap();

    // Uninterrupted single-backend reference for every token's stream,
    // in-process (identical engine defaults).
    let reference: Vec<Estimate> = {
        let registry = Arc::new(ModelRegistry::default());
        registry
            .load_and_activate(ModelArtifact::new("hsw", tiny_model()))
            .unwrap();
        let mut server = PowerServer::start(ServerConfig::default(), registry).unwrap();
        let estimates = tokens
            .iter()
            .enumerate()
            .map(|(t, token)| {
                let mut c = PowerClient::connect(server.addr()).unwrap();
                c.resume(token).unwrap();
                let mut last = None;
                for i in 0..total {
                    last = Some(c.ingest(&stream(t, i)).unwrap());
                }
                last.unwrap()
            })
            .collect();
        server.shutdown();
        estimates
    };

    // The fleet: three real pmc-serve processes, each with its own
    // checkpoint file, fronted by an in-process router that knows the
    // checkpoint paths (the crash-migration lever).
    let ck_paths: Vec<PathBuf> = (0..3).map(|b| dir.join(format!("b{b}.ckpt"))).collect();
    let mut procs: Vec<Option<ServeProc>> = ck_paths
        .iter()
        .map(|ck| Some(spawn_serve(&model_path, ck)))
        .collect();
    let config = RouterConfig {
        backends: (0..3)
            .map(|b| {
                BackendSpec::parse(&format!(
                    "{},name=shard-{b},ckpt={}",
                    procs[b].as_ref().unwrap().addr,
                    ck_paths[b].display()
                ))
                .unwrap()
            })
            .collect(),
        probe_interval: Duration::from_millis(50),
        evict_after: 2,
        ..RouterConfig::default()
    };
    let mut router = PowerRouter::start(config).unwrap();
    let stats = router.stats();

    // Phase 1: every client streams its head through the router.
    let mut clients: Vec<PowerClient> = tokens
        .iter()
        .enumerate()
        .map(|(t, token)| {
            let mut c = PowerClient::connect(router.addr())
                .unwrap()
                .with_retry(RetryPolicy::default());
            assert!(!c.resume(token).unwrap(), "fresh token must start cold");
            for i in 0..split {
                c.ingest(&stream(t, i)).unwrap();
            }
            c
        })
        .collect();

    // Every token must be routed, and with 6 tokens on a 3-way ring at
    // least two backends own something — pick the victim as the owner
    // of the seed-chosen token so the kill always forces migrations.
    let owners: Vec<usize> = tokens
        .iter()
        .map(|t| router.owner_of(t).expect("token routed"))
        .collect();
    let victim = owners[seed as usize % owners.len()];
    let victim_tokens = owners.iter().filter(|&&o| o == victim).count();
    assert!(victim_tokens >= 1);

    // Checkpoint every backend directly (the router only fronts the
    // data plane), then kill the victim: no drain, no final snapshot —
    // migration must work from the last explicit checkpoint.
    for proc in procs.iter().flatten() {
        let mut c = PowerClient::connect(proc.addr.as_str()).unwrap();
        c.checkpoint_now().unwrap();
    }
    procs[victim].take().unwrap().kill_hard();

    // Wait for the prober to evict the victim and migrate its tokens.
    let deadline = Instant::now() + Duration::from_secs(20);
    loop {
        let migrated = stats.migrations_completed.load(Ordering::Relaxed)
            + stats.migrations_failed.load(Ordering::Relaxed);
        if stats.evictions.load(Ordering::Relaxed) >= 1 && migrated >= victim_tokens as u64 {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "eviction/migration did not happen: evictions={} migrated={migrated} (want {victim_tokens})",
            stats.evictions.load(Ordering::Relaxed)
        );
        std::thread::sleep(Duration::from_millis(20));
    }
    assert_eq!(
        stats.migrations_failed.load(Ordering::Relaxed),
        0,
        "every migration must recover its window from the checkpoint"
    );
    assert_eq!(
        stats.migrations_unverified.load(Ordering::Relaxed),
        0,
        "every migrated window must verify bitwise on its new owner"
    );
    for (token, &old) in tokens.iter().zip(&owners) {
        let now = router.owner_of(token).expect("token stays routed");
        if old == victim {
            assert_ne!(now, victim, "migrated token still routed to the corpse");
        } else {
            assert_eq!(now, old, "unrelated token moved by the eviction");
        }
    }

    // Phase 2: the same clients stream their tails. Clients that were
    // relayed to the victim find their connection dropped, reconnect,
    // replay their resume, and land on the migrated window.
    let finals: Vec<Estimate> = clients
        .iter_mut()
        .enumerate()
        .map(|(t, c)| {
            let mut last = None;
            for i in split..total {
                last = Some(c.ingest(&stream(t, i)).unwrap());
            }
            last.unwrap()
        })
        .collect();

    // The acceptance bar: bitwise identity with the uninterrupted run.
    for ((token, reference), resumed) in tokens.iter().zip(&reference).zip(&finals) {
        assert_eq!(
            resumed.power_w.to_bits(),
            reference.power_w.to_bits(),
            "{token}: power_w diverged across kill+migration"
        );
        assert_eq!(
            resumed.window_power_w.to_bits(),
            reference.window_power_w.to_bits(),
            "{token}: window_power_w diverged across kill+migration"
        );
        assert_eq!(resumed.samples_in_window, reference.samples_in_window);
    }

    router.shutdown();
    for proc in procs.into_iter().flatten() {
        proc.shutdown_clean();
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn router_health_surface_works_with_zero_backends() {
    // An empty fleet is the worst case the inline surface must cover:
    // readyz answers with the typed `no_backends` reason, metrics
    // still scrape, and data-plane ops get a typed overload.
    let mut router = PowerRouter::start(RouterConfig::default()).unwrap();
    let mut c = PowerClient::connect(router.addr()).unwrap();

    let r = c.readyz().unwrap();
    assert!(!r.field("ready").unwrap().as_bool().unwrap());
    let reasons: Vec<&str> = r
        .arr_field("reasons")
        .unwrap()
        .iter()
        .map(|v| v.as_str().unwrap())
        .collect();
    assert!(reasons.contains(&"no_backends"), "reasons: {reasons:?}");

    let body = c.metrics().unwrap();
    assert!(body.contains("pmc_router_no_backend_rejects"));

    match c.resume("anyone") {
        Err(ServeError::Overloaded { retry_after_ms }) => assert!(retry_after_ms > 0),
        other => panic!("expected typed overload with no backends, got {other:?}"),
    }
    router.shutdown();
}
