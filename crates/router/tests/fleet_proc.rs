//! Fleet-level end-to-end: a real 3-backend `pmc-serve` fleet behind
//! an in-process router, with a SIGKILLed member.
//!
//! The contract under test is the tentpole of the serving tier:
//! clients stream half their samples through the router, every
//! backend checkpoints, one backend dies by `kill -9`, the prober
//! evicts it, its durable windows migrate to their new ring owners
//! out of the dead backend's checkpoint file, the clients stream the
//! other half — and every client's final estimate is **bitwise
//! identical** (`f64::to_bits`) to an uninterrupted single-backend
//! run of the same stream.
//!
//! `FLEET_SEED` (default 1; CI runs 1/7/42) varies the token
//! population and which backend gets killed, so different matrix legs
//! exercise different placements and migration sets.

mod common;

use common::{sample_for, spawn_serve, tiny_dataset, tiny_model, ServeProc};
use pmc_router::{BackendSpec, PowerRouter, RouterConfig};
use pmc_serve::registry::ModelRegistry;
use pmc_serve::server::{PowerServer, ServerConfig};
use pmc_serve::{Estimate, ModelArtifact, PowerClient, RetryPolicy, ServeError};
use std::path::PathBuf;
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::{Duration, Instant};

fn fleet_seed() -> u64 {
    std::env::var("FLEET_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(1)
}

#[test]
fn sigkill_evict_migrate_keeps_every_estimate_bitwise() {
    let seed = fleet_seed();
    let model = tiny_model();
    let data = tiny_dataset(24);
    let total = 20usize;
    let split = 10usize;
    let tokens: Vec<String> = (0..6).map(|i| format!("fleet-{seed}-{i}")).collect();
    // Per-token deterministic stream offset so windows differ.
    let stream = |t: usize, i: usize| sample_for(&model, &data, t * 3 + i);

    let dir = std::env::temp_dir().join(format!("pmc-fleet-{seed}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let model_path = dir.join("model.json");
    std::fs::write(
        &model_path,
        ModelArtifact::new("hsw", tiny_model()).to_json().unwrap(),
    )
    .unwrap();

    // Uninterrupted single-backend reference for every token's stream,
    // in-process (identical engine defaults).
    let reference: Vec<Estimate> = {
        let registry = Arc::new(ModelRegistry::default());
        registry
            .load_and_activate(ModelArtifact::new("hsw", tiny_model()))
            .unwrap();
        let mut server = PowerServer::start(ServerConfig::default(), registry).unwrap();
        let estimates = tokens
            .iter()
            .enumerate()
            .map(|(t, token)| {
                let mut c = PowerClient::connect(server.addr()).unwrap();
                c.resume(token).unwrap();
                let mut last = None;
                for i in 0..total {
                    last = Some(c.ingest(&stream(t, i)).unwrap());
                }
                last.unwrap()
            })
            .collect();
        server.shutdown();
        estimates
    };

    // The fleet: three real pmc-serve processes, each with its own
    // checkpoint file, fronted by an in-process router that knows the
    // checkpoint paths (the crash-migration lever).
    let ck_paths: Vec<PathBuf> = (0..3).map(|b| dir.join(format!("b{b}.ckpt"))).collect();
    let mut procs: Vec<Option<ServeProc>> = ck_paths
        .iter()
        .map(|ck| Some(spawn_serve(&model_path, Some(ck))))
        .collect();
    let config = RouterConfig {
        backends: (0..3)
            .map(|b| {
                BackendSpec::parse(&format!(
                    "{},name=shard-{b},ckpt={}",
                    procs[b].as_ref().unwrap().addr,
                    ck_paths[b].display()
                ))
                .unwrap()
            })
            .collect(),
        probe_interval: Duration::from_millis(50),
        evict_after: 2,
        ..RouterConfig::default()
    };
    let mut router = PowerRouter::start(config).unwrap();
    let stats = router.stats();

    // Phase 1: every client streams its head through the router.
    let mut clients: Vec<PowerClient> = tokens
        .iter()
        .enumerate()
        .map(|(t, token)| {
            let mut c = PowerClient::connect(router.addr())
                .unwrap()
                .with_retry(RetryPolicy::default());
            assert!(!c.resume(token).unwrap(), "fresh token must start cold");
            for i in 0..split {
                c.ingest(&stream(t, i)).unwrap();
            }
            c
        })
        .collect();

    // Every token must be routed, and with 6 tokens on a 3-way ring at
    // least two backends own something — pick the victim as the owner
    // of the seed-chosen token so the kill always forces migrations.
    let owners: Vec<usize> = tokens
        .iter()
        .map(|t| router.owner_of(t).expect("token routed"))
        .collect();
    let victim = owners[seed as usize % owners.len()];
    let victim_tokens = owners.iter().filter(|&&o| o == victim).count();
    assert!(victim_tokens >= 1);

    // Checkpoint every backend directly (the router only fronts the
    // data plane), then kill the victim: no drain, no final snapshot —
    // migration must work from the last explicit checkpoint.
    for proc in procs.iter().flatten() {
        let mut c = PowerClient::connect(proc.addr.as_str()).unwrap();
        c.checkpoint_now().unwrap();
    }
    procs[victim].take().unwrap().kill_hard();

    // Wait for the prober to evict the victim and migrate its tokens.
    let deadline = Instant::now() + Duration::from_secs(20);
    loop {
        let migrated = stats.migrations_completed.load(Ordering::Relaxed)
            + stats.migrations_failed.load(Ordering::Relaxed);
        if stats.evictions.load(Ordering::Relaxed) >= 1 && migrated >= victim_tokens as u64 {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "eviction/migration did not happen: evictions={} migrated={migrated} (want {victim_tokens})",
            stats.evictions.load(Ordering::Relaxed)
        );
        std::thread::sleep(Duration::from_millis(20));
    }
    assert_eq!(
        stats.migrations_failed.load(Ordering::Relaxed),
        0,
        "every migration must recover its window from the checkpoint"
    );
    assert_eq!(
        stats.migrations_unverified.load(Ordering::Relaxed),
        0,
        "every migrated window must verify bitwise on its new owner"
    );
    for (token, &old) in tokens.iter().zip(&owners) {
        let now = router.owner_of(token).expect("token stays routed");
        if old == victim {
            assert_ne!(now, victim, "migrated token still routed to the corpse");
        } else {
            assert_eq!(now, old, "unrelated token moved by the eviction");
        }
    }

    // Phase 2: the same clients stream their tails. Clients that were
    // relayed to the victim find their connection dropped, reconnect,
    // replay their resume, and land on the migrated window.
    let finals: Vec<Estimate> = clients
        .iter_mut()
        .enumerate()
        .map(|(t, c)| {
            let mut last = None;
            for i in split..total {
                last = Some(c.ingest(&stream(t, i)).unwrap());
            }
            last.unwrap()
        })
        .collect();

    // The acceptance bar: bitwise identity with the uninterrupted run.
    for ((token, reference), resumed) in tokens.iter().zip(&reference).zip(&finals) {
        assert_eq!(
            resumed.power_w.to_bits(),
            reference.power_w.to_bits(),
            "{token}: power_w diverged across kill+migration"
        );
        assert_eq!(
            resumed.window_power_w.to_bits(),
            reference.window_power_w.to_bits(),
            "{token}: window_power_w diverged across kill+migration"
        );
        assert_eq!(resumed.samples_in_window, reference.samples_in_window);
    }

    router.shutdown();
    for proc in procs.into_iter().flatten() {
        proc.shutdown_clean();
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn router_health_surface_works_with_zero_backends() {
    // An empty fleet is the worst case the inline surface must cover:
    // readyz answers with the typed `no_backends` reason, metrics
    // still scrape, and data-plane ops get a typed overload.
    let mut router = PowerRouter::start(RouterConfig::default()).unwrap();
    let mut c = PowerClient::connect(router.addr()).unwrap();

    let r = c.readyz().unwrap();
    assert!(!r.field("ready").unwrap().as_bool().unwrap());
    let reasons: Vec<&str> = r
        .arr_field("reasons")
        .unwrap()
        .iter()
        .map(|v| v.as_str().unwrap())
        .collect();
    assert!(reasons.contains(&"no_backends"), "reasons: {reasons:?}");

    let body = c.metrics().unwrap();
    assert!(body.contains("pmc_router_no_backend_rejects"));

    match c.resume("anyone") {
        Err(ServeError::Overloaded { retry_after_ms }) => assert!(retry_after_ms > 0),
        other => panic!("expected typed overload with no backends, got {other:?}"),
    }
    router.shutdown();
}

#[test]
fn train_relays_through_router_with_typed_quarantine_verdicts() {
    // `train` is a write against the shard's shared model state: the
    // router must relay it to the token's primary verbatim and hand
    // the training report (including typed quarantine reasons) back
    // untouched.
    let model = tiny_model();
    let data = tiny_dataset(24);
    let dir = std::env::temp_dir().join(format!("pmc-train-route-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let model_path = dir.join("model.json");
    std::fs::write(
        &model_path,
        ModelArtifact::new("hsw", tiny_model()).to_json().unwrap(),
    )
    .unwrap();
    let backend = spawn_serve(&model_path, None);
    let config = RouterConfig {
        backends: vec![BackendSpec::parse(&backend.addr).unwrap()],
        ..RouterConfig::default()
    };
    let mut router = PowerRouter::start(config).unwrap();
    let mut c = PowerClient::connect(router.addr())
        .unwrap()
        .with_retry(RetryPolicy::default());
    c.resume("train-route-1").unwrap();

    for i in 0..6 {
        let sample = sample_for(&model, &data, i);
        let label = data.rows()[i % data.rows().len()].power;
        let r = c.train(&sample, label).unwrap();
        assert!(
            r.field("accepted").unwrap().as_bool().unwrap(),
            "clean label {i} rejected through the router: {r}"
        );
        assert_eq!(r.u64_field("n").unwrap(), i as u64 + 1);
    }
    // A poisoned label comes back quarantined with the backend's own
    // typed reason, not a router-side translation.
    let r = c.train(&sample_for(&model, &data, 6), f64::NAN).unwrap();
    assert!(!r.field("accepted").unwrap().as_bool().unwrap());
    let reasons: Vec<&str> = r
        .arr_field("reasons")
        .unwrap()
        .iter()
        .map(|v| v.as_str().unwrap())
        .collect();
    assert_eq!(reasons, vec!["non_finite_label"]);

    router.shutdown();
    backend.shutdown_clean();
    let _ = std::fs::remove_dir_all(&dir);
}
