//! Gray-failure defense under a seeded **brownout**: one backend's
//! link stays up and keeps passing readiness probes, but every chunk
//! on *established* connections stalls for tens of milliseconds —
//! the classic gray failure that liveness probing cannot see.
//!
//! Two scenarios:
//!
//! 1. **Hedged reads under a retry budget.** With the outlier
//!    detector effectively disabled, estimate reads on synced tokens
//!    hedge to the ring standby after a fixed delay. The standby's
//!    answer wins the race bitwise-identically, and the
//!    per-connection token bucket caps hedge amplification: once the
//!    burst is spent, hedging is declined (typed counter) rather than
//!    doubling load on a browned fleet.
//! 2. **Outlier ejection bounds p99, then re-admission.** The latency
//!    EWMA fed by the relay path trips the median-relative outlier
//!    detector; the browned backend is soft-ejected (readyz says
//!    `gray_degraded:<name>`, writes keep flowing) and synced reads
//!    go straight to the standby, holding client p99 within 3x the
//!    healthy baseline. After the brownout heals, sustained healthy
//!    relay traffic re-admits the backend, and final estimates are
//!    bitwise identical to an uninterrupted single-server run. Every
//!    client carries a propagated deadline throughout — the episode
//!    must not trip a single false `deadline_exceeded`.
//!
//! `BROWNOUT_SEED` (default 1; CI runs 1/7/42) seeds the proxies and
//! varies which backend gets browned out.

mod common;

use common::{sample_for, spawn_serve, tiny_dataset, tiny_model, ServeProc};
use pmc_faults::{ChaosPlan, NetFaults};
use pmc_model::dataset::Dataset;
use pmc_model::model::PowerModel;
use pmc_router::{BackendSpec, PowerRouter, RouterConfig};
use pmc_serve::registry::ModelRegistry;
use pmc_serve::server::{PowerServer, ServerConfig};
use pmc_serve::{Estimate, ModelArtifact, PowerClient, RetryPolicy};
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::{Duration, Instant};

fn brownout_seed() -> u64 {
    std::env::var("BROWNOUT_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(1)
}

/// A link plan that is quiet until [`NetFaults::set_brownout`] flips
/// it: then every chunk past the probe-sparing byte floor stalls
/// 40–60 ms. No resets, no corruption — the point is a backend that
/// looks perfectly healthy to probes while being uselessly slow.
fn brownout_plan(seed: u64, proxy_id: u64) -> ChaosPlan {
    ChaosPlan {
        brownout_ms: (40, 60),
        brownout_after_bytes: 512,
        ..ChaosPlan::quiet(seed, proxy_id)
    }
}

fn gray_retry(seed: u64) -> RetryPolicy {
    RetryPolicy {
        max_retries: 8,
        base_delay: Duration::from_millis(5),
        max_delay: Duration::from_millis(200),
        seed,
    }
}

/// Estimate timestamp used by every read in these tests — fixed so
/// primary, standby and the in-process reference compute the exact
/// same pure function of the window.
const NOW_NS: u64 = 16_000_000_000;

/// Uninterrupted in-process reference for each token's stream: the
/// estimate read after `split` ingests, and the final ingest estimate
/// after `total` (None when `total == split`).
fn reference_run(
    model: &PowerModel,
    data: &Dataset,
    tokens: &[String],
    split: usize,
    total: usize,
) -> Vec<(Estimate, Option<Estimate>)> {
    let registry = Arc::new(ModelRegistry::default());
    registry
        .load_and_activate(ModelArtifact::new("hsw", tiny_model()))
        .unwrap();
    let mut server = PowerServer::start(ServerConfig::default(), registry).unwrap();
    let out = tokens
        .iter()
        .enumerate()
        .map(|(t, token)| {
            let mut c = PowerClient::connect(server.addr()).unwrap();
            c.resume(token).unwrap();
            for i in 0..split {
                c.ingest(&sample_for(model, data, t * 3 + i)).unwrap();
            }
            let read = c.estimate(NOW_NS).unwrap().expect("window has samples");
            let mut last = None;
            for i in split..total {
                last = Some(c.ingest(&sample_for(model, data, t * 3 + i)).unwrap());
            }
            (read, last)
        })
        .collect();
    server.shutdown();
    out
}

/// Binds tokens until every backend owns exactly two, returned in
/// backend order (tokens `2b` and `2b+1` belong to backend `b`).
/// Guarantees the outlier detector always has three scored backends —
/// a fleet median needs more than the victim's own voice.
fn two_tokens_per_backend(router: &PowerRouter, seed: u64, prefix: &str) -> Vec<String> {
    let mut per: Vec<Vec<String>> = vec![Vec::new(); 3];
    for k in 0..256 {
        if per.iter().all(|v| v.len() >= 2) {
            break;
        }
        let t = format!("{prefix}-{seed}-{k}");
        let mut c = PowerClient::connect(router.addr()).unwrap();
        c.resume(&t).unwrap();
        let owner = router.owner_of(&t).expect("resumed token is routed");
        if per[owner].len() < 2 {
            per[owner].push(t);
        }
    }
    assert!(
        per.iter().all(|v| v.len() == 2),
        "token search failed to cover every backend: {per:?}"
    );
    per.into_iter().flatten().collect()
}

/// One token owned by `victim`, for ingest churn that is not part of
/// any bitwise comparison.
fn token_owned_by(router: &PowerRouter, seed: u64, prefix: &str, victim: usize) -> String {
    (0..64)
        .map(|k| format!("{prefix}-{seed}-{k}"))
        .find(|t| {
            let mut c = PowerClient::connect(router.addr()).unwrap();
            c.resume(t).unwrap();
            router.owner_of(t) == Some(victim)
        })
        .expect("some candidate token lands on the victim")
}

fn sync_until_clean(router: &PowerRouter, deadline: Duration) {
    let until = Instant::now() + deadline;
    while !router.sync_now() {
        assert!(Instant::now() < until, "anti-entropy never reached clean");
        std::thread::sleep(Duration::from_millis(20));
    }
}

fn p99(latencies: &mut [Duration]) -> Duration {
    assert!(!latencies.is_empty());
    latencies.sort();
    latencies[(latencies.len() * 99 / 100).min(latencies.len() - 1)]
}

fn assert_read(token: &str, got: &Estimate, want: &Estimate) {
    assert_eq!(
        got.power_w.to_bits(),
        want.power_w.to_bits(),
        "{token}: hedged/redirected read diverged from the reference"
    );
    assert_eq!(
        got.window_power_w.to_bits(),
        want.window_power_w.to_bits(),
        "{token}: window_power_w diverged"
    );
    assert_eq!(got.samples_in_window, want.samples_in_window, "{token}");
}

struct Fleet {
    procs: Vec<ServeProc>,
    proxies: Vec<NetFaults>,
    router: PowerRouter,
    dir: std::path::PathBuf,
}

fn fleet(seed: u64, tag: &str, tweak: impl FnOnce(&mut RouterConfig)) -> Fleet {
    let dir = std::env::temp_dir().join(format!("pmc-gray-{tag}-{seed}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let model_path = dir.join("model.json");
    std::fs::write(
        &model_path,
        ModelArtifact::new("hsw", tiny_model()).to_json().unwrap(),
    )
    .unwrap();
    // No checkpoint files: durability rests on standby replication,
    // which is exactly the copy hedged reads are served from.
    let procs: Vec<ServeProc> = (0..3).map(|_| spawn_serve(&model_path, None)).collect();
    let proxies: Vec<NetFaults> = (0..3)
        .map(|b| NetFaults::start(&procs[b].addr, brownout_plan(seed, b as u64)).unwrap())
        .collect();
    let mut config = RouterConfig {
        backends: (0..3)
            .map(|b| BackendSpec::parse(&format!("{},name=shard-{b}", proxies[b].addr())).unwrap())
            .collect(),
        probe_interval: Duration::from_millis(50),
        probe_timeout: Duration::from_millis(150),
        evict_after: 3,
        // The tests drive sync rounds themselves, so "synced standby"
        // (the hedge-eligibility gate) is exact, not racy.
        sync_interval: Duration::ZERO,
        ..RouterConfig::default()
    };
    tweak(&mut config);
    let router = PowerRouter::start(config).unwrap();
    Fleet {
        procs,
        proxies,
        router,
        dir,
    }
}

impl Fleet {
    fn teardown(mut self) {
        self.router.shutdown();
        for proxy in &mut self.proxies {
            proxy.shutdown();
        }
        for proc in self.procs {
            proc.shutdown_clean();
        }
        let _ = std::fs::remove_dir_all(&self.dir);
    }
}

#[test]
fn hedged_reads_win_brownout_within_retry_budget() {
    let seed = brownout_seed();
    let model = tiny_model();
    let data = tiny_dataset(24);
    let split = 8usize;

    let fleet = fleet(seed, "hedge", |cfg| {
        // Deterministic hedge timing; ejection effectively off so the
        // budget arithmetic below is exact — scenario 2 owns ejection.
        cfg.hedge_after = Some(Duration::from_millis(5));
        cfg.outlier_min_samples = u64::MAX;
    });
    let stats = fleet.router.stats();
    let tokens = two_tokens_per_backend(&fleet.router, seed, "hedge");
    let reference = reference_run(&model, &data, &tokens, split, split);

    let mut clients: Vec<PowerClient> = tokens
        .iter()
        .enumerate()
        .map(|(t, token)| {
            let mut c = PowerClient::connect(fleet.router.addr())
                .unwrap()
                .with_retry(gray_retry(seed));
            c.resume(token).unwrap();
            for i in 0..split {
                c.ingest(&sample_for(&model, &data, t * 3 + i)).unwrap();
            }
            c
        })
        .collect();
    sync_until_clean(&fleet.router, Duration::from_secs(10));

    // Healthy phase: every read already bitwise-matches the reference
    // (an occasional hedge may fire on scheduler noise — it must not
    // change a single bit).
    for (t, c) in clients.iter_mut().enumerate() {
        for _ in 0..10 {
            let est = c.estimate(NOW_NS).unwrap().expect("synced window");
            assert_read(&tokens[t], &est, &reference[t].0);
        }
    }
    let fired_before = stats.hedges_fired.load(Ordering::Relaxed);
    let won_before = stats.hedges_won.load(Ordering::Relaxed);
    let denied_before = stats.retry_budget_exhausted.load(Ordering::Relaxed);

    // Brown out the victim's link and keep reading through it. Every
    // answer must stay bitwise-correct, whichever replica raced it in.
    let victim = (seed % 3) as usize;
    let reads_per_conn = 10u64;
    fleet.proxies[victim].set_brownout(true);
    for j in 0..2 {
        let t = victim * 2 + j;
        for _ in 0..reads_per_conn {
            let est = clients[t].estimate(NOW_NS).unwrap().expect("synced window");
            assert_read(&tokens[t], &est, &reference[t].0);
        }
    }
    fleet.proxies[victim].set_brownout(false);

    let fired = stats.hedges_fired.load(Ordering::Relaxed) - fired_before;
    let won = stats.hedges_won.load(Ordering::Relaxed) - won_before;
    let denied = stats.retry_budget_exhausted.load(Ordering::Relaxed) - denied_before;
    assert!(fired >= 1, "brownout never triggered a hedge");
    assert!(
        won >= 1,
        "no hedged standby answer beat the browned primary"
    );
    assert_eq!(
        stats.hedge_mismatches.load(Ordering::Relaxed),
        0,
        "a hedge race disagreed bitwise"
    );
    // The token bucket (burst 3, earn 0.1/request) caps amplification:
    // without it every one of the 20 browned reads would have hedged.
    assert!(denied >= 1, "retry budget never pushed back");
    let cap_per_conn = u64::from(RouterConfig::default().retry_budget_burst)
        + (RouterConfig::default().retry_budget_ratio * reads_per_conn as f64).ceil() as u64;
    assert!(
        fired <= 2 * cap_per_conn,
        "{fired} hedges amplified past the budget cap ({cap_per_conn}/conn)"
    );

    // The client-visible scrape tells the same story as the router's
    // own counters.
    let hs = clients[0].hedge_stats().unwrap();
    assert_eq!(hs.fired, stats.hedges_fired.load(Ordering::Relaxed));
    assert_eq!(hs.won, stats.hedges_won.load(Ordering::Relaxed));
    assert_eq!(hs.mismatches, 0);
    assert_eq!(
        hs.retry_budget_exhausted,
        stats.retry_budget_exhausted.load(Ordering::Relaxed)
    );

    let counters: Vec<_> = fleet.proxies.iter().map(|p| p.counters()).collect();
    assert!(
        counters[victim].browned_chunks >= 1,
        "the brownout fault never actually fired: {counters:?}"
    );
    fleet.teardown();
}

#[test]
fn brownout_ejection_bounds_p99_then_readmits_bitwise() {
    let seed = brownout_seed();
    let model = tiny_model();
    let data = tiny_dataset(24);
    let (split, total) = (8usize, 14usize);

    let fleet = fleet(seed, "eject", |cfg| {
        cfg.outlier_min_samples = 8;
        cfg.readmit_after = 2;
    });
    let stats = fleet.router.stats();
    let tokens = two_tokens_per_backend(&fleet.router, seed, "eject");
    let reference = reference_run(&model, &data, &tokens, split, total);

    // Every client call in this test carries a 2 s propagated
    // deadline: the whole episode — hedges, redirects, re-binds —
    // must not trip a single false deadline_exceeded.
    let mut clients: Vec<PowerClient> = tokens
        .iter()
        .enumerate()
        .map(|(t, token)| {
            let mut c = PowerClient::connect(fleet.router.addr())
                .unwrap()
                .with_retry(gray_retry(seed))
                .with_deadline(Duration::from_secs(2));
            c.resume(token).unwrap();
            for i in 0..split {
                c.ingest(&sample_for(&model, &data, t * 3 + i)).unwrap();
            }
            c
        })
        .collect();
    sync_until_clean(&fleet.router, Duration::from_secs(10));

    // Healthy baseline tail latency over every token.
    let mut healthy = Vec::new();
    for (t, c) in clients.iter_mut().enumerate() {
        for _ in 0..20 {
            let begin = Instant::now();
            let est = c.estimate(NOW_NS).unwrap().expect("synced window");
            healthy.push(begin.elapsed());
            assert_read(&tokens[t], &est, &reference[t].0);
        }
    }
    let healthy_p99 = p99(&mut healthy);

    // Brown out the victim. It keeps passing probes, so the only
    // defense is the EWMA-fed outlier detector (hedged reads keep the
    // answers flowing bitwise-correct while it gathers evidence).
    let victim = (seed % 3) as usize;
    fleet.proxies[victim].set_brownout(true);
    let detect = Instant::now();
    while stats.outlier_ejections.load(Ordering::Relaxed) == 0 {
        assert!(
            detect.elapsed() < Duration::from_secs(20),
            "outlier detector never ejected the browned backend"
        );
        for j in 0..2 {
            let t = victim * 2 + j;
            let est = clients[t].estimate(NOW_NS).unwrap().expect("synced window");
            assert_read(&tokens[t], &est, &reference[t].0);
        }
    }

    // Soft-ejected: readyz says so, typed, while the backend stays up.
    let mut probe = PowerClient::connect(fleet.router.addr()).unwrap();
    let r = probe.readyz().unwrap();
    let reasons: Vec<String> = r
        .arr_field("reasons")
        .unwrap()
        .iter()
        .filter_map(|v| v.as_str().ok())
        .map(str::to_string)
        .collect();
    assert!(
        reasons.contains(&format!("gray_degraded:shard-{victim}")),
        "readyz reasons missing the gray ejection: {reasons:?}"
    );

    // With reads redirected to the synced standby, tail latency on the
    // browned tokens stays within 3x the healthy baseline (floored at
    // 20 ms for scheduler noise) — far under the 40 ms-per-chunk
    // brownout an undefended read would eat twice per round trip.
    let mut browned = Vec::new();
    for j in 0..2 {
        let t = victim * 2 + j;
        for _ in 0..30 {
            let begin = Instant::now();
            let est = clients[t].estimate(NOW_NS).unwrap().expect("synced window");
            browned.push(begin.elapsed());
            assert_read(&tokens[t], &est, &reference[t].0);
        }
    }
    let browned_p99 = p99(&mut browned);
    let bound = (healthy_p99 * 3).max(Duration::from_millis(20));
    assert!(
        browned_p99 <= bound,
        "p99 under brownout {browned_p99:?} exceeds {bound:?} (healthy {healthy_p99:?})"
    );

    // Heal, then keep writes flowing through the still-ejected victim
    // (ejection only redirects reads) until its EWMA decays and the
    // detector re-admits it.
    fleet.proxies[victim].set_brownout(false);
    let churn_token = token_owned_by(&fleet.router, seed, "churn", victim);
    let mut churn = PowerClient::connect(fleet.router.addr())
        .unwrap()
        .with_retry(gray_retry(seed ^ 0xc0de))
        .with_deadline(Duration::from_secs(2));
    churn.resume(&churn_token).unwrap();
    let recover = Instant::now();
    let mut j = 0usize;
    while stats.outlier_readmissions.load(Ordering::Relaxed) == 0 {
        assert!(
            recover.elapsed() < Duration::from_secs(30),
            "healed backend was never re-admitted"
        );
        churn.ingest(&sample_for(&model, &data, j)).unwrap();
        j += 1;
        std::thread::sleep(Duration::from_millis(5));
    }
    let r = probe.readyz().unwrap();
    let reasons: Vec<String> = r
        .arr_field("reasons")
        .unwrap()
        .iter()
        .filter_map(|v| v.as_str().ok())
        .map(str::to_string)
        .collect();
    assert!(
        !reasons.iter().any(|r| r.starts_with("gray_degraded:")),
        "re-admitted backend still flagged: {reasons:?}"
    );

    // Tails land on the re-admitted primary; final estimates must be
    // bitwise identical to the uninterrupted run.
    for (t, c) in clients.iter_mut().enumerate() {
        let mut last = None;
        for i in split..total {
            last = Some(c.ingest(&sample_for(&model, &data, t * 3 + i)).unwrap());
        }
        let last = last.unwrap();
        let want = reference[t].1.as_ref().expect("tail reference");
        assert_eq!(
            last.power_w.to_bits(),
            want.power_w.to_bits(),
            "{}: power_w diverged across ejection + re-admission",
            tokens[t]
        );
        assert_eq!(
            last.window_power_w.to_bits(),
            want.window_power_w.to_bits(),
            "{}: window_power_w diverged",
            tokens[t]
        );
        assert_eq!(last.samples_in_window, want.samples_in_window);
    }

    assert_eq!(stats.hedge_mismatches.load(Ordering::Relaxed), 0);
    assert_eq!(stats.windows_lost.load(Ordering::Relaxed), 0);
    assert!(fleet.router.degraded_tokens().is_empty());
    let false_trips: u64 = clients
        .iter()
        .chain(std::iter::once(&churn))
        .map(|c| c.call_stats().deadline_exceeded)
        .sum();
    assert_eq!(
        false_trips, 0,
        "a propagated deadline tripped without cause during the episode"
    );
    fleet.teardown();
}

/// Measurement probe, not an assertion suite: numbers for the
/// EXPERIMENTS.md gray-failure entry. Run explicitly with
/// `cargo test -p pmc-router --test gray_failure --release -- --ignored --nocapture`.
#[test]
#[ignore = "measurement probe; run with --ignored to collect numbers"]
fn measure_brownout_tail_latency() {
    let seed = brownout_seed();
    let model = tiny_model();
    let data = tiny_dataset(24);
    let split = 8usize;
    let ms = |d: Duration| d.as_secs_f64() * 1e3;

    // (hedging + ejection on, hedging + ejection off) for the same
    // brownout — the delta is the headline number. The defended run
    // reports the detection transient (reads until the outlier
    // detector ejects the victim) separately from steady state.
    let run = |defended: bool| {
        let fleet = fleet(seed, if defended { "md" } else { "mu" }, |cfg| {
            if !defended {
                cfg.hedge_reads = false;
                cfg.outlier_min_samples = u64::MAX;
            } else {
                cfg.outlier_min_samples = 8;
            }
        });
        let stats = fleet.router.stats();
        let tokens = two_tokens_per_backend(&fleet.router, seed, "meas");
        let mut clients: Vec<PowerClient> = tokens
            .iter()
            .enumerate()
            .map(|(t, token)| {
                let mut c = PowerClient::connect(fleet.router.addr())
                    .unwrap()
                    .with_retry(gray_retry(seed));
                c.resume(token).unwrap();
                for i in 0..split {
                    c.ingest(&sample_for(&model, &data, t * 3 + i)).unwrap();
                }
                c
            })
            .collect();
        sync_until_clean(&fleet.router, Duration::from_secs(10));

        let victim = (seed % 3) as usize;
        let read = |clients: &mut Vec<PowerClient>, j: usize| -> Duration {
            let begin = Instant::now();
            clients[victim * 2 + j].estimate(NOW_NS).unwrap().unwrap();
            begin.elapsed()
        };
        let mut healthy = Vec::new();
        for _ in 0..30 {
            for j in 0..2 {
                healthy.push(read(&mut clients, j));
            }
        }
        fleet.proxies[victim].set_brownout(true);
        // Detection transient: reads issued before the ejection lands
        // (for the undefended run this phase is empty — there is no
        // detector to wait for).
        let mut transient = Vec::new();
        while defended && stats.outlier_ejections.load(Ordering::Relaxed) == 0 {
            for j in 0..2 {
                transient.push(read(&mut clients, j));
            }
        }
        let mut steady = Vec::new();
        for _ in 0..30 {
            for j in 0..2 {
                steady.push(read(&mut clients, j));
            }
        }
        fleet.proxies[victim].set_brownout(false);
        let label = if defended { "defended  " } else { "undefended" };
        let mut sorted = steady.clone();
        sorted.sort();
        eprintln!(
            "{label}: healthy p99 {:.2} ms | transient {} reads, worst {:.2} ms | steady p50 {:.2} ms p99 {:.2} ms",
            ms(p99(&mut healthy)),
            transient.len(),
            ms(transient.iter().max().copied().unwrap_or_default()),
            ms(sorted[sorted.len() / 2]),
            ms(p99(&mut steady)),
        );
        eprintln!(
            "{label}: hedges fired {} won {} | budget denials {} | ejections {}",
            stats.hedges_fired.load(Ordering::Relaxed),
            stats.hedges_won.load(Ordering::Relaxed),
            stats.retry_budget_exhausted.load(Ordering::Relaxed),
            stats.outlier_ejections.load(Ordering::Relaxed),
        );
        fleet.teardown();
    };

    run(true);
    run(false);
}
