//! Shared fixtures for the fleet-level integration tests: the
//! synthetic linear model (estimates reproducible to machine epsilon
//! across processes), and real `pmc-serve` child processes.
#![allow(dead_code)]

use pmc_events::PapiEvent;
use pmc_model::dataset::{Dataset, SampleRow};
use pmc_model::model::PowerModel;
use pmc_serve::CounterSample;
use std::io::{BufRead, BufReader};
use std::path::{Path, PathBuf};
use std::process::{Child, ChildStdin, Command, Stdio};

/// Same synthetic fixture as the serve crate's tests: power exactly
/// linear in three event rates, so estimates are reproducible to
/// machine epsilon across processes.
pub fn tiny_dataset(n: usize) -> Dataset {
    let mut rows = Vec::with_capacity(n);
    for i in 0..n {
        let freq_mhz = [1200u32, 1600, 2000, 2400, 2600][i % 5];
        let f = freq_mhz as f64 / 1000.0;
        let v = 0.492857 + 0.214286 * f;
        let mut rates: Vec<f64> = (0..PapiEvent::COUNT)
            .map(|j| ((31 * i + 17 * j + i * i * (j + 3)) % 97) as f64 / 9700.0)
            .collect();
        rates[PapiEvent::PRF_DM.index()] = 0.001 + 0.00002 * (i as f64);
        rates[PapiEvent::TOT_CYC.index()] = 0.2 + 0.01 * ((i * 7 % 13) as f64);
        rates[PapiEvent::TLB_IM.index()] = 0.0005 + 0.00001 * ((i * 5 % 11) as f64);
        let v2f = v * v * f;
        let power = 5000.0 * rates[PapiEvent::PRF_DM.index()] * v2f
            + 120.0 * rates[PapiEvent::TOT_CYC.index()] * v2f
            + 900.0 * rates[PapiEvent::TLB_IM.index()] * v2f
            + 20.0 * v2f
            + 40.0 * v
            + 70.0;
        rows.push(SampleRow {
            workload_id: (i % 8) as u32,
            workload: format!("w{}", i % 8),
            suite: "roco2".into(),
            phase: "main".into(),
            threads: 24,
            freq_mhz,
            duration_s: 1.0,
            voltage: v,
            power,
            rates,
        });
    }
    Dataset::from_rows(rows)
}

pub fn tiny_model() -> PowerModel {
    PowerModel::fit(
        &tiny_dataset(40),
        &[PapiEvent::PRF_DM, PapiEvent::TOT_CYC, PapiEvent::TLB_IM],
    )
    .expect("well-posed synthetic fit")
}

pub fn sample_for(model: &PowerModel, data: &Dataset, i: usize) -> CounterSample {
    let row = &data.rows()[i % data.rows().len()];
    let avail = 24.0 * row.freq_mhz as f64 * 1e6 * row.duration_s;
    CounterSample {
        time_ns: (i as u64 + 1) * 250_000_000,
        duration_s: row.duration_s,
        freq_mhz: row.freq_mhz,
        voltage: row.voltage,
        deltas: model.events.iter().map(|e| row.rate(*e) * avail).collect(),
        missing: vec![],
    }
}

/// `CARGO_BIN_EXE_*` only covers the defining package, so the serve
/// binary is found next to our own (same target dir), overridable
/// with `PMC_SERVE_BIN` — CI builds it explicitly first.
pub fn serve_bin() -> PathBuf {
    if let Ok(path) = std::env::var("PMC_SERVE_BIN") {
        return PathBuf::from(path);
    }
    let me = PathBuf::from(env!("CARGO_BIN_EXE_pmc-router"));
    let sibling = me
        .parent()
        .expect("binary has a parent dir")
        .join(format!("pmc-serve{}", std::env::consts::EXE_SUFFIX));
    assert!(
        sibling.exists(),
        "pmc-serve not found at {}; run `cargo build -p pmc-serve` first or set PMC_SERVE_BIN",
        sibling.display()
    );
    sibling
}

/// A running `pmc-serve serve` child plus the stdin handle keeping it
/// alive and the parsed ephemeral address it bound.
pub struct ServeProc {
    pub child: Child,
    pub stdin: Option<ChildStdin>,
    pub addr: String,
}

/// Spawns a backend; `ck_path: None` runs it without any checkpoint
/// file (durability then rests entirely on standby replication).
pub fn spawn_serve(model_path: &Path, ck_path: Option<&Path>) -> ServeProc {
    let mut args = vec![
        "serve".to_string(),
        "--addr".into(),
        "127.0.0.1:0".into(),
        "--model".into(),
        model_path.to_str().unwrap().into(),
    ];
    if let Some(ck) = ck_path {
        args.push("--checkpoint".into());
        args.push(ck.to_str().unwrap().into());
        args.push("--checkpoint-interval-ms".into());
        args.push("0".into());
    }
    let mut child = Command::new(serve_bin())
        .args(&args)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn pmc-serve");
    let stdin = child.stdin.take();
    let stdout = child.stdout.take().expect("stdout piped");
    let mut lines = BufReader::new(stdout).lines();
    let first = lines
        .next()
        .expect("server must print its address")
        .expect("readable stdout");
    let addr = first
        .strip_prefix("listening on ")
        .unwrap_or_else(|| panic!("unexpected banner: {first}"))
        .to_string();
    ServeProc { child, stdin, addr }
}

impl ServeProc {
    /// SIGKILL — no drain, no final checkpoint, the real crash.
    pub fn kill_hard(mut self) {
        self.child.kill().expect("kill -9");
        let _ = self.child.wait();
    }

    pub fn shutdown_clean(mut self) {
        drop(self.stdin.take());
        let _ = self.child.wait();
    }
}
