//! Client backoff against a **real router**, not a mock: a router
//! whose fleet is entirely down answers data-plane requests with a
//! typed overload carrying its `retry_after_ms` hint (a token with no
//! usable owner mid-failover looks exactly the same). These tests pin
//! the client contract for that case:
//!
//! 1. the circuit breaker's jittered open window is floored at the
//!    router's hint — the half-open probe never goes back before the
//!    router said there was any point;
//! 2. in-place retries sleep at least the hint between attempts.
//!
//! They live in the router crate because the serve crate cannot
//! depend on the router (it's the dependency the other way); the unit
//! tests in `pmc-serve::client` cover the same logic against
//! synthetic errors, these cover it against real wire frames.

use pmc_router::{PowerRouter, RouterConfig};
use pmc_serve::{BreakerPolicy, PowerClient, RetryPolicy, ServeError};
use std::time::{Duration, Instant};

/// A router with zero usable backends: every data-plane request is
/// refused with `overloaded` and this hint.
fn overloaded_router(retry_after_ms: u64) -> PowerRouter {
    PowerRouter::start(RouterConfig {
        retry_after_ms,
        ..RouterConfig::default()
    })
    .unwrap()
}

#[test]
fn breaker_open_window_is_floored_at_the_router_hint() {
    let mut router = overloaded_router(400);
    // A cooldown far below the hint: without the floor, the breaker
    // would re-admit (and fail) the half-open probe almost instantly.
    let mut c = PowerClient::connect(router.addr())
        .unwrap()
        .with_breaker(BreakerPolicy {
            failure_threshold: 1,
            cooldown: Duration::from_millis(2),
            max_cooldown: Duration::from_millis(8),
            seed: 7,
        });
    match c.resume("nobody-owns-me") {
        Err(ServeError::Overloaded { retry_after_ms }) => assert_eq!(retry_after_ms, 400),
        other => panic!("expected the router's typed overload, got {other:?}"),
    }
    // The breaker tripped on that refusal; its open window must cover
    // the router's hint, not just the (tiny, jittered) cooldown.
    match c.resume("nobody-owns-me") {
        Err(ServeError::CircuitOpen { retry_in_ms }) => assert!(
            retry_in_ms > 300,
            "open window {retry_in_ms}ms ignores the 400ms router hint"
        ),
        other => panic!("expected fail-fast with the breaker open, got {other:?}"),
    }
    // And it stays open across the whole hint: a probe halfway
    // through would still find nothing routable.
    std::thread::sleep(Duration::from_millis(150));
    assert!(
        matches!(
            c.resume("nobody-owns-me"),
            Err(ServeError::CircuitOpen { .. })
        ),
        "breaker re-admitted a probe before the router's hint elapsed"
    );
    router.shutdown();
}

#[test]
fn budget_smaller_than_the_router_hop_is_refused_typed() {
    // The fleet is down too, but that must not matter: a budget the
    // router hop itself would consume is shed *before* backend
    // selection, as deadline_exceeded — not dressed up as overload.
    let mut router = overloaded_router(250);
    let stats = router.stats();
    let mut c = PowerClient::connect(router.addr())
        .unwrap()
        .with_deadline(Duration::from_millis(1));
    // A 1 ms budget always stamps `deadline_ms: 1` (the client floors
    // the stamp at 1), which cannot survive the router's 1 ms hop
    // charge. A slow scheduler can occasionally spend the budget
    // before the frame is even sent — that fails locally with the
    // same typed error, so drive calls until one reaches the router.
    let mut hit_router = false;
    for _ in 0..20 {
        match c.resume("nobody-owns-me") {
            Err(ServeError::DeadlineExceeded { remaining_ms }) => assert_eq!(remaining_ms, 0),
            other => panic!("expected a typed deadline refusal, got {other:?}"),
        }
        if stats
            .deadline_rejects
            .load(std::sync::atomic::Ordering::Relaxed)
            >= 1
        {
            hit_router = true;
            break;
        }
    }
    assert!(hit_router, "no call ever reached the router's hop charge");
    assert!(c.call_stats().deadline_exceeded >= 1);
    // The refusal is the router's own, never a relayed overload.
    assert_eq!(
        stats
            .no_backend_rejects
            .load(std::sync::atomic::Ordering::Relaxed),
        0
    );
    router.shutdown();
}

#[test]
fn in_place_retries_sleep_at_least_the_router_hint() {
    let mut router = overloaded_router(80);
    // Retry delays far below the hint: the hint must floor them.
    let mut c = PowerClient::connect(router.addr())
        .unwrap()
        .with_retry(RetryPolicy {
            max_retries: 2,
            base_delay: Duration::from_millis(1),
            max_delay: Duration::from_millis(4),
            seed: 11,
        });
    let started = Instant::now();
    match c.resume("nobody-owns-me") {
        Err(ServeError::Overloaded { retry_after_ms }) => assert_eq!(retry_after_ms, 80),
        other => panic!("expected exhausted retries to surface the overload, got {other:?}"),
    }
    let elapsed = started.elapsed();
    assert!(
        elapsed >= Duration::from_millis(160),
        "two retries against an 80ms hint finished in {elapsed:?}"
    );
    router.shutdown();
}
