//! Fleet failover **without shared disk**, under seeded network
//! chaos: every router↔backend link runs through a
//! [`pmc_faults::NetFaults`] proxy injecting latency, trickle and
//! mid-frame connection resets (bit corruption stays off — these are
//! bitwise tests, a flipped bit is *supposed* to change the outcome).
//!
//! Two scenarios:
//!
//! 1. **Disk loss.** A backend is SIGKILLed *and* its checkpoint file
//!    is deleted — the shared-disk recovery lever is gone. Windows the
//!    anti-entropy loop had replicated to their ring standby fail over
//!    warm and bitwise identical to an uninterrupted run; a window
//!    ingested after the last sync cold-starts with the
//!    machine-readable `cold_start:window_not_replicated` reason.
//! 2. **Partition + heal.** With no checkpoint files configured at
//!    all, a full one-way-pair partition of one backend's link forces
//!    eviction; its windows fail over warm from their replicas, the
//!    partition heals, the backend is restored, and the windows
//!    migrate *back* live — final estimates still bitwise identical.
//!
//! `CHAOS_SEED` (default 1; CI runs 1/7/42) seeds the proxies' fault
//! plans and varies which backend is the victim, so matrix legs
//! exercise different fault interleavings and placements.

mod common;

use common::{sample_for, spawn_serve, tiny_dataset, tiny_model, ServeProc};
use pmc_faults::{ChaosPlan, NetFaults};
use pmc_model::dataset::Dataset;
use pmc_model::model::PowerModel;
use pmc_router::{BackendSpec, PowerRouter, RouterConfig};
use pmc_serve::registry::ModelRegistry;
use pmc_serve::server::{PowerServer, ServerConfig};
use pmc_serve::{Estimate, ModelArtifact, PowerClient, RetryPolicy};
use std::path::PathBuf;
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::{Duration, Instant};

fn chaos_seed() -> u64 {
    std::env::var("CHAOS_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(1)
}

/// The campaign plan for one backend link: seeded latency, trickle
/// and mid-frame resets. The reset quota floor (512 bytes) spares
/// probe exchanges so health checking stays meaningful; corruption is
/// off because the assertions below are bitwise.
fn chaos_plan(seed: u64, proxy_id: u64) -> ChaosPlan {
    ChaosPlan {
        latency_one_in: 2,
        latency_ms: (1, 4),
        trickle_one_in: 4,
        reset_one_in: 6,
        reset_after_bytes: (512, 4096),
        ..ChaosPlan::quiet(seed, proxy_id)
    }
}

/// Retry policy sized for the chaos campaign: resets tear connections
/// mid-frame, so clients need more patience than the default.
fn chaos_retry(seed: u64) -> RetryPolicy {
    RetryPolicy {
        max_retries: 8,
        base_delay: Duration::from_millis(5),
        max_delay: Duration::from_millis(200),
        seed,
    }
}

/// Uninterrupted in-process reference estimates for token streams
/// (identical engine defaults → identical bits).
fn reference_estimates(
    model: &PowerModel,
    data: &Dataset,
    tokens: &[String],
    total: usize,
) -> Vec<Estimate> {
    let registry = Arc::new(ModelRegistry::default());
    registry
        .load_and_activate(ModelArtifact::new("hsw", tiny_model()))
        .unwrap();
    let mut server = PowerServer::start(ServerConfig::default(), registry).unwrap();
    let estimates = tokens
        .iter()
        .enumerate()
        .map(|(t, token)| {
            let mut c = PowerClient::connect(server.addr()).unwrap();
            c.resume(token).unwrap();
            let mut last = None;
            for i in 0..total {
                last = Some(c.ingest(&sample_for(model, data, t * 3 + i)).unwrap());
            }
            last.unwrap()
        })
        .collect();
    server.shutdown();
    estimates
}

/// Drives `sync_now` until a round reports every routed window
/// replicated — under chaos individual rounds fail and are retried.
fn sync_until_clean(router: &PowerRouter, deadline: Duration) {
    let until = Instant::now() + deadline;
    while !router.sync_now() {
        assert!(
            Instant::now() < until,
            "anti-entropy never reached a clean round under chaos"
        );
        std::thread::sleep(Duration::from_millis(20));
    }
}

fn write_model(dir: &std::path::Path) -> PathBuf {
    let model_path = dir.join("model.json");
    std::fs::write(
        &model_path,
        ModelArtifact::new("hsw", tiny_model()).to_json().unwrap(),
    )
    .unwrap();
    model_path
}

#[test]
fn disk_loss_failover_recovers_replicated_windows_bitwise() {
    let seed = chaos_seed();
    let model = tiny_model();
    let data = tiny_dataset(24);
    let (total, split) = (20usize, 10usize);
    let tokens: Vec<String> = (0..6).map(|i| format!("chaos-{seed}-{i}")).collect();
    let stream = |t: usize, i: usize| sample_for(&model, &data, t * 3 + i);

    let dir = std::env::temp_dir().join(format!("pmc-chaos-{seed}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let model_path = write_model(&dir);
    let reference = reference_estimates(&model, &data, &tokens, total);

    // Three real backends, each with a checkpoint file, each reached
    // only through its chaos proxy (data plane, probes, replication
    // and migration all share the faulty links).
    let ck_paths: Vec<PathBuf> = (0..3).map(|b| dir.join(format!("b{b}.ckpt"))).collect();
    let mut procs: Vec<Option<ServeProc>> = ck_paths
        .iter()
        .map(|ck| Some(spawn_serve(&model_path, Some(ck))))
        .collect();
    let proxies: Vec<NetFaults> = (0..3)
        .map(|b| {
            NetFaults::start(&procs[b].as_ref().unwrap().addr, chaos_plan(seed, b as u64)).unwrap()
        })
        .collect();
    let config = RouterConfig {
        backends: (0..3)
            .map(|b| {
                BackendSpec::parse(&format!(
                    "{},name=shard-{b},ckpt={}",
                    proxies[b].addr(),
                    ck_paths[b].display()
                ))
                .unwrap()
            })
            .collect(),
        probe_interval: Duration::from_millis(50),
        evict_after: 3,
        // Deterministic replication: the test drives sync rounds
        // itself, so "replicated" vs "not yet replicated" is exact.
        sync_interval: Duration::ZERO,
        ..RouterConfig::default()
    };
    let mut router = PowerRouter::start(config).unwrap();
    let stats = router.stats();

    // Phase 1: stream every token's head through the chaos links.
    let mut clients: Vec<PowerClient> = tokens
        .iter()
        .enumerate()
        .map(|(t, token)| {
            let mut c = PowerClient::connect(router.addr())
                .unwrap()
                .with_retry(chaos_retry(seed));
            c.resume(token).unwrap();
            for i in 0..split {
                c.ingest(&stream(t, i)).unwrap();
            }
            c
        })
        .collect();

    // Replicate everything, then checkpoint every backend (directly,
    // off the chaos links — the control op isn't under test).
    sync_until_clean(&router, Duration::from_secs(30));
    for token in &tokens {
        let (replicated, primary) = router
            .replication_of(token)
            .expect("synced token has replication state");
        assert!(
            replicated >= split as u64,
            "{token}: {replicated} < {split}"
        );
        assert_eq!(replicated, primary, "{token} left dirty by a clean round");
    }
    for proc in procs.iter().flatten() {
        let mut c = PowerClient::connect(proc.addr.as_str()).unwrap();
        c.checkpoint_now().unwrap();
    }

    let owners: Vec<usize> = tokens
        .iter()
        .map(|t| router.owner_of(t).expect("token routed"))
        .collect();
    let victim = owners[seed as usize % owners.len()];
    let victim_tokens = owners.iter().filter(|&&o| o == victim).count();

    // A late window the victim owns, ingested *after* the last sync:
    // honestly unprotected, must cold-start with a typed reason.
    let late = (0..)
        .map(|k| format!("late-{seed}-{k}"))
        .take(64)
        .find(|t| {
            let mut c = PowerClient::connect(router.addr())
                .unwrap()
                .with_retry(chaos_retry(seed ^ 0x1a7e));
            c.resume(t).unwrap();
            router.owner_of(t) == Some(victim)
        })
        .expect("some candidate token lands on the victim");
    let mut late_client = PowerClient::connect(router.addr())
        .unwrap()
        .with_retry(chaos_retry(seed ^ 0xdead));
    late_client.resume(&late).unwrap();
    for i in 0..3 {
        late_client.ingest(&stream(9, i)).unwrap();
    }

    // The crash: SIGKILL, then burn the checkpoint file. Recovery can
    // only come from the standby replicas.
    procs[victim].take().unwrap().kill_hard();
    let _ = std::fs::remove_file(&ck_paths[victim]);

    let want_moves = (victim_tokens + 1) as u64;
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        let moved = stats.migrations_completed.load(Ordering::Relaxed)
            + stats.migrations_failed.load(Ordering::Relaxed);
        if stats.evictions.load(Ordering::Relaxed) >= 1 && moved >= want_moves {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "eviction/failover did not happen: evictions={} moved={moved} (want {want_moves})",
            stats.evictions.load(Ordering::Relaxed)
        );
        std::thread::sleep(Duration::from_millis(20));
    }

    // Replicated windows recovered warm and verified; exactly the
    // late window was lost, with the machine-readable reason.
    assert_eq!(stats.migrations_unverified.load(Ordering::Relaxed), 0);
    assert_eq!(stats.migrations_failed.load(Ordering::Relaxed), 1);
    assert_eq!(stats.windows_lost.load(Ordering::Relaxed), 1);
    assert_eq!(
        router.degraded_tokens(),
        vec![(late.clone(), "cold_start:window_not_replicated".to_string())]
    );

    // Phase 2: tails through the still-chaotic links; the acceptance
    // bar is bitwise identity with the uninterrupted run.
    let finals: Vec<Estimate> = clients
        .iter_mut()
        .enumerate()
        .map(|(t, c)| {
            let mut last = None;
            for i in split..total {
                last = Some(c.ingest(&stream(t, i)).unwrap());
            }
            last.unwrap()
        })
        .collect();
    for ((token, reference), resumed) in tokens.iter().zip(&reference).zip(&finals) {
        assert_eq!(
            resumed.power_w.to_bits(),
            reference.power_w.to_bits(),
            "{token}: power_w diverged across disk-loss failover"
        );
        assert_eq!(
            resumed.window_power_w.to_bits(),
            reference.window_power_w.to_bits(),
            "{token}: window_power_w diverged across disk-loss failover"
        );
        assert_eq!(resumed.samples_in_window, reference.samples_in_window);
    }

    // The degraded token really cold-started: its window holds only
    // the post-crash samples.
    let mut cold = None;
    for i in 3..5 {
        cold = Some(late_client.ingest(&stream(9, i)).unwrap());
    }
    let cold = cold.unwrap();
    assert_eq!(
        cold.samples_in_window, 2,
        "unreplicated window failed over warm — it must not have"
    );

    // The readiness/metrics surface tells the same story.
    let mut c = PowerClient::connect(router.addr()).unwrap();
    let r = c.readyz().unwrap();
    let degraded = r.arr_field("degraded_tokens").unwrap();
    assert_eq!(degraded.len(), 1);
    assert_eq!(degraded[0].str_field("token").unwrap(), late);
    let body = c.metrics().unwrap();
    assert!(body.contains("pmc_router_windows_lost 1\n"), "{body}");
    let replicated = stats.windows_replicated.load(Ordering::Relaxed);
    assert!(replicated >= 6, "only {replicated} windows replicated");

    let faults: Vec<_> = proxies.iter().map(|p| p.counters()).collect();
    eprintln!("chaos seed {seed}: injected per link: {faults:?}");
    router.shutdown();
    for mut proxy in proxies {
        proxy.shutdown();
    }
    for proc in procs.into_iter().flatten() {
        proc.shutdown_clean();
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// Measurement probe, not an assertion suite: numbers for the
/// EXPERIMENTS.md replication/failover entry. Run explicitly with
/// `cargo test -p pmc-router --test chaos_fleet --release -- --ignored --nocapture`.
#[test]
#[ignore = "measurement probe; run with --ignored to collect numbers"]
fn measure_failover_and_replication_overhead() {
    let seed = chaos_seed();
    let model = tiny_model();
    let data = tiny_dataset(24);
    let tokens: Vec<String> = (0..6).map(|i| format!("meas-{seed}-{i}")).collect();
    let per_token = 200usize;

    let dir = std::env::temp_dir().join(format!("pmc-meas-{seed}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let model_path = write_model(&dir);

    // One streaming pass through a fresh 3-backend fleet; returns
    // (ingest wall time, failover time from SIGKILL to last victim
    // window migrated).
    let run = |sync_interval: Duration| -> (Duration, Duration) {
        let mut procs: Vec<Option<ServeProc>> = (0..3)
            .map(|_| Some(spawn_serve(&model_path, None)))
            .collect();
        let config = RouterConfig {
            backends: (0..3)
                .map(|b| {
                    BackendSpec::parse(&format!(
                        "{},name=shard-{b}",
                        procs[b].as_ref().unwrap().addr
                    ))
                    .unwrap()
                })
                .collect(),
            probe_interval: Duration::from_millis(50),
            evict_after: 2,
            sync_interval,
            ..RouterConfig::default()
        };
        let mut router = PowerRouter::start(config).unwrap();
        let stats = router.stats();

        let streamed = Instant::now();
        let mut clients: Vec<PowerClient> = tokens
            .iter()
            .map(|token| {
                let mut c = PowerClient::connect(router.addr())
                    .unwrap()
                    .with_retry(chaos_retry(seed));
                c.resume(token).unwrap();
                c
            })
            .collect();
        for i in 0..per_token {
            for (t, c) in clients.iter_mut().enumerate() {
                c.ingest(&sample_for(&model, &data, t * 3 + i)).unwrap();
            }
        }
        let ingest_wall = streamed.elapsed();

        let failover = if sync_interval.is_zero() {
            Duration::ZERO
        } else {
            sync_until_clean(&router, Duration::from_secs(30));
            let owners: Vec<usize> = tokens.iter().map(|t| router.owner_of(t).unwrap()).collect();
            let victim = owners[seed as usize % owners.len()];
            let victim_tokens = owners.iter().filter(|&&o| o == victim).count() as u64;
            let killed = Instant::now();
            procs[victim].take().unwrap().kill_hard();
            loop {
                if stats.evictions.load(Ordering::Relaxed) >= 1
                    && stats.migrations_completed.load(Ordering::Relaxed) >= victim_tokens
                {
                    break killed.elapsed();
                }
                assert!(killed.elapsed() < Duration::from_secs(30), "no failover");
                std::thread::sleep(Duration::from_millis(2));
            }
        };
        router.shutdown();
        for proc in procs.into_iter().flatten() {
            proc.shutdown_clean();
        }
        (ingest_wall, failover)
    };

    let (base, _) = run(Duration::ZERO);
    let (with_sync, failover) = run(Duration::from_millis(25));
    let n = (tokens.len() * per_token) as f64;
    eprintln!(
        "replication off: {:.1} ms ingest wall ({:.0} req/s)",
        base.as_secs_f64() * 1e3,
        n / base.as_secs_f64()
    );
    eprintln!(
        "replication 25ms: {:.1} ms ingest wall ({:.0} req/s, {:+.1}%)",
        with_sync.as_secs_f64() * 1e3,
        n / with_sync.as_secs_f64(),
        (with_sync.as_secs_f64() / base.as_secs_f64() - 1.0) * 100.0
    );
    eprintln!(
        "failover (SIGKILL -> last victim window warm on standby): {:.0} ms",
        failover.as_secs_f64() * 1e3
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn partition_failover_serves_from_replica_then_heals() {
    let seed = chaos_seed();
    let model = tiny_model();
    let data = tiny_dataset(24);
    let tokens: Vec<String> = (0..4).map(|i| format!("part-{seed}-{i}")).collect();
    let stream = |t: usize, i: usize| sample_for(&model, &data, t * 3 + i);
    let reference = reference_estimates(&model, &data, &tokens, 20);

    let dir = std::env::temp_dir().join(format!("pmc-part-{seed}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let model_path = write_model(&dir);

    // No checkpoint files anywhere: durability rests entirely on
    // standby replication. Quiet proxies — the fault under test is
    // the partition toggle, not seeded noise.
    let procs: Vec<ServeProc> = (0..3).map(|_| spawn_serve(&model_path, None)).collect();
    let proxies: Vec<NetFaults> = (0..3)
        .map(|b| NetFaults::start(&procs[b].addr, ChaosPlan::quiet(seed, b as u64)).unwrap())
        .collect();
    let config = RouterConfig {
        backends: (0..3)
            .map(|b| BackendSpec::parse(&format!("{},name=shard-{b}", proxies[b].addr())).unwrap())
            .collect(),
        probe_interval: Duration::from_millis(50),
        probe_timeout: Duration::from_millis(150),
        evict_after: 2,
        sync_interval: Duration::ZERO,
        ..RouterConfig::default()
    };
    let mut router = PowerRouter::start(config).unwrap();
    let stats = router.stats();

    let mut clients: Vec<PowerClient> = tokens
        .iter()
        .enumerate()
        .map(|(t, token)| {
            let mut c = PowerClient::connect(router.addr())
                .unwrap()
                .with_retry(chaos_retry(seed));
            c.resume(token).unwrap();
            for i in 0..7 {
                c.ingest(&stream(t, i)).unwrap();
            }
            c
        })
        .collect();
    sync_until_clean(&router, Duration::from_secs(10));

    let owners: Vec<usize> = tokens
        .iter()
        .map(|t| router.owner_of(t).expect("token routed"))
        .collect();
    let victim = owners[seed as usize % owners.len()];
    let victim_tokens = owners.iter().filter(|&&o| o == victim).count() as u64;

    // Partition the victim's link both ways: probes blackhole, the
    // prober evicts, and failover must come from the replicas — there
    // is no checkpoint file to fall back to.
    proxies[victim].partition(true);
    let deadline = Instant::now() + Duration::from_secs(20);
    loop {
        let moved = stats.migrations_completed.load(Ordering::Relaxed);
        if stats.evictions.load(Ordering::Relaxed) >= 1 && moved >= victim_tokens {
            break;
        }
        assert!(Instant::now() < deadline, "partition did not evict");
        std::thread::sleep(Duration::from_millis(20));
    }
    assert_eq!(stats.migrations_failed.load(Ordering::Relaxed), 0);
    assert_eq!(stats.migrations_unverified.load(Ordering::Relaxed), 0);
    assert!(router.degraded_tokens().is_empty());

    // Serve through the partition: warm windows, correct bits.
    for (t, c) in clients.iter_mut().enumerate() {
        for i in 7..14 {
            c.ingest(&stream(t, i)).unwrap();
        }
    }

    // Heal. The prober restores the victim and live-migrates its ring
    // share back (two-phase export/import/verify over the wire).
    proxies[victim].partition(false);
    let deadline = Instant::now() + Duration::from_secs(20);
    loop {
        let back = tokens
            .iter()
            .zip(&owners)
            .all(|(t, &o)| router.owner_of(t) == Some(o));
        if stats.restores.load(Ordering::Relaxed) >= 1 && back {
            break;
        }
        assert!(Instant::now() < deadline, "heal did not restore ownership");
        std::thread::sleep(Duration::from_millis(20));
    }
    assert_eq!(stats.migrations_failed.load(Ordering::Relaxed), 0);
    assert_eq!(stats.migrations_unverified.load(Ordering::Relaxed), 0);

    // Tails land on the healed backend; bits must still match the
    // uninterrupted run across failover *and* fail-back.
    let finals: Vec<Estimate> = clients
        .iter_mut()
        .enumerate()
        .map(|(t, c)| {
            let mut last = None;
            for i in 14..20 {
                last = Some(c.ingest(&stream(t, i)).unwrap());
            }
            last.unwrap()
        })
        .collect();
    for ((token, reference), resumed) in tokens.iter().zip(&reference).zip(&finals) {
        assert_eq!(
            resumed.power_w.to_bits(),
            reference.power_w.to_bits(),
            "{token}: power_w diverged across partition failover + heal"
        );
        assert_eq!(
            resumed.window_power_w.to_bits(),
            reference.window_power_w.to_bits(),
            "{token}: window_power_w diverged across partition failover + heal"
        );
        assert_eq!(resumed.samples_in_window, reference.samples_in_window);
    }
    assert_eq!(stats.windows_lost.load(Ordering::Relaxed), 0);
    assert!(router.degraded_tokens().is_empty());

    router.shutdown();
    for mut proxy in proxies {
        proxy.shutdown();
    }
    for proc in procs {
        proc.shutdown_clean();
    }
    let _ = std::fs::remove_dir_all(&dir);
}
