//! Property-based tests for the statistics layer.

use pmc_linalg::Matrix;
use pmc_stats::{
    mape, mean_vif, pearson, rmse, vif_all, CovarianceKind, KFold, OlsFit, OlsOptions,
};
use proptest::prelude::*;

fn finite_vec(len: usize, lo: f64, hi: f64) -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec(lo..hi, len)
}

/// Design with intercept + 2 independent-ish random columns.
fn design(n: usize) -> impl Strategy<Value = Matrix> {
    (finite_vec(n, -5.0, 5.0), finite_vec(n, -5.0, 5.0)).prop_map(move |(a, b)| {
        let mut m = Matrix::zeros(n, 3);
        for i in 0..n {
            m[(i, 0)] = 1.0;
            m[(i, 1)] = a[i];
            m[(i, 2)] = b[i];
        }
        m
    })
}

proptest! {
    #[test]
    fn ols_r2_in_unit_interval(x in design(30), y in finite_vec(30, 0.0, 100.0)) {
        match OlsFit::fit(&x, &y) {
            Ok(fit) => {
                prop_assert!(fit.r_squared() <= 1.0 + 1e-12);
                prop_assert!(fit.r_squared() >= -1e-12,
                    "centered R² with intercept must be >= 0, got {}", fit.r_squared());
                prop_assert!(fit.adj_r_squared() <= fit.r_squared() + 1e-12);
            }
            // Degenerate random draws (constant y / collinear X) are fine.
            Err(_) => {}
        }
    }

    #[test]
    fn ols_residuals_sum_to_zero_with_intercept(
        x in design(25),
        y in finite_vec(25, -10.0, 10.0),
    ) {
        if let Ok(fit) = OlsFit::fit(&x, &y) {
            let s: f64 = fit.residuals().iter().sum();
            prop_assert!(s.abs() < 1e-7, "residual sum {s}");
        }
    }

    #[test]
    fn ols_fit_is_optimal_among_perturbations(
        x in design(20),
        y in finite_vec(20, -10.0, 10.0),
        d0 in -0.5f64..0.5,
        d1 in -0.5f64..0.5,
    ) {
        if let Ok(fit) = OlsFit::fit(&x, &y) {
            let mut beta = fit.coefficients().to_vec();
            beta[0] += d0;
            beta[1] += d1;
            let perturbed: f64 = (0..x.rows())
                .map(|i| {
                    let p = pmc_linalg::dot(x.row(i), &beta);
                    (y[i] - p) * (y[i] - p)
                })
                .sum();
            prop_assert!(perturbed + 1e-9 >= fit.rss());
        }
    }

    #[test]
    fn hc3_standard_errors_nonnegative(x in design(40), y in finite_vec(40, 0.0, 50.0)) {
        if let Ok(fit) = OlsFit::fit_with(&x, &y, OlsOptions {
            covariance: CovarianceKind::HC3,
            centered_tss: true,
        }) {
            for se in fit.std_errors() {
                prop_assert!(se >= 0.0 && se.is_finite());
            }
        }
    }

    #[test]
    fn vif_at_least_one(x in design(50)) {
        // Drop the intercept column: VIF operates on predictors.
        let pred = x.select_columns(&[1, 2]);
        if let Ok(v) = vif_all(&pred) {
            for vif in v {
                prop_assert!(vif >= 1.0 - 1e-9);
            }
            prop_assert!(mean_vif(&pred).unwrap() >= 1.0 - 1e-9);
        }
    }

    #[test]
    fn pearson_bounded_and_scale_invariant(
        xy in finite_vec(20, -100.0, 100.0).prop_flat_map(|x| {
            (Just(x), finite_vec(20, -100.0, 100.0))
        }),
        a in 0.1f64..10.0,
        b in -5.0f64..5.0,
    ) {
        let (x, y) = xy;
        if let Ok(r) = pearson(&x, &y) {
            prop_assert!((-1.0 - 1e-12..=1.0 + 1e-12).contains(&r));
            // Positive affine transforms leave r unchanged.
            let xs: Vec<f64> = x.iter().map(|v| a * v + b).collect();
            if let Ok(r2) = pearson(&xs, &y) {
                prop_assert!((r - r2).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn mape_scale_invariant(
        actual in finite_vec(15, 1.0, 1000.0),
        rel in finite_vec(15, -0.5, 0.5),
        scale in 0.1f64..100.0,
    ) {
        let predicted: Vec<f64> = actual.iter().zip(&rel).map(|(a, r)| a * (1.0 + r)).collect();
        let m1 = mape(&actual, &predicted).unwrap();
        let sa: Vec<f64> = actual.iter().map(|v| v * scale).collect();
        let sp: Vec<f64> = predicted.iter().map(|v| v * scale).collect();
        let m2 = mape(&sa, &sp).unwrap();
        prop_assert!((m1 - m2).abs() < 1e-9);
        prop_assert!(m1 <= 50.0 + 1e-9); // |rel| <= 0.5
    }

    #[test]
    fn rmse_triangle_like(actual in finite_vec(10, 1.0, 100.0)) {
        // rmse(a, a) == 0 and rmse symmetric in its arguments.
        prop_assert_eq!(rmse(&actual, &actual).unwrap(), 0.0);
        let shifted: Vec<f64> = actual.iter().map(|v| v + 1.0).collect();
        let ab = rmse(&actual, &shifted).unwrap();
        let ba = rmse(&shifted, &actual).unwrap();
        prop_assert!((ab - ba).abs() < 1e-12);
        prop_assert!((ab - 1.0).abs() < 1e-12);
    }

    #[test]
    fn kfold_covers_all_indices(n in 10usize..120, seed in 0u64..1000) {
        let k = 10.min(n);
        let kf = KFold::new(n, k, seed).unwrap();
        let mut count = vec![0usize; n];
        for f in kf.folds() {
            for &i in &f.validate {
                count[i] += 1;
            }
            // Train ∪ validate = all, disjoint.
            prop_assert_eq!(f.train.len() + f.validate.len(), n);
        }
        prop_assert!(count.iter().all(|&c| c == 1));
    }
}
