//! Property-style tests for the statistics layer, checked over seeded
//! pseudo-random sweeps (no proptest — the suite builds offline).

use pmc_linalg::Matrix;
use pmc_stats::{
    mape, mean_vif, pearson, rmse, vif_all, CovarianceKind, KFold, OlsFit, OlsOptions, SplitMix64,
};

const CASES: u64 = 32;

fn finite_vec(rng: &mut SplitMix64, len: usize, lo: f64, hi: f64) -> Vec<f64> {
    (0..len).map(|_| rng.uniform(lo, hi)).collect()
}

/// Design with intercept + 2 independent-ish random columns.
fn design(rng: &mut SplitMix64, n: usize) -> Matrix {
    let a = finite_vec(rng, n, -5.0, 5.0);
    let b = finite_vec(rng, n, -5.0, 5.0);
    let mut m = Matrix::zeros(n, 3);
    for i in 0..n {
        m[(i, 0)] = 1.0;
        m[(i, 1)] = a[i];
        m[(i, 2)] = b[i];
    }
    m
}

#[test]
fn ols_r2_in_unit_interval() {
    for seed in 0..CASES {
        let mut rng = SplitMix64::new(seed);
        let x = design(&mut rng, 30);
        let y = finite_vec(&mut rng, 30, 0.0, 100.0);
        // Degenerate draws (constant y / collinear X) may error; fine.
        if let Ok(fit) = OlsFit::fit(&x, &y) {
            assert!(fit.r_squared() <= 1.0 + 1e-12);
            assert!(
                fit.r_squared() >= -1e-12,
                "centered R² with intercept must be >= 0, got {}",
                fit.r_squared()
            );
            assert!(fit.adj_r_squared() <= fit.r_squared() + 1e-12);
        }
    }
}

#[test]
fn ols_residuals_sum_to_zero_with_intercept() {
    for seed in 0..CASES {
        let mut rng = SplitMix64::new(seed + 100);
        let x = design(&mut rng, 25);
        let y = finite_vec(&mut rng, 25, -10.0, 10.0);
        if let Ok(fit) = OlsFit::fit(&x, &y) {
            let s: f64 = fit.residuals().iter().sum();
            assert!(s.abs() < 1e-7, "residual sum {s}");
        }
    }
}

#[test]
fn ols_fit_is_optimal_among_perturbations() {
    for seed in 0..CASES {
        let mut rng = SplitMix64::new(seed + 200);
        let x = design(&mut rng, 20);
        let y = finite_vec(&mut rng, 20, -10.0, 10.0);
        let d0 = rng.uniform(-0.5, 0.5);
        let d1 = rng.uniform(-0.5, 0.5);
        if let Ok(fit) = OlsFit::fit(&x, &y) {
            let mut beta = fit.coefficients().to_vec();
            beta[0] += d0;
            beta[1] += d1;
            let perturbed: f64 = (0..x.rows())
                .map(|i| {
                    let p = pmc_linalg::dot(x.row(i), &beta);
                    (y[i] - p) * (y[i] - p)
                })
                .sum();
            assert!(perturbed + 1e-9 >= fit.rss());
        }
    }
}

#[test]
fn hc3_standard_errors_nonnegative() {
    for seed in 0..CASES {
        let mut rng = SplitMix64::new(seed + 300);
        let x = design(&mut rng, 40);
        let y = finite_vec(&mut rng, 40, 0.0, 50.0);
        if let Ok(fit) = OlsFit::fit_with(
            &x,
            &y,
            OlsOptions {
                covariance: CovarianceKind::HC3,
                centered_tss: true,
            },
        ) {
            for se in fit.std_errors() {
                assert!(se >= 0.0 && se.is_finite());
            }
        }
    }
}

#[test]
fn vif_at_least_one() {
    for seed in 0..CASES {
        let mut rng = SplitMix64::new(seed + 400);
        let x = design(&mut rng, 50);
        // Drop the intercept column: VIF operates on predictors.
        let pred = x.select_columns(&[1, 2]);
        if let Ok(v) = vif_all(&pred) {
            for vif in v {
                assert!(vif >= 1.0 - 1e-9);
            }
            assert!(mean_vif(&pred).unwrap() >= 1.0 - 1e-9);
        }
    }
}

#[test]
fn pearson_bounded_and_scale_invariant() {
    for seed in 0..CASES {
        let mut rng = SplitMix64::new(seed + 500);
        let x = finite_vec(&mut rng, 20, -100.0, 100.0);
        let y = finite_vec(&mut rng, 20, -100.0, 100.0);
        let a = rng.uniform(0.1, 10.0);
        let b = rng.uniform(-5.0, 5.0);
        if let Ok(r) = pearson(&x, &y) {
            assert!((-1.0 - 1e-12..=1.0 + 1e-12).contains(&r));
            // Positive affine transforms leave r unchanged.
            let xs: Vec<f64> = x.iter().map(|v| a * v + b).collect();
            if let Ok(r2) = pearson(&xs, &y) {
                assert!((r - r2).abs() < 1e-9);
            }
        }
    }
}

#[test]
fn mape_scale_invariant() {
    for seed in 0..CASES {
        let mut rng = SplitMix64::new(seed + 600);
        let actual = finite_vec(&mut rng, 15, 1.0, 1000.0);
        let rel = finite_vec(&mut rng, 15, -0.5, 0.5);
        let scale = rng.uniform(0.1, 100.0);
        let predicted: Vec<f64> = actual
            .iter()
            .zip(&rel)
            .map(|(a, r)| a * (1.0 + r))
            .collect();
        let m1 = mape(&actual, &predicted).unwrap();
        let sa: Vec<f64> = actual.iter().map(|v| v * scale).collect();
        let sp: Vec<f64> = predicted.iter().map(|v| v * scale).collect();
        let m2 = mape(&sa, &sp).unwrap();
        assert!((m1 - m2).abs() < 1e-9);
        assert!(m1 <= 50.0 + 1e-9); // |rel| <= 0.5
    }
}

#[test]
fn rmse_triangle_like() {
    for seed in 0..CASES {
        let mut rng = SplitMix64::new(seed + 700);
        let actual = finite_vec(&mut rng, 10, 1.0, 100.0);
        // rmse(a, a) == 0 and rmse symmetric in its arguments.
        assert_eq!(rmse(&actual, &actual).unwrap(), 0.0);
        let shifted: Vec<f64> = actual.iter().map(|v| v + 1.0).collect();
        let ab = rmse(&actual, &shifted).unwrap();
        let ba = rmse(&shifted, &actual).unwrap();
        assert!((ab - ba).abs() < 1e-12);
        assert!((ab - 1.0).abs() < 1e-12);
    }
}

#[test]
fn kfold_covers_all_indices() {
    for seed in 0..CASES {
        let mut rng = SplitMix64::new(seed + 800);
        let n = 10 + rng.below(110);
        let k = 10.min(n);
        let kf = KFold::new(n, k, seed).unwrap();
        let mut count = vec![0usize; n];
        for f in kf.folds() {
            for &i in &f.validate {
                count[i] += 1;
            }
            // Train ∪ validate = all, disjoint.
            assert_eq!(f.train.len() + f.validate.len(), n);
        }
        assert!(count.iter().all(|&c| c == 1));
    }
}
